/**
 * @file
 * Bring-your-own-kernel walkthrough: a histogram (read-modify-write
 * on a shared array) showing
 *  - how the compiler serializes may-aliasing memory with order
 *    tokens (correct but sequential), and
 *  - how the DFG looks (GraphViz export), and
 *  - why the foreach contract matters: histogram buckets are shared
 *    across iterations, so the loop must NOT be marked foreach.
 *
 *   ./build/examples/custom_kernel > histogram.dot  # DFG on stdout
 */

#include <cstdio>

#include "core/system.hh"
#include "dfg/dot.hh"
#include "sir/builder.hh"

using namespace pipestitch;
using sir::Reg;

int
main()
{
    setQuiet(true);

    const int n = 64, buckets = 8;
    sir::Builder b("histogram");
    auto data = b.array("data", n);
    auto hist = b.array("hist", buckets);
    Reg nr = b.liveIn("n");
    // A plain `for`: iterations share the hist array, so they are
    // NOT independent and must not be foreach.
    b.forLoop0(nr, [&](Reg i) {
        Reg v = b.loadIdx(data, i);
        Reg bucket = b.band(v, b.let(buckets - 1));
        Reg old = b.loadIdx(hist, bucket);
        b.storeIdx(hist, bucket, b.addi(old, 1));
    });

    workloads::KernelInstance kernel;
    kernel.name = "histogram";
    kernel.prog = b.finish();
    kernel.liveIns = {n};
    kernel.memory = scalar::makeMemory(kernel.prog);
    Rng rng(5);
    for (int i = 0; i < n; i++)
        kernel.memory[static_cast<size_t>(i)] =
            static_cast<sir::Word>(rng.nextBounded(1000));

    RunConfig cfg;
    cfg.variant = compiler::ArchVariant::Pipestitch;
    FabricRun run = runOnFabric(kernel, cfg);

    std::fprintf(stderr, "histogram of %d values:\n", n);
    for (int bkt = 0; bkt < buckets; bkt++) {
        int count = run.memory[static_cast<size_t>(
            kernel.prog.array(hist).base + bkt)];
        std::fprintf(stderr, "  bucket %d: %-3d ", bkt, count);
        for (int j = 0; j < count; j++)
            std::fprintf(stderr, "#");
        std::fprintf(stderr, "\n");
    }
    std::fprintf(stderr,
                 "\n%lld cycles; the hist loads/stores are chained "
                 "with order tokens (hist is read+written), so the "
                 "loop runs at the serialized memory II — correct "
                 "first, fast where the contract allows.\n",
                 static_cast<long long>(run.cycles()));

    // The DFG, for inspection with GraphViz (stdout).
    std::printf("%s", dfg::toDot(run.compiled.graph).c_str());
    return 0;
}
