/**
 * @file
 * Fabric introspection demo: show the PE layout, map a kernel,
 * simulate it, and render a utilization heat map plus the hottest
 * operators — the view an architect uses to see where cycles go.
 *
 *   ./build/examples/fabric_explorer [kernel-index 0..5]
 */

#include <cstdio>
#include <cstdlib>

#include "core/system.hh"
#include "sim/report.hh"
#include "workloads/kernels.hh"

using namespace pipestitch;

int
main(int argc, char **argv)
{
    setQuiet(true);
    int pick = argc > 1 ? std::atoi(argv[1]) : 4; // SpMSpVd
    auto kernels = workloads::smallKernels(11);
    if (pick < 0 || pick >= static_cast<int>(kernels.size())) {
        std::fprintf(stderr, "kernel index 0..%zu\n",
                     kernels.size() - 1);
        return 1;
    }
    const auto &kernel = kernels[static_cast<size_t>(pick)];

    fabric::Fabric fab;
    std::printf("The 8x8 fabric (A=arith X=mult C=control-flow "
                "M=memory S=stream):\n\n%s\n",
                fab.describe().c_str());

    for (auto variant : {compiler::ArchVariant::RipTide,
                         compiler::ArchVariant::Pipestitch}) {
        RunConfig cfg;
        cfg.variant = variant;
        FabricRun run = runOnFabric(kernel, cfg);
        std::printf("=== %s on %s: %lld cycles, IPC %.2f ===\n\n",
                    kernel.name.c_str(),
                    compiler::archVariantName(variant),
                    static_cast<long long>(run.cycles()),
                    run.sim.stats.ipc());
        std::printf("%s\n",
                    sim::utilizationMap(run.compiled.graph, fab,
                                        run.mapping, run.sim.stats)
                        .c_str());
        std::printf("hottest operators:\n%s\n",
                    sim::operatorReport(run.compiled.graph,
                                        run.sim.stats, 12)
                        .c_str());
    }
    std::printf("Threaded dispatch keeps inner-loop PEs firing "
                "nearly every cycle — the Fig. 18 utilization story "
                "made visible.\n");
    return 0;
}
