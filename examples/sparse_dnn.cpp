/**
 * @file
 * End-to-end application demo: the paper's 4-layer sparse DNN
 * running on a Cortex-M33, on RipTide, and on Pipestitch, with the
 * resulting energy-harvesting duty cycles (the Fig. 1 scenario).
 *
 *   ./build/examples/sparse_dnn
 */

#include <cstdio>

#include "base/table.hh"
#include "harvest/harvest.hh"
#include "scalar/profile.hh"
#include "workloads/dnn.hh"

using namespace pipestitch;

int
main()
{
    setQuiet(true);

    workloads::DnnConfig cfg; // paper-scale: 784-512-256-128-10
    auto model = workloads::buildDnn(cfg);
    std::printf("4-layer sparse DNN, %.0f kB on-device footprint, "
                "input sparsity %.2f\n\n",
                static_cast<double>(model.footprintBytes()) / 1024,
                cfg.inputSparsity);

    auto m33 = workloads::runDnnOnScalar(
        model, scalar::cortexM33Profile());
    auto rv = workloads::runDnnOnScalar(
        model, scalar::riptideScalarProfile());
    auto rip = workloads::runDnnOnFabric(
        model, compiler::ArchVariant::RipTide);
    auto pipe = workloads::runDnnOnFabric(
        model, compiler::ArchVariant::Pipestitch);

    Table t({"System", "Time/inf", "Energy/inf", "Peak rate"});
    for (const auto *inf : {&m33, &rv, &rip, &pipe}) {
        t.addRow({inf->system,
                  csprintf("%.2f ms", inf->seconds * 1e3),
                  csprintf("%.1f uJ", inf->energy.totalUj()),
                  csprintf("%.1f Hz", 1.0 / inf->seconds)});
    }
    std::printf("%s\n", t.render().c_str());

    // Sanity: all four systems agree on the classification result.
    bool agree = m33.logits == rv.logits && rv.logits == rip.logits &&
                 rip.logits == pipe.logits;
    std::printf("logits agree across all systems: %s\n\n",
                agree ? "yes" : "NO (bug!)");

    // What the harvested-power budget buys on each platform.
    harvest::Platform platforms[] = {
        {"Cortex-M33", m33.seconds, m33.energy.totalPj() * 1e-12},
        {"RipTide", rip.seconds, rip.energy.totalPj() * 1e-12},
        {"Pipestitch", pipe.seconds,
         pipe.energy.totalPj() * 1e-12},
    };
    std::printf("Frames per second by harvested power:\n");
    for (double mw : {0.1, 0.5, 1.0, 2.0}) {
        std::printf("  %4.1f mW:", mw);
        for (const auto &p : platforms) {
            std::printf("  %s %6.1f Hz", p.name,
                        harvest::endToEndRate(p, mw * 1e-3));
        }
        std::printf("\n");
    }
    return 0;
}
