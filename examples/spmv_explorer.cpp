/**
 * @file
 * Design-space exploration demo: sweep matrix sparsity for SpMV
 * (unthreaded, II = 1) and SpMSpVd (threaded, II > 1), comparing
 * RipTide and Pipestitch. Shows where threading pays off and how
 * the gain scales with row imbalance.
 *
 *   ./build/examples/spmv_explorer
 */

#include <cstdio>

#include "base/table.hh"
#include "core/system.hh"

using namespace pipestitch;
using compiler::ArchVariant;

namespace {

void
sweep(const char *title,
      workloads::KernelInstance (*make)(int, double, uint64_t))
{
    Table t({"Sparsity", "nnz-ish", "RipTide cyc", "Pipestitch cyc",
             "Speedup", "Threaded"});
    const int n = 64;
    for (double sparsity : {0.50, 0.75, 0.90, 0.97}) {
        auto kernel = make(n, sparsity, /*seed=*/11);
        RunConfig rip;
        rip.variant = ArchVariant::RipTide;
        RunConfig pipe;
        pipe.variant = ArchVariant::Pipestitch;
        auto r = runOnFabric(kernel, rip);
        auto p = runOnFabric(kernel, pipe);
        t.addRow({Table::fmt(sparsity, 2),
                  csprintf("%.0f", n * n * (1.0 - sparsity)),
                  csprintf("%lld", (long long)r.cycles()),
                  csprintf("%lld", (long long)p.cycles()),
                  Table::fmt(static_cast<double>(r.cycles()) /
                                 static_cast<double>(p.cycles()),
                             2) +
                      "x",
                  p.compiled.threaded ? "yes" : "no"});
    }
    std::printf("%s\n\n%s\n", title, t.render().c_str());
}

} // namespace

int
main()
{
    setQuiet(true);
    sweep("SpMV (64x64 CSR x dense vector): II = 1, runs "
          "unthreaded on both",
          workloads::makeSpmv);
    sweep("SpMSpVd (64x64 CSR x sparse vector): irregular "
          "intersection loop, threads on Pipestitch",
          workloads::makeSpMSpVd);
    std::printf(
        "Takeaway: the II heuristic keeps regular kernels on the\n"
        "cheap unthreaded path and reserves dispatch threading for\n"
        "irregular loops, where pipelining independent rows covers\n"
        "the long carried-dependence latency.\n");
    return 0;
}
