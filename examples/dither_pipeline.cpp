/**
 * @file
 * Image-processing demo: error-diffusion dithering of a synthetic
 * gradient image on the Pipestitch fabric, with an ASCII rendering
 * of input and output and a look at thread pipelining.
 *
 *   ./build/examples/dither_pipeline
 */

#include <cmath>
#include <cstdio>

#include "core/system.hh"
#include "sir/builder.hh"

using namespace pipestitch;
using sir::Reg;

namespace {

constexpr int kW = 32;
constexpr int kH = 12;

/** Same kernel as workloads::makeDither, but over our own image. */
workloads::KernelInstance
ditherKernel(const std::vector<sir::Word> &img)
{
    sir::Builder b("dither_demo");
    auto in = b.array("img", kW * kH);
    auto out = b.array("out", kW * kH);
    Reg h = b.liveIn("h");
    Reg w = b.liveIn("w");
    b.forEach0(h, [&](Reg y) {
        Reg rowBase = b.shl(y, 5); // kW = 32
        Reg err = b.reg("err");
        b.assignConst(err, 0);
        b.forLoop0(w, [&](Reg x) {
            Reg addr = b.add(rowBase, x);
            Reg v = b.add(b.loadIdx(in, addr), err);
            Reg big = b.gti(v, 127);
            Reg outv = b.select(big, b.let(255), b.let(0));
            b.storeIdx(out, addr, outv);
            b.computeInto(err, sir::Opcode::Sub, v, outv);
        });
    });

    workloads::KernelInstance k;
    k.name = "dither_demo";
    k.prog = b.finish();
    k.liveIns = {kH, kW};
    k.memory = scalar::makeMemory(k.prog);
    for (size_t i = 0; i < img.size(); i++)
        k.memory[i] = img[i];
    return k;
}

void
render(const char *title, const scalar::MemImage &mem, int base,
       bool binary)
{
    static const char ramp[] = " .:-=+*#%@";
    std::printf("%s\n", title);
    for (int y = 0; y < kH; y++) {
        std::printf("  ");
        for (int x = 0; x < kW; x++) {
            int v = mem[static_cast<size_t>(base + y * kW + x)];
            char c = binary ? (v > 127 ? '@' : ' ')
                            : ramp[std::min(9, v * 10 / 256)];
            std::printf("%c", c);
        }
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    setQuiet(true);

    // Radial gradient test card.
    std::vector<sir::Word> img(kW * kH);
    for (int y = 0; y < kH; y++) {
        for (int x = 0; x < kW; x++) {
            double dx = (x - kW / 2.0) / (kW / 2.0);
            double dy = (y - kH / 2.0) / (kH / 2.0);
            double r = std::sqrt(dx * dx + dy * dy);
            img[static_cast<size_t>(y * kW + x)] =
                static_cast<sir::Word>(
                    std::max(0.0, 255.0 * (1.0 - r)));
        }
    }

    auto kernel = ditherKernel(img);
    render("input (8-bit):", kernel.memory, 0, false);

    RunConfig cfg;
    cfg.variant = compiler::ArchVariant::Pipestitch;
    FabricRun run = runOnFabric(kernel, cfg);
    render("dithered on the fabric (1-bit):", run.memory, kW * kH,
           true);

    RunConfig ripCfg;
    ripCfg.variant = compiler::ArchVariant::RipTide;
    FabricRun rip = runOnFabric(kernel, ripCfg);

    std::printf("rows pipelined as threads: %lld spawns, "
                "%lld cycles (RipTide serial rows: %lld) -> "
                "%.2fx\n",
                static_cast<long long>(
                    run.sim.stats.dispatchSpawns),
                static_cast<long long>(run.cycles()),
                static_cast<long long>(rip.cycles()),
                static_cast<double>(rip.cycles()) /
                    static_cast<double>(run.cycles()));
    return 0;
}
