/**
 * @file
 * Quickstart: write a kernel against the foreach programming model,
 * compile it for Pipestitch, simulate it cycle-by-cycle, and read
 * the results — the paper's Fig. 5a example (count non-zero
 * elements of each linked list in a map) in ~60 lines.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/system.hh"
#include "sim/report.hh"
#include "sir/builder.hh"
#include "sir/printer.hh"

using namespace pipestitch;
using sir::Reg;

int
main()
{
    // --- 1. Write the kernel (paper Fig. 5a) -------------------------
    // foreach i = 0..N:
    //   p = map[i], c = 0
    //   while p != NULL: { if p.val: c++;  p = p->next }
    //   Z[i] = c
    const int numLists = 8;
    sir::Builder b("count_nonzeros");
    auto map = b.array("map", numLists); // head node id, -1 = empty
    auto next = b.array("next", 64);     // next node id, -1 = end
    auto val = b.array("val", 64);       // node payload
    auto Z = b.array("Z", numLists);
    Reg n = b.liveIn("N");

    b.forEach0(n, [&](Reg i) {
        Reg p = b.reg("p");
        b.loadIdxInto(p, map, i);
        Reg c = b.reg("c");
        b.assignConst(c, 0);
        b.whileLoop([&] { return b.gt(p, b.let(-1)); },
                    [&] {
                        Reg v = b.loadIdx(val, p);
                        b.ifThen(b.nei(v, 0), [&] {
                            b.computeInto(c, sir::Opcode::Add, c,
                                          b.let(1));
                        });
                        b.loadIdxInto(p, next, p);
                    });
        b.storeIdx(Z, i, c);
    });
    auto prog = b.finish();
    std::printf("=== SIR ===\n%s\n", sir::print(prog).c_str());

    // --- 2. Build an input: 8 short linked lists ---------------------
    workloads::KernelInstance kernel;
    kernel.name = "count_nonzeros";
    kernel.prog = std::move(prog);
    kernel.liveIns = {numLists};
    kernel.memory = scalar::makeMemory(kernel.prog);
    Rng rng(42);
    int cursor = 0;
    for (int list = 0; list < numLists; list++) {
        int len = static_cast<int>(rng.nextBounded(7));
        int prev = -1;
        for (int k = 0; k < len; k++) {
            int node = cursor++;
            if (prev < 0)
                kernel.memory[static_cast<size_t>(list)] = node;
            else
                kernel.memory[static_cast<size_t>(8 + prev)] = node;
            kernel.memory[static_cast<size_t>(8 + node)] = -1;
            kernel.memory[static_cast<size_t>(8 + 64 + node)] =
                static_cast<sir::Word>(rng.nextBounded(3));
            prev = node;
        }
        if (prev < 0)
            kernel.memory[static_cast<size_t>(list)] = -1;
    }

    // --- 3. Run on Pipestitch and on RipTide -------------------------
    RunConfig pipeCfg;
    pipeCfg.variant = compiler::ArchVariant::Pipestitch;
    FabricRun pipe = runOnFabric(kernel, pipeCfg);

    RunConfig ripCfg;
    ripCfg.variant = compiler::ArchVariant::RipTide;
    FabricRun rip = runOnFabric(kernel, ripCfg);

    std::printf("=== results (Z) ===\n");
    for (int i = 0; i < numLists; i++) {
        std::printf("  list %d: %d non-zero nodes\n", i,
                    pipe.memory[static_cast<size_t>(
                        kernel.prog.array(Z).base + i)]);
    }

    std::printf("\n=== execution ===\n");
    std::printf("  threaded compilation: %s (inner-loop II > 1)\n",
                pipe.compiled.threaded ? "yes" : "no");
    std::printf("  threads spawned:      %lld\n",
                static_cast<long long>(
                    pipe.sim.stats.dispatchSpawns /
                    std::max<size_t>(1, 1)));
    std::printf("  Pipestitch: %lld cycles, %.1f pJ, IPC %.2f\n",
                static_cast<long long>(pipe.cycles()),
                pipe.energy.totalPj(), pipe.sim.stats.ipc());
    std::printf("  RipTide:    %lld cycles, %.1f pJ, IPC %.2f\n",
                static_cast<long long>(rip.cycles()),
                rip.energy.totalPj(), rip.sim.stats.ipc());
    std::printf("  speedup:    %.2fx\n",
                static_cast<double>(rip.cycles()) /
                    static_cast<double>(pipe.cycles()));

    // The structured counters behind those lines (reportFor gives
    // the same record pstool emits with --json).
    std::printf("\n=== counters ===\n  %s\n",
                sim::reportFor(pipe.sim.stats).toString().c_str());
    return 0;
}
