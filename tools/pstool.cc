/**
 * @file
 * pstool — the command-line driver for the Pipestitch toolchain.
 *
 * Subcommands are self-registering entries in kCommands (name →
 * handler + help); `pstool help` prints the generated synopsis.
 * The global `--json` flag switches every command's primary output
 * to machine-readable JSON.
 *
 *   pstool compile <file.sir>   compile and report fit/threading
 *   pstool run <file.sir>       compile, map, simulate, verify
 *   pstool scalar <file.sir>    sequential interpreter only
 *   pstool bench-sim <file.sir> time a scheduler against the
 *                               ready-list reference
 *   pstool bench-sim-par        parallel engine vs ready-list oracle
 *                               sweep; writes BENCH_sim_par.json
 *   pstool trace <file.sir>     simulate under observation; write a
 *                               Chrome-trace JSON (chrome://tracing
 *                               or https://ui.perfetto.dev) and a
 *                               stall-attribution breakdown
 *   pstool lint <file.sir>      static analysis only: deadlock,
 *                               token-balance, and placement rules
 *                               (docs/static-analysis.md); with
 *                               --cross-check also simulates and
 *                               fails on analyzer/simulator
 *                               disagreement (deadlock verdict and
 *                               the certified throughput bound)
 *   pstool bound <file.sir>     certified static throughput bound
 *                               (PS-T analysis) vs the simulated
 *                               cycle count: every bound term, the
 *                               binding constraint, and its fix
 *                               hint; nonzero exit when the
 *                               simulation beats the bound
 *   pstool map <file.sir>       run the portfolio mapper alone and
 *                               report placement quality (cost,
 *                               wirelength, congestion, winning
 *                               seed) plus wall-clock; nonzero exit
 *                               if the kernel does not map or the
 *                               emitted placement fails lint
 *   pstool figures              reproduce every paper figure in one
 *                               process, concurrently (takes no
 *                               .sir file; see --jobs/--smoke/
 *                               --cache-dir/--out-dir/--only)
 *   pstool bench-tiles          batched data-parallel SpMV shards
 *                               across tile arrangements; writes the
 *                               scaling curve to BENCH_tiles.json
 *
 * Variants: riptide, pipestitch (default), pipesb, pipecfin,
 * pipecfop. The fabric defaults to the paper's single 8×8 grid;
 * `--fabric=WxH[,tiles=TXxTY,...]` (docs/fabric.md) retargets any
 * subcommand that maps or simulates.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "analysis/placement.hh"
#include "analysis/throughput.hh"
#include "base/logging.hh"
#include "compiler/timemux.hh"
#include "core/batch.hh"
#include "core/system.hh"
#include "dfg/dot.hh"
#include "figures/figures.hh"
#include "mapper/tiled.hh"
#include "runner/serve.hh"
#include "trace/json.hh"
#include "workloads/dnn.hh"
#include "workloads/kernels.hh"
#include "runner/sweep.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sir/parser.hh"
#include "sir/printer.hh"
#include "trace/chrome_trace.hh"
#include "trace/observer.hh"
#include "trace/stall_timeline.hh"

using namespace pipestitch;

namespace {

struct Options
{
    std::string command;
    std::string file;
    compiler::ArchVariant variant =
        compiler::ArchVariant::Pipestitch;
    int depth = 4;
    int unroll = 1;
    bool dot = false;
    bool report = false;
    bool trace = false;
    bool timeMultiplex = false;
    bool json = false;
    bool noMap = false;     ///< lint: skip mapping + placement rules
    bool crossCheck = false; ///< lint: simulate and compare verdicts
    int seeds = 4;            ///< map: portfolio restarts
    int jobs = 1;             ///< map/bench-sim: worker threads
    std::string scheduler;    ///< bench-sim: contender scheduler
    uint64_t seed = 1;        ///< map: base RNG seed
    int iterations = 20000;   ///< map: total anneal budget
    /** Fabric topology from --fabric=WxH[,tiles=TXxTY,...] and the
     *  --tiles=TXxTY shorthand; defaults to the single 8×8 grid. */
    fabric::Topology topo;
    std::string out;          ///< trace: output file
    std::string stallsOut;    ///< trace: stall-timeline JSON file
    int interval = 256;       ///< trace: stall bucket width
    std::vector<std::pair<std::string, sir::Word>> liveIns;
    std::vector<std::pair<std::string, std::vector<sir::Word>>>
        inits;
    std::vector<std::string> dumps;
};

using ParseResult = sir::ParseResult;

struct Command
{
    const char *name;
    const char *synopsis; ///< command-specific options
    const char *help;     ///< one-line description
    int (*handler)(const Options &, const ParseResult &);
};

int cmdCompile(const Options &, const ParseResult &);
int cmdRun(const Options &, const ParseResult &);
int cmdScalar(const Options &, const ParseResult &);
int cmdBenchSim(const Options &, const ParseResult &);
int cmdTrace(const Options &, const ParseResult &);
int cmdLint(const Options &, const ParseResult &);
int cmdBound(const Options &, const ParseResult &);
int cmdMap(const Options &, const ParseResult &);

constexpr Command kCommands[] = {
    {"compile", "[--variant=V --unroll=N --dot]",
     "compile and report threading/II/operator-count/fabric fit",
     cmdCompile},
    {"run",
     "[--variant=V --depth=N --unroll=N --tm --report --trace "
     "--fabric=S --tiles=TXxTY]",
     "compile, map, simulate, verify against the interpreter",
     cmdRun},
    {"scalar", "", "run the sequential interpreter only",
     cmdScalar},
    {"bench-sim",
     "[--variant=V --depth=N --unroll=N --scheduler=dense|ready|"
     "parallel --jobs=N]",
     "time a scheduler against the ready-list reference (default "
     "contender: dense-scan; parallel must be bit-identical)",
     cmdBenchSim},
    {"trace",
     "[--variant=V --depth=N --unroll=N --out=F --stalls=F "
     "--interval=N]",
     "simulate under observation; write Chrome-trace JSON and "
     "stall attribution",
     cmdTrace},
    {"lint",
     "[--variant=V --depth=N --unroll=N --tm --no-map "
     "--cross-check --fabric=S --tiles=TXxTY]",
     "run the static analyzer (deadlock/balance/placement rules); "
     "nonzero exit on any error diagnostic",
     cmdLint},
    {"bound",
     "[--variant=V --depth=N --unroll=N --tm --fabric=S "
     "--tiles=TXxTY]",
     "report the certified static throughput bound against the "
     "simulated run: every term, the binding constraint, and its "
     "fix hint; nonzero exit if the simulation beats the bound",
     cmdBound},
    {"map",
     "[--variant=V --unroll=N --tm --seeds=N --jobs=N --seed=N "
     "--iters=N --fabric=S --tiles=TXxTY]",
     "run the portfolio mapper alone; report placement quality and "
     "wall-clock, nonzero exit on failure or dirty placement lint",
     cmdMap},
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr, "usage: pstool <command> <file.sir> "
                         "[options]\n\ncommands:\n");
    for (const Command &c : kCommands) {
        std::fprintf(stderr, "  %-10s %s\n             %s %s\n",
                     c.name, c.help, c.synopsis,
                     *c.synopsis ? "" : "(no extra options)");
    }
    std::fprintf(
        stderr,
        "  %-10s %s\n             %s\n", "figures",
        "reproduce every paper figure in one process "
        "(takes no .sir file)",
        "[--jobs=N --smoke --cache-dir=D --out-dir=D "
        "--only=id,id --json]");
    std::fprintf(
        stderr,
        "  %-10s %s\n             %s\n", "serve",
        "resident simulation daemon: newline-delimited JSON "
        "requests on stdin, responses on stdout (no .sir file; "
        "see docs/serve.md)",
        "[--jobs=N --queue=N --cache-dir=D --fabric=S --bench=N "
        "--bench-out=F]");
    std::fprintf(
        stderr,
        "  %-10s %s\n             %s\n", "bench-tiles",
        "batched SpMV shards across 1x1/1x2/2x2 tile arrangements "
        "(no .sir file); writes the scaling curve JSON",
        "[--shards=N --n=N --seed=N --fabric=S "
        "--out=BENCH_tiles.json]");
    std::fprintf(
        stderr,
        "  %-10s %s\n             %s\n", "bench-sim-par",
        "parallel scheduler vs ready-list oracle across a job-count "
        "sweep (no .sir file); bit-identity checked at every job "
        "count",
        "[--smoke --reps=N --out=BENCH_sim_par.json]");
    std::fprintf(
        stderr,
        "\ncommon options:\n"
        "  --variant=riptide|pipestitch|pipesb|pipecfin|pipecfop\n"
        "  --fabric=WxH[,tiles=TXxTY][,cap=N][,lat=N]"
        "[,mix=a:m:c:me:s]\n"
        "                          fabric topology (docs/fabric.md)\n"
        "  --tiles=TXxTY           tile arrangement shorthand\n"
        "  --json                  machine-readable primary output\n"
        "  --livein name=value     bind a kernel parameter\n"
        "  --init arr=v0,v1,...    initialize array contents\n"
        "  --dump arr              print an array after the run\n");
    std::exit(2);
}

/**
 * The one shared CLI → fabric::Topology path: `--fabric=` takes the
 * full spec grammar (`WxH[,tiles=TXxTY][,cap=N][,lat=N][,mix=...]`,
 * see fabric::parseFabricSpec), `--tiles=` is the shorthand that
 * only changes the tile arrangement. Validation — including the
 * peMix-sum-matches-grid check — happens in Topology::validate, so
 * every subcommand rejects a bad fabric with the same structured
 * error.
 */
void
parseFabricArg(const std::string &spec, fabric::Topology &topo)
{
    std::string err;
    if (!fabric::parseFabricSpec(spec, topo, &err)) {
        std::fprintf(stderr, "--fabric=%s: %s\n", spec.c_str(),
                     err.c_str());
        std::exit(2);
    }
}

void
parseTilesArg(const std::string &spec, fabric::Topology &topo)
{
    int tx = 0, ty = 0;
    char junk;
    if (std::sscanf(spec.c_str(), "%dx%d%c", &tx, &ty, &junk) != 2 ||
        tx < 1 || ty < 1) {
        std::fprintf(stderr,
                     "--tiles=%s: expected TXxTY (e.g. 2x2)\n",
                     spec.c_str());
        std::exit(2);
    }
    topo.tilesX = tx;
    topo.tilesY = ty;
}

/** Copy the CLI topology into a RunConfig (fabric = per-tile grid,
 *  tile arrangement + inter-tile link model alongside). */
void
applyFabric(const fabric::Topology &topo, RunConfig &cfg)
{
    cfg.fabric = topo.tile;
    cfg.tilesX = topo.tilesX;
    cfg.tilesY = topo.tilesY;
    cfg.interTileLatency = topo.interTileLatency;
    cfg.interTileCapacity = topo.interTileCapacity;
}

compiler::ArchVariant
parseVariant(const std::string &name)
{
    if (name == "riptide")
        return compiler::ArchVariant::RipTide;
    if (name == "pipestitch")
        return compiler::ArchVariant::Pipestitch;
    if (name == "pipesb")
        return compiler::ArchVariant::PipeSB;
    if (name == "pipecfin")
        return compiler::ArchVariant::PipeCFiN;
    if (name == "pipecfop")
        return compiler::ArchVariant::PipeCFoP;
    fatal("unknown variant '%s'", name.c_str());
}

Options
parseArgs(int argc, char **argv)
{
    if (argc < 3)
        usage();
    Options opts;
    opts.command = argv[1];
    opts.file = argv[2];
    for (int i = 3; i < argc; i++) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) {
            return arg.substr(std::strlen(prefix));
        };
        if (arg.rfind("--variant=", 0) == 0) {
            opts.variant = parseVariant(value("--variant="));
        } else if (arg.rfind("--depth=", 0) == 0) {
            opts.depth = std::atoi(value("--depth=").c_str());
        } else if (arg.rfind("--unroll=", 0) == 0) {
            opts.unroll = std::atoi(value("--unroll=").c_str());
        } else if (arg.rfind("--out=", 0) == 0) {
            opts.out = value("--out=");
        } else if (arg.rfind("--stalls=", 0) == 0) {
            opts.stallsOut = value("--stalls=");
        } else if (arg.rfind("--interval=", 0) == 0) {
            opts.interval =
                std::atoi(value("--interval=").c_str());
        } else if (arg.rfind("--seeds=", 0) == 0) {
            opts.seeds = std::atoi(value("--seeds=").c_str());
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs = std::atoi(value("--jobs=").c_str());
        } else if (arg.rfind("--scheduler=", 0) == 0) {
            opts.scheduler = value("--scheduler=");
        } else if (arg.rfind("--seed=", 0) == 0) {
            opts.seed = static_cast<uint64_t>(
                std::atoll(value("--seed=").c_str()));
        } else if (arg.rfind("--iters=", 0) == 0) {
            opts.iterations =
                std::atoi(value("--iters=").c_str());
        } else if (arg.rfind("--fabric=", 0) == 0) {
            parseFabricArg(value("--fabric="), opts.topo);
        } else if (arg.rfind("--tiles=", 0) == 0) {
            parseTilesArg(value("--tiles="), opts.topo);
        } else if (arg == "--tm") {
            opts.timeMultiplex = true;
        } else if (arg == "--no-map") {
            opts.noMap = true;
        } else if (arg == "--cross-check") {
            opts.crossCheck = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--dot") {
            opts.dot = true;
        } else if (arg == "--report") {
            opts.report = true;
        } else if (arg == "--trace") {
            opts.trace = true;
        } else if (arg == "--livein" && i + 1 < argc) {
            std::string spec = argv[++i];
            size_t eq = spec.find('=');
            if (eq == std::string::npos)
                usage();
            opts.liveIns.emplace_back(
                spec.substr(0, eq),
                static_cast<sir::Word>(
                    std::atoll(spec.c_str() + eq + 1)));
        } else if (arg == "--init" && i + 1 < argc) {
            std::string spec = argv[++i];
            size_t eq = spec.find('=');
            if (eq == std::string::npos)
                usage();
            std::vector<sir::Word> values;
            std::stringstream ss(spec.substr(eq + 1));
            std::string item;
            while (std::getline(ss, item, ','))
                values.push_back(static_cast<sir::Word>(
                    std::atoll(item.c_str())));
            opts.inits.emplace_back(spec.substr(0, eq),
                                    std::move(values));
        } else if (arg == "--dump" && i + 1 < argc) {
            opts.dumps.push_back(argv[++i]);
        } else {
            usage();
        }
    }
    return opts;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

workloads::KernelInstance
buildKernel(const Options &opts, const ParseResult &parsed)
{
    workloads::KernelInstance kernel;
    kernel.name = parsed.program.name;
    kernel.prog = sir::Program(parsed.program.name);
    // Deep-copy via clone (Program is move-only in spirit).
    kernel.prog.numRegs = parsed.program.numRegs;
    kernel.prog.arrays = parsed.program.arrays;
    kernel.prog.regNames = parsed.program.regNames;
    kernel.prog.liveIns = parsed.program.liveIns;
    kernel.prog.memWords = parsed.program.memWords;
    kernel.prog.body = sir::cloneStmts(parsed.program.body);

    // Bind live-ins by name, defaulting to 0 with a warning.
    for (sir::Reg r : kernel.prog.liveIns) {
        const std::string &name =
            kernel.prog.regNames[static_cast<size_t>(r)];
        sir::Word value = 0;
        bool found = false;
        for (const auto &[n, v] : opts.liveIns) {
            if (n == name) {
                value = v;
                found = true;
            }
        }
        if (!found)
            warn("live-in '%s' not bound; using 0", name.c_str());
        kernel.liveIns.push_back(value);
    }

    kernel.memory = scalar::makeMemory(kernel.prog);
    for (const auto &[name, values] : opts.inits) {
        auto it = parsed.arrays.find(name);
        if (it == parsed.arrays.end())
            fatal("--init: no array '%s'", name.c_str());
        const auto &arr = kernel.prog.array(it->second);
        if (static_cast<int64_t>(values.size()) > arr.words)
            fatal("--init: %zu values exceed %s[%lld]",
                  values.size(), name.c_str(),
                  static_cast<long long>(arr.words));
        for (size_t i = 0; i < values.size(); i++)
            kernel.memory[static_cast<size_t>(arr.base) + i] =
                values[i];
    }
    return kernel;
}

void
dumpArrays(const Options &opts, const ParseResult &parsed,
           const scalar::MemImage &mem)
{
    for (const auto &name : opts.dumps) {
        auto it = parsed.arrays.find(name);
        if (it == parsed.arrays.end())
            fatal("--dump: no array '%s'", name.c_str());
        const auto &arr = parsed.program.array(it->second);
        std::printf("%s =", name.c_str());
        for (int64_t i = 0; i < arr.words; i++) {
            std::printf(" %d",
                        mem[static_cast<size_t>(arr.base + i)]);
        }
        std::printf("\n");
    }
}

/** Compile the parsed kernel the way bench-sim and trace need it:
 *  no mapping, recommended sim config with the CLI's depth. */
compiler::CompileResult
compileForSim(const Options &opts,
              const workloads::KernelInstance &kernel)
{
    compiler::CompileOptions copts;
    copts.variant = opts.variant;
    copts.unrollFactor = opts.unroll;
    copts.bufferDepth = opts.depth;
    return compiler::compileProgram(kernel.prog, kernel.liveIns,
                                    copts);
}

int
cmdCompile(const Options &opts, const ParseResult &parsed)
{
    compiler::CompileOptions copts;
    copts.variant = opts.variant;
    copts.unrollFactor = opts.unroll;
    // Live-ins default to 0 for a structure-only compile.
    std::vector<sir::Word> liveIns(parsed.program.liveIns.size(),
                                   0);
    for (size_t i = 0; i < parsed.program.liveIns.size(); i++) {
        const std::string &name =
            parsed.program.regNames[static_cast<size_t>(
                parsed.program.liveIns[i])];
        for (const auto &[n, v] : opts.liveIns) {
            if (n == name)
                liveIns[i] = v;
        }
    }
    auto res = compiler::compileProgram(parsed.program, liveIns,
                                        copts);
    if (opts.dot) {
        std::printf("%s", dfg::toDot(res.graph).c_str());
        return 0;
    }
    std::printf("program: %s (%s)\n", parsed.program.name.c_str(),
                compiler::archVariantName(opts.variant));
    std::printf("threaded: %s", res.threaded ? "yes (loops" : "no");
    if (res.threaded) {
        for (int l : res.threadedLoops)
            std::printf(" L%d[II=%d]", l,
                        res.loopII[static_cast<size_t>(l)]);
        std::printf(")");
    }
    std::printf("\noperators: %d", res.graph.size());
    auto counts = res.graph.peClassCounts();
    // Fit check against the whole requested fabric (all tiles).
    fabric::FabricConfig fc = opts.topo.globalConfig();
    bool fits = true;
    static const char *names[] = {"arith", "mult", "cf", "mem",
                                  "stream"};
    std::printf("\nPE demand:");
    for (size_t c = 0; c < counts.size(); c++) {
        std::printf(" %s=%d/%d", names[c], counts[c],
                    fc.peMix[c]);
        fits &= counts[c] <= fc.peMix[c];
    }
    std::printf("\nfits %dx%d fabric: %s\n", fc.width, fc.height,
                fits ? "yes" : "no");
    return 0;
}

int
cmdRun(const Options &opts, const ParseResult &parsed)
{
    auto kernel = buildKernel(opts, parsed);
    RunConfig cfg;
    cfg.variant = opts.variant;
    cfg.sim.bufferDepth = opts.depth;
    cfg.unrollFactor = opts.unroll;
    cfg.allowTimeMultiplex = opts.timeMultiplex;
    applyFabric(opts.topo, cfg);
    if (opts.trace) {
        // Trace implies an unmapped functional run to keep output
        // readable; the stderr dump flows straight through the
        // unified sim config.
        cfg.map = false;
        cfg.sim.trace = true;
    }
    std::string err;
    FabricRun run = runOnFabric(kernel, cfg, &err);
    if (!err.empty()) {
        if (opts.json) {
            sim::Report r;
            r.add("schema_version", sim::kJsonSchemaVersion)
                .add("kernel", kernel.name)
                .add("status", "error")
                .add("error", err);
            std::printf("%s\n", r.toJson().c_str());
        } else {
            std::fprintf(stderr, "%s: %s\n", kernel.name.c_str(),
                         err.c_str());
        }
        return 1;
    }

    if (opts.json) {
        const auto &st = run.sim.stats;
        sim::Report r;
        r.add("schema_version", sim::kJsonSchemaVersion)
            .add("kernel", kernel.name)
            .add("variant",
                 compiler::archVariantName(opts.variant))
            .add("cycles", run.cycles())
            .add("seconds", run.seconds)
            .add("energy_pj", run.energy.totalPj())
            .add("edp_pj_s", run.edp)
            .add("ipc", st.ipc())
            .add("threads", st.dispatchSpawns)
            .add("pe_fires", st.totalPeFires())
            .add("noc_cf_fires", st.nocCfFires)
            .add("mem_loads", st.memLoads)
            .add("mem_stores", st.memStores)
            .add("buffer_writes", st.bufferWrites)
            .add("buffer_reads", st.bufferReads)
            .add("bank_conflicts", st.bankConflictStalls)
            .add("mux_switches", st.muxSwitches)
            .add("threaded", run.compiled.threaded)
            .add("operators", run.compiled.graph.size())
            .add("avg_hops", run.mapping.avgHops);
        if (cfg.tiled()) {
            r.add("tiles_x", cfg.tilesX)
                .add("tiles_y", cfg.tilesY)
                .add("inter_tile_tokens", st.interTileTokens);
        }
        std::printf("%s\n", r.toJson().c_str());
    } else {
        std::printf("%s on %s: %lld cycles @%.1f MHz, %.1f pJ, "
                    "IPC %.2f, %lld threads\n",
                    kernel.name.c_str(),
                    compiler::archVariantName(opts.variant),
                    static_cast<long long>(run.cycles()),
                    cfg.fabric.clockMHz, run.energy.totalPj(),
                    run.sim.stats.ipc(),
                    static_cast<long long>(
                        run.sim.stats.dispatchSpawns));
        std::printf("%s\n",
                    sim::reportFor(run.sim.stats)
                        .toString()
                        .c_str());
    }
    if (opts.report) {
        fabric::Fabric fab(opts.topo);
        std::printf("\n%s\n%s",
                    sim::utilizationMap(run.compiled.graph, fab,
                                        run.mapping, run.sim.stats)
                        .c_str(),
                    sim::operatorReport(run.compiled.graph,
                                        run.sim.stats)
                        .c_str());
    }
    dumpArrays(opts, parsed, run.memory);
    return 0;
}

/**
 * One timed scheduler sample: a warmup run, then best-of-@p reps on
 * a fresh memory image each time. bench-sim and bench-sim-par share
 * this harness so their numbers are comparable by construction.
 */
struct SimTiming
{
    double ms = 0;
    int64_t cycles = 0;
    sim::SimStats stats;
    bool deadlocked = false;
};

SimTiming
timeSim(const dfg::Graph &graph,
        const workloads::KernelInstance &kernel,
        const sim::SimConfig &cfg, int reps)
{
    SimTiming t;
    for (int rep = 0; rep < reps + 1; rep++) {
        auto mem = kernel.memory;
        mem.resize(static_cast<size_t>(kernel.prog.memWords));
        auto t0 = std::chrono::steady_clock::now();
        auto r = sim::simulate(graph, mem, cfg);
        auto t1 = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count();
        t.cycles = r.stats.cycles;
        t.stats = std::move(r.stats);
        t.deadlocked = r.deadlocked;
        if (rep > 0 && (t.ms == 0 || ms < t.ms))
            t.ms = ms;
    }
    return t;
}

int
cmdBenchSim(const Options &opts, const ParseResult &parsed)
{
    auto kernel = buildKernel(opts, parsed);
    auto res = compileForSim(opts, kernel);
    auto cfg = res.simConfig;
    cfg.bufferDepth = opts.depth;
    const int reps = 3;

    // --scheduler picks the contender timed against the ready-list
    // reference; the historical default pairing is dense-scan vs
    // ready-list. --jobs sets the parallel contender's region count
    // (worker threads follow hardware concurrency).
    const std::string sched =
        opts.scheduler.empty() ? "dense" : opts.scheduler;
    sim::SimConfig::Scheduler contender;
    if (sched == "dense") {
        contender = sim::SimConfig::Scheduler::DenseScan;
    } else if (sched == "ready") {
        contender = sim::SimConfig::Scheduler::ReadyList;
    } else if (sched == "parallel") {
        contender = sim::SimConfig::Scheduler::ParallelRegions;
    } else {
        fatal("--scheduler=%s: expected dense, ready, or parallel",
              sched.c_str());
    }

    auto refCfg = cfg;
    refCfg.scheduler = sim::SimConfig::Scheduler::ReadyList;
    SimTiming ready = timeSim(res.graph, kernel, refCfg, reps);

    auto conCfg = cfg;
    conCfg.scheduler = contender;
    conCfg.parallelJobs = opts.jobs;
    SimTiming con =
        contender == sim::SimConfig::Scheduler::ReadyList
            ? ready
            : timeSim(res.graph, kernel, conCfg, reps);

    if (con.cycles != ready.cycles)
        fatal("scheduler divergence: %s %lld cycles, "
              "ready %lld cycles",
              sched.c_str(), static_cast<long long>(con.cycles),
              static_cast<long long>(ready.cycles));
    // The parallel engine's contract is stronger than matching
    // cycle counts: every stats field must be bit-identical.
    if (sched == "parallel" &&
        !sim::statsEqual(con.stats, ready.stats))
        fatal("parallel scheduler stats diverge from the "
              "ready-list oracle on %s", kernel.name.c_str());

    // The certified static bound must hold on the reference run —
    // the same gate executeOnFabric applies to mapped runs, here
    // covering the unmapped bench configs (and, via bit-identity,
    // every scheduler at once).
    std::shared_ptr<const dfg::Graph> hold(
        std::shared_ptr<const dfg::Graph>(), &res.graph);
    sim::Program boundProg(hold, refCfg);
    sim::BoundReport::Evaluation boundEval =
        analysis::computeBound(boundProg).evaluate(ready.stats);
    if (!ready.deadlocked && !boundEval.holds(ready.cycles))
        fatal("%s: simulated %lld cycles beats the certified "
              "static bound of %lld cycles — analyzer and "
              "simulator disagree",
              kernel.name.c_str(),
              static_cast<long long>(ready.cycles),
              static_cast<long long>(boundEval.certifiedCycles));

    // Historical orientation: the default report shows how much
    // faster ready-list is than dense-scan (speedup = dense/ready);
    // for an explicit contender the speedup is over the ready-list
    // reference (ready/contender).
    double speedup;
    const char *conKey;
    if (sched == "dense") {
        speedup = ready.ms > 0 ? con.ms / ready.ms : 0;
        conKey = "dense_ms";
    } else {
        speedup = con.ms > 0 ? ready.ms / con.ms : 0;
        conKey = sched == "parallel" ? "parallel_ms" : "ready_ms";
    }
    if (opts.json) {
        sim::Report r;
        r.add("schema_version", sim::kJsonSchemaVersion)
            .add("kernel", kernel.name)
            .add("nodes", res.graph.size())
            .add("cycles", ready.cycles)
            .add("bound_cycles", boundEval.certifiedCycles)
            .add("scheduler", sched);
        if (sched != "ready")
            r.add(conKey, con.ms);
        r.add("ready_ms", ready.ms).add("speedup", speedup);
        if (sched == "parallel")
            r.add("jobs", opts.jobs)
                .add("identical", true);
        std::printf("%s\n", r.toJson().c_str());
    } else if (sched == "dense") {
        std::printf("%s: %d operators, %lld cycles\n"
                    "  dense-scan  %9.3f ms\n"
                    "  ready-list  %9.3f ms  (%.2fx speedup)\n",
                    kernel.name.c_str(), res.graph.size(),
                    static_cast<long long>(ready.cycles), con.ms,
                    ready.ms, speedup);
    } else {
        std::printf("%s: %d operators, %lld cycles\n"
                    "  ready-list  %9.3f ms\n"
                    "  %-10s  %9.3f ms  (%.2fx speedup%s)\n",
                    kernel.name.c_str(), res.graph.size(),
                    static_cast<long long>(ready.cycles), ready.ms,
                    sched.c_str(), con.ms, speedup,
                    sched == "parallel" ? ", bit-identical" : "");
    }
    return 0;
}

int
cmdTrace(const Options &opts, const ParseResult &parsed)
{
    auto kernel = buildKernel(opts, parsed);
    auto res = compileForSim(opts, kernel);
    auto cfg = res.simConfig;
    cfg.bufferDepth = opts.depth;

    trace::ChromeTraceSink chrome;
    trace::StallTimelineSink stalls(opts.interval);
    trace::ObserverList sinks;
    sinks.add(&chrome);
    sinks.add(&stalls);
    cfg.observer = &sinks;

    auto mem = kernel.memory;
    mem.resize(static_cast<size_t>(kernel.prog.memWords));
    auto r = sim::simulate(res.graph, mem, cfg);
    if (r.deadlocked) {
        // Still write the trace — it is exactly what you want for
        // diagnosing the deadlock — but fail the invocation.
        warn("simulation did not retire cleanly: %s",
             r.diagnostic.c_str());
    }

    // Reconcile the event stream against SimStats before trusting
    // the trace (tested in tests/test_trace.cc, re-checked on every
    // invocation because it is cheap and load-bearing).
    int64_t totalFires = 0;
    for (int64_t f : r.stats.nodeFires)
        totalFires += f;
    int64_t expectInstants = r.stats.dispatchSpawns +
                             r.stats.dispatchConts +
                             r.stats.memLoads + r.stats.memStores;
    if (chrome.spanCount() != totalFires ||
        chrome.instantCount() != expectInstants) {
        fatal("trace diverges from SimStats: %lld spans vs %lld "
              "fires, %lld instants vs %lld dispatch+mem events",
              static_cast<long long>(chrome.spanCount()),
              static_cast<long long>(totalFires),
              static_cast<long long>(chrome.instantCount()),
              static_cast<long long>(expectInstants));
    }

    std::string outFile = opts.out.empty()
                              ? kernel.name + ".trace.json"
                              : opts.out;
    {
        std::ofstream f(outFile);
        if (!f)
            fatal("cannot write '%s'", outFile.c_str());
        chrome.write(f);
    }
    if (!opts.stallsOut.empty()) {
        std::ofstream f(opts.stallsOut);
        if (!f)
            fatal("cannot write '%s'", opts.stallsOut.c_str());
        stalls.writeJson(f);
    }

    // A watchdog expiry is not a deadlock: the fabric was still
    // making progress when maxCycles elapsed. Report (and exit)
    // distinctly so callers never mistake a slow kernel for a
    // certified deadlock.
    const char *status = !r.deadlocked        ? "ok"
                         : r.watchdogExpired ? "watchdog"
                                             : "deadlock";
    sim::Report report = sim::reportFor(r.stats);
    report.add("trace_file", outFile)
        .add("spans", chrome.spanCount())
        .add("instants", chrome.instantCount())
        .add("status", status)
        .add("deadlocked", r.deadlocked && !r.watchdogExpired)
        .add("watchdog_expired", r.watchdogExpired);
    if (opts.json) {
        report.add("schema_version", sim::kJsonSchemaVersion);
        std::printf("%s\n", report.toJson().c_str());
    } else {
        std::printf("%s\n", report.toString().c_str());
        std::printf("wrote %s (%lld spans, %lld instants); open "
                    "in chrome://tracing or ui.perfetto.dev\n\n",
                    outFile.c_str(),
                    static_cast<long long>(chrome.spanCount()),
                    static_cast<long long>(chrome.instantCount()));
        std::printf("%s", stalls.toString().c_str());
    }
    // 0 = clean, 1 = quiesced deadlock, 4 = watchdog expiry.
    if (!r.deadlocked)
        return 0;
    return r.watchdogExpired ? 4 : 1;
}

/**
 * `pstool lint` — the static analyzer as a standalone gate. Compiles
 * the kernel, runs the graph passes (PS-S/D/B rules), maps it and
 * runs the placement rules (PS-P, unless --no-map), and prints every
 * diagnostic plus the verdict summary. With --cross-check it also
 * simulates: a graph the analyzer certified deadlock-free must
 * retire cleanly, or the invocation fails with a disagreement
 * diagnosis. Exit status is 0 only when the report is clean (and,
 * when cross-checking, the models agree).
 */
int
cmdLint(const Options &opts, const ParseResult &parsed)
{
    auto kernel = buildKernel(opts, parsed);
    compiler::CompileOptions copts;
    copts.variant = opts.variant;
    copts.unrollFactor = opts.unroll;
    copts.bufferDepth = opts.depth;
    auto res = compiler::compileProgram(kernel.prog, kernel.liveIns,
                                        copts);

    analysis::AnalysisOptions aopts;
    aopts.bufferDepth = opts.depth;
    analysis::AnalysisReport report =
        analysis::analyzeGraph(res.graph, aopts);

    fabric::Fabric fab(opts.topo);
    if (!opts.noMap) {
        compiler::ShareGroups shareGroups;
        if (opts.timeMultiplex) {
            shareGroups = compiler::planTimeMultiplexing(
                res.graph, fab.config());
        }
        mapper::MapperOptions mopts;
        mopts.shareGroups = shareGroups;
        mapper::Mapping mapping;
        if (opts.topo.singleTile()) {
            mapping = mapper::mapGraph(res.graph, fab, mopts);
        } else {
            mapper::TiledMapping tm = mapper::mapGraphTiled(
                res.graph, opts.topo, mopts);
            mapping = std::move(tm.merged);
        }
        if (!mapping.success) {
            if (opts.json) {
                sim::Report r;
                r.add("schema_version", sim::kJsonSchemaVersion)
                    .add("kernel", kernel.name)
                    .add("variant",
                         compiler::archVariantName(opts.variant))
                    .add("status", "error")
                    .add("error", mapping.error);
                std::printf("%s\n", r.toJson().c_str());
            } else {
                std::fprintf(
                    stderr,
                    "%s does not map onto the fabric (%s): %s\n",
                    kernel.name.c_str(),
                    compiler::archVariantName(opts.variant),
                    mapping.error.c_str());
            }
            return 1;
        }
        analysis::PlacementLintOptions popts;
        popts.shareGroups = shareGroups;
        analysis::lintPlacement(res.graph, fab, mapping, report,
                                popts);
    }

    bool simDeadlocked = false;
    bool simWatchdog = false;
    bool disagree = false;
    int64_t boundCycles = 0;
    int64_t simCycles = 0;
    bool boundHolds = true;
    if (opts.crossCheck) {
        auto cfg = res.simConfig;
        cfg.bufferDepth = opts.depth;
        auto mem = kernel.memory;
        mem.resize(std::max(
            mem.size(),
            static_cast<size_t>(kernel.prog.memWords)));
        auto r = sim::simulate(res.graph, mem, cfg);
        // Watchdog expiry means the fabric was still live —
        // termination is input-dependent, outside what static
        // certification claims — so it is neither a deadlock
        // verdict nor a disagreement.
        simWatchdog = r.watchdogExpired;
        simDeadlocked = r.deadlocked && !r.watchdogExpired;
        disagree = report.deadlockFree && simDeadlocked;
        if (disagree && !opts.json) {
            std::fprintf(stderr,
                         "cross-check: analyzer certified the graph "
                         "deadlock-free but the simulator "
                         "deadlocked:\n%s\n",
                         r.diagnostic.c_str());
        }
        // The certified throughput bound rides the same
        // cross-check: a clean retire must never beat the static
        // cycle floor. (A deadlocked or watchdogged run stopped
        // before completion, so the completion bound says nothing
        // about its cycle count.)
        if (!r.deadlocked) {
            std::shared_ptr<const dfg::Graph> hold(
                std::shared_ptr<const dfg::Graph>(), &res.graph);
            sim::Program boundProg(hold, cfg);
            sim::BoundReport::Evaluation bev =
                analysis::computeBound(boundProg)
                    .evaluate(r.stats);
            boundCycles = bev.certifiedCycles;
            simCycles = r.stats.cycles;
            boundHolds = bev.holds(r.stats.cycles);
            if (!boundHolds) {
                disagree = true;
                if (!opts.json) {
                    std::fprintf(
                        stderr,
                        "cross-check: simulated %lld cycles beats "
                        "the certified static bound of %lld "
                        "cycles\n",
                        static_cast<long long>(r.stats.cycles),
                        static_cast<long long>(boundCycles));
                }
            }
        }
    }

    if (opts.json) {
        std::printf("{\"schema_version\":%d,"
                    "\"kernel\":\"%s\",\"variant\":\"%s\","
                    "\"operators\":%d,\"crossChecked\":%s,"
                    "\"simDeadlocked\":%s,"
                    "\"simWatchdogExpired\":%s,"
                    "\"boundCycles\":%lld,\"boundHolds\":%s,"
                    "\"agree\":%s,"
                    "\"analysis\":%s}\n",
                    sim::kJsonSchemaVersion,
                    kernel.name.c_str(),
                    compiler::archVariantName(opts.variant),
                    res.graph.size(),
                    opts.crossCheck ? "true" : "false",
                    simDeadlocked ? "true" : "false",
                    simWatchdog ? "true" : "false",
                    static_cast<long long>(boundCycles),
                    boundHolds ? "true" : "false",
                    disagree ? "false" : "true",
                    report.toJson(res.graph).c_str());
    } else {
        std::printf("%s on %s: %d operator(s)\n%s\n",
                    kernel.name.c_str(),
                    compiler::archVariantName(opts.variant),
                    res.graph.size(),
                    report.toString(res.graph).c_str());
        if (opts.crossCheck) {
            std::printf("cross-check: simulator %s; %s\n",
                        simDeadlocked
                            ? "deadlocked"
                            : simWatchdog
                                  ? "hit the cycle watchdog"
                                  : "retired cleanly",
                        disagree ? "DISAGREES with the analyzer"
                                 : "agrees with the analyzer");
            if (!simDeadlocked && !simWatchdog) {
                std::printf("cross-check: certified bound %lld <= "
                            "simulated %lld cycles: %s\n",
                            static_cast<long long>(boundCycles),
                            static_cast<long long>(simCycles),
                            boundHolds ? "holds" : "VIOLATED");
            }
        }
    }
    return (report.ok() && !disagree) ? 0 : 1;
}

/**
 * `pstool bound` — the static throughput-bound analysis (the PS-T
 * rule family's quantitative half) as a standalone report. Runs the
 * kernel through the standard prepare+execute pipeline, so the bound
 * is built and evaluated exactly the way executeOnFabric
 * cross-checks it on every analyzed run, then renders every bound
 * term with its evaluated cycle floor and names the binding
 * constraint plus the hint for lifting it. Tightness is
 * bound/simulated: 1.0 means the bound explains every simulated
 * cycle. Exit is nonzero when the run fails — including when the
 * simulation beats the certified bound, which executeOnFabric
 * reports as an analyzer/simulator disagreement.
 */
int
cmdBound(const Options &opts, const ParseResult &parsed)
{
    auto kernel = buildKernel(opts, parsed);
    RunConfig cfg;
    cfg.variant = opts.variant;
    cfg.sim.bufferDepth = opts.depth;
    cfg.unrollFactor = opts.unroll;
    cfg.allowTimeMultiplex = opts.timeMultiplex;
    applyFabric(opts.topo, cfg);
    std::string err;
    FabricRun run = runOnFabric(kernel, cfg, &err);
    if (!err.empty()) {
        if (opts.json) {
            sim::Report r;
            r.add("schema_version", sim::kJsonSchemaVersion)
                .add("kernel", kernel.name)
                .add("status", "error")
                .add("error", err);
            std::printf("%s\n", r.toJson().c_str());
        } else {
            std::fprintf(stderr, "%s: %s\n", kernel.name.c_str(),
                         err.c_str());
        }
        return 1;
    }

    const sim::BoundReport &bound = run.bound;
    const sim::BoundReport::Evaluation &ev = run.boundEval;
    const int64_t simCycles = run.cycles();
    const double tightness =
        simCycles > 0 ? static_cast<double>(ev.certifiedCycles) /
                            static_cast<double>(simCycles)
                      : 0.0;
    const sim::BoundTerm *bind =
        ev.binding >= 0
            ? &bound.terms[static_cast<size_t>(ev.binding)]
            : nullptr;

    if (opts.json) {
        std::ostringstream out;
        trace::JsonWriter w(out);
        w.beginObject();
        w.key("schema_version").value(sim::kJsonSchemaVersion);
        w.key("kernel").value(kernel.name);
        w.key("variant")
            .value(compiler::archVariantName(opts.variant));
        w.key("bound_cycles").value(ev.certifiedCycles);
        w.key("advisory_cycles").value(ev.advisoryCycles);
        w.key("sim_cycles").value(simCycles);
        w.key("tightness").value(tightness);
        w.key("holds").value(ev.holds(simCycles));
        if (bind) {
            w.key("binding");
            w.beginObject();
            w.key("kind").value(sim::boundTermKindName(bind->kind));
            w.key("node").value(
                ev.perTerm[static_cast<size_t>(ev.binding)].node);
            w.key("detail").value(bind->detail);
            w.key("hint").value(bind->hint);
            w.endObject();
        }
        w.key("terms");
        w.beginArray();
        for (size_t i = 0; i < bound.terms.size(); i++) {
            const sim::BoundTerm &t = bound.terms[i];
            w.beginObject();
            w.key("kind").value(sim::boundTermKindName(t.kind));
            w.key("certified").value(t.certified);
            w.key("cycles").value(ev.perTerm[i].cycles);
            w.key("node").value(ev.perTerm[i].node);
            w.key("binding")
                .value(static_cast<int>(i) == ev.binding);
            w.key("detail").value(t.detail);
            w.key("hint").value(t.hint);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        std::printf("%s\n", out.str().c_str());
    } else {
        std::printf("%s on %s: certified bound %lld cycles, "
                    "simulated %lld (tightness %.0f%%)\n",
                    kernel.name.c_str(),
                    compiler::archVariantName(opts.variant),
                    static_cast<long long>(ev.certifiedCycles),
                    static_cast<long long>(simCycles),
                    tightness * 100);
        if (bind) {
            std::printf("binding constraint (%s): %s\n  hint: %s\n",
                        sim::boundTermKindName(bind->kind),
                        bind->detail.c_str(), bind->hint.c_str());
        }
        for (size_t i = 0; i < bound.terms.size(); i++) {
            const sim::BoundTerm &t = bound.terms[i];
            std::printf("  %c %-11s %8lld%s  %s\n",
                        static_cast<int>(i) == ev.binding ? '*'
                                                          : ' ',
                        sim::boundTermKindName(t.kind),
                        static_cast<long long>(ev.perTerm[i].cycles),
                        t.certified ? "" : " (advisory)",
                        t.detail.c_str());
        }
    }
    return 0;
}

/**
 * `pstool map` — the portfolio mapper as a standalone gate. Compiles
 * the kernel, maps it with the requested portfolio width and thread
 * count, and reports placement quality plus wall-clock. The emitted
 * mapping is re-checked with the placement lint (PS-P rules) before
 * the command reports success, so a clean exit certifies both "it
 * maps" and "the placement is legal". On failure the structured
 * error names the implicated nodes.
 */
int
cmdMap(const Options &opts, const ParseResult &parsed)
{
    auto kernel = buildKernel(opts, parsed);
    compiler::CompileOptions copts;
    copts.variant = opts.variant;
    copts.unrollFactor = opts.unroll;
    copts.bufferDepth = opts.depth;
    auto res = compiler::compileProgram(kernel.prog, kernel.liveIns,
                                        copts);

    fabric::Fabric fab(opts.topo);
    compiler::ShareGroups shareGroups;
    if (opts.timeMultiplex) {
        shareGroups =
            compiler::planTimeMultiplexing(res.graph, fab.config());
    }

    mapper::MapperOptions mopts;
    mopts.rngSeed = opts.seed;
    mopts.portfolioSeeds = opts.seeds;
    mopts.jobs = opts.jobs;
    mopts.annealIterations = opts.iterations;
    mopts.shareGroups = shareGroups;

    const bool tiled = !opts.topo.singleTile();
    int64_t cutEdges = 0;
    int interTileLoadMax = 0;
    int partitionAttempts = 0;
    auto t0 = std::chrono::steady_clock::now();
    mapper::Mapping mapping;
    if (tiled) {
        mapper::TiledMapping tm =
            mapper::mapGraphTiled(res.graph, opts.topo, mopts);
        mapping = std::move(tm.merged);
        cutEdges = tm.cutEdges;
        interTileLoadMax = tm.interTileLoadMax;
        partitionAttempts = tm.attempts;
    } else {
        mapping = mapper::mapGraph(res.graph, fab, mopts);
    }
    double mapMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

    bool lintClean = false;
    std::string lintText;
    if (mapping.success) {
        analysis::AnalysisReport report;
        analysis::PlacementLintOptions popts;
        popts.shareGroups = shareGroups;
        analysis::lintPlacement(res.graph, fab, mapping, report,
                                popts);
        lintClean = report.ok();
        if (!lintClean)
            lintText = report.toString(res.graph);
    }

    if (opts.json) {
        sim::Report r;
        r.add("schema_version", sim::kJsonSchemaVersion)
            .add("kernel", kernel.name)
            .add("variant", compiler::archVariantName(opts.variant))
            .add("operators", res.graph.size())
            .add("seeds", opts.seeds)
            .add("jobs", opts.jobs)
            .add("success", mapping.success)
            .add("lint_clean", lintClean)
            .add("cost", mapping.cost)
            .add("wirelength", mapping.totalWireLength)
            .add("overflow", mapping.congestionOverflow)
            .add("max_link_load", mapping.maxLinkLoad)
            .add("avg_hops", mapping.avgHops)
            .add("winning_seed", mapping.winningSeed)
            .add("early_exits", mapping.seedsEarlyExited)
            .add("seeds_halved", mapping.seedsHalved)
            .add("map_ms", mapMs);
        if (tiled) {
            r.add("tiles_x", opts.topo.tilesX)
                .add("tiles_y", opts.topo.tilesY)
                .add("cut_edges", cutEdges)
                .add("inter_tile_load_max", interTileLoadMax)
                .add("inter_tile_capacity",
                     opts.topo.interTileCapacity)
                .add("partition_attempts", partitionAttempts);
        }
        if (!mapping.success)
            r.add("error", mapping.error)
                .add("failed_nodes",
                     static_cast<int64_t>(
                         mapping.failedNodes.size()));
        std::printf("%s\n", r.toJson().c_str());
    } else if (mapping.success) {
        std::printf(
            "%s on %s: %d operator(s), %d seed(s) x %d job(s)\n"
            "  cost %.1f (wirelength %lld, overflow %lld), max "
            "link load %d/%d\n"
            "  avg hops %.3f, winning seed %d, %d early exit(s), "
            "%d halved, %.2f ms\n"
            "  placement lint: %s\n",
            kernel.name.c_str(),
            compiler::archVariantName(opts.variant),
            res.graph.size(), opts.seeds, opts.jobs, mapping.cost,
            static_cast<long long>(mapping.totalWireLength),
            static_cast<long long>(mapping.congestionOverflow),
            mapping.maxLinkLoad, fab.config().linkCapacity,
            mapping.avgHops,
            mapping.winningSeed, mapping.seedsEarlyExited,
            mapping.seedsHalved, mapMs,
            lintClean ? "clean" : "DIRTY");
        if (tiled) {
            std::printf(
                "  tiles %dx%d: %lld cut edge(s), boundary load "
                "%d/%d, %d partition attempt(s)\n",
                opts.topo.tilesX, opts.topo.tilesY,
                static_cast<long long>(cutEdges), interTileLoadMax,
                opts.topo.interTileCapacity, partitionAttempts);
        }
        if (!lintClean)
            std::printf("%s\n", lintText.c_str());
    } else {
        std::printf("%s does not map onto the fabric: %s\n",
                    kernel.name.c_str(), mapping.error.c_str());
        if (!mapping.failedNodes.empty()) {
            std::printf("implicated nodes:");
            for (dfg::NodeId id : mapping.failedNodes)
                std::printf(" %d", id);
            std::printf("\n");
        }
    }
    return (mapping.success && lintClean) ? 0 : 1;
}

/**
 * `pstool figures` — the whole evaluation in one process. Every
 * figure renders from src/figures on a shared runner::Runner, so
 * simulations common to several figures run once, mapper placements
 * memoize (optionally on disk via --cache-dir), and independent
 * runs execute concurrently (--jobs). Figure text is byte-identical
 * to the standalone bench binaries for every job count and cache
 * state.
 */
int
cmdFigures(int argc, char **argv)
{
    runner::RunnerOptions ropts;
    figures::FigureOptions fopts;
    std::string outDir;
    std::vector<std::string> only;
    bool json = false;
    for (int i = 2; i < argc; i++) {
        std::string arg = argv[i];
        if (arg.rfind("--jobs=", 0) == 0) {
            ropts.jobs = std::atoi(arg.c_str() + 7);
        } else if (arg == "--smoke") {
            fopts.smoke = true;
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            ropts.cacheDir = arg.substr(12);
        } else if (arg.rfind("--out-dir=", 0) == 0) {
            outDir = arg.substr(10);
        } else if (arg.rfind("--only=", 0) == 0) {
            std::stringstream ss(arg.substr(7));
            std::string id;
            while (std::getline(ss, id, ','))
                only.push_back(id);
        } else if (arg == "--no-memo") {
            ropts.memoize = false;
        } else if (arg == "--json") {
            json = true;
        } else {
            usage();
        }
    }
    for (const auto &id : only) {
        if (!figures::findFigure(id))
            fatal("unknown figure '%s'", id.c_str());
    }
    if (!outDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(outDir, ec);
        if (ec)
            fatal("cannot create '%s': %s", outDir.c_str(),
                  ec.message().c_str());
    }

    setQuiet(true);
    runner::Runner runner(ropts);
    figures::FigureSet set(runner, fopts);

    auto t0 = std::chrono::steady_clock::now();
    if (only.empty()) {
        // Rendering everything: enqueue the full grid up front so
        // the pool is saturated from the start.
        set.prefetch();
    }
    int rendered = 0;
    for (const auto &fig : figures::allFigures()) {
        if (!only.empty() &&
            std::find(only.begin(), only.end(), fig.id) ==
                only.end()) {
            continue;
        }
        std::string text = fig.render(set);
        if (!json) {
            if (rendered > 0)
                std::printf("\n");
            std::fputs(text.c_str(), stdout);
        }
        if (!outDir.empty()) {
            std::string path = outDir + "/" + fig.id + ".out";
            std::ofstream f(path);
            if (!f)
                fatal("cannot write '%s'", path.c_str());
            f << text;
        }
        rendered++;
    }
    double wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

    auto stats = runner.cache().stats();
    if (json) {
        sim::Report r;
        r.add("schema_version", sim::kJsonSchemaVersion)
            .add("figures", rendered)
            .add("jobs", runner.pool().threadCount())
            .add("smoke", fopts.smoke)
            .add("wall_ms", wallMs)
            .add("compile_hits", stats.compileHits)
            .add("compile_computes", stats.compileComputes)
            .add("map_hits", stats.mapHits)
            .add("map_disk_hits", stats.mapDiskHits)
            .add("map_computes", stats.mapComputes)
            .add("prepared_hits", stats.preparedHits)
            .add("prepared_computes", stats.preparedComputes)
            .add("run_dedup_hits", runner.dedupHits());
        std::printf("%s\n", r.toJson().c_str());
    } else {
        std::fprintf(
            stderr,
            "\nrendered %d figure(s) in %.1f s with %d job(s); "
            "compile %lld hit/%lld computed, mapping %lld hit "
            "(%lld from disk)/%lld computed, %lld duplicate runs "
            "shared\n",
            rendered, wallMs / 1e3, runner.pool().threadCount(),
            static_cast<long long>(stats.compileHits),
            static_cast<long long>(stats.compileComputes),
            static_cast<long long>(stats.mapHits +
                                   stats.mapDiskHits),
            static_cast<long long>(stats.mapDiskHits),
            static_cast<long long>(stats.mapComputes),
            static_cast<long long>(runner.dedupHits()));
    }
    return 0;
}

/**
 * `pstool bench-tiles` — the multi-tile scaling benchmark. Builds
 * @c --shards data-parallel SpMV shards (one CSR structure, fresh
 * dense vectors), then runs the batch through 1×1, 1×2, and 2×2
 * arrangements of the base tile via core runBatch: one mapping
 * prepared once, every tile executing its shard queue on its own
 * thread with a warmed ExecutionState. Emits the scaling curve as
 * JSON (schema_version, per-arrangement total/makespan cycles and
 * modeled speedup) to --out and stdout. `modeled_speedup` of an
 * arrangement is exactly its throughput gain over the single tile,
 * since per-shard cycles are arrangement-invariant.
 */
int
cmdBenchTiles(int argc, char **argv)
{
    fabric::Topology base;
    int shards = 8;
    int size = 64;
    double sparsity = 0.2;
    uint64_t seed = 1;
    std::string outFile = "BENCH_tiles.json";
    for (int i = 2; i < argc; i++) {
        std::string arg = argv[i];
        if (arg.rfind("--fabric=", 0) == 0) {
            parseFabricArg(arg.substr(9), base);
        } else if (arg.rfind("--shards=", 0) == 0) {
            shards = std::atoi(arg.c_str() + 9);
        } else if (arg.rfind("--n=", 0) == 0) {
            size = std::atoi(arg.c_str() + 4);
        } else if (arg.rfind("--sparsity=", 0) == 0) {
            sparsity = std::atof(arg.c_str() + 11);
        } else if (arg.rfind("--seed=", 0) == 0) {
            seed = static_cast<uint64_t>(
                std::atoll(arg.c_str() + 7));
        } else if (arg.rfind("--out=", 0) == 0) {
            outFile = arg.substr(6);
        } else {
            usage();
        }
    }
    if (shards < 1)
        fatal("bench-tiles: --shards must be >= 1");

    setQuiet(true);
    auto shardSet =
        workloads::makeSpmvShards(size, sparsity, seed, shards);

    struct Arrangement
    {
        int tx;
        int ty;
    };
    static constexpr Arrangement kArrangements[] = {
        {1, 1}, {1, 2}, {2, 2}};

    std::ostringstream out;
    trace::JsonWriter w(out);
    w.beginObject();
    w.key("schema_version").value(sim::kJsonSchemaVersion);
    w.key("kernel").value(shardSet.front().name);
    w.key("shards").value(shards);
    w.key("tile_width").value(base.tile.width);
    w.key("tile_height").value(base.tile.height);
    w.key("inter_tile_latency").value(base.interTileLatency);
    w.key("configs");
    w.beginArray();
    for (const Arrangement &a : kArrangements) {
        fabric::Topology topo = base;
        topo.tilesX = a.tx;
        topo.tilesY = a.ty;
        RunConfig cfg;
        applyFabric(topo, cfg);
        cfg.quiet = true;
        std::string err;
        BatchRun batch = runBatch(shardSet, cfg, &err);
        if (!batch.success) {
            std::fprintf(stderr, "bench-tiles %dx%d: %s\n", a.tx,
                         a.ty, err.c_str());
            return 1;
        }
        // The stealing schedule must never lose to the legacy
        // round-robin deal on the same measured cycles.
        if (batch.modeledSpeedup + 1e-9 < batch.roundRobinSpeedup) {
            std::fprintf(stderr,
                         "bench-tiles %dx%d: modeled speedup %.4f "
                         "regressed below round-robin %.4f\n",
                         a.tx, a.ty, batch.modeledSpeedup,
                         batch.roundRobinSpeedup);
            return 1;
        }
        w.beginObject();
        w.key("tiles_x").value(a.tx);
        w.key("tiles_y").value(a.ty);
        w.key("tiles").value(batch.tiles);
        w.key("total_cycles").value(batch.totalCycles);
        w.key("makespan_cycles").value(batch.makespanCycles);
        w.key("modeled_speedup").value(batch.modeledSpeedup);
        w.key("round_robin_speedup").value(batch.roundRobinSpeedup);
        w.key("seconds").value(batch.seconds);
        w.key("wall_s").value(batch.wallSeconds);
        w.endObject();
        std::fprintf(stderr,
                     "bench-tiles %dx%d: %lld shard(s), makespan "
                     "%lld cycles, %.2fx (round-robin %.2fx)\n",
                     a.tx, a.ty, static_cast<long long>(shards),
                     static_cast<long long>(batch.makespanCycles),
                     batch.modeledSpeedup,
                     batch.roundRobinSpeedup);
    }
    w.endArray();
    w.endObject();

    std::ofstream f(outFile);
    if (!f)
        fatal("cannot write '%s'", outFile.c_str());
    f << out.str() << "\n";
    std::printf("%s\n", out.str().c_str());
    return 0;
}

/**
 * `pstool bench-sim-par` — the parallel-scheduler benchmark. Times
 * the ParallelRegions engine against the ReadyList oracle on the
 * paper-scale kernels over a job-count sweep, verifies bit-identical
 * SimStats at every job count, and writes BENCH_sim_par.json. The
 * shared timeSim harness (same warmup + best-of-reps policy as
 * bench-sim) keeps the numbers comparable. Region count (--jobs
 * sweep) is a semantic-free knob; worker threads are capped at
 * hardware concurrency (parallelThreads=0), so on a single-core host
 * the reported speedup is pure engine efficiency. Exit is nonzero if
 * any run diverges from the oracle.
 */
int
cmdBenchSimPar(int argc, char **argv)
{
    bool smoke = false;
    int reps = 2;
    std::string outFile = "BENCH_sim_par.json";
    for (int i = 2; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--reps=", 0) == 0) {
            reps = std::atoi(arg.c_str() + 7);
        } else if (arg.rfind("--out=", 0) == 0) {
            outFile = arg.substr(6);
        } else {
            usage();
        }
    }
    setQuiet(true);

    struct Case
    {
        std::string name;
        workloads::KernelInstance kernel;
        int unroll;
    };
    // The _uN suffix is the spatial unroll factor, as in
    // BENCH_sim_sched.json. Larger unrolls grow the mapped graph —
    // the oracle's per-cycle scan cost grows with the live-node
    // count while the parallel engine's dormancy tracking keeps its
    // working set small, so the speedup widens with kernel size.
    std::vector<Case> cases;
    cases.push_back(
        {"spmspmd_u8", workloads::makeSpMSpMd(64, 0.89, 4), 8});
    if (!smoke) {
        cases.push_back(
            {"spmspmd_u32", workloads::makeSpMSpMd(64, 0.89, 4),
             32});
        auto dnn = workloads::buildDnn();
        cases.push_back(
            {"dnn_layer0_u8",
             workloads::makeSpMSpVdFrom(dnn.weights[0], dnn.input,
                                        "dnn_layer0"),
             8});
    }
    const std::vector<int> jobSweep =
        smoke ? std::vector<int>{1, 4}
              : std::vector<int>{1, 2, 4, 8};
    if (smoke)
        reps = 1;

    constexpr double kTargetSpeedup = 3.0;
    bool allIdentical = true;
    bool targetMet = false;
    std::ostringstream out;
    trace::JsonWriter w(out);
    w.beginObject();
    w.key("schema_version").value(sim::kJsonSchemaVersion);
    w.key("benchmark").value("sim_parallel");
    w.key("host_threads")
        .value(static_cast<int64_t>(
            std::thread::hardware_concurrency()));
    w.key("kernels");
    w.beginArray();
    for (const Case &c : cases) {
        compiler::CompileOptions copts;
        copts.unrollFactor = c.unroll;
        auto res = compiler::compileProgram(c.kernel.prog,
                                            c.kernel.liveIns, copts);
        auto cfg = res.simConfig;
        cfg.maxCycles = 8000000;
        cfg.scheduler = sim::SimConfig::Scheduler::ReadyList;
        SimTiming ready = timeSim(res.graph, c.kernel, cfg, reps);

        w.beginObject();
        w.key("kernel").value(c.name);
        w.key("unroll").value(c.unroll);
        w.key("nodes").value(res.graph.size());
        w.key("cycles").value(ready.cycles);
        w.key("ready_ms").value(ready.ms);
        w.key("runs");
        w.beginArray();
        for (int jobs : jobSweep) {
            cfg.scheduler =
                sim::SimConfig::Scheduler::ParallelRegions;
            cfg.parallelJobs = jobs;
            SimTiming par = timeSim(res.graph, c.kernel, cfg, reps);
            bool identical =
                sim::statsEqual(par.stats, ready.stats) &&
                par.deadlocked == ready.deadlocked;
            allIdentical &= identical;
            double speedup = par.ms > 0 ? ready.ms / par.ms : 0;
            if (identical && jobs >= 4 &&
                speedup >= kTargetSpeedup)
                targetMet = true;
            w.beginObject();
            w.key("jobs").value(jobs);
            w.key("parallel_ms").value(par.ms);
            w.key("speedup").value(speedup);
            w.key("identical").value(identical);
            w.endObject();
            std::fprintf(stderr,
                         "bench-sim-par %-13s jobs=%d  ready=%9.3f "
                         "ms  parallel=%9.3f ms  %.2fx  %s\n",
                         c.name.c_str(), jobs, ready.ms, par.ms,
                         speedup,
                         identical ? "bit-identical" : "DIVERGED");
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("target_speedup").value(kTargetSpeedup);
    w.key("target_met").value(targetMet);
    w.key("all_identical").value(allIdentical);
    w.endObject();

    std::ofstream f(outFile);
    if (!f)
        fatal("cannot write '%s'", outFile.c_str());
    f << out.str() << "\n";
    std::printf("%s\n", out.str().c_str());
    return allIdentical ? 0 : 1;
}

/**
 * `pstool serve` — a resident simulation service (runner/serve.hh):
 * one JSON request per stdin line, one JSON response per stdout
 * line, executed concurrently on a bounded thread-pool queue with
 * content dedup onto the shared MemoCache. `--bench=N` runs the
 * built-in load generator instead and writes the throughput/latency
 * record to --bench-out (default BENCH_serve.json).
 */
int
cmdServe(int argc, char **argv)
{
    runner::ServeOptions sopts;
    int bench = 0;
    std::string benchOut = "BENCH_serve.json";
    for (int i = 2; i < argc; i++) {
        std::string arg = argv[i];
        if (arg.rfind("--jobs=", 0) == 0) {
            sopts.jobs = std::atoi(arg.c_str() + 7);
        } else if (arg.rfind("--queue=", 0) == 0) {
            sopts.maxQueue = std::atoi(arg.c_str() + 8);
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            sopts.cacheDir = arg.substr(12);
        } else if (arg.rfind("--fabric=", 0) == 0) {
            parseFabricArg(arg.substr(9), sopts.topology);
        } else if (arg.rfind("--bench=", 0) == 0) {
            bench = std::atoi(arg.c_str() + 8);
        } else if (arg.rfind("--bench-out=", 0) == 0) {
            benchOut = arg.substr(12);
        } else {
            usage();
        }
    }
    if (bench > 0) {
        std::string json = runner::runServeBench(
            sopts, runner::ServeBenchOptions{bench});
        std::ofstream f(benchOut);
        if (!f)
            fatal("cannot write '%s'", benchOut.c_str());
        f << json << "\n";
        std::printf("%s\n", json.c_str());
        return 0;
    }
    runner::ServeServer server(sopts);
    int rc = runner::serveLoop(server, std::cin, std::cout);
    runner::ServeStats st = server.stats();
    std::fprintf(
        stderr,
        "serve: %lld received, %lld executed, %lld dedup hits, "
        "%lld rejected, %lld bad, peak queue %lld\n",
        static_cast<long long>(st.received),
        static_cast<long long>(st.completed),
        static_cast<long long>(st.dedupHits),
        static_cast<long long>(st.rejected),
        static_cast<long long>(st.badRequests),
        static_cast<long long>(st.peakQueued));
    return rc;
}

int
cmdScalar(const Options &opts, const ParseResult &parsed)
{
    auto kernel = buildKernel(opts, parsed);
    ScalarRun run = runOnScalar(kernel);
    std::printf("%s on %s: %.0f cycles, %.1f pJ, %lld instrs\n",
                kernel.name.c_str(),
                scalar::riptideScalarProfile().name.c_str(),
                run.cycles, run.energy.totalPj(),
                static_cast<long long>(run.counts.total()));
    dumpArrays(opts, parsed, run.memory);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // `figures`, `serve`, `bench-tiles`, and `bench-sim-par` take
    // no .sir file; dispatch before parseArgs.
    if (argc >= 2 && std::string(argv[1]) == "figures")
        return cmdFigures(argc, argv);
    if (argc >= 2 && std::string(argv[1]) == "serve")
        return cmdServe(argc, argv);
    if (argc >= 2 && std::string(argv[1]) == "bench-tiles")
        return cmdBenchTiles(argc, argv);
    if (argc >= 2 && std::string(argv[1]) == "bench-sim-par")
        return cmdBenchSimPar(argc, argv);
    Options opts = parseArgs(argc, argv);
    auto parsed = sir::parseSir(readFile(opts.file), opts.file);
    for (const Command &c : kCommands) {
        if (opts.command == c.name)
            return c.handler(opts, parsed);
    }
    usage();
}
