/**
 * @file
 * pstool — the command-line driver for the Pipestitch toolchain.
 *
 *   pstool compile <file.sir> [--variant=V] [--unroll=N] [--dot]
 *       Compile and report: threading decision, per-loop IIs,
 *       operator counts, fabric fit. --dot prints GraphViz.
 *
 *   pstool run <file.sir> [--variant=V] [--depth=N] [--unroll=N]
 *              [--livein name=value]... [--init arr=v0,v1,...]...
 *              [--dump arr]... [--report] [--trace]
 *       Compile, map, simulate, verify against the golden
 *       interpreter, and print stats (and requested arrays).
 *
 *   pstool scalar <file.sir> [--livein ...] [--init ...] [--dump ...]
 *       Run the sequential interpreter only.
 *
 *   pstool bench-sim <file.sir> [--variant=V] [--unroll=N]
 *                    [--livein ...] [--init ...]
 *       Time the dense-scan and ready-list simulator schedulers on
 *       the kernel and print the wall-clock speedup. Both runs must
 *       retire in the same number of simulated cycles.
 *
 * Variants: riptide, pipestitch (default), pipesb, pipecfin,
 * pipecfop.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "core/system.hh"
#include "dfg/dot.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sir/parser.hh"
#include "sir/printer.hh"

using namespace pipestitch;

namespace {

struct Options
{
    std::string command;
    std::string file;
    compiler::ArchVariant variant =
        compiler::ArchVariant::Pipestitch;
    int depth = 4;
    int unroll = 1;
    bool dot = false;
    bool report = false;
    bool trace = false;
    bool timeMultiplex = false;
    bool json = false;
    std::vector<std::pair<std::string, sir::Word>> liveIns;
    std::vector<std::pair<std::string, std::vector<sir::Word>>>
        inits;
    std::vector<std::string> dumps;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: pstool <compile|run|scalar|bench-sim> <file.sir> "
        "[options]\n"
        "  --variant=riptide|pipestitch|pipesb|pipecfin|pipecfop\n"
        "  --depth=N --unroll=N --tm --dot --report --trace --json\n"
        "  --livein name=value     bind a kernel parameter\n"
        "  --init arr=v0,v1,...    initialize array contents\n"
        "  --dump arr              print an array after the run\n");
    std::exit(2);
}

compiler::ArchVariant
parseVariant(const std::string &name)
{
    if (name == "riptide")
        return compiler::ArchVariant::RipTide;
    if (name == "pipestitch")
        return compiler::ArchVariant::Pipestitch;
    if (name == "pipesb")
        return compiler::ArchVariant::PipeSB;
    if (name == "pipecfin")
        return compiler::ArchVariant::PipeCFiN;
    if (name == "pipecfop")
        return compiler::ArchVariant::PipeCFoP;
    fatal("unknown variant '%s'", name.c_str());
}

Options
parseArgs(int argc, char **argv)
{
    if (argc < 3)
        usage();
    Options opts;
    opts.command = argv[1];
    opts.file = argv[2];
    for (int i = 3; i < argc; i++) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) {
            return arg.substr(std::strlen(prefix));
        };
        if (arg.rfind("--variant=", 0) == 0) {
            opts.variant = parseVariant(value("--variant="));
        } else if (arg.rfind("--depth=", 0) == 0) {
            opts.depth = std::atoi(value("--depth=").c_str());
        } else if (arg.rfind("--unroll=", 0) == 0) {
            opts.unroll = std::atoi(value("--unroll=").c_str());
        } else if (arg == "--tm") {
            opts.timeMultiplex = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--dot") {
            opts.dot = true;
        } else if (arg == "--report") {
            opts.report = true;
        } else if (arg == "--trace") {
            opts.trace = true;
        } else if (arg == "--livein" && i + 1 < argc) {
            std::string spec = argv[++i];
            size_t eq = spec.find('=');
            if (eq == std::string::npos)
                usage();
            opts.liveIns.emplace_back(
                spec.substr(0, eq),
                static_cast<sir::Word>(
                    std::atoll(spec.c_str() + eq + 1)));
        } else if (arg == "--init" && i + 1 < argc) {
            std::string spec = argv[++i];
            size_t eq = spec.find('=');
            if (eq == std::string::npos)
                usage();
            std::vector<sir::Word> values;
            std::stringstream ss(spec.substr(eq + 1));
            std::string item;
            while (std::getline(ss, item, ','))
                values.push_back(static_cast<sir::Word>(
                    std::atoll(item.c_str())));
            opts.inits.emplace_back(spec.substr(0, eq),
                                    std::move(values));
        } else if (arg == "--dump" && i + 1 < argc) {
            opts.dumps.push_back(argv[++i]);
        } else {
            usage();
        }
    }
    return opts;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

workloads::KernelInstance
buildKernel(const Options &opts, const sir::ParseResult &parsed)
{
    workloads::KernelInstance kernel;
    kernel.name = parsed.program.name;
    kernel.prog = sir::Program(parsed.program.name);
    // Deep-copy via clone (Program is move-only in spirit).
    kernel.prog.numRegs = parsed.program.numRegs;
    kernel.prog.arrays = parsed.program.arrays;
    kernel.prog.regNames = parsed.program.regNames;
    kernel.prog.liveIns = parsed.program.liveIns;
    kernel.prog.memWords = parsed.program.memWords;
    kernel.prog.body = sir::cloneStmts(parsed.program.body);

    // Bind live-ins by name, defaulting to 0 with a warning.
    for (sir::Reg r : kernel.prog.liveIns) {
        const std::string &name =
            kernel.prog.regNames[static_cast<size_t>(r)];
        sir::Word value = 0;
        bool found = false;
        for (const auto &[n, v] : opts.liveIns) {
            if (n == name) {
                value = v;
                found = true;
            }
        }
        if (!found)
            warn("live-in '%s' not bound; using 0", name.c_str());
        kernel.liveIns.push_back(value);
    }

    kernel.memory = scalar::makeMemory(kernel.prog);
    for (const auto &[name, values] : opts.inits) {
        auto it = parsed.arrays.find(name);
        if (it == parsed.arrays.end())
            fatal("--init: no array '%s'", name.c_str());
        const auto &arr = kernel.prog.array(it->second);
        if (static_cast<int64_t>(values.size()) > arr.words)
            fatal("--init: %zu values exceed %s[%lld]",
                  values.size(), name.c_str(),
                  static_cast<long long>(arr.words));
        for (size_t i = 0; i < values.size(); i++)
            kernel.memory[static_cast<size_t>(arr.base) + i] =
                values[i];
    }
    return kernel;
}

void
dumpArrays(const Options &opts, const sir::ParseResult &parsed,
           const scalar::MemImage &mem)
{
    for (const auto &name : opts.dumps) {
        auto it = parsed.arrays.find(name);
        if (it == parsed.arrays.end())
            fatal("--dump: no array '%s'", name.c_str());
        const auto &arr = parsed.program.array(it->second);
        std::printf("%s =", name.c_str());
        for (int64_t i = 0; i < arr.words; i++) {
            std::printf(" %d",
                        mem[static_cast<size_t>(arr.base + i)]);
        }
        std::printf("\n");
    }
}

int
cmdCompile(const Options &opts, const sir::ParseResult &parsed)
{
    compiler::CompileOptions copts;
    copts.variant = opts.variant;
    copts.unrollFactor = opts.unroll;
    // Live-ins default to 0 for a structure-only compile.
    std::vector<sir::Word> liveIns(parsed.program.liveIns.size(),
                                   0);
    for (size_t i = 0; i < parsed.program.liveIns.size(); i++) {
        const std::string &name =
            parsed.program.regNames[static_cast<size_t>(
                parsed.program.liveIns[i])];
        for (const auto &[n, v] : opts.liveIns) {
            if (n == name)
                liveIns[i] = v;
        }
    }
    auto res = compiler::compileProgram(parsed.program, liveIns,
                                        copts);
    if (opts.dot) {
        std::printf("%s", dfg::toDot(res.graph).c_str());
        return 0;
    }
    std::printf("program: %s (%s)\n", parsed.program.name.c_str(),
                compiler::archVariantName(opts.variant));
    std::printf("threaded: %s", res.threaded ? "yes (loops" : "no");
    if (res.threaded) {
        for (int l : res.threadedLoops)
            std::printf(" L%d[II=%d]", l,
                        res.loopII[static_cast<size_t>(l)]);
        std::printf(")");
    }
    std::printf("\noperators: %d", res.graph.size());
    auto counts = res.graph.peClassCounts();
    fabric::FabricConfig fc;
    bool fits = true;
    static const char *names[] = {"arith", "mult", "cf", "mem",
                                  "stream"};
    std::printf("\nPE demand:");
    for (size_t c = 0; c < counts.size(); c++) {
        std::printf(" %s=%d/%d", names[c], counts[c],
                    fc.peMix[c]);
        fits &= counts[c] <= fc.peMix[c];
    }
    std::printf("\nfits 8x8 fabric: %s\n", fits ? "yes" : "no");
    return 0;
}

int
cmdRun(const Options &opts, const sir::ParseResult &parsed)
{
    auto kernel = buildKernel(opts, parsed);
    RunConfig cfg;
    cfg.variant = opts.variant;
    cfg.bufferDepth = opts.depth;
    cfg.unrollFactor = opts.unroll;
    cfg.allowTimeMultiplex = opts.timeMultiplex;
    if (opts.trace) {
        // Trace implies an unmapped functional run to keep output
        // readable.
        cfg.map = false;
    }
    // Plumb trace through the recommended config by re-simulating:
    // simplest is to rely on runOnFabric for everything but trace.
    FabricRun run = runOnFabric(kernel, cfg);
    if (opts.trace) {
        auto simCfg = run.compiled.simConfig;
        simCfg.bufferDepth = opts.depth;
        simCfg.trace = true;
        auto mem = kernel.memory;
        mem.resize(static_cast<size_t>(kernel.prog.memWords));
        sim::simulate(run.compiled.graph, mem, simCfg);
    }

    if (opts.json) {
        const auto &st = run.sim.stats;
        std::printf(
            "{\"kernel\": \"%s\", \"variant\": \"%s\", "
            "\"cycles\": %lld, \"seconds\": %.9g, "
            "\"energy_pj\": %.6g, \"edp_pj_s\": %.6g, "
            "\"ipc\": %.4f, \"threads\": %lld, "
            "\"pe_fires\": %lld, \"noc_cf_fires\": %lld, "
            "\"mem_loads\": %lld, \"mem_stores\": %lld, "
            "\"buffer_writes\": %lld, \"buffer_reads\": %lld, "
            "\"bank_conflicts\": %lld, \"mux_switches\": %lld, "
            "\"threaded\": %s, \"operators\": %d, "
            "\"avg_hops\": %.3f}\n",
            kernel.name.c_str(),
            compiler::archVariantName(opts.variant),
            static_cast<long long>(run.cycles()), run.seconds,
            run.energy.totalPj(), run.edp, st.ipc(),
            static_cast<long long>(st.dispatchSpawns),
            static_cast<long long>(st.totalPeFires()),
            static_cast<long long>(st.nocCfFires),
            static_cast<long long>(st.memLoads),
            static_cast<long long>(st.memStores),
            static_cast<long long>(st.bufferWrites),
            static_cast<long long>(st.bufferReads),
            static_cast<long long>(st.bankConflictStalls),
            static_cast<long long>(st.muxSwitches),
            run.compiled.threaded ? "true" : "false",
            run.compiled.graph.size(), run.mapping.avgHops);
    } else {
        std::printf("%s on %s: %lld cycles @%.1f MHz, %.1f pJ, "
                    "IPC %.2f, %lld threads\n",
                    kernel.name.c_str(),
                    compiler::archVariantName(opts.variant),
                    static_cast<long long>(run.cycles()),
                    cfg.fabric.clockMHz, run.energy.totalPj(),
                    run.sim.stats.ipc(),
                    static_cast<long long>(
                        run.sim.stats.dispatchSpawns));
    }
    if (opts.report) {
        fabric::Fabric fab(cfg.fabric);
        std::printf("\n%s\n%s",
                    sim::utilizationMap(run.compiled.graph, fab,
                                        run.mapping, run.sim.stats)
                        .c_str(),
                    sim::operatorReport(run.compiled.graph,
                                        run.sim.stats)
                        .c_str());
    }
    dumpArrays(opts, parsed, run.memory);
    return 0;
}

int
cmdBenchSim(const Options &opts, const sir::ParseResult &parsed)
{
    auto kernel = buildKernel(opts, parsed);
    compiler::CompileOptions copts;
    copts.variant = opts.variant;
    copts.unrollFactor = opts.unroll;
    auto res = compiler::compileProgram(kernel.prog, kernel.liveIns,
                                        copts);
    auto cfg = res.simConfig;
    cfg.bufferDepth = opts.depth;

    // Best-of-3 after one warmup run, per scheduler.
    auto time = [&](sim::SimConfig::Scheduler sched, int64_t &cyc) {
        cfg.scheduler = sched;
        double best = 0;
        for (int rep = 0; rep < 4; rep++) {
            auto mem = kernel.memory;
            mem.resize(static_cast<size_t>(kernel.prog.memWords));
            auto t0 = std::chrono::steady_clock::now();
            auto r = sim::simulate(res.graph, mem, cfg);
            auto t1 = std::chrono::steady_clock::now();
            cyc = r.stats.cycles;
            double ms = std::chrono::duration<double, std::milli>(
                            t1 - t0)
                            .count();
            if (rep > 0 && (best == 0 || ms < best))
                best = ms;
        }
        return best;
    };
    int64_t denseCycles = 0;
    int64_t readyCycles = 0;
    double denseMs =
        time(sim::SimConfig::Scheduler::DenseScan, denseCycles);
    double readyMs =
        time(sim::SimConfig::Scheduler::ReadyList, readyCycles);
    if (denseCycles != readyCycles)
        fatal("scheduler divergence: dense %lld cycles, "
              "ready %lld cycles",
              static_cast<long long>(denseCycles),
              static_cast<long long>(readyCycles));
    double speedup = readyMs > 0 ? denseMs / readyMs : 0;
    if (opts.json) {
        std::printf("{\"kernel\": \"%s\", \"nodes\": %d, "
                    "\"cycles\": %lld, \"dense_ms\": %.3f, "
                    "\"ready_ms\": %.3f, \"speedup\": %.2f}\n",
                    kernel.name.c_str(), res.graph.size(),
                    static_cast<long long>(denseCycles), denseMs,
                    readyMs, speedup);
    } else {
        std::printf("%s: %d operators, %lld cycles\n"
                    "  dense-scan  %9.3f ms\n"
                    "  ready-list  %9.3f ms  (%.2fx speedup)\n",
                    kernel.name.c_str(), res.graph.size(),
                    static_cast<long long>(denseCycles), denseMs,
                    readyMs, speedup);
    }
    return 0;
}

int
cmdScalar(const Options &opts, const sir::ParseResult &parsed)
{
    auto kernel = buildKernel(opts, parsed);
    ScalarRun run = runOnScalar(kernel);
    std::printf("%s on %s: %.0f cycles, %.1f pJ, %lld instrs\n",
                kernel.name.c_str(),
                scalar::riptideScalarProfile().name.c_str(),
                run.cycles, run.energy.totalPj(),
                static_cast<long long>(run.counts.total()));
    dumpArrays(opts, parsed, run.memory);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    auto parsed = sir::parseSir(readFile(opts.file), opts.file);

    if (opts.command == "compile")
        return cmdCompile(opts, parsed);
    if (opts.command == "run")
        return cmdRun(opts, parsed);
    if (opts.command == "scalar")
        return cmdScalar(opts, parsed);
    if (opts.command == "bench-sim")
        return cmdBenchSim(opts, parsed);
    usage();
}
