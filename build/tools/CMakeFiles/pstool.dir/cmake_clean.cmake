file(REMOVE_RECURSE
  "CMakeFiles/pstool.dir/pstool.cc.o"
  "CMakeFiles/pstool.dir/pstool.cc.o.d"
  "pstool"
  "pstool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
