file(REMOVE_RECURSE
  "libpipestitch.a"
)
