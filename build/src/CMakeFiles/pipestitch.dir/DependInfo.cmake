
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/pipestitch.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/base/logging.cc.o.d"
  "/root/repo/src/base/random.cc" "src/CMakeFiles/pipestitch.dir/base/random.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/base/random.cc.o.d"
  "/root/repo/src/base/table.cc" "src/CMakeFiles/pipestitch.dir/base/table.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/base/table.cc.o.d"
  "/root/repo/src/compiler/compile.cc" "src/CMakeFiles/pipestitch.dir/compiler/compile.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/compiler/compile.cc.o.d"
  "/root/repo/src/compiler/fusion.cc" "src/CMakeFiles/pipestitch.dir/compiler/fusion.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/compiler/fusion.cc.o.d"
  "/root/repo/src/compiler/lower.cc" "src/CMakeFiles/pipestitch.dir/compiler/lower.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/compiler/lower.cc.o.d"
  "/root/repo/src/compiler/threading.cc" "src/CMakeFiles/pipestitch.dir/compiler/threading.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/compiler/threading.cc.o.d"
  "/root/repo/src/compiler/timemux.cc" "src/CMakeFiles/pipestitch.dir/compiler/timemux.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/compiler/timemux.cc.o.d"
  "/root/repo/src/compiler/unroll.cc" "src/CMakeFiles/pipestitch.dir/compiler/unroll.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/compiler/unroll.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/pipestitch.dir/core/system.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/core/system.cc.o.d"
  "/root/repo/src/dfg/analysis.cc" "src/CMakeFiles/pipestitch.dir/dfg/analysis.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/dfg/analysis.cc.o.d"
  "/root/repo/src/dfg/dot.cc" "src/CMakeFiles/pipestitch.dir/dfg/dot.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/dfg/dot.cc.o.d"
  "/root/repo/src/dfg/graph.cc" "src/CMakeFiles/pipestitch.dir/dfg/graph.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/dfg/graph.cc.o.d"
  "/root/repo/src/dfg/node.cc" "src/CMakeFiles/pipestitch.dir/dfg/node.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/dfg/node.cc.o.d"
  "/root/repo/src/dfg/verifier.cc" "src/CMakeFiles/pipestitch.dir/dfg/verifier.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/dfg/verifier.cc.o.d"
  "/root/repo/src/energy/dvfs.cc" "src/CMakeFiles/pipestitch.dir/energy/dvfs.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/energy/dvfs.cc.o.d"
  "/root/repo/src/energy/model.cc" "src/CMakeFiles/pipestitch.dir/energy/model.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/energy/model.cc.o.d"
  "/root/repo/src/fabric/area.cc" "src/CMakeFiles/pipestitch.dir/fabric/area.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/fabric/area.cc.o.d"
  "/root/repo/src/fabric/fabric.cc" "src/CMakeFiles/pipestitch.dir/fabric/fabric.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/fabric/fabric.cc.o.d"
  "/root/repo/src/harvest/harvest.cc" "src/CMakeFiles/pipestitch.dir/harvest/harvest.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/harvest/harvest.cc.o.d"
  "/root/repo/src/mapper/mapper.cc" "src/CMakeFiles/pipestitch.dir/mapper/mapper.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/mapper/mapper.cc.o.d"
  "/root/repo/src/scalar/interpreter.cc" "src/CMakeFiles/pipestitch.dir/scalar/interpreter.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/scalar/interpreter.cc.o.d"
  "/root/repo/src/scalar/profile.cc" "src/CMakeFiles/pipestitch.dir/scalar/profile.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/scalar/profile.cc.o.d"
  "/root/repo/src/sim/memsys.cc" "src/CMakeFiles/pipestitch.dir/sim/memsys.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/sim/memsys.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/pipestitch.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/sim/report.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/pipestitch.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/pipestitch.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/sim/stats.cc.o.d"
  "/root/repo/src/sir/analysis.cc" "src/CMakeFiles/pipestitch.dir/sir/analysis.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/sir/analysis.cc.o.d"
  "/root/repo/src/sir/builder.cc" "src/CMakeFiles/pipestitch.dir/sir/builder.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/sir/builder.cc.o.d"
  "/root/repo/src/sir/parser.cc" "src/CMakeFiles/pipestitch.dir/sir/parser.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/sir/parser.cc.o.d"
  "/root/repo/src/sir/printer.cc" "src/CMakeFiles/pipestitch.dir/sir/printer.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/sir/printer.cc.o.d"
  "/root/repo/src/sir/program.cc" "src/CMakeFiles/pipestitch.dir/sir/program.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/sir/program.cc.o.d"
  "/root/repo/src/sir/verifier.cc" "src/CMakeFiles/pipestitch.dir/sir/verifier.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/sir/verifier.cc.o.d"
  "/root/repo/src/workloads/dnn.cc" "src/CMakeFiles/pipestitch.dir/workloads/dnn.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/workloads/dnn.cc.o.d"
  "/root/repo/src/workloads/kernels.cc" "src/CMakeFiles/pipestitch.dir/workloads/kernels.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/workloads/kernels.cc.o.d"
  "/root/repo/src/workloads/matrix.cc" "src/CMakeFiles/pipestitch.dir/workloads/matrix.cc.o" "gcc" "src/CMakeFiles/pipestitch.dir/workloads/matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
