# Empty dependencies file for pipestitch.
# This may be replaced when dependencies are built.
