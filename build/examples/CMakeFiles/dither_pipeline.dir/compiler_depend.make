# Empty compiler generated dependencies file for dither_pipeline.
# This may be replaced when dependencies are built.
