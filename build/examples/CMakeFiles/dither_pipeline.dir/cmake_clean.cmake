file(REMOVE_RECURSE
  "CMakeFiles/dither_pipeline.dir/dither_pipeline.cpp.o"
  "CMakeFiles/dither_pipeline.dir/dither_pipeline.cpp.o.d"
  "dither_pipeline"
  "dither_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dither_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
