file(REMOVE_RECURSE
  "CMakeFiles/sparse_dnn.dir/sparse_dnn.cpp.o"
  "CMakeFiles/sparse_dnn.dir/sparse_dnn.cpp.o.d"
  "sparse_dnn"
  "sparse_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
