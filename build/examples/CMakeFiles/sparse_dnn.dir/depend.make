# Empty dependencies file for sparse_dnn.
# This may be replaced when dependencies are built.
