# Empty compiler generated dependencies file for fig04_dvfs.
# This may be replaced when dependencies are built.
