file(REMOVE_RECURSE
  "CMakeFiles/fig04_dvfs.dir/fig04_dvfs.cc.o"
  "CMakeFiles/fig04_dvfs.dir/fig04_dvfs.cc.o.d"
  "fig04_dvfs"
  "fig04_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
