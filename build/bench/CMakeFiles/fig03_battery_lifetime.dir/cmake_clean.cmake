file(REMOVE_RECURSE
  "CMakeFiles/fig03_battery_lifetime.dir/fig03_battery_lifetime.cc.o"
  "CMakeFiles/fig03_battery_lifetime.dir/fig03_battery_lifetime.cc.o.d"
  "fig03_battery_lifetime"
  "fig03_battery_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_battery_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
