# Empty dependencies file for fig03_battery_lifetime.
# This may be replaced when dependencies are built.
