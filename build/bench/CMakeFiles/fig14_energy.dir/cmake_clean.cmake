file(REMOVE_RECURSE
  "CMakeFiles/fig14_energy.dir/fig14_energy.cc.o"
  "CMakeFiles/fig14_energy.dir/fig14_energy.cc.o.d"
  "fig14_energy"
  "fig14_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
