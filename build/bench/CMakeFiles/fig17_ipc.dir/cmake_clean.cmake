file(REMOVE_RECURSE
  "CMakeFiles/fig17_ipc.dir/fig17_ipc.cc.o"
  "CMakeFiles/fig17_ipc.dir/fig17_ipc.cc.o.d"
  "fig17_ipc"
  "fig17_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
