# Empty dependencies file for fig17_ipc.
# This may be replaced when dependencies are built.
