# Empty dependencies file for ext_spatial_unroll.
# This may be replaced when dependencies are built.
