file(REMOVE_RECURSE
  "CMakeFiles/ext_spatial_unroll.dir/ext_spatial_unroll.cc.o"
  "CMakeFiles/ext_spatial_unroll.dir/ext_spatial_unroll.cc.o.d"
  "ext_spatial_unroll"
  "ext_spatial_unroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_spatial_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
