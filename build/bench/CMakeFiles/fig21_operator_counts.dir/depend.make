# Empty dependencies file for fig21_operator_counts.
# This may be replaced when dependencies are built.
