file(REMOVE_RECURSE
  "CMakeFiles/fig21_operator_counts.dir/fig21_operator_counts.cc.o"
  "CMakeFiles/fig21_operator_counts.dir/fig21_operator_counts.cc.o.d"
  "fig21_operator_counts"
  "fig21_operator_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_operator_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
