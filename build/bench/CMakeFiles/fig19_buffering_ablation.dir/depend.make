# Empty dependencies file for fig19_buffering_ablation.
# This may be replaced when dependencies are built.
