file(REMOVE_RECURSE
  "CMakeFiles/fig19_buffering_ablation.dir/fig19_buffering_ablation.cc.o"
  "CMakeFiles/fig19_buffering_ablation.dir/fig19_buffering_ablation.cc.o.d"
  "fig19_buffering_ablation"
  "fig19_buffering_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_buffering_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
