file(REMOVE_RECURSE
  "CMakeFiles/fig16_area.dir/fig16_area.cc.o"
  "CMakeFiles/fig16_area.dir/fig16_area.cc.o.d"
  "fig16_area"
  "fig16_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
