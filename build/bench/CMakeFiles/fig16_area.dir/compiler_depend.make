# Empty compiler generated dependencies file for fig16_area.
# This may be replaced when dependencies are built.
