file(REMOVE_RECURSE
  "CMakeFiles/fig01_harvest_rate.dir/fig01_harvest_rate.cc.o"
  "CMakeFiles/fig01_harvest_rate.dir/fig01_harvest_rate.cc.o.d"
  "fig01_harvest_rate"
  "fig01_harvest_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_harvest_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
