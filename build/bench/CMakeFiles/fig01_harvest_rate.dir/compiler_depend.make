# Empty compiler generated dependencies file for fig01_harvest_rate.
# This may be replaced when dependencies are built.
