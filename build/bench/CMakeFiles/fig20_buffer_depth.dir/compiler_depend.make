# Empty compiler generated dependencies file for fig20_buffer_depth.
# This may be replaced when dependencies are built.
