file(REMOVE_RECURSE
  "CMakeFiles/fig20_buffer_depth.dir/fig20_buffer_depth.cc.o"
  "CMakeFiles/fig20_buffer_depth.dir/fig20_buffer_depth.cc.o.d"
  "fig20_buffer_depth"
  "fig20_buffer_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_buffer_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
