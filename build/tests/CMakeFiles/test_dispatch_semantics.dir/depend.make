# Empty dependencies file for test_dispatch_semantics.
# This may be replaced when dependencies are built.
