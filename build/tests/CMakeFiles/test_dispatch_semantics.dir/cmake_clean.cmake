file(REMOVE_RECURSE
  "CMakeFiles/test_dispatch_semantics.dir/test_dispatch_semantics.cc.o"
  "CMakeFiles/test_dispatch_semantics.dir/test_dispatch_semantics.cc.o.d"
  "test_dispatch_semantics"
  "test_dispatch_semantics.pdb"
  "test_dispatch_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dispatch_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
