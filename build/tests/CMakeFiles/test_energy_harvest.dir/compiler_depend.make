# Empty compiler generated dependencies file for test_energy_harvest.
# This may be replaced when dependencies are built.
