file(REMOVE_RECURSE
  "CMakeFiles/test_energy_harvest.dir/test_energy_harvest.cc.o"
  "CMakeFiles/test_energy_harvest.dir/test_energy_harvest.cc.o.d"
  "test_energy_harvest"
  "test_energy_harvest.pdb"
  "test_energy_harvest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_harvest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
