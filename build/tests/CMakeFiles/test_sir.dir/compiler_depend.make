# Empty compiler generated dependencies file for test_sir.
# This may be replaced when dependencies are built.
