file(REMOVE_RECURSE
  "CMakeFiles/test_sir.dir/test_sir.cc.o"
  "CMakeFiles/test_sir.dir/test_sir.cc.o.d"
  "test_sir"
  "test_sir.pdb"
  "test_sir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
