file(REMOVE_RECURSE
  "CMakeFiles/test_compiler_equivalence.dir/test_compiler_equivalence.cc.o"
  "CMakeFiles/test_compiler_equivalence.dir/test_compiler_equivalence.cc.o.d"
  "test_compiler_equivalence"
  "test_compiler_equivalence.pdb"
  "test_compiler_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiler_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
