file(REMOVE_RECURSE
  "CMakeFiles/test_syncplane_ablation.dir/test_syncplane_ablation.cc.o"
  "CMakeFiles/test_syncplane_ablation.dir/test_syncplane_ablation.cc.o.d"
  "test_syncplane_ablation"
  "test_syncplane_ablation.pdb"
  "test_syncplane_ablation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syncplane_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
