file(REMOVE_RECURSE
  "CMakeFiles/test_timemux.dir/test_timemux.cc.o"
  "CMakeFiles/test_timemux.dir/test_timemux.cc.o.d"
  "test_timemux"
  "test_timemux.pdb"
  "test_timemux[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timemux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
