# Empty compiler generated dependencies file for test_timemux.
# This may be replaced when dependencies are built.
