file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_reference.dir/test_kernel_reference.cc.o"
  "CMakeFiles/test_kernel_reference.dir/test_kernel_reference.cc.o.d"
  "test_kernel_reference"
  "test_kernel_reference.pdb"
  "test_kernel_reference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
