# Empty dependencies file for test_kernel_reference.
# This may be replaced when dependencies are built.
