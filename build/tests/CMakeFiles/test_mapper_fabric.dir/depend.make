# Empty dependencies file for test_mapper_fabric.
# This may be replaced when dependencies are built.
