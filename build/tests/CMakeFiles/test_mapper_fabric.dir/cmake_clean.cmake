file(REMOVE_RECURSE
  "CMakeFiles/test_mapper_fabric.dir/test_mapper_fabric.cc.o"
  "CMakeFiles/test_mapper_fabric.dir/test_mapper_fabric.cc.o.d"
  "test_mapper_fabric"
  "test_mapper_fabric.pdb"
  "test_mapper_fabric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapper_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
