#include "base/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace pipestitch {

namespace {

std::atomic<bool> quietMode{false};

/** Nesting depth of live ScopedQuiet instances on this thread. */
thread_local int scopedQuietDepth = 0;

/** Nesting depth of live ScopedFatalTrap instances on this thread. */
thread_local int fatalTrapDepth = 0;

bool
quietNow()
{
    return scopedQuietDepth > 0 ||
           quietMode.load(std::memory_order_relaxed);
}

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    if (fatalTrapDepth > 0)
        throw FatalError(msg);
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietNow())
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietNow())
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietMode.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietNow();
}

ScopedQuiet::ScopedQuiet(bool enable) : active(enable)
{
    if (active)
        scopedQuietDepth++;
}

ScopedQuiet::~ScopedQuiet()
{
    if (active)
        scopedQuietDepth--;
}

ScopedFatalTrap::ScopedFatalTrap()
{
    fatalTrapDepth++;
}

ScopedFatalTrap::~ScopedFatalTrap()
{
    fatalTrapDepth--;
}

} // namespace pipestitch
