/**
 * @file
 * Plain-text table formatter used by the benchmark harnesses to print
 * paper-style rows and series.
 */

#ifndef PIPESTITCH_BASE_TABLE_HH
#define PIPESTITCH_BASE_TABLE_HH

#include <string>
#include <vector>

namespace pipestitch {

/**
 * Accumulates rows of cells and renders them with aligned columns.
 *
 * Usage:
 * @code
 *   Table t({"Benchmark", "Speedup"});
 *   t.addRow({"DMM", "1.02"});
 *   std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a data row; must have as many cells as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p digits decimals. */
    static std::string fmt(double value, int digits = 2);

    /** Render with aligned columns and a separator under the header. */
    std::string render() const;

  private:
    std::vector<std::vector<std::string>> rows;
};

} // namespace pipestitch

#endif // PIPESTITCH_BASE_TABLE_HH
