/**
 * @file
 * Content hashing for memoization keys.
 *
 * A small FNV-1a-based accumulator: feed it scalars, strings, and
 * vectors in a fixed order and take the 64-bit digest. Stable within
 * a build (and across builds on the same ABI), which is all the
 * runner's memo cache needs — keys are recomputed from content on
 * every lookup, never trusted across toolchain changes (the on-disk
 * layer embeds a format version for that).
 */

#ifndef PIPESTITCH_BASE_HASH_HH
#define PIPESTITCH_BASE_HASH_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace pipestitch {

class Hasher
{
  public:
    /** Digest so far. */
    uint64_t digest() const { return state; }

    Hasher &
    bytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < n; i++) {
            state ^= p[i];
            state *= kPrime;
        }
        return *this;
    }

    Hasher &
    u64(uint64_t v)
    {
        return bytes(&v, sizeof(v));
    }

    Hasher &
    i64(int64_t v)
    {
        return u64(static_cast<uint64_t>(v));
    }

    Hasher &
    i32(int32_t v)
    {
        return i64(v);
    }

    Hasher &
    b(bool v)
    {
        return u64(v ? 1 : 0);
    }

    Hasher &
    f64(double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        return u64(bits);
    }

    /** Length-prefixed so "ab","c" != "a","bc". */
    Hasher &
    str(const std::string &s)
    {
        u64(s.size());
        return bytes(s.data(), s.size());
    }

    template <typename T>
    Hasher &
    vec(const std::vector<T> &v)
    {
        u64(v.size());
        for (const T &x : v)
            i64(static_cast<int64_t>(x));
        return *this;
    }

  private:
    static constexpr uint64_t kPrime = 0x100000001b3ull;
    uint64_t state = 0xcbf29ce484222325ull;
};

/** Render a digest as the fixed-width hex token used in cache file
 *  names and diagnostics. */
inline std::string
hashHex(uint64_t digest)
{
    static const char *hex = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; i--) {
        s[static_cast<size_t>(i)] = hex[digest & 0xf];
        digest >>= 4;
    }
    return s;
}

} // namespace pipestitch

#endif // PIPESTITCH_BASE_HASH_HH
