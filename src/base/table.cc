#include "base/table.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace pipestitch {

Table::Table(std::vector<std::string> header)
{
    rows.push_back(std::move(header));
}

void
Table::addRow(std::vector<std::string> cells)
{
    ps_assert(cells.size() == rows[0].size(),
              "row has %zu cells, header has %zu", cells.size(),
              rows[0].size());
    rows.push_back(std::move(cells));
}

std::string
Table::fmt(double value, int digits)
{
    return csprintf("%.*f", digits, value);
}

std::string
Table::render() const
{
    std::vector<size_t> width(rows[0].size(), 0);
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); c++)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream out;
    for (size_t r = 0; r < rows.size(); r++) {
        for (size_t c = 0; c < rows[r].size(); c++) {
            out << rows[r][c];
            if (c + 1 < rows[r].size()) {
                out << std::string(width[c] - rows[r][c].size() + 2, ' ');
            }
        }
        out << '\n';
        if (r == 0) {
            size_t total = 0;
            for (size_t c = 0; c < width.size(); c++)
                total += width[c] + (c + 1 < width.size() ? 2 : 0);
            out << std::string(total, '-') << '\n';
        }
    }
    return out.str();
}

} // namespace pipestitch
