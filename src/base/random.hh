/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic inputs in the repository (sparse matrices, synthetic
 * images, DNN weights) are drawn from this generator so that every
 * experiment is exactly reproducible from a seed.
 */

#ifndef PIPESTITCH_BASE_RANDOM_HH
#define PIPESTITCH_BASE_RANDOM_HH

#include <cstdint>

namespace pipestitch {

/**
 * SplitMix64-seeded xoshiro256** generator.
 *
 * Small, fast, and statistically solid for workload generation; not
 * for cryptographic use.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) ; bound must be > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

  private:
    uint64_t s[4];
};

} // namespace pipestitch

#endif // PIPESTITCH_BASE_RANDOM_HH
