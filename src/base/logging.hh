/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (simulator bugs), fatal() is for user errors (bad
 * configuration, malformed input), warn()/inform() report conditions
 * without stopping the run.
 */

#ifndef PIPESTITCH_BASE_LOGGING_HH
#define PIPESTITCH_BASE_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace pipestitch {

/** Format a printf-style message into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Abort with a message; use for internal invariant violations. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/** Exit(1) with a message; use for user/configuration errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Globally silence warn()/inform() (used by benches for clean
 * tables). Thread-safe: the flag is an atomic, and each message is
 * emitted with a single stdio call, so concurrent runs never
 * interleave mid-line. For silencing only the current thread (one
 * run among many in a thread pool), use ScopedQuiet or
 * RunConfig::quiet instead of this process-wide switch.
 */
void setQuiet(bool quiet);

/** True if warn()/inform() are currently silenced on this thread. */
bool isQuiet();

/**
 * RAII per-thread silencer: warn()/inform() emitted by the current
 * thread are suppressed while any ScopedQuiet is alive, without
 * touching other threads. Nests; a disabled instance is a no-op.
 */
class ScopedQuiet
{
  public:
    explicit ScopedQuiet(bool enable = true);
    ~ScopedQuiet();

    ScopedQuiet(const ScopedQuiet &) = delete;
    ScopedQuiet &operator=(const ScopedQuiet &) = delete;

  private:
    bool active;
};

/** Thrown by fatal() while a ScopedFatalTrap is active on the
 *  calling thread; carries the formatted message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * RAII per-thread trap: while alive, fatal() on this thread throws
 * FatalError instead of exiting the process. For resident callers
 * (the serve daemon) that must survive user errors raised deep in
 * code written for batch tools — a malformed kernel in one request
 * must not take the whole server down. Nests. panic() is unaffected:
 * internal invariant violations still abort.
 */
class ScopedFatalTrap
{
  public:
    ScopedFatalTrap();
    ~ScopedFatalTrap();

    ScopedFatalTrap(const ScopedFatalTrap &) = delete;
    ScopedFatalTrap &operator=(const ScopedFatalTrap &) = delete;
};

} // namespace pipestitch

#define panic(...) \
    ::pipestitch::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define fatal(...) \
    ::pipestitch::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert-with-message that stays enabled in release builds. */
#define ps_assert(cond, ...)                                            \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::pipestitch::panicImpl(__FILE__, __LINE__, __VA_ARGS__);   \
        }                                                               \
    } while (0)

#endif // PIPESTITCH_BASE_LOGGING_HH
