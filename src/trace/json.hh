/**
 * @file
 * Minimal streaming JSON writer shared by every machine-readable
 * emitter (sim::Report, the Chrome-trace and stall-timeline sinks,
 * pstool --json). Produces compact, valid JSON; no parsing, no DOM.
 *
 * Usage:
 *   JsonWriter w(out);
 *   w.beginObject();
 *   w.key("cycles").value(int64_t{42});
 *   w.key("events").beginArray();
 *   ...
 *   w.endArray();
 *   w.endObject();
 */

#ifndef PIPESTITCH_TRACE_JSON_HH
#define PIPESTITCH_TRACE_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace pipestitch::trace {

/** Escape @p s for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out) : out(out) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(int64_t v);
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v) { return value(std::string(v)); }

  private:
    void comma();

    std::ostream &out;
    /** Per nesting level: has a first element been written? */
    std::vector<bool> hasElem;
    bool pendingKey = false;
};

} // namespace pipestitch::trace

#endif // PIPESTITCH_TRACE_JSON_HH
