#include "trace/stall_timeline.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "base/logging.hh"
#include "base/table.hh"
#include "sim/simulator.hh"
#include "trace/json.hh"

namespace pipestitch::trace {

StallTimelineSink::StallTimelineSink(int64_t intervalCycles)
    : intervalCycles(intervalCycles)
{
    ps_assert(intervalCycles >= 1, "interval must be >= 1 cycle");
}

void
StallTimelineSink::onSimBegin(const dfg::Graph &g,
                              const sim::SimConfig &)
{
    labels.clear();
    labels.reserve(static_cast<size_t>(g.size()));
    for (dfg::NodeId id = 0; id < g.size(); id++) {
        const dfg::Node &node = g.at(id);
        labels.push_back({dfg::nodeKindName(node.kind), node.name});
    }
    finalCycles = 0;
    buckets.assign(static_cast<size_t>(g.size()), {});
}

StallTimelineSink::Bucket &
StallTimelineSink::bucket(int64_t cycle, dfg::NodeId node)
{
    auto &row = buckets[static_cast<size_t>(node)];
    size_t idx = static_cast<size_t>(cycle / intervalCycles);
    if (row.size() <= idx)
        row.resize(idx + 1);
    return row[idx];
}

void
StallTimelineSink::onFire(int64_t cycle, dfg::NodeId node)
{
    bucket(cycle, node).fires++;
}

void
StallTimelineSink::onStall(int64_t cycle, dfg::NodeId node,
                           StallReason reason)
{
    Bucket &b = bucket(cycle, node);
    switch (reason) {
      case StallReason::NoInput: b.noInput++; break;
      case StallReason::NoSpace: b.noSpace++; break;
      case StallReason::BankConflict: b.bankConflict++; break;
    }
}

void
StallTimelineSink::onSimEnd(const sim::SimResult &result)
{
    finalCycles = result.stats.cycles;
}

int
StallTimelineSink::numIntervals() const
{
    if (finalCycles == 0)
        return 0;
    return static_cast<int>((finalCycles + intervalCycles - 1) /
                            intervalCycles);
}

const StallTimelineSink::Bucket &
StallTimelineSink::at(dfg::NodeId node, int intervalIdx) const
{
    static const Bucket empty;
    const auto &row = buckets[static_cast<size_t>(node)];
    if (static_cast<size_t>(intervalIdx) >= row.size())
        return empty;
    return row[static_cast<size_t>(intervalIdx)];
}

int64_t
StallTimelineSink::totalFires() const
{
    int64_t total = 0;
    for (const auto &row : buckets) {
        for (const Bucket &b : row)
            total += b.fires;
    }
    return total;
}

int64_t
StallTimelineSink::totalStalls(StallReason reason) const
{
    int64_t total = 0;
    for (const auto &row : buckets) {
        for (const Bucket &b : row) {
            switch (reason) {
              case StallReason::NoInput: total += b.noInput; break;
              case StallReason::NoSpace: total += b.noSpace; break;
              case StallReason::BankConflict:
                total += b.bankConflict;
                break;
            }
        }
    }
    return total;
}

void
StallTimelineSink::writeJson(std::ostream &out) const
{
    ps_assert(!buckets.empty(),
              "StallTimelineSink::writeJson before any simulation");
    JsonWriter w(out);
    w.beginObject();
    w.key("interval_cycles").value(intervalCycles);
    w.key("cycles").value(finalCycles);
    w.key("nodes").beginArray();
    for (size_t id = 0; id < buckets.size(); id++) {
        const auto &row = buckets[id];
        bool any = false;
        for (const Bucket &b : row)
            any |= b.any();
        if (!any)
            continue;
        const NodeLabel &node = labels[id];
        w.beginObject();
        w.key("id").value(static_cast<int64_t>(id));
        w.key("kind").value(node.kind);
        w.key("name").value(node.name);
        w.key("intervals").beginArray();
        for (size_t i = 0; i < row.size(); i++) {
            const Bucket &b = row[i];
            if (!b.any())
                continue;
            w.beginObject();
            w.key("t").value(static_cast<int64_t>(i) *
                             intervalCycles);
            w.key("fires").value(b.fires);
            w.key("no_input").value(b.noInput);
            w.key("no_space").value(b.noSpace);
            w.key("bank_conflict").value(b.bankConflict);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    out << '\n';
}

std::string
StallTimelineSink::toString(int maxRows) const
{
    ps_assert(!buckets.empty(),
              "StallTimelineSink::toString before any simulation");
    struct RowSummary
    {
        size_t id;
        int64_t fires = 0, noInput = 0, noSpace = 0, bank = 0;
        int worstInterval = -1;
        int64_t worstStalls = 0;
    };
    std::vector<RowSummary> rows;
    for (size_t id = 0; id < buckets.size(); id++) {
        RowSummary r;
        r.id = id;
        const auto &row = buckets[id];
        for (size_t i = 0; i < row.size(); i++) {
            const Bucket &b = row[i];
            r.fires += b.fires;
            r.noInput += b.noInput;
            r.noSpace += b.noSpace;
            r.bank += b.bankConflict;
            int64_t stalls = b.noInput + b.noSpace + b.bankConflict;
            if (stalls > r.worstStalls) {
                r.worstStalls = stalls;
                r.worstInterval = static_cast<int>(i);
            }
        }
        if (r.noInput + r.noSpace + r.bank > 0)
            rows.push_back(r);
    }
    std::sort(rows.begin(), rows.end(),
              [](const RowSummary &a, const RowSummary &b) {
                  return a.noInput + a.noSpace + a.bank >
                         b.noInput + b.noSpace + b.bank;
              });

    Table t({"Op", "Kind", "Name", "Fires", "NoInput", "NoSpace",
             "Bank", "Worst interval"});
    int listed = 0;
    for (const RowSummary &r : rows) {
        if (listed++ >= maxRows)
            break;
        const NodeLabel &node = labels[r.id];
        t.addRow(
            {csprintf("n%zu", r.id), node.kind, node.name,
             csprintf("%lld", static_cast<long long>(r.fires)),
             csprintf("%lld", static_cast<long long>(r.noInput)),
             csprintf("%lld", static_cast<long long>(r.noSpace)),
             csprintf("%lld", static_cast<long long>(r.bank)),
             r.worstInterval < 0
                 ? std::string("-")
                 : csprintf("[%lld..%lld) %lld stalls",
                            static_cast<long long>(
                                r.worstInterval * intervalCycles),
                            static_cast<long long>(
                                (r.worstInterval + 1) *
                                intervalCycles),
                            static_cast<long long>(
                                r.worstStalls))});
    }
    std::ostringstream out;
    out << "stall attribution (interval = " << intervalCycles
        << " cycles, " << rows.size() << " nodes stalled)\n"
        << t.render();
    return out.str();
}

} // namespace pipestitch::trace
