#include "trace/json_parse.hh"

#include <cctype>
#include <cstdlib>

#include "base/logging.hh"

namespace pipestitch::trace {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    const JsonValue *hit = nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            hit = &v;
    }
    return hit;
}

std::string
JsonValue::asString(const std::string &def) const
{
    return kind == Kind::String ? str : def;
}

int64_t
JsonValue::asInt(int64_t def) const
{
    return kind == Kind::Number ? static_cast<int64_t>(number) : def;
}

double
JsonValue::asDouble(double def) const
{
    return kind == Kind::Number ? number : def;
}

bool
JsonValue::asBool(bool def) const
{
    return kind == Kind::Bool ? boolean : def;
}

namespace {

struct Parser
{
    const std::string &text;
    size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = csprintf("%s at offset %zu", msg.c_str(), pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            pos++;
        }
    }

    bool
    consume(char c)
    {
        if (pos >= text.size() || text[pos] != c)
            return fail(csprintf("expected '%c'", c));
        pos++;
        return true;
    }

    bool
    literal(const char *word, size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail("bad literal");
        pos += len;
        return true;
    }

    /** Append code point @p cp to @p out as UTF-8. */
    static void
    appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool
    hex4(uint32_t &out)
    {
        if (pos + 4 > text.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; i++) {
            char c = text[pos++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return fail("bad \\u escape");
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < text.size()) {
            char c = text[pos];
            if (c == '"') {
                pos++;
                return true;
            }
            if (c == '\\') {
                pos++;
                if (pos >= text.size())
                    return fail("truncated escape");
                char e = text[pos++];
                switch (e) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u': {
                      uint32_t cp = 0;
                      if (!hex4(cp))
                          return false;
                      // Surrogate pair -> one code point.
                      if (cp >= 0xD800 && cp <= 0xDBFF &&
                          text.compare(pos, 2, "\\u") == 0) {
                          size_t save = pos;
                          pos += 2;
                          uint32_t lo = 0;
                          if (!hex4(lo))
                              return false;
                          if (lo >= 0xDC00 && lo <= 0xDFFF) {
                              cp = 0x10000 +
                                   ((cp - 0xD800) << 10) +
                                   (lo - 0xDC00);
                          } else {
                              pos = save; // lone high surrogate
                          }
                      }
                      appendUtf8(out, cp);
                      break;
                  }
                  default:
                      pos--;
                      return fail("bad escape");
                }
            } else {
                out.push_back(c);
                pos++;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            pos++;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-')) {
            pos++;
        }
        if (pos == start)
            return fail("expected number");
        char *end = nullptr;
        std::string num = text.substr(start, pos - start);
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size()) {
            pos = start;
            return fail("bad number");
        }
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > 64)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        switch (c) {
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
          case '[': {
            pos++;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                pos++;
                return true;
            }
            for (;;) {
                out.elems.emplace_back();
                if (!parseValue(out.elems.back(), depth + 1))
                    return false;
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    pos++;
                    continue;
                }
                return consume(']');
            }
          }
          case '{': {
            pos++;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                pos++;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return false;
                out.members.emplace_back(std::move(key),
                                         JsonValue{});
                if (!parseValue(out.members.back().second,
                                depth + 1)) {
                    return false;
                }
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    pos++;
                    continue;
                }
                return consume('}');
            }
          }
          default:
            return parseNumber(out);
        }
    }
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out,
          std::string *error)
{
    Parser p(text);
    out = JsonValue{};
    bool ok = p.parseValue(out, 0);
    if (ok) {
        p.skipWs();
        if (p.pos != text.size())
            ok = p.fail("trailing characters");
    }
    if (!ok) {
        out = JsonValue{};
        if (error)
            *error = p.error;
    }
    return ok;
}

} // namespace pipestitch::trace
