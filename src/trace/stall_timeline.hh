/**
 * @file
 * Stall-attribution timeline: buckets every counted stall (and every
 * fire) per node per fixed-width cycle interval, so IPC dips in the
 * Fig. 17/18 style become attributable — "cycles 512..1023: node 14
 * (store) lost 310 cycles to bank conflicts".
 *
 * The sink aggregates online (O(1) per event, no event log), so it
 * is safe to attach to long runs. Totals reconcile with SimStats:
 *   totalStalls(NoInput)      == stats.stallNoInput
 *   totalStalls(NoSpace)      == stats.stallNoSpace
 *   totalStalls(BankConflict) == stats.bankConflictStalls
 *   totalFires()              == sum(stats.nodeFires)
 */

#ifndef PIPESTITCH_TRACE_STALL_TIMELINE_HH
#define PIPESTITCH_TRACE_STALL_TIMELINE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "trace/observer.hh"

namespace pipestitch::trace {

class StallTimelineSink final : public SimObserver
{
  public:
    /** @p intervalCycles fixes the bucket width (cycles). */
    explicit StallTimelineSink(int64_t intervalCycles = 256);

    void onSimBegin(const dfg::Graph &graph,
                    const sim::SimConfig &cfg) override;
    void onFire(int64_t cycle, dfg::NodeId node) override;
    void onStall(int64_t cycle, dfg::NodeId node,
                 StallReason reason) override;
    void onSimEnd(const sim::SimResult &result) override;

    /** Per-node per-interval counters. */
    struct Bucket
    {
        int64_t fires = 0;
        int64_t noInput = 0;
        int64_t noSpace = 0;
        int64_t bankConflict = 0;
        bool any() const
        {
            return fires | noInput | noSpace | bankConflict;
        }
    };

    int64_t interval() const { return intervalCycles; }
    int numIntervals() const;
    const Bucket &at(dfg::NodeId node, int intervalIdx) const;

    int64_t totalFires() const;
    int64_t totalStalls(StallReason reason) const;

    /** Machine-readable dump: interval width, run length, and per
     *  node the non-empty interval buckets. */
    void writeJson(std::ostream &out) const;

    /** Terminal summary: the most-stalled nodes with their dominant
     *  stall reason and the worst interval. */
    std::string toString(int maxRows = 12) const;

  private:
    Bucket &bucket(int64_t cycle, dfg::NodeId node);

    /** Per-node labels, snapshotted at onSimBegin so the sink
     *  stays valid after the graph dies. */
    struct NodeLabel
    {
        std::string kind;
        std::string name;
    };

    int64_t intervalCycles;
    int64_t finalCycles = 0;
    std::vector<NodeLabel> labels;
    /** [node][interval]; grown lazily as cycles advance. */
    std::vector<std::vector<Bucket>> buckets;
};

} // namespace pipestitch::trace

#endif // PIPESTITCH_TRACE_STALL_TIMELINE_HH
