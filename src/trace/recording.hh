/**
 * @file
 * RecordingObserver — captures the full event stream in memory for
 * replay-style assertions (used by tests/test_trace.cc to prove the
 * dense-scan and ready-list schedulers are observationally
 * identical, and that event counts reconcile with SimStats).
 *
 * SyncPlane callbacks are kept in a separate per-cycle list: their
 * position *within* a cycle's stream depends on which fixpoint
 * round first evaluated a group, which is scheduler-specific; the
 * set of cycles is not.
 */

#ifndef PIPESTITCH_TRACE_RECORDING_HH
#define PIPESTITCH_TRACE_RECORDING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "trace/observer.hh"

namespace pipestitch::trace {

class RecordingObserver final : public SimObserver
{
  public:
    enum class Kind { Fire, Stall, Mem, Dispatch };

    struct Event
    {
        Kind kind;
        int64_t cycle;
        dfg::NodeId node;
        /** Stall: reason. Mem: isLoad. Dispatch: spawn. */
        int a = 0;
        /** Mem: address. Dispatch: thread tag. */
        int64_t b = 0;

        bool
        operator==(const Event &o) const
        {
            return kind == o.kind && cycle == o.cycle &&
                   node == o.node && a == o.a && b == o.b;
        }
    };

    std::vector<Event> events;
    std::vector<int64_t> syncPlaneCycles;
    bool simEnded = false;

    void
    onSimBegin(const dfg::Graph &, const sim::SimConfig &) override
    {
        events.clear();
        syncPlaneCycles.clear();
        simEnded = false;
    }

    void
    onFire(int64_t cycle, dfg::NodeId node) override
    {
        events.push_back({Kind::Fire, cycle, node, 0, 0});
    }

    void
    onStall(int64_t cycle, dfg::NodeId node,
            StallReason reason) override
    {
        events.push_back(
            {Kind::Stall, cycle, node, static_cast<int>(reason), 0});
    }

    void
    onMemAccess(int64_t cycle, dfg::NodeId node, bool isLoad,
                sim::Word addr, int) override
    {
        events.push_back({Kind::Mem, cycle, node, isLoad ? 1 : 0,
                          static_cast<int64_t>(addr)});
    }

    void
    onDispatch(int64_t cycle, dfg::NodeId node, bool spawn,
               int32_t threadTag) override
    {
        events.push_back({Kind::Dispatch, cycle, node,
                          spawn ? 1 : 0, threadTag});
    }

    void
    onSyncPlane(int64_t cycle) override
    {
        syncPlaneCycles.push_back(cycle);
    }

    void
    onSimEnd(const sim::SimResult &) override
    {
        simEnded = true;
    }

    int64_t
    count(Kind kind) const
    {
        int64_t n = 0;
        for (const Event &e : events)
            n += e.kind == kind ? 1 : 0;
        return n;
    }

    std::string
    describe(const Event &e) const
    {
        const char *k = e.kind == Kind::Fire       ? "fire"
                        : e.kind == Kind::Stall    ? "stall"
                        : e.kind == Kind::Mem      ? "mem"
                                                   : "dispatch";
        return csprintf("[%lld] %s n%d a=%d b=%lld",
                        static_cast<long long>(e.cycle), k, e.node,
                        e.a, static_cast<long long>(e.b));
    }
};

} // namespace pipestitch::trace

#endif // PIPESTITCH_TRACE_RECORDING_HH
