#include "trace/chrome_trace.hh"

#include "base/logging.hh"
#include "sim/simulator.hh"
#include "trace/json.hh"

namespace pipestitch::trace {

void
ChromeTraceSink::onSimBegin(const dfg::Graph &g,
                            const sim::SimConfig &cfg)
{
    program = g.name;
    nodes.clear();
    nodes.reserve(static_cast<size_t>(g.size()));
    for (dfg::NodeId id = 0; id < g.size(); id++) {
        const dfg::Node &node = g.at(id);
        nodes.push_back({dfg::nodeKindName(node.kind), node.name,
                         node.kind == dfg::NodeKind::Load,
                         node.cfInNoc});
    }
    memLatency = cfg.memLatency;
    fires.clear();
    instants.clear();
    finalCycles = 0;
}

void
ChromeTraceSink::onFire(int64_t cycle, dfg::NodeId node)
{
    fires.push_back({cycle, node});
}

void
ChromeTraceSink::onMemAccess(int64_t cycle, dfg::NodeId node,
                             bool isLoad, sim::Word addr, int bank)
{
    instants.push_back({cycle, node,
                        isLoad ? Instant::Kind::Load
                               : Instant::Kind::Store,
                        static_cast<int64_t>(addr), bank});
}

void
ChromeTraceSink::onDispatch(int64_t cycle, dfg::NodeId node,
                            bool spawn, int32_t threadTag)
{
    instants.push_back({cycle, node,
                        spawn ? Instant::Kind::Spawn
                              : Instant::Kind::Cont,
                        threadTag, -1});
}

void
ChromeTraceSink::onSimEnd(const sim::SimResult &result)
{
    finalCycles = result.stats.cycles;
}

void
ChromeTraceSink::write(std::ostream &out) const
{
    ps_assert(!nodes.empty(),
              "ChromeTraceSink::write before any simulation");
    JsonWriter w(out);
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("otherData").beginObject();
    w.key("program").value(program);
    w.key("cycles").value(finalCycles);
    w.endObject();
    w.key("traceEvents").beginArray();

    // Track naming + sorting metadata: one track per node, in id
    // order, labeled with the operator it hosts.
    for (size_t id = 0; id < nodes.size(); id++) {
        const NodeLabel &node = nodes[id];
        w.beginObject();
        w.key("name").value("thread_name");
        w.key("ph").value("M");
        w.key("pid").value(0);
        w.key("tid").value(static_cast<int64_t>(id));
        w.key("args").beginObject();
        w.key("name").value(
            csprintf("n%zu %s %s%s", id, node.kind.c_str(),
                     node.name.c_str(),
                     node.cfInNoc ? " [NoC]" : ""));
        w.endObject();
        w.endObject();
        w.beginObject();
        w.key("name").value("thread_sort_index");
        w.key("ph").value("M");
        w.key("pid").value(0);
        w.key("tid").value(static_cast<int64_t>(id));
        w.key("args").beginObject();
        w.key("sort_index").value(static_cast<int64_t>(id));
        w.endObject();
        w.endObject();
    }

    for (const Fire &f : fires) {
        const NodeLabel &node = nodes[static_cast<size_t>(f.node)];
        bool isLoad = node.isLoad;
        w.beginObject();
        w.key("name").value(node.name.empty() ? node.kind
                                              : node.name);
        w.key("cat").value(node.kind);
        w.key("ph").value("X");
        w.key("pid").value(0);
        w.key("tid").value(f.node);
        w.key("ts").value(f.cycle);
        // Loads occupy their track until the data returns.
        w.key("dur").value(isLoad ? memLatency : 1);
        w.endObject();
    }

    for (const Instant &i : instants) {
        w.beginObject();
        switch (i.kind) {
          case Instant::Kind::Spawn:
            w.key("name").value(
                csprintf("spawn t%lld",
                         static_cast<long long>(i.arg)));
            w.key("cat").value("dispatch");
            break;
          case Instant::Kind::Cont:
            w.key("name").value(
                i.arg >= 0
                    ? csprintf("cont t%lld",
                               static_cast<long long>(i.arg))
                    : std::string("cont"));
            w.key("cat").value("dispatch");
            break;
          case Instant::Kind::Load:
            w.key("name").value(
                csprintf("load @%lld",
                         static_cast<long long>(i.arg)));
            w.key("cat").value("memory");
            break;
          case Instant::Kind::Store:
            w.key("name").value(
                csprintf("store @%lld",
                         static_cast<long long>(i.arg)));
            w.key("cat").value("memory");
            break;
        }
        w.key("ph").value("i");
        w.key("s").value("t"); // thread-scoped instant
        w.key("pid").value(0);
        w.key("tid").value(i.node);
        w.key("ts").value(i.cycle);
        if (i.bank >= 0) {
            w.key("args").beginObject();
            w.key("addr").value(i.arg);
            w.key("bank").value(i.bank);
            w.endObject();
        }
        w.endObject();
    }

    w.endArray();
    w.endObject();
    out << '\n';
}

} // namespace pipestitch::trace
