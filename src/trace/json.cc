#include "trace/json.hh"

#include <cmath>
#include <cstdio>

#include "base/logging.hh"

namespace pipestitch::trace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::comma()
{
    if (pendingKey) {
        pendingKey = false;
        return; // the key already emitted the separator
    }
    if (!hasElem.empty()) {
        if (hasElem.back())
            out << ',';
        hasElem.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    out << '{';
    hasElem.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    ps_assert(!hasElem.empty() && !pendingKey,
              "unbalanced JSON object");
    hasElem.pop_back();
    out << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    comma();
    out << '[';
    hasElem.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    ps_assert(!hasElem.empty() && !pendingKey,
              "unbalanced JSON array");
    hasElem.pop_back();
    out << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    ps_assert(!pendingKey, "JSON key without a value");
    comma();
    out << '"' << jsonEscape(k) << "\":";
    pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    comma();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    comma();
    if (!std::isfinite(v)) {
        out << "null"; // JSON has no NaN/Inf
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    comma();
    out << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    comma();
    out << '"' << jsonEscape(v) << '"';
    return *this;
}

} // namespace pipestitch::trace
