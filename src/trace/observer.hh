/**
 * @file
 * SimObserver — the simulator's observability hook API.
 *
 * An observer is attached through `SimConfig::observer` and receives
 * a callback on every architecturally meaningful simulator event:
 * operator fires, stall verdicts, memory accesses, dispatch-group
 * decisions (spawn/continuation), and SyncPlane evaluations. The
 * hooks are designed so that:
 *
 *  - with no observer attached the simulator pays exactly one
 *    pointer test per would-be callback (verified to be within
 *    noise by bench/micro_benchmarks BM_SimulateObserver);
 *  - the dense-scan and ready-list schedulers emit *identical*
 *    event streams (the simulator falls back to the reference stall
 *    census while observed, and fires are committed in the same
 *    per-round ascending-id order by both schedulers; enforced by
 *    tests/test_trace.cc).
 *
 * Concrete sinks live next to this header: ChromeTraceSink (trace
 * viewer JSON), StallTimelineSink (per-node per-interval stall
 * attribution), RecordingObserver (test replay). Multiple sinks
 * attach through ObserverList.
 */

#ifndef PIPESTITCH_TRACE_OBSERVER_HH
#define PIPESTITCH_TRACE_OBSERVER_HH

#include <cstdint>
#include <vector>

#include "dfg/graph.hh"
#include "sim/stats.hh"
#include "sim/token.hh"

namespace pipestitch::sim {
struct SimConfig;
struct SimResult;
} // namespace pipestitch::sim

namespace pipestitch::trace {

/** Why an observed node did not fire in a cycle (matching the
 *  simulator's stall census; only *counted* stalls are reported,
 *  i.e. the node had work pending or lost a bank arbitration). */
enum class StallReason { NoInput, NoSpace, BankConflict };

const char *stallReasonName(StallReason reason);

class SimObserver
{
  public:
    virtual ~SimObserver() = default;

    /** The simulation is about to start. @p graph and @p cfg outlive
     *  the run; sinks may keep references for name lookups. */
    virtual void
    onSimBegin(const dfg::Graph &graph, const sim::SimConfig &cfg)
    {
        (void)graph;
        (void)cfg;
    }

    /** Node @p node fired at @p cycle (PE, trigger, or router CF). */
    virtual void
    onFire(int64_t cycle, dfg::NodeId node)
    {
        (void)cycle;
        (void)node;
    }

    /** Node @p node was counted as stalled at @p cycle. */
    virtual void
    onStall(int64_t cycle, dfg::NodeId node, StallReason reason)
    {
        (void)cycle;
        (void)node;
        (void)reason;
    }

    /** Memory PE @p node accessed @p addr (bank @p bank). Loads
     *  complete `SimConfig::memLatency` cycles later. */
    virtual void
    onMemAccess(int64_t cycle, dfg::NodeId node, bool isLoad,
                sim::Word addr, int bank)
    {
        (void)cycle;
        (void)node;
        (void)isLoad;
        (void)addr;
        (void)bank;
    }

    /** Dispatch gate @p node forwarded a token: a freshly spawned
     *  thread (@p spawn, tag = the new thread id) or a continuation
     *  of the running thread @p threadTag. */
    virtual void
    onDispatch(int64_t cycle, dfg::NodeId node, bool spawn,
               int32_t threadTag)
    {
        (void)cycle;
        (void)node;
        (void)spawn;
        (void)threadTag;
    }

    /** The SyncPlane evaluated at least one dispatch group this
     *  cycle (at most one callback per cycle). The round within the
     *  cycle at which this fires is scheduler-dependent; treat it as
     *  cycle-granular, not stream-ordered. */
    virtual void
    onSyncPlane(int64_t cycle)
    {
        (void)cycle;
    }

    /** The run retired (or deadlocked / tripped the watchdog). */
    virtual void
    onSimEnd(const sim::SimResult &result)
    {
        (void)result;
    }
};

/** Fan-out observer: forwards every hook to each registered child
 *  in registration order. Children are not owned. */
class ObserverList final : public SimObserver
{
  public:
    void add(SimObserver *obs) { children.push_back(obs); }
    bool empty() const { return children.empty(); }

    void
    onSimBegin(const dfg::Graph &graph,
               const sim::SimConfig &cfg) override
    {
        for (auto *c : children)
            c->onSimBegin(graph, cfg);
    }

    void
    onFire(int64_t cycle, dfg::NodeId node) override
    {
        for (auto *c : children)
            c->onFire(cycle, node);
    }

    void
    onStall(int64_t cycle, dfg::NodeId node,
            StallReason reason) override
    {
        for (auto *c : children)
            c->onStall(cycle, node, reason);
    }

    void
    onMemAccess(int64_t cycle, dfg::NodeId node, bool isLoad,
                sim::Word addr, int bank) override
    {
        for (auto *c : children)
            c->onMemAccess(cycle, node, isLoad, addr, bank);
    }

    void
    onDispatch(int64_t cycle, dfg::NodeId node, bool spawn,
               int32_t threadTag) override
    {
        for (auto *c : children)
            c->onDispatch(cycle, node, spawn, threadTag);
    }

    void
    onSyncPlane(int64_t cycle) override
    {
        for (auto *c : children)
            c->onSyncPlane(cycle);
    }

    void
    onSimEnd(const sim::SimResult &result) override
    {
        for (auto *c : children)
            c->onSimEnd(result);
    }

  private:
    std::vector<SimObserver *> children;
};

} // namespace pipestitch::trace

#endif // PIPESTITCH_TRACE_OBSERVER_HH
