/**
 * @file
 * Minimal recursive-descent JSON parser (the counterpart of the
 * streaming writer in json.hh). Parses one document into a small DOM
 * — enough for the serve daemon's newline-delimited request
 * protocol. Numbers are doubles (JSON has no integer type); objects
 * keep member order and allow duplicate keys (last one wins on
 * lookup, matching common parsers).
 */

#ifndef PIPESTITCH_TRACE_JSON_PARSE_HH
#define PIPESTITCH_TRACE_JSON_PARSE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pipestitch::trace {

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> elems;
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Last member named @p key, or null if absent / not an object. */
    const JsonValue *find(const std::string &key) const;

    /** @{ Typed getters with defaults (wrong kind => default). */
    std::string asString(const std::string &def = "") const;
    int64_t asInt(int64_t def = 0) const;
    double asDouble(double def = 0) const;
    bool asBool(bool def = false) const;
    /** @} */
};

/**
 * Parse @p text (one complete JSON document, surrounding whitespace
 * allowed). @return true on success; on failure @p error (if
 * non-null) receives a message with the byte offset.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

} // namespace pipestitch::trace

#endif // PIPESTITCH_TRACE_JSON_PARSE_HH
