#include "trace/observer.hh"

namespace pipestitch::trace {

const char *
stallReasonName(StallReason reason)
{
    switch (reason) {
      case StallReason::NoInput: return "no_input";
      case StallReason::NoSpace: return "no_space";
      case StallReason::BankConflict: return "bank_conflict";
    }
    return "?";
}

} // namespace pipestitch::trace
