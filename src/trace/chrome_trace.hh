/**
 * @file
 * Chrome trace-event exporter: records fires, dispatch decisions,
 * and memory accesses, then serializes them in the Trace Event
 * Format readable by chrome://tracing and https://ui.perfetto.dev.
 *
 * Layout: one track (tid) per node, named "n<id> <kind> <name>";
 * fires are duration events ("ph":"X", one cycle long, loads
 * stretched to the memory latency), spawns/continuations and
 * stores are instant events ("ph":"i"). Timestamps are cycles
 * (1 cycle = 1 "us" in the viewer's units).
 *
 * Event counts reconcile exactly with SimStats:
 *   spanCount()    == sum(nodeFires)
 *   instantCount() == dispatchSpawns + dispatchConts
 *                     + memLoads + memStores
 * (dispatch/memory instants ride on top of the same firings'
 * spans; tests/test_trace.cc enforces the reconciliation).
 */

#ifndef PIPESTITCH_TRACE_CHROME_TRACE_HH
#define PIPESTITCH_TRACE_CHROME_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "trace/observer.hh"

namespace pipestitch::trace {

class ChromeTraceSink final : public SimObserver
{
  public:
    void onSimBegin(const dfg::Graph &graph,
                    const sim::SimConfig &cfg) override;
    void onFire(int64_t cycle, dfg::NodeId node) override;
    void onMemAccess(int64_t cycle, dfg::NodeId node, bool isLoad,
                     sim::Word addr, int bank) override;
    void onDispatch(int64_t cycle, dfg::NodeId node, bool spawn,
                    int32_t threadTag) override;
    void onSimEnd(const sim::SimResult &result) override;

    /** Serialize everything recorded so far as one JSON document. */
    void write(std::ostream &out) const;

    /** Number of duration ("X") events recorded. */
    int64_t spanCount() const
    {
        return static_cast<int64_t>(fires.size());
    }

    /** Number of instant ("i") events recorded. */
    int64_t instantCount() const
    {
        return static_cast<int64_t>(instants.size());
    }

  private:
    struct Fire
    {
        int64_t cycle;
        dfg::NodeId node;
    };

    struct Instant
    {
        enum class Kind { Spawn, Cont, Load, Store };
        int64_t cycle;
        dfg::NodeId node;
        Kind kind;
        int64_t arg; ///< thread tag or address
        int bank = -1;
    };

    /** Snapshot of what write() needs per node, taken at
     *  onSimBegin so the sink stays valid after the graph dies. */
    struct NodeLabel
    {
        std::string kind;
        std::string name;
        bool isLoad = false;
        bool cfInNoc = false;
    };

    std::string program;
    std::vector<NodeLabel> nodes;
    int memLatency = 1;
    int64_t finalCycles = 0;
    std::vector<Fire> fires;
    std::vector<Instant> instants;
};

} // namespace pipestitch::trace

#endif // PIPESTITCH_TRACE_CHROME_TRACE_HH
