/**
 * @file
 * Structured diagnostics for the static dataflow analyzer.
 *
 * Every finding carries a stable rule ID (documented with its paper
 * citation in docs/static-analysis.md), a severity, the offending
 * nodes/edges, and a fix hint — instead of the flat strings the old
 * dfg::verify() emitted. The rule registry is the single source of
 * truth for IDs, titles and citations; tests and docs key off it.
 *
 * Rule families:
 *   PS-S* structural   — operand wiring / ISA contracts (Fig. 6)
 *   PS-D* deadlock     — buffer-aware cycle + spawn-reserve checks
 *                        (Sec. 4.4 Fig. 10, Sec. 4.8 Fig. 20)
 *   PS-B* token balance — SDF-style production/consumption rates
 *   PS-P* placement    — post-map fabric lint (Sec. 4.8, Sec. 5.1)
 *   PS-T* timing       — throughput-bound warnings (recurrences,
 *                        buffer slack, bank/link pressure); the
 *                        graph still runs, just no faster than the
 *                        certified bound (analysis/throughput.hh)
 */

#ifndef PIPESTITCH_ANALYSIS_DIAGNOSTICS_HH
#define PIPESTITCH_ANALYSIS_DIAGNOSTICS_HH

#include <string>
#include <vector>

#include "dfg/graph.hh"

namespace pipestitch::trace {
class JsonWriter;
} // namespace pipestitch::trace

namespace pipestitch::analysis {

enum class Severity { Error, Warning };

const char *severityName(Severity s);

/** One wire in the graph: (producer, output port) → (consumer, input). */
struct EdgeRef
{
    dfg::NodeId from = dfg::NoNode;
    int port = 0;
    dfg::NodeId to = dfg::NoNode;
    int input = 0;

    bool operator==(const EdgeRef &other) const = default;
};

/** One analyzer finding. */
struct Diagnostic
{
    /** Stable rule ID, e.g. "PS-D01". */
    std::string rule;
    Severity severity = Severity::Error;

    /** Primary offending node (NoNode for graph-level findings). */
    dfg::NodeId node = dfg::NoNode;
    /** All involved nodes (cycle members, group members...). */
    std::vector<dfg::NodeId> nodes;
    /** Involved edges (cycle wires, overloaded routes...). */
    std::vector<EdgeRef> edges;

    /** What is wrong (without node prefix; rendering adds it). */
    std::string message;
    /** How to fix it. */
    std::string hint;

    bool isError() const { return severity == Severity::Error; }
};

/** Registry entry: one row per rule ID. */
struct RuleInfo
{
    const char *id;
    const char *title;
    Severity severity;
    /** Paper citation backing the rule. */
    const char *citation;
};

/** All known rules, in ID order. */
const std::vector<RuleInfo> &ruleRegistry();

/** Registry row for @p id, or nullptr. */
const RuleInfo *findRule(const std::string &id);

/**
 * Terminal rendering:
 *   "PS-S01 error node 3 (steer exit): <message> [hint: ...]"
 */
std::string toString(const Diagnostic &d, const dfg::Graph &graph);

/** Emit @p d as one JSON object on @p w. */
void writeJson(trace::JsonWriter &w, const Diagnostic &d,
               const dfg::Graph &graph);

} // namespace pipestitch::analysis

#endif // PIPESTITCH_ANALYSIS_DIAGNOSTICS_HH
