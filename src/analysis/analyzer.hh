/**
 * @file
 * Multi-pass static analyzer for compiled dataflow graphs.
 *
 * Pipestitch's correctness argument is static (Sec. 4.8): bubble
 * flow control guarantees forward progress only if every graph the
 * compiler emits is structurally sound, free of zero-slack
 * backpressure cycles, and rate-balanced. The analyzer proves those
 * properties per graph, on every compile, and reports violations as
 * structured diagnostics (analysis/diagnostics.hh).
 *
 * Passes:
 *  - structural (PS-S01..S06): operand/ISA contracts, CF-in-NoC
 *    eligibility, combinational NoC cycles. dfg::verify() is a thin
 *    wrapper over this pass.
 *  - deadlock freedom (PS-D01..D03): buffer-aware cycle analysis.
 *    Loop backedges (Graph::isBackedgeInput) are the only ports that
 *    decouple a cycle — carry/invariant/dispatch emit before they
 *    consume them. Any wire cycle avoiding all backedge ports needs
 *    a token on every edge before any member can fire, so no buffer
 *    depth and no bubble can drain it (PS-D01). The dispatch spawn
 *    reserve needs two free slots per gate, so depth < 2 statically
 *    deadlocks every spawn (PS-D02, Fig. 10). Gate spawn/cont inputs
 *    must come from entry-rate/iteration-rate regions respectively or
 *    the SyncPlane group jams (PS-D03).
 *  - token balance (PS-B01/B02): SDF-style rate check per wire. A
 *    producer nested deeper than the edge's common loop emits once
 *    per inner iteration while the consumer drains at the outer rate
 *    — unbounded queue growth unless the producer is a steer (the
 *    sanctioned conditional exit). A consumer nested deeper starves
 *    unless the port is consumed once per loop entry (carry init,
 *    invariant value, dispatch spawn, stream bounds).
 *
 * Placement lint (PS-P*) lives in analysis/placement.hh — it needs
 * the fabric and mapping, not just the graph.
 */

#ifndef PIPESTITCH_ANALYSIS_ANALYZER_HH
#define PIPESTITCH_ANALYSIS_ANALYZER_HH

#include <string>
#include <vector>

#include "analysis/diagnostics.hh"
#include "dfg/graph.hh"

namespace pipestitch::analysis {

struct AnalysisOptions
{
    /** TokenFifo depth the deadlock pass models (paper default 4). */
    int bufferDepth = 4;

    bool structural = true;
    bool deadlock = true;
    bool balance = true;
    /** PS-T throughput-bound warnings (analysis/throughput.hh). */
    bool timing = true;

    /** PS-T01 fires when a loop-carried recurrence exceeds this
     *  many cycles per iteration. */
    int recurrenceLimit = 8;

    /** Memory banks the PS-T03 pressure check assumes (the fabric
     *  default; lintPlacement-independent). */
    int memBanks = 16;
};

/** Result of analyzing one graph (plus, optionally, its placement). */
struct AnalysisReport
{
    std::vector<Diagnostic> diags;

    /** No PS-S* errors. */
    bool structureOk = true;
    /** structureOk and no PS-D* errors: the analyzer certifies the
     *  graph cannot deadlock; the simulator must agree. */
    bool deadlockFree = true;
    /** No PS-B* errors: token rates balance on every wire. */
    bool balanced = true;
    /** No PS-P* errors (meaningful only after lintPlacement). */
    bool placementOk = true;
    /** No PS-T* errors. PS-T rules ship as warnings (the graph
     *  still runs, just bounded), so this stays true today; the
     *  flag exists so a future hard timing contract slots in
     *  beside the other verdicts. */
    bool timingOk = true;

    int errorCount() const;
    int warningCount() const;
    bool ok() const { return errorCount() == 0; }

    void add(Diagnostic d);

    /** One line per diagnostic (see analysis::toString). */
    std::string toString(const dfg::Graph &graph) const;

    /** JSON object: verdicts plus a diagnostics array. */
    std::string toJson(const dfg::Graph &graph) const;
};

/** Run the graph-level passes selected in @p options. */
AnalysisReport analyzeGraph(const dfg::Graph &graph,
                            const AnalysisOptions &options = {});

} // namespace pipestitch::analysis

#endif // PIPESTITCH_ANALYSIS_ANALYZER_HH
