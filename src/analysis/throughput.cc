#include "analysis/throughput.hh"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>
#include <utility>

#include "base/logging.hh"
#include "mapper/routecost.hh"

namespace pipestitch::analysis {

namespace {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::NodeKind;
namespace pidx = dfg::port_idx;

constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;

/**
 * True when input @p in of @p n is consumed on *every* fire AND the
 * node's emission is order-preserving with drops (at most one output
 * token per consumed input token, in order). Only such ports may
 * serve as intermediates of a certified dependence path: they
 * guarantee that output token #m derives from input token #k >= m.
 *
 * Gates (carry/invariant/dispatch/stream/trigger) replay, latch, or
 * generate tokens — their emissions are not 1:1 with any input — so
 * they never qualify; merge consumes its data sides conditionally;
 * the optional load/store order tokens are excluded conservatively.
 */
bool
allowedPort(const Node &n, int in)
{
    switch (n.kind) {
      case NodeKind::Arith:
        return true;
      case NodeKind::Const:
        return in == 0;
      case NodeKind::Steer:
        return in == pidx::SteerDecider || in == pidx::SteerValue;
      case NodeKind::Merge:
        return in == pidx::MergeDecider;
      case NodeKind::Load:
        return in == pidx::LoadAddr;
      case NodeKind::Store:
        return in == pidx::StoreAddr || in == pidx::StoreData;
      default:
        return false;
    }
}

/**
 * The timing model shared by the graph-only lint and the
 * Program-level bound: per-edge delay lower bounds. Without a
 * Program, sequentiality comes from Node::cfInNoc and there are no
 * inter-tile channels.
 */
struct TimingView
{
    const Graph *graph;
    const sim::Program *prog = nullptr;

    bool
    seq(NodeId v) const
    {
        if (prog)
            return prog->nocNode[static_cast<size_t>(v)] == 0;
        return !graph->at(v).cfInNoc;
    }

    /** Delay lower bound of a token crossing the wire into input
     *  @p in of @p v: one cycle into a sequential consumer, zero
     *  into a combinational router, the channel latency when the
     *  edge crosses a tile boundary. */
    int64_t
    weight(NodeId v, int in) const
    {
        int64_t w = seq(v) ? 1 : 0;
        if (prog && prog->hasChannels) {
            int id = prog->chanIdOf[static_cast<size_t>(v)]
                                   [static_cast<size_t>(in)];
            if (id >= 0) {
                w = std::max<int64_t>(
                    w, prog->channels[static_cast<size_t>(id)]
                           .latency);
            }
        }
        return w;
    }
};

struct ShortestPaths
{
    std::vector<int64_t> dist;
    std::vector<NodeId> parent;
    std::vector<int> hops; ///< edges on the chosen shortest path
};

/**
 * Dijkstra over allowed edges (forward: producer to consumer).
 * @p sources lists (node, initial distance); ties between equal
 * distances prefer fewer hops, then the smaller predecessor, for
 * deterministic diagnostics.
 */
ShortestPaths
shortestPaths(const TimingView &view,
              const std::vector<NodeId> &sources)
{
    const Graph &g = *view.graph;
    const size_t n = static_cast<size_t>(g.size());
    ShortestPaths sp;
    sp.dist.assign(n, kInf);
    sp.parent.assign(n, dfg::NoNode);
    sp.hops.assign(n, 0);

    using Item = std::pair<int64_t, NodeId>;
    std::priority_queue<Item, std::vector<Item>,
                        std::greater<Item>> pq;
    for (NodeId s : sources) {
        sp.dist[static_cast<size_t>(s)] = 0;
        pq.push({0, s});
    }
    while (!pq.empty()) {
        auto [d, u] = pq.top();
        pq.pop();
        if (d != sp.dist[static_cast<size_t>(u)])
            continue;
        const Node &nu = g.at(u);
        for (int p = 0; p < nu.numOutputs(); p++) {
            for (const dfg::Consumer &c : g.consumersOf({u, p})) {
                if (!allowedPort(g.at(c.node), c.inputIndex))
                    continue;
                size_t v = static_cast<size_t>(c.node);
                int64_t nd = d + view.weight(c.node, c.inputIndex);
                int nh = sp.hops[static_cast<size_t>(u)] + 1;
                if (nd < sp.dist[v] ||
                    (nd == sp.dist[v] &&
                     (nh < sp.hops[v] ||
                      (nh == sp.hops[v] && u < sp.parent[v])))) {
                    bool improved = nd < sp.dist[v];
                    sp.dist[v] = nd;
                    sp.parent[v] = u;
                    sp.hops[v] = nh;
                    if (improved)
                        pq.push({nd, c.node});
                }
            }
        }
    }
    return sp;
}

/** Earliest-first-fire depths: multi-source Dijkstra from every node
 *  with no allowed wired input (gates, triggers, immediate-fed). */
ShortestPaths
computeDepths(const TimingView &view)
{
    const Graph &g = *view.graph;
    std::vector<NodeId> sources;
    for (NodeId id = 0; id < g.size(); id++) {
        const Node &n = g.at(id);
        bool fed = false;
        for (int i = 0; i < n.numInputs() && !fed; i++) {
            fed = n.inputs[static_cast<size_t>(i)].isWire() &&
                  allowedPort(n, i);
        }
        if (!fed)
            sources.push_back(id);
    }
    return shortestPaths(view, sources);
}

std::vector<RecurrenceInfo>
findRecurrences(const TimingView &view)
{
    const Graph &g = *view.graph;
    std::vector<RecurrenceInfo> out;
    for (NodeId id = 0; id < g.size(); id++) {
        const Node &n = g.at(id);
        if (n.kind != NodeKind::Carry ||
            pidx::CarryCont >= n.numInputs()) {
            continue;
        }
        const dfg::Operand &cont =
            n.inputs[static_cast<size_t>(pidx::CarryCont)];
        if (!cont.isWire())
            continue;
        ShortestPaths sp = shortestPaths(view, {id});
        NodeId tail = cont.port.node;
        if (sp.dist[static_cast<size_t>(tail)] >= kInf)
            continue; // no certified path closes this cycle
        RecurrenceInfo rc;
        rc.gate = id;
        rc.pmin = sp.dist[static_cast<size_t>(tail)] +
                  view.weight(id, pidx::CarryCont);
        std::vector<NodeId> rev;
        for (NodeId v = tail; v != id && v != dfg::NoNode;
             v = sp.parent[static_cast<size_t>(v)]) {
            rev.push_back(v);
        }
        rc.members.push_back(id);
        rc.members.insert(rc.members.end(), rev.rbegin(),
                          rev.rend());
        out.push_back(std::move(rc));
    }
    return out;
}

std::vector<NodeId>
memoryNodes(const Graph &g)
{
    std::vector<NodeId> mem;
    for (NodeId id = 0; id < g.size(); id++) {
        NodeKind k = g.at(id).kind;
        if (k == NodeKind::Load || k == NodeKind::Store)
            mem.push_back(id);
    }
    return mem;
}

const std::string &
nameOf(const Graph &g, NodeId id)
{
    return g.at(id).name;
}

std::string
label(const Graph &g, NodeId id)
{
    const std::string &n = nameOf(g, id);
    if (n.empty())
        return csprintf("node %d", id);
    return csprintf("node %d (%s)", id, n.c_str());
}

} // namespace

std::vector<RecurrenceInfo>
recurrenceCycles(const dfg::Graph &graph)
{
    ps_assert(graph.isFinalized(), "graph not finalized");
    TimingView view{&graph, nullptr};
    return findRecurrences(view);
}

sim::BoundReport
computeBound(const sim::Program &prog)
{
    const Graph &g = prog.graph();
    TimingView view{&g, &prog};
    sim::BoundReport rep;

    for (RecurrenceInfo &rc : findRecurrences(view)) {
        sim::BoundTerm t;
        t.kind = sim::BoundTerm::Kind::Recurrence;
        t.node = rc.gate;
        t.weight = rc.pmin;
        t.nodes = std::move(rc.members);
        t.detail = csprintf(
            "loop-carried recurrence through carry %s: every "
            "continuation token trails a prior output by >= %lld "
            "cycles over %zu operators",
            label(g, rc.gate).c_str(),
            static_cast<long long>(rc.pmin), t.nodes.size());
        t.hint = csprintf(
            "shorten the dependence cycle of carry %s (fewer "
            "sequential operators between its output and its cont "
            "input), or unroll the loop so independent iterations "
            "overlap",
            label(g, rc.gate).c_str());
        rep.terms.push_back(std::move(t));
    }

    ShortestPaths depths = computeDepths(view);
    if (!prog.allSeqNodes.empty()) {
        sim::BoundTerm t;
        t.kind = sim::BoundTerm::Kind::Pipeline;
        for (NodeId v : prog.allSeqNodes) {
            int64_t d = depths.dist[static_cast<size_t>(v)];
            t.nodes.push_back(v);
            t.weights.push_back(d >= kInf ? 0 : d);
        }
        t.detail = csprintf(
            "pipeline fill: earliest-fire depths over %zu "
            "sequential operators; a node at depth d firing f "
            "times occupies at least d + f cycles",
            t.nodes.size());
        t.hint = "the deepest busy operator sets the floor; "
                 "shorten its fill path or reduce its fire count";
        rep.terms.push_back(std::move(t));
    }

    for (size_t l = 0; l < prog.dispatchGroups.size(); l++) {
        std::vector<NodeId> gates;
        for (NodeId gate : prog.dispatchGroups[l]) {
            if (view.seq(gate))
                gates.push_back(gate);
        }
        if (gates.empty())
            continue;
        sim::BoundTerm t;
        t.kind = sim::BoundTerm::Kind::Dispatch;
        t.node = gates.front();
        t.nodes = std::move(gates);
        t.detail = csprintf(
            "SyncPlane dispatch group of loop %zu: each of its %zu "
            "gates decides at most one token set per cycle",
            l, t.nodes.size());
        t.hint = "thread-level parallelism is serialized through "
                 "this group; split the loop or widen the fabric "
                 "to host more groups";
        rep.terms.push_back(std::move(t));
    }

    for (const auto &grp : prog.cfg.shareGroups) {
        if (grp.size() < 2)
            continue;
        sim::BoundTerm t;
        t.kind = sim::BoundTerm::Kind::ShareGroup;
        int64_t minDepth = kInf;
        for (int member : grp) {
            NodeId v = static_cast<NodeId>(member);
            t.nodes.push_back(v);
            minDepth = std::min(
                minDepth, depths.dist[static_cast<size_t>(v)]);
        }
        t.node = t.nodes.front();
        t.weight = minDepth >= kInf ? 0 : minDepth;
        t.detail = csprintf(
            "time-multiplexed PE shared by %zu operators: at most "
            "one resident fires per cycle",
            t.nodes.size());
        t.hint = "give the hottest resident an exclusive PE";
        rep.terms.push_back(std::move(t));
    }

    std::vector<NodeId> mem = memoryNodes(g);
    if (!mem.empty()) {
        sim::BoundTerm t;
        t.kind = sim::BoundTerm::Kind::MemoryBanks;
        t.capacity = std::max(1, prog.cfg.memBanks);
        t.nodes = std::move(mem);
        t.node = t.nodes.front();
        t.detail = csprintf(
            "%zu memory operators share %lld banks: at most %lld "
            "requests initiate per cycle",
            t.nodes.size(), static_cast<long long>(t.capacity),
            static_cast<long long>(t.capacity));
        t.hint = "raise memBanks or reduce memory traffic";
        rep.terms.push_back(std::move(t));
    }

    for (const sim::Program::Channel &ch : prog.channels) {
        sim::BoundTerm t;
        t.kind = sim::BoundTerm::Kind::Channel;
        t.node = ch.dst;
        t.input = ch.dstIn;
        t.latency = ch.latency;
        t.capacity = std::max(1, ch.capacity);
        t.detail = csprintf(
            "inter-tile channel %s -> input %d of %s: each token "
            "occupies the %lld-slot channel for %lld cycles",
            label(g, ch.src).c_str(), ch.dstIn,
            label(g, ch.dst).c_str(),
            static_cast<long long>(t.capacity),
            static_cast<long long>(t.latency));
        t.hint = "remap so this edge stays inside one tile, or "
                 "raise interTileCapacity";
        rep.terms.push_back(std::move(t));
    }

    return rep;
}

void
addRouteBound(sim::BoundReport &report, const dfg::Graph &graph,
              const fabric::Fabric &fab,
              const mapper::Mapping &mapping)
{
    namespace rc = mapper::routecost;
    if (!mapping.success)
        return;
    const int width = fab.config().width;
    const size_t links = rc::linkCount(fab.config());
    auto posOf = [&](NodeId id) {
        int pos = mapping.positionOf(id);
        return pos >= 0 ? fab.coordOf(pos) : fabric::Coord{0, 0};
    };

    // Per link: routed-tree count plus, per tree, the consumer the
    // shared route model attributes the link to — summing that
    // consumer's token reads over all trees gives the link's
    // traffic.
    std::vector<int> load(links, 0);
    std::vector<std::vector<std::pair<NodeId, int>>> users(links);
    rc::ClaimScratch scratch;
    scratch.ensure(links);
    for (NodeId id = 0; id < graph.size(); id++) {
        const Node &n = graph.at(id);
        for (int p = 0; p < n.numOutputs(); p++) {
            rc::traceTree(
                graph, id, p, width, posOf, scratch,
                [&](size_t l, const dfg::Consumer &c) {
                    load[l]++;
                    users[l].push_back({c.node, c.inputIndex});
                },
                [](const dfg::Consumer &, int) {});
        }
    }

    size_t hot = 0;
    for (size_t l = 1; l < links; l++) {
        if (load[l] > load[hot])
            hot = l;
    }
    if (links == 0 || load[hot] == 0)
        return;

    sim::BoundTerm t;
    t.kind = sim::BoundTerm::Kind::HotLink;
    t.certified = false;
    for (const auto &[node, input] : users[hot]) {
        t.nodes.push_back(node);
        t.inputs.push_back(input);
    }
    t.node = t.nodes.front();
    fabric::Coord c = rc::linkCoord(width, hot);
    t.detail = csprintf(
        "hottest statically-routed link (%d,%d)%s carries %d "
        "multicast trees; their summed token traffic is a "
        "provisioning signal, not a certified cycle bound "
        "(circuit-switched links do not serialize)",
        c.x, c.y, rc::linkDirName(rc::linkDir(hot)), load[hot]);
    t.hint = "remap to spread these routes or raise linkCapacity";
    report.terms.push_back(std::move(t));
}

void
timingPass(const dfg::Graph &graph, const AnalysisOptions &options,
           AnalysisReport &report)
{
    TimingView view{&graph, nullptr};

    auto diag = [&](const char *rule, NodeId node,
                    std::string message,
                    std::string hint) -> Diagnostic & {
        Diagnostic d;
        d.rule = rule;
        const RuleInfo *info = findRule(d.rule);
        ps_assert(info != nullptr, "unknown rule %s", rule);
        d.severity = info->severity;
        d.node = node;
        if (node != dfg::NoNode)
            d.nodes.push_back(node);
        d.message = std::move(message);
        d.hint = std::move(hint);
        report.add(std::move(d));
        return report.diags.back();
    };

    // PS-T01: loop-carried recurrence longer than the limit.
    for (const RecurrenceInfo &rc : findRecurrences(view)) {
        if (rc.pmin <= options.recurrenceLimit)
            continue;
        Diagnostic &d = diag(
            "PS-T01", rc.gate,
            csprintf("loop-carried recurrence of %lld cycles over "
                     "%zu operators limits the loop to one "
                     "iteration per %lld cycles (limit %d)",
                     static_cast<long long>(rc.pmin),
                     rc.members.size(),
                     static_cast<long long>(rc.pmin),
                     options.recurrenceLimit),
            "shorten the cycle between the carry's output and its "
            "cont input, or unroll the loop");
        d.nodes = rc.members;
    }

    // PS-T02: reconvergent paths whose arrival imbalance exceeds
    // the buffer slack of the shorter path. Tokens on the shorter
    // path queue while the longer path fills; once its FIFOs are
    // full the short path backpressures its producers and the join
    // runs at the long path's latency.
    ShortestPaths depths = computeDepths(view);
    for (NodeId id = 0; id < graph.size(); id++) {
        const Node &n = graph.at(id);
        int64_t maxArr = -1, minArr = kInf;
        int maxIn = -1, minIn = -1;
        int minEdges = 1;
        for (int i = 0; i < n.numInputs(); i++) {
            const auto &in = n.inputs[static_cast<size_t>(i)];
            if (!in.isWire() || !allowedPort(n, i))
                continue;
            size_t p = static_cast<size_t>(in.port.node);
            if (depths.dist[p] >= kInf)
                continue;
            int64_t arr = depths.dist[p] + view.weight(id, i);
            if (arr > maxArr) {
                maxArr = arr;
                maxIn = i;
            }
            if (arr < minArr) {
                minArr = arr;
                minIn = i;
                minEdges = depths.hops[p] + 1;
            }
        }
        if (maxIn < 0 || minIn < 0 || maxIn == minIn)
            continue;
        int64_t imbalance = maxArr - minArr;
        int64_t slack =
            static_cast<int64_t>(options.bufferDepth) * minEdges;
        if (imbalance <= slack)
            continue;
        int64_t perEdge =
            (imbalance - slack + minEdges - 1) / minEdges;
        const dfg::Operand &shortOp =
            n.inputs[static_cast<size_t>(minIn)];
        Diagnostic &d = diag(
            "PS-T02", id,
            csprintf("input %d arrives %lld cycles behind input "
                     "%d, but the %d-edge shorter path buffers "
                     "only %lld tokens; the join stalls on "
                     "backpressure while the longer path fills",
                     minIn, static_cast<long long>(imbalance),
                     maxIn, minEdges,
                     static_cast<long long>(slack)),
            csprintf("+%lld buffer slots on each edge of the "
                     "shorter path (e.g. edge %d.%d -> %d.%d) "
                     "absorb the imbalance",
                     static_cast<long long>(perEdge),
                     shortOp.port.node, shortOp.port.index, id,
                     minIn));
        d.nodes.push_back(shortOp.port.node);
        d.edges.push_back(
            {shortOp.port.node, shortOp.port.index, id, minIn});
    }

    // PS-T03: more memory operators than banks.
    std::vector<NodeId> mem = memoryNodes(graph);
    if (static_cast<int>(mem.size()) > options.memBanks) {
        Diagnostic &d = diag(
            "PS-T03", mem.front(),
            csprintf("%zu memory operators compete for %d banks; "
                     "at most %d memory operations can initiate "
                     "per cycle",
                     mem.size(), options.memBanks,
                     options.memBanks),
            "reduce concurrent memory operators or raise memBanks");
        d.nodes = std::move(mem);
    }
}

} // namespace pipestitch::analysis
