/**
 * @file
 * Static throughput-bound analysis (the PS-T rule family).
 *
 * Computes, per compiled graph, the dependence structure that limits
 * steady-state throughput — and certifies it as a sim::BoundReport
 * the simulator can never beat:
 *
 *  - loop-carried recurrences: the shortest dependence cycle from a
 *    carry gate's output back into its continuation port, weighted
 *    by the timing model's per-hop costs (one cycle into every
 *    sequential consumer, zero into CF-in-NoC routers, channel
 *    latency across tiles). Only ports a node provably consumes on
 *    *every* fire, through operators whose emissions preserve token
 *    order (drops allowed, insertions not), participate — that
 *    restriction is what makes the bound sound rather than a
 *    heuristic critical path;
 *  - pipeline fill depths: the earliest cycle each sequential
 *    operator can first fire, from the same edge weights;
 *  - resource serialization: SyncPlane dispatch groups, shared-PE
 *    time-multiplexing groups, memory-bank ports, and inter-tile
 *    channel occupancy.
 *
 * The same structure drives the PS-T lint rules (warnings: the graph
 * still runs, just no faster than the bound):
 *
 *   PS-T01  recurrence-limited loop (p_min exceeds the limit)
 *   PS-T02  reconvergent path imbalance exceeds buffer slack
 *   PS-T03  memory-port pressure (more memory ops than banks)
 *   PS-T04  recurrence cycle crosses a tile boundary (placement)
 *   PS-T05  statically-routed link saturated to capacity (placement)
 *
 * Tightness caveats are documented in docs/static-analysis.md: the
 * bound is exact when one term dominates (recurrence-bound loops,
 * long pipelines) and loose when stalls come from effects it prices
 * conservatively (bank conflicts on skewed address streams,
 * cross-thread dispatch interleaving).
 */

#ifndef PIPESTITCH_ANALYSIS_THROUGHPUT_HH
#define PIPESTITCH_ANALYSIS_THROUGHPUT_HH

#include <vector>

#include "analysis/analyzer.hh"
#include "dfg/graph.hh"
#include "fabric/fabric.hh"
#include "mapper/mapper.hh"
#include "sim/bound.hh"
#include "sim/program.hh"

namespace pipestitch::analysis {

/** One loop-carried recurrence: the shortest always-consumed
 *  dependence cycle through a carry gate. */
struct RecurrenceInfo
{
    dfg::NodeId gate = dfg::NoNode;
    /** Cycle weight: minimum cycles for a value to travel
     *  gate.out -> ... -> gate.cont. */
    int64_t pmin = 0;
    /** Cycle members, gate first, in dependence order. */
    std::vector<dfg::NodeId> members;
};

/**
 * All recurrence cycles of @p graph under the unmapped timing model
 * (sequentiality from Node::cfInNoc, no inter-tile channels). Used
 * by the PS-T01 lint and the PS-T04 placement rule; computeBound
 * recomputes them with the Program's resolved tables.
 */
std::vector<RecurrenceInfo> recurrenceCycles(const dfg::Graph &graph);

/**
 * Build the certified bound for @p prog: one term per recurrence,
 * dispatch group, share group, and inter-tile channel, plus the
 * pipeline-depth term and the memory-bank term. Evaluate the result
 * against any run's SimStats (sim/bound.hh); simulated cycles can
 * never be smaller than the evaluation's certifiedCycles.
 */
sim::BoundReport computeBound(const sim::Program &prog);

/**
 * Append the advisory hot-link term: re-route every edge with the
 * shared mapper::routecost X-Y model and record the edges over the
 * most-loaded link. Advisory only — intra-tile links are
 * circuit-switched wires the simulator does not serialize on — so
 * the term never enters the certified max.
 */
void addRouteBound(sim::BoundReport &report, const dfg::Graph &graph,
                   const fabric::Fabric &fab,
                   const mapper::Mapping &mapping);

/** Graph-level PS-T lint (T01..T03); the analyzer's timing pass. */
void timingPass(const dfg::Graph &graph,
                const AnalysisOptions &options,
                AnalysisReport &report);

} // namespace pipestitch::analysis

#endif // PIPESTITCH_ANALYSIS_THROUGHPUT_HH
