#include "analysis/placement.hh"

#include <map>
#include <set>
#include <utility>

#include "analysis/throughput.hh"
#include "base/logging.hh"
#include "mapper/routecost.hh"

namespace pipestitch::analysis {

namespace {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::NodeKind;
using fabric::Coord;
using fabric::Fabric;
using mapper::Mapping;

class PlacementLint
{
  public:
    PlacementLint(const Graph &graph, const Fabric &fab,
                  const Mapping &mapping,
                  const PlacementLintOptions &options,
                  AnalysisReport &report)
        : graph(graph), fab(fab), mapping(mapping),
          options(options), report(report)
    {}

    void
    run()
    {
        checkPeAssignments();
        checkRouterCapacity();
        checkRouterCycles();
        checkSyncPlane();
        checkCongestion();
        checkRecurrenceTileSpan();
    }

  private:
    Diagnostic &
    diag(const char *rule, NodeId node, std::string message,
         std::string hint)
    {
        Diagnostic d;
        d.rule = rule;
        const RuleInfo *info = findRule(d.rule);
        ps_assert(info != nullptr, "unknown rule %s", rule);
        d.severity = info->severity;
        d.node = node;
        if (node != dfg::NoNode)
            d.nodes.push_back(node);
        d.message = std::move(message);
        d.hint = std::move(hint);
        report.add(std::move(d));
        return report.diags.back();
    }

    int peOf(NodeId id) const
    {
        return mapping.peOf[static_cast<size_t>(id)];
    }

    int routerOf(NodeId id) const
    {
        return mapping.routerOf[static_cast<size_t>(id)];
    }

    /** Grid position used for a node's traffic (trigger: injected
     *  from the scalar-core corner, matching the mapper). */
    Coord
    posOf(NodeId id) const
    {
        int pos = peOf(id) >= 0 ? peOf(id) : routerOf(id);
        if (pos < 0)
            return {0, 0};
        return fab.coordOf(pos);
    }

    /** PS-P01: every PE-resident operator sits on a PE of its
     *  class, and no PE hosts two operators unless they share a
     *  declared time-multiplexing group. */
    void
    checkPeAssignments()
    {
        // Group representative per node (itself when ungrouped).
        std::vector<NodeId> repOf(
            static_cast<size_t>(graph.size()), dfg::NoNode);
        for (const auto &group : options.shareGroups) {
            for (NodeId id : group)
                repOf[static_cast<size_t>(id)] = group.front();
        }

        std::map<int, NodeId> occupant;
        for (NodeId id = 0; id < graph.size(); id++) {
            const Node &n = graph.at(id);
            if (n.kind == NodeKind::Trigger || n.cfInNoc)
                continue;
            int pe = peOf(id);
            if (pe < 0 || pe >= fab.numPes()) {
                diag("PS-P01", id, "not placed on any PE",
                     "re-run the mapper or drop the stale cached "
                     "placement");
                continue;
            }
            if (fab.classAt(pe) != n.peClass()) {
                diag("PS-P01", id,
                     csprintf("placed on a %s PE at %d but needs "
                              "a %s PE",
                              dfg::peClassName(fab.classAt(pe)), pe,
                              dfg::peClassName(n.peClass())),
                     "re-run the mapper; class demand may exceed "
                     "the fabric mix");
                continue;
            }
            auto [it, inserted] = occupant.emplace(pe, id);
            if (!inserted) {
                NodeId other = it->second;
                NodeId repA = repOf[static_cast<size_t>(id)];
                NodeId repB = repOf[static_cast<size_t>(other)];
                bool shared =
                    repA != dfg::NoNode && repA == repB;
                if (!shared) {
                    Diagnostic &d = diag(
                        "PS-P01", id,
                        csprintf("shares PE %d with node %d "
                                 "without a time-multiplexing "
                                 "group",
                                 pe, other),
                        "declare a share group or give each "
                        "operator its own PE");
                    d.nodes.push_back(other);
                }
            }
        }
    }

    /** PS-P02: every CF-in-NoC operator has a hosting router, and
     *  no router absorbs more than its CF slot budget. */
    void
    checkRouterCapacity()
    {
        std::map<int, std::vector<NodeId>> load;
        for (NodeId id = 0; id < graph.size(); id++) {
            if (!graph.at(id).cfInNoc)
                continue;
            int r = routerOf(id);
            if (r < 0 || r >= fab.numPes()) {
                diag("PS-P02", id,
                     "CF-in-NoC operator is not hosted by any "
                     "router",
                     "re-run the mapper or place the operator on "
                     "a PE");
                continue;
            }
            load[r].push_back(id);
        }
        int capacity = fab.config().routerCfCapacity;
        for (const auto &[router, nodes] : load) {
            if (static_cast<int>(nodes.size()) <= capacity)
                continue;
            Coord c = fab.coordOf(router);
            Diagnostic &d = diag(
                "PS-P02", nodes.front(),
                csprintf("router (%d,%d) hosts %zu control-flow "
                         "ops but has %d slots",
                         c.x, c.y, nodes.size(), capacity),
                "spread CF operators across more routers or onto "
                "PEs");
            d.nodes = nodes;
        }
    }

    /**
     * PS-P03: router-hosted operators evaluate combinationally, so
     * a wire cycle whose members are all router-hosted is a
     * combinational hardware loop. Unlike PS-S06 this reads the
     * mapping, not the compiler's cfInNoc intent — it catches
     * stale or hand-corrupted placements.
     */
    void
    checkRouterCycles()
    {
        auto hosted = [this](NodeId id) {
            return routerOf(id) >= 0;
        };
        const int n = graph.size();
        std::vector<int> state(static_cast<size_t>(n), 0);
        for (NodeId start = 0; start < n; start++) {
            if (!hosted(start) ||
                state[static_cast<size_t>(start)] != 0) {
                continue;
            }
            std::vector<std::pair<NodeId, int>> dfs;
            dfs.emplace_back(start, 0);
            state[static_cast<size_t>(start)] = 1;
            while (!dfs.empty()) {
                NodeId id = dfs.back().first;
                int edge = dfs.back().second;
                const Node &node = graph.at(id);
                bool descended = false;
                while (edge < node.numInputs()) {
                    const auto &in =
                        node.inputs[static_cast<size_t>(edge)];
                    edge++;
                    if (!in.isWire() || !hosted(in.port.node))
                        continue;
                    NodeId next = in.port.node;
                    int s = state[static_cast<size_t>(next)];
                    if (s == 1) {
                        diag("PS-P03", id,
                             "combinational cycle through "
                             "router-hosted operators",
                             "host one member on a PE to break "
                             "the loop");
                        continue;
                    }
                    if (s == 0) {
                        dfs.back().second = edge;
                        state[static_cast<size_t>(next)] = 1;
                        dfs.emplace_back(next, 0);
                        descended = true;
                        break;
                    }
                }
                if (!descended) {
                    state[static_cast<size_t>(id)] = 2;
                    dfs.pop_back();
                }
            }
        }
    }

    /** PS-P04: the SyncPlane spans the PE grid; a dispatch gate in
     *  a router (or unplaced) can never join its group's
     *  spawn/continue agreement. */
    void
    checkSyncPlane()
    {
        for (NodeId id = 0; id < graph.size(); id++) {
            if (graph.at(id).kind != NodeKind::Dispatch)
                continue;
            if (peOf(id) < 0 || routerOf(id) >= 0) {
                diag("PS-P04", id,
                     "dispatch gate is not placed on a PE; the "
                     "SyncPlane cannot reach it",
                     "place every dispatch gate on a control-flow "
                     "PE");
            }
        }
    }

    /**
     * PS-P05: re-route every edge with the NoC's dimension-ordered
     * X-Y multicast (shared-prefix links claimed once per output)
     * and flag links whose load exceeds the wire capacity. The
     * trace itself is the shared mapper::routecost model — the same
     * code the mapper's congestion objective and final route use —
     * so the analyzer and the mapper cannot drift apart; what stays
     * independent here is the from-scratch accumulation over the
     * emitted mapping, which still catches stale or hand-corrupted
     * placements.
     */
    void
    checkCongestion()
    {
        const int w = fab.config().width;
        std::vector<int> load(
            mapper::routecost::linkCount(fab.config()), 0);
        std::vector<std::vector<EdgeRef>> users(load.size());

        mapper::routecost::ClaimScratch scratch;
        scratch.ensure(load.size());
        for (NodeId src = 0; src < graph.size(); src++) {
            const Node &node = graph.at(src);
            for (int port = 0; port < node.numOutputs(); port++) {
                mapper::routecost::traceTree(
                    graph, src, port, w,
                    [this](NodeId id) { return posOf(id); },
                    scratch,
                    [&](size_t l, const dfg::Consumer &c) {
                        load[l]++;
                        users[l].push_back(
                            {src, port, c.node, c.inputIndex});
                    },
                    [](const dfg::Consumer &, int) {});
            }
        }

        // Tile-boundary links belong to the inter-tile NoC and have
        // their own capacity (PS-P06); interior links keep the
        // tile's wire budget (PS-P05). The boundary classifier is
        // the same one the tiled mapper's merge pass prices with.
        const fabric::Topology &topo = fab.topology();
        int capacity = topo.tile.linkCapacity;
        for (size_t l = 0; l < load.size(); l++) {
            bool boundary =
                mapper::routecost::linkCrossesTile(topo, w, l);
            int capHere =
                boundary ? topo.interTileCapacity : capacity;
            if (load[l] == capHere && load[l] > 0) {
                // PS-T05: legal but saturated — the next routed
                // edge through this link fails PS-P05/P06, and the
                // placement has no slack left here.
                Coord at = mapper::routecost::linkCoord(w, l);
                Diagnostic &d = diag(
                    "PS-T05", dfg::NoNode,
                    csprintf("%slink (%d,%d)%s is saturated: %d "
                             "routes on %d wires leaves no slack",
                             boundary ? "inter-tile " : "", at.x,
                             at.y,
                             mapper::routecost::linkDirName(
                                 mapper::routecost::linkDir(l)),
                             load[l], capHere),
                    "re-map to spread these routes or raise the "
                    "link capacity");
                d.edges = users[l];
                for (const EdgeRef &e : d.edges) {
                    d.nodes.push_back(e.from);
                    d.nodes.push_back(e.to);
                }
                continue;
            }
            if (load[l] <= capHere)
                continue;
            Coord at = mapper::routecost::linkCoord(w, l);
            Diagnostic &d =
                boundary
                    ? diag("PS-P06", dfg::NoNode,
                           csprintf(
                               "inter-tile link (%d,%d)%s carries "
                               "%d circuit-switched routes but the "
                               "boundary has %d wires",
                               at.x, at.y,
                               mapper::routecost::linkDirName(
                                   mapper::routecost::linkDir(l)),
                               load[l], capHere),
                           "re-partition (different mapper seed) "
                           "or raise interTileCapacity")
                    : diag("PS-P05", dfg::NoNode,
                           csprintf(
                               "link (%d,%d)%s carries %d "
                               "circuit-switched routes but has "
                               "%d wires",
                               at.x, at.y,
                               mapper::routecost::linkDirName(
                                   mapper::routecost::linkDir(l)),
                               load[l], capHere),
                           "re-map with a different seed or raise "
                           "linkCapacity");
            d.edges = users[l];
            for (const EdgeRef &e : d.edges) {
                d.nodes.push_back(e.from);
                d.nodes.push_back(e.to);
            }
        }
    }

    /**
     * PS-T04: a loop-carried recurrence whose members land in more
     * than one tile pays interTileLatency on every boundary
     * crossing of its critical cycle — usually the single biggest
     * placement-induced throughput loss (the Program-level bound
     * prices it exactly via channel latencies).
     */
    void
    checkRecurrenceTileSpan()
    {
        const fabric::Topology &topo = fab.topology();
        if (topo.singleTile())
            return;
        for (const RecurrenceInfo &rc : recurrenceCycles(graph)) {
            std::set<int> tiles;
            for (NodeId v : rc.members) {
                int pos = peOf(v) >= 0 ? peOf(v) : routerOf(v);
                if (pos >= 0)
                    tiles.insert(fab.tileOfPe(pos));
            }
            if (tiles.size() < 2)
                continue;
            Diagnostic &d = diag(
                "PS-T04", rc.gate,
                csprintf("loop-carried recurrence of %lld cycles "
                         "spans %zu tiles; every boundary crossing "
                         "adds %d cycles to the critical cycle",
                         static_cast<long long>(rc.pmin),
                         tiles.size(), topo.interTileLatency),
                csprintf("co-locate the %zu cycle members in one "
                         "tile (different mapper seed, or a fabric "
                         "with larger tiles)",
                         rc.members.size()));
            d.nodes = rc.members;
        }
    }

    const Graph &graph;
    const Fabric &fab;
    const Mapping &mapping;
    const PlacementLintOptions &options;
    AnalysisReport &report;
};

} // namespace

void
lintPlacement(const dfg::Graph &graph, const fabric::Fabric &fabric,
              const mapper::Mapping &mapping, AnalysisReport &report,
              const PlacementLintOptions &options)
{
    ps_assert(graph.isFinalized(), "lintPlacement needs a finalized "
                                   "graph");
    ps_assert(mapping.peOf.size() ==
                      static_cast<size_t>(graph.size()) &&
                  mapping.routerOf.size() ==
                      static_cast<size_t>(graph.size()),
              "mapping does not cover the graph");
    PlacementLint(graph, fabric, mapping, options, report).run();
}

} // namespace pipestitch::analysis
