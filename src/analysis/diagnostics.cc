#include "analysis/diagnostics.hh"

#include "base/logging.hh"
#include "trace/json.hh"

namespace pipestitch::analysis {

const char *
severityName(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

const std::vector<RuleInfo> &
ruleRegistry()
{
    static const std::vector<RuleInfo> rules = {
        {"PS-S01", "operator can never fire", Severity::Error,
         "Fig. 6 (ordered-dataflow firing rule)"},
        {"PS-S02", "non-control-flow operator mapped into the NoC",
         Severity::Error, "Sec. 4.8 (CF-in-NoC)"},
        {"PS-S03", "dispatch mapped into the NoC", Severity::Error,
         "Sec. 4.4, Sec. 4.7 (dispatch needs an output buffer)"},
        {"PS-S04", "malformed operand wiring", Severity::Error,
         "Fig. 6 (operator contracts)"},
        {"PS-S05", "dispatch outside a threaded loop", Severity::Error,
         "Sec. 4.2 (threads are loop iterations)"},
        {"PS-S06", "combinational cycle through CF-in-NoC operators",
         Severity::Error, "Sec. 4.8 (router evaluation is combinational)"},
        {"PS-D01", "zero-slack backpressure cycle", Severity::Error,
         "Sec. 4.8, Fig. 20 (buffer depths bound backpressure)"},
        {"PS-D02", "dispatch spawn reserve exceeds buffer depth",
         Severity::Error, "Sec. 4.4, Fig. 10 (bubble flow control)"},
        {"PS-D03", "dispatch gate wired across loop regions",
         Severity::Error, "Sec. 4.4 (SyncPlane group consistency)"},
        {"PS-B01", "token flood: producer outruns consumer",
         Severity::Error,
         "Sec. 4.2 (ordered dataflow; SDF rate balance)"},
        {"PS-B02", "token starvation: consumer outruns producer",
         Severity::Error,
         "Sec. 4.2 (ordered dataflow; SDF rate balance)"},
        {"PS-P01", "operator placed on an incompatible PE",
         Severity::Error, "Sec. 5.1 (heterogeneous PE mix)"},
        {"PS-P02", "router control-flow capacity exceeded",
         Severity::Error, "Sec. 4.8 (router CF slots)"},
        {"PS-P03", "combinational cycle through router-hosted operators",
         Severity::Error, "Sec. 4.8 (CF-in-NoC routing)"},
        {"PS-P04", "dispatch gate not reachable by the SyncPlane",
         Severity::Error, "Sec. 4.4 (SyncPlane spans the PE grid)"},
        {"PS-P05", "route congestion exceeds link capacity",
         Severity::Error, "Sec. 5.1 (statically-routed NoC)"},
        {"PS-P06", "inter-tile route congestion exceeds boundary "
         "link capacity", Severity::Error,
         "multi-tile extension of Sec. 5.1 (statically-routed NoC "
         "across tile boundaries)"},
        {"PS-T01", "loop-carried recurrence limits throughput",
         Severity::Warning,
         "Sec. 4.2 (ordered dataflow serializes loop-carried "
         "dependences; cf. Fig. 18 per-unit IPC)"},
        {"PS-T02", "reconvergent path imbalance exceeds buffer slack",
         Severity::Warning,
         "Sec. 4.7, Fig. 20 (buffer depths bound backpressure "
         "slack)"},
        {"PS-T03", "memory-bank pressure bounds throughput",
         Severity::Warning,
         "Sec. 5.1 (banked scratchpad, per-bank port arbitration)"},
        {"PS-T04", "recurrence cycle crosses a tile boundary",
         Severity::Warning,
         "multi-tile extension of Sec. 5.1 (inter-tile links add "
         "latency on the critical cycle)"},
        {"PS-T05", "statically-routed link saturated to capacity",
         Severity::Warning,
         "Sec. 5.1 (statically-routed NoC link provisioning)"},
    };
    return rules;
}

const RuleInfo *
findRule(const std::string &id)
{
    for (const auto &r : ruleRegistry()) {
        if (id == r.id)
            return &r;
    }
    return nullptr;
}

std::string
toString(const Diagnostic &d, const dfg::Graph &graph)
{
    std::string s = d.rule + " " + severityName(d.severity);
    if (d.node != dfg::NoNode) {
        const dfg::Node &n = graph.at(d.node);
        s += csprintf(" node %d (%s %s)", d.node,
                      dfg::nodeKindName(n.kind), n.name.c_str());
    }
    s += ": " + d.message;
    if (!d.hint.empty())
        s += " [hint: " + d.hint + "]";
    return s;
}

void
writeJson(trace::JsonWriter &w, const Diagnostic &d,
          const dfg::Graph &graph)
{
    w.beginObject();
    w.key("rule").value(d.rule);
    w.key("severity").value(severityName(d.severity));
    if (const RuleInfo *info = findRule(d.rule)) {
        w.key("title").value(info->title);
        w.key("citation").value(info->citation);
    }
    if (d.node != dfg::NoNode) {
        const dfg::Node &n = graph.at(d.node);
        w.key("node").value(d.node);
        w.key("kind").value(dfg::nodeKindName(n.kind));
        w.key("name").value(n.name);
    }
    w.key("message").value(d.message);
    if (!d.hint.empty())
        w.key("hint").value(d.hint);
    w.key("nodes").beginArray();
    for (dfg::NodeId id : d.nodes)
        w.value(id);
    w.endArray();
    w.key("edges").beginArray();
    for (const EdgeRef &e : d.edges) {
        w.beginObject();
        w.key("from").value(e.from);
        w.key("port").value(e.port);
        w.key("to").value(e.to);
        w.key("input").value(e.input);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace pipestitch::analysis
