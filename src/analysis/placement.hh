/**
 * @file
 * Post-map placement lint (PS-P01..P06 errors, plus the
 * placement-scoped PS-T04/PS-T05 timing warnings).
 *
 * The mapper promises class-compatible placement, bounded router
 * control-flow occupancy, and congestion-free circuit-switched
 * routes — but cached placements can go stale and mapper changes can
 * regress silently. The lint re-derives every promise from the
 * mapping itself: PE-class compatibility and exclusive PE occupancy
 * (modulo declared time-multiplexing groups), router CF capacity,
 * combinational cycles among router-hosted operators, SyncPlane
 * reachability of every dispatch gate (the plane spans PEs, not
 * routers — Sec. 4.4), and an independent re-route of every edge
 * with the same dimension-ordered X-Y multicast the NoC uses,
 * checked against link capacity.
 */

#ifndef PIPESTITCH_ANALYSIS_PLACEMENT_HH
#define PIPESTITCH_ANALYSIS_PLACEMENT_HH

#include <vector>

#include "analysis/analyzer.hh"
#include "fabric/fabric.hh"
#include "mapper/mapper.hh"

namespace pipestitch::analysis {

struct PlacementLintOptions
{
    /** Time-multiplexing groups: members legally share one PE. */
    std::vector<std::vector<dfg::NodeId>> shareGroups;
};

/** Append PS-P* findings for @p mapping to @p report. The graph
 *  must be finalized (routing follows consumer lists). */
void lintPlacement(const dfg::Graph &graph,
                   const fabric::Fabric &fabric,
                   const mapper::Mapping &mapping,
                   AnalysisReport &report,
                   const PlacementLintOptions &options = {});

} // namespace pipestitch::analysis

#endif // PIPESTITCH_ANALYSIS_PLACEMENT_HH
