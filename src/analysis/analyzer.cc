#include "analysis/analyzer.hh"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/throughput.hh"
#include "base/logging.hh"
#include "trace/json.hh"

namespace pipestitch::analysis {

namespace {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::NodeKind;
namespace pidx = dfg::port_idx;

class Analyzer
{
  public:
    Analyzer(const Graph &graph, const AnalysisOptions &options,
             AnalysisReport &report)
        : graph(graph), options(options), report(report)
    {}

    void
    run()
    {
        if (options.structural)
            structuralPass();
        if (options.deadlock)
            deadlockPass();
        if (options.balance)
            balancePass();
        // The timing pass walks consumer lists (finalized graphs
        // only) and assumes the operand contracts hold; skip it
        // when the structural pass already found the graph
        // malformed.
        if (options.timing && report.structureOk &&
            graph.isFinalized()) {
            timingPass(graph, options, report);
        }
    }

  private:
    Diagnostic &
    diag(const char *rule, NodeId node, std::string message,
         std::string hint)
    {
        Diagnostic d;
        d.rule = rule;
        const RuleInfo *info = findRule(d.rule);
        ps_assert(info != nullptr, "unknown rule %s", rule);
        d.severity = info->severity;
        d.node = node;
        if (node != dfg::NoNode)
            d.nodes.push_back(node);
        d.message = std::move(message);
        d.hint = std::move(hint);
        report.add(std::move(d));
        return report.diags.back();
    }

    bool
    has(const Node &n, int idx) const
    {
        return idx < n.numInputs() &&
               !n.inputs[static_cast<size_t>(idx)].isNone();
    }

    bool
    isWire(const Node &n, int idx) const
    {
        return idx < n.numInputs() &&
               n.inputs[static_cast<size_t>(idx)].isWire();
    }

    void
    requireWire(NodeId id, int idx, const char *what)
    {
        if (!isWire(graph.at(id), idx)) {
            diag("PS-S04", id,
                 csprintf("%s must be a wire input", what),
                 csprintf("connect a producer to input %d", idx));
        }
    }

    void
    requirePresent(NodeId id, int idx, const char *what)
    {
        if (!has(graph.at(id), idx)) {
            diag("PS-S04", id, csprintf("%s input missing", what),
                 csprintf("supply input %d as a wire or immediate",
                          idx));
        }
    }

    // ---- structural pass (PS-S01..S06) -------------------------------

    void
    structuralPass()
    {
        for (NodeId id = 0; id < graph.size(); id++)
            checkNode(id);
        checkNocCycles();
    }

    void
    checkNode(NodeId id)
    {
        const Node &n = graph.at(id);
        if (n.kind != NodeKind::Trigger && !n.hasWireInput()) {
            diag("PS-S01", id,
                 "has no wire input; it could never fire",
                 "drive one input with a wire or delete the node");
        }
        if (n.cfInNoc && !n.isControlFlow()) {
            diag("PS-S02", id,
                 "only control-flow ops may map into the NoC",
                 "clear cfInNoc or place the node on a PE");
        }
        if (n.cfInNoc && n.kind == NodeKind::Dispatch) {
            diag("PS-S03", id,
                 "dispatch requires an output buffer; it must "
                 "map to a PE",
                 "clear cfInNoc on the dispatch gate");
        }

        switch (n.kind) {
          case NodeKind::Trigger:
            if (n.numInputs() != 0) {
                diag("PS-S04", id, "trigger takes no inputs",
                     "remove the trigger's inputs");
            }
            break;
          case NodeKind::Const:
            requireWire(id, 0, "region token");
            break;
          case NodeKind::Arith: {
            int want = sir::numOperands(n.op);
            for (int i = 0; i < want; i++)
                requirePresent(id, i, "operand");
            break;
          }
          case NodeKind::Steer:
            requireWire(id, pidx::SteerDecider, "decider");
            requirePresent(id, pidx::SteerValue, "value");
            break;
          case NodeKind::Carry:
            requireWire(id, pidx::CarryInit, "init");
            requireWire(id, pidx::CarryCont, "cont");
            requireWire(id, pidx::CarryDecider, "decider");
            break;
          case NodeKind::Invariant:
            requireWire(id, pidx::InvValue, "value");
            requireWire(id, pidx::InvDecider, "decider");
            break;
          case NodeKind::Merge:
            requireWire(id, pidx::MergeDecider, "decider");
            requirePresent(id, pidx::MergeTrue, "true side");
            requirePresent(id, pidx::MergeFalse, "false side");
            break;
          case NodeKind::Dispatch:
            requireWire(id, pidx::DispatchSpawn, "spawn");
            requireWire(id, pidx::DispatchCont, "cont");
            if (n.loopId < 0 || n.loopId >= graph.numLoops) {
                diag("PS-S05", id, "dispatch outside any loop",
                     "dispatch gates belong to threaded loop "
                     "headers");
            } else if (!graph.loopThreaded[
                           static_cast<size_t>(n.loopId)]) {
                diag("PS-S05", id,
                     "dispatch in a non-threaded loop",
                     "mark the loop threaded or lower a carry "
                     "instead");
            }
            break;
          case NodeKind::Load:
            requirePresent(id, pidx::LoadAddr, "address");
            break;
          case NodeKind::Store:
            requirePresent(id, pidx::StoreAddr, "address");
            requirePresent(id, pidx::StoreData, "data");
            break;
          case NodeKind::Stream: {
            if (n.streamStep <= 0) {
                diag("PS-S04", id, "stream step must be positive",
                     "use a positive streamStep");
            }
            requirePresent(id, pidx::StreamBegin, "begin");
            requirePresent(id, pidx::StreamEnd, "end");
            bool beginWire = isWire(n, pidx::StreamBegin);
            bool endWire = isWire(n, pidx::StreamEnd);
            if (!beginWire && !endWire &&
                !isWire(n, pidx::StreamTrigger)) {
                diag("PS-S04", id,
                     "stream with immediate bounds needs a "
                     "trigger wire",
                     "wire the stream trigger input");
            }
            break;
          }
        }
    }

    /**
     * CF-in-NoC nodes evaluate combinationally; a cycle composed
     * entirely of such nodes is a combinational hardware loop
     * (Sec. 4.8). Iterative DFS over the cfInNoc-only subgraph.
     */
    void
    checkNocCycles()
    {
        auto inCycleScope = [this](NodeId id) {
            return graph.at(id).cfInNoc;
        };
        findCombinationalCycles(inCycleScope, "PS-S06",
                                "combinational cycle through "
                                "CF-in-NoC operators",
                                "map one member onto a PE to break "
                                "the loop");
    }

    /**
     * Report each wire cycle whose members all satisfy @p inScope,
     * following every wire input (backedges included: a router has
     * no buffer to break even a loop-carried wire).
     */
    template <typename ScopePred>
    void
    findCombinationalCycles(ScopePred inScope, const char *rule,
                            const char *message, const char *hint)
    {
        const int n = graph.size();
        // 0 = unvisited, 1 = on stack, 2 = done
        std::vector<int> state(static_cast<size_t>(n), 0);
        for (NodeId start = 0; start < n; start++) {
            if (!inScope(start) ||
                state[static_cast<size_t>(start)] != 0) {
                continue;
            }
            std::vector<std::pair<NodeId, int>> dfs;
            dfs.emplace_back(start, 0);
            state[static_cast<size_t>(start)] = 1;
            while (!dfs.empty()) {
                NodeId id = dfs.back().first;
                int edge = dfs.back().second;
                const Node &node = graph.at(id);
                bool descended = false;
                while (edge < node.numInputs()) {
                    const auto &in =
                        node.inputs[static_cast<size_t>(edge)];
                    edge++;
                    if (!in.isWire() || !inScope(in.port.node))
                        continue;
                    NodeId next = in.port.node;
                    int s = state[static_cast<size_t>(next)];
                    if (s == 1) {
                        diag(rule, id, message, hint);
                        continue;
                    }
                    if (s == 0) {
                        dfs.back().second = edge;
                        state[static_cast<size_t>(next)] = 1;
                        dfs.emplace_back(next, 0);
                        descended = true;
                        break;
                    }
                }
                if (!descended) {
                    state[static_cast<size_t>(id)] = 2;
                    dfs.pop_back();
                }
            }
        }
    }

    // ---- deadlock pass (PS-D01..D03) ---------------------------------

    void
    deadlockPass()
    {
        spawnReserveCheck();
        zeroSlackCycleCheck();
        dispatchRegionCheck();
    }

    /** PS-D02: a spawn set needs two free output slots at every
     *  gate (Fig. 10); with depth < 2 no spawn can ever win. */
    void
    spawnReserveCheck()
    {
        std::vector<NodeId> gates;
        for (NodeId id = 0; id < graph.size(); id++) {
            if (graph.at(id).kind == NodeKind::Dispatch)
                gates.push_back(id);
        }
        if (gates.empty() || options.bufferDepth >= 2)
            return;
        Diagnostic &d = diag(
            "PS-D02", gates.front(),
            csprintf("buffer depth %d cannot hold the 2-slot spawn "
                     "reserve; no spawn set can ever dispatch",
                     options.bufferDepth),
            "raise bufferDepth to at least 2");
        d.nodes.assign(gates.begin(), gates.end());
    }

    /**
     * PS-D01: a wire cycle that avoids every backedge port has zero
     * slack — each member needs a head token produced inside the
     * cycle before it can fire, so no token ever enters and any
     * token trapped inside jams permanently. Buffer depth only
     * scales the (never-filled) capacity; no bubble can drain it.
     *
     * DFS from consumers to producers, skipping the canonical
     * cycle-breaking ports (Graph::isBackedgeInput). Stack frames
     * remember the parent input used to descend so the diagnostic
     * can carry the exact cycle.
     */
    void
    zeroSlackCycleCheck()
    {
        struct Frame
        {
            NodeId node;
            int nextInput;
            /** Input index of the previous frame's node through
             *  which this node was reached. */
            int viaInput;
        };
        const int n = graph.size();
        std::vector<int> state(static_cast<size_t>(n), 0);
        std::set<std::vector<NodeId>> seenCycles;

        for (NodeId start = 0; start < n; start++) {
            if (state[static_cast<size_t>(start)] != 0)
                continue;
            std::vector<Frame> dfs;
            dfs.push_back({start, 0, -1});
            state[static_cast<size_t>(start)] = 1;
            while (!dfs.empty()) {
                Frame &top = dfs.back();
                const Node &node = graph.at(top.node);
                bool descended = false;
                while (top.nextInput < node.numInputs()) {
                    int i = top.nextInput++;
                    const auto &in =
                        node.inputs[static_cast<size_t>(i)];
                    if (!in.isWire() ||
                        Graph::isBackedgeInput(node, i)) {
                        continue;
                    }
                    NodeId producer = in.port.node;
                    int s = state[static_cast<size_t>(producer)];
                    if (s == 1) {
                        reportZeroSlackCycle(dfs, producer, i,
                                             seenCycles);
                        continue;
                    }
                    if (s == 0) {
                        state[static_cast<size_t>(producer)] = 1;
                        dfs.push_back({producer, 0, i});
                        descended = true;
                        break;
                    }
                }
                if (!descended) {
                    state[static_cast<size_t>(dfs.back().node)] = 2;
                    dfs.pop_back();
                }
            }
        }
    }

    template <typename Frames>
    void
    reportZeroSlackCycle(const Frames &dfs, NodeId producer,
                         int closingInput,
                         std::set<std::vector<NodeId>> &seenCycles)
    {
        // The stack runs consumer → producer; the cycle is the
        // segment from `producer` to the top.
        size_t pos = dfs.size();
        while (pos > 0 && dfs[pos - 1].node != producer)
            pos--;
        ps_assert(pos > 0, "gray node missing from DFS stack");
        pos--;

        std::vector<NodeId> members;
        std::vector<EdgeRef> edges;
        for (size_t k = pos; k < dfs.size(); k++) {
            members.push_back(dfs[k].node);
            if (k + 1 < dfs.size()) {
                // dfs[k+1].node produces input viaInput of dfs[k].
                edges.push_back({dfs[k + 1].node,
                                 graph.at(dfs[k].node)
                                     .inputs[static_cast<size_t>(
                                         dfs[k + 1].viaInput)]
                                     .port.index,
                                 dfs[k].node, dfs[k + 1].viaInput});
            }
        }
        // Closing wire: producer feeds input closingInput of the
        // stack top.
        NodeId top = dfs.back().node;
        edges.push_back(
            {producer,
             graph.at(top)
                 .inputs[static_cast<size_t>(closingInput)]
                 .port.index,
             top, closingInput});

        std::vector<NodeId> key = members;
        std::sort(key.begin(), key.end());
        if (!seenCycles.insert(key).second)
            return;

        Diagnostic &d = diag(
            "PS-D01", producer,
            csprintf("wire cycle of %zu operators avoids every "
                     "backedge port; each member waits on a token "
                     "from inside the cycle, so the %zu-slot FIFO "
                     "capacity stays empty and no bubble can drain "
                     "it",
                     members.size(),
                     members.size() *
                         static_cast<size_t>(
                             std::max(options.bufferDepth, 1))),
            "break the cycle through a carry, invariant, or "
            "dispatch backedge port");
        d.nodes = std::move(members);
        d.edges = std::move(edges);
    }

    /** Loop ids on the chain from @p loopId to the top region,
     *  inclusive of @p loopId and the -1 sentinel. */
    std::set<int>
    loopChain(int loopId) const
    {
        std::set<int> chain;
        int l = loopId;
        while (l >= 0 && l < graph.numLoops) {
            if (!chain.insert(l).second)
                break; // defensive: corrupt parent links
            l = graph.loopParent[static_cast<size_t>(l)];
        }
        chain.insert(-1);
        return chain;
    }

    int
    loopParentOf(int loopId) const
    {
        if (loopId < 0 || loopId >= graph.numLoops)
            return -1;
        return graph.loopParent[static_cast<size_t>(loopId)];
    }

    /** True when @p node generates its loop's iteration clock. */
    static bool
    isRateGate(const Node &node)
    {
        switch (node.kind) {
          case NodeKind::Carry:
          case NodeKind::Invariant:
          case NodeKind::Dispatch:
          case NodeKind::Stream:
            return true;
          default:
            return false;
        }
    }

    /** Nesting depth of @p loopId (number of enclosing loops). */
    int
    chainDepth(int loopId) const
    {
        int d = 0;
        int l = loopId;
        while (l >= 0 && l < graph.numLoops && d <= graph.numLoops) {
            d++;
            l = graph.loopParent[static_cast<size_t>(l)];
        }
        return d;
    }

    /** Deepest loop on both @p a's and @p b's chains (-1 = top). */
    int
    commonAncestor(int a, int b) const
    {
        if (a == b)
            return a;
        std::set<int> ca = loopChain(a);
        int l = b;
        while (l >= 0 && l < graph.numLoops) {
            if (ca.count(l))
                return l;
            l = graph.loopParent[static_cast<size_t>(l)];
        }
        return -1;
    }

    /**
     * Effective firing clock per node. A node's lexical loopId is
     * *not* its rate — entry-guard steers are stamped inside the
     * loop they guard but fire once per entry. Instead, rates are
     * defined by the gates (carry/invariant/dispatch/stream emit
     * once per iteration of their loop, -1 is the top-region clock)
     * and propagate forward through the non-backedge DAG:
     *
     *  - a steer emits a *conditional* subclock of its value's
     *    clock — statically it may stand for the loop's exit rate
     *    (once per entry) or any conditional subset, so it is the
     *    sanctioned rate adapter;
     *  - every other operator fires on the deepest clock among its
     *    unconditional inputs (those pin the rate) and inherits
     *    conditionality from any conditional input.
     */
    struct RateInfo
    {
        /** Loop whose iteration clock the node fires on (-1 top). */
        int rate = -1;
        /** Fires on a conditional subset of that clock. */
        bool cond = false;
    };

    /** Memoized computeEffectiveRates (both rate-aware passes use
     *  the same clocks). */
    const std::vector<RateInfo> &
    effectiveRates()
    {
        if (ratesCache.empty() && graph.size() > 0)
            ratesCache = computeEffectiveRates();
        return ratesCache;
    }

    std::vector<RateInfo>
    computeEffectiveRates() const
    {
        std::vector<RateInfo> eff(static_cast<size_t>(graph.size()));
        for (NodeId id = 0; id < graph.size(); id++) {
            if (isRateGate(graph.at(id)))
                eff[static_cast<size_t>(id)].rate =
                    graph.at(id).loopId;
        }
        // Non-backedge edges form a DAG (PS-D01 flags the rest), so
        // a bounded fixpoint converges; the cap guards corrupt
        // graphs.
        for (int pass = 0; pass < graph.size() + 1; pass++) {
            bool changed = false;
            for (NodeId id = 0; id < graph.size(); id++) {
                const Node &n = graph.at(id);
                if (isRateGate(n) || n.kind == NodeKind::Trigger)
                    continue;
                RateInfo next;
                if (n.kind == NodeKind::Steer) {
                    // Value clock (an immediate value falls back
                    // to the decider's), always conditional.
                    int port = isWire(n, pidx::SteerValue)
                                   ? pidx::SteerValue
                                   : pidx::SteerDecider;
                    if (isWire(n, port)) {
                        next.rate =
                            eff[static_cast<size_t>(
                                    n.inputs[static_cast<size_t>(
                                                 port)]
                                        .port.node)]
                                .rate;
                    }
                    next.cond = true;
                } else {
                    // Unconditional inputs pin the clock (deepest
                    // wins; a mismatch among them is flagged by the
                    // balance pass). Conditional clocks can adapt
                    // up their chain, so on their own they join at
                    // their deepest common ancestor.
                    int bestUncond = -1;
                    int condJoin = -1;
                    bool anyUncond = false;
                    bool anyCond = false;
                    for (int i = 0; i < n.numInputs(); i++) {
                        const auto &in =
                            n.inputs[static_cast<size_t>(i)];
                        if (!in.isWire() ||
                            Graph::isBackedgeInput(n, i)) {
                            continue;
                        }
                        const RateInfo &r =
                            eff[static_cast<size_t>(in.port.node)];
                        if (r.cond) {
                            next.cond = true;
                            condJoin = anyCond
                                           ? commonAncestor(
                                                 condJoin, r.rate)
                                           : r.rate;
                            anyCond = true;
                        } else {
                            anyUncond = true;
                            if (chainDepth(r.rate) >
                                chainDepth(bestUncond)) {
                                bestUncond = r.rate;
                            }
                        }
                    }
                    next.rate = anyUncond ? bestUncond : condJoin;
                }
                RateInfo &cur = eff[static_cast<size_t>(id)];
                if (next.rate != cur.rate ||
                    next.cond != cur.cond) {
                    cur = next;
                    changed = true;
                }
            }
            if (!changed)
                break;
        }
        return eff;
    }

    /**
     * PS-D03: a dispatch gate's spawn set must arrive at the rate
     * the loop is *entered* and its continuation set at the rate it
     * *iterates* — otherwise the SyncPlane group can never agree on
     * a full set and the whole group jams (Sec. 4.4).
     */
    void
    dispatchRegionCheck()
    {
        const std::vector<RateInfo> &eff = effectiveRates();
        for (NodeId id = 0; id < graph.size(); id++) {
            const Node &n = graph.at(id);
            if (n.kind != NodeKind::Dispatch)
                continue;
            if (n.loopId < 0 || n.loopId >= graph.numLoops)
                continue; // PS-S05 already fired
            if (isWire(n, pidx::DispatchSpawn)) {
                NodeId p = n.inputs[pidx::DispatchSpawn].port.node;
                const RateInfo &r = eff[static_cast<size_t>(p)];
                // An unconditional producer clocked inside the
                // gated loop floods the spawn port; conditional
                // (steered) producers may stand for exit rates.
                if (!r.cond && loopChain(r.rate).count(n.loopId)) {
                    Diagnostic &d = diag(
                        "PS-D03", id,
                        csprintf("spawn set fires at the rate of "
                                 "loop %d, inside the loop %d it "
                                 "gates; spawn tokens must arrive "
                                 "at loop-entry rate",
                                 r.rate, n.loopId),
                        "feed the spawn input from the enclosing "
                        "region");
                    d.nodes.push_back(p);
                }
            }
            if (isWire(n, pidx::DispatchCont)) {
                NodeId p = n.inputs[pidx::DispatchCont].port.node;
                const RateInfo &r = eff[static_cast<size_t>(p)];
                if (!loopChain(r.rate).count(n.loopId)) {
                    Diagnostic &d = diag(
                        "PS-D03", id,
                        csprintf("continuation set fires at the "
                                 "rate of loop %d, outside the "
                                 "loop %d it gates; cont tokens "
                                 "must arrive at iteration rate",
                                 r.rate, n.loopId),
                        "feed the cont input from inside the loop "
                        "body");
                    d.nodes.push_back(p);
                }
            }
        }
    }

    // ---- balance pass (PS-B01/B02) -----------------------------------

    /**
     * True when the firing clock of @p n was derived from
     * conditional sources only (see computeEffectiveRates): its
     * ports drain on an *adaptable* clock — statically the stream
     * may stand for any rate on its chain, exactly like a
     * conditional producer. A steer adapts when its rate-defining
     * value input is conditional (an exit value gated into an if
     * region, say); any other node adapts only when no
     * unconditional input pins its clock.
     */
    bool
    clockIsAdaptable(const Node &n,
                     const std::vector<RateInfo> &eff) const
    {
        if (n.kind == NodeKind::Steer) {
            int port = isWire(n, pidx::SteerValue)
                           ? pidx::SteerValue
                           : pidx::SteerDecider;
            if (!isWire(n, port))
                return false;
            return eff[static_cast<size_t>(
                           n.inputs[static_cast<size_t>(port)]
                               .port.node)]
                .cond;
        }
        bool anyCond = false;
        for (int i = 0; i < n.numInputs(); i++) {
            const auto &in = n.inputs[static_cast<size_t>(i)];
            if (!in.isWire() || Graph::isBackedgeInput(n, i))
                continue;
            if (!eff[static_cast<size_t>(in.port.node)].cond)
                return false; // an unconditional input pins it
            anyCond = true;
        }
        return anyCond;
    }

    /**
     * SDF-style rate check per wire, on effective rates (see
     * computeEffectiveRates). Each input port consumes at a known
     * clock: once-per-entry gate ports at the parent region's
     * clock, every other port at its node's firing clock. A
     * non-steer producer must emit on exactly that clock — steers
     * are the sanctioned rate adapter (conditional emit) in both
     * directions and are exempt. Adaptable clocks pair up loosely:
     * two conditional streams always meet at their deepest common
     * ancestor region, and an exact producer feeds an adaptable
     * port whenever its clock lies on the port's chain. A producer
     * whose clock nests strictly inside the port's clock floods
     * the channel (unbounded queue growth, PS-B01); any other
     * mismatch — slower producer or divergent sibling clock —
     * starves it (PS-B02).
     */
    void
    balancePass()
    {
        const std::vector<RateInfo> &eff = effectiveRates();
        for (NodeId id = 0; id < graph.size(); id++) {
            const Node &c = graph.at(id);
            if (c.kind == NodeKind::Dispatch)
                continue; // PS-D03 owns both dispatch ports
            for (int i = 0; i < c.numInputs(); i++) {
                const auto &in =
                    c.inputs[static_cast<size_t>(i)];
                if (!in.isWire() || Graph::isBackedgeInput(c, i))
                    continue;
                NodeId pid = in.port.node;
                int want;
                bool wantCond = false;
                if (isRateGate(c)) {
                    // Gate ports are either backedges (skipped) or
                    // once-per-entry: consumed at the parent
                    // region's clock.
                    if (c.loopId < 0 || c.loopId >= graph.numLoops)
                        continue; // structurally broken already
                    want = loopParentOf(c.loopId);
                } else {
                    want = eff[static_cast<size_t>(id)].rate;
                    wantCond = clockIsAdaptable(c, eff);
                }
                const RateInfo &rp = eff[static_cast<size_t>(pid)];
                if (rp.cond) {
                    // A conditional producer may stand for the
                    // exit rate of any loop on its clock's chain;
                    // an adaptable port always meets it at the
                    // common ancestor, and only a clock an exact
                    // port can't be derived from is a definite
                    // starvation.
                    if (!wantCond &&
                        !loopChain(rp.rate).count(want)) {
                        Diagnostic &d = diag(
                            "PS-B02", id,
                            csprintf("input %d consumes at the "
                                     "rate of loop %d but node %d "
                                     "emits a conditional clock "
                                     "of loop %d that cannot "
                                     "reach it; the channel "
                                     "starves",
                                     i, want, pid, rp.rate),
                            "derive the value inside the "
                            "consuming loop's region");
                        d.nodes.push_back(pid);
                        d.edges.push_back(
                            {pid, in.port.index, id, i});
                    }
                    continue;
                }
                if (rp.rate == want)
                    continue;
                // An adaptable port drains any exact clock on its
                // own chain (e.g. a top-level if decider gating a
                // loop's exit value: both streams carry one token
                // per region entry).
                if (wantCond && loopChain(want).count(rp.rate))
                    continue;
                if (loopChain(rp.rate).count(want)) {
                    // Producer's clock nests inside the port's:
                    // one token per inner iteration, drained once
                    // per outer — the channel grows without bound.
                    Diagnostic &d = diag(
                        "PS-B01", pid,
                        csprintf("emits at the rate of loop %d "
                                 "but input %d of node %d drains "
                                 "at the rate of loop %d; the "
                                 "channel grows without bound",
                                 rp.rate, i, id, want),
                        "route values leaving a loop through an "
                        "exit steer");
                    d.nodes.push_back(id);
                    d.edges.push_back({pid, in.port.index, id, i});
                } else {
                    Diagnostic &d = diag(
                        "PS-B02", id,
                        csprintf("input %d consumes at the rate "
                                 "of loop %d but node %d emits at "
                                 "the rate of loop %d; the "
                                 "channel starves",
                                 i, want, pid, rp.rate),
                        "enter loops through carry/invariant/"
                        "dispatch gates or stream bounds");
                    d.nodes.push_back(pid);
                    d.edges.push_back({pid, in.port.index, id, i});
                }
            }
        }
    }

    const Graph &graph;
    const AnalysisOptions &options;
    AnalysisReport &report;
    std::vector<RateInfo> ratesCache;
};

} // namespace

int
AnalysisReport::errorCount() const
{
    int n = 0;
    for (const auto &d : diags)
        n += d.isError() ? 1 : 0;
    return n;
}

int
AnalysisReport::warningCount() const
{
    return static_cast<int>(diags.size()) - errorCount();
}

void
AnalysisReport::add(Diagnostic d)
{
    if (d.isError() && d.rule.size() >= 4) {
        switch (d.rule[3]) {
          case 'S':
            structureOk = false;
            deadlockFree = false;
            break;
          case 'D':
            deadlockFree = false;
            break;
          case 'B':
            balanced = false;
            // An unbalanced channel eventually fills or starves:
            // the run cannot drain, so certification is off too.
            deadlockFree = false;
            break;
          case 'P':
            placementOk = false;
            break;
          case 'T':
            timingOk = false;
            break;
        }
    }
    diags.push_back(std::move(d));
}

std::string
AnalysisReport::toString(const dfg::Graph &graph) const
{
    std::string s;
    for (const auto &d : diags) {
        s += analysis::toString(d, graph);
        s += '\n';
    }
    s += csprintf("%d error(s), %d warning(s); structure=%s "
                  "deadlock-free=%s balanced=%s placement=%s "
                  "timing=%s",
                  errorCount(), warningCount(),
                  structureOk ? "ok" : "FAIL",
                  deadlockFree ? "yes" : "NO",
                  balanced ? "yes" : "NO",
                  placementOk ? "ok" : "FAIL",
                  timingOk ? "ok" : "FAIL");
    return s;
}

std::string
AnalysisReport::toJson(const dfg::Graph &graph) const
{
    std::ostringstream out;
    trace::JsonWriter w(out);
    w.beginObject();
    w.key("graph").value(graph.name);
    w.key("structureOk").value(structureOk);
    w.key("deadlockFree").value(deadlockFree);
    w.key("balanced").value(balanced);
    w.key("placementOk").value(placementOk);
    w.key("timingOk").value(timingOk);
    w.key("errors").value(errorCount());
    w.key("warnings").value(warningCount());
    // Per-family diagnostic counts (errors + warnings), keyed by
    // the rule-id family letter, so CI gates can assert on one
    // family without parsing every diagnostic.
    {
        struct Family
        {
            char letter;
            const char *name;
        };
        static constexpr Family families[] = {
            {'S', "structural"}, {'D', "deadlock"},
            {'B', "balance"},    {'P', "placement"},
            {'T', "timing"},
        };
        w.key("families").beginObject();
        for (const Family &f : families) {
            int n = 0;
            for (const auto &d : diags) {
                if (d.rule.size() >= 4 && d.rule[3] == f.letter)
                    n++;
            }
            w.key(f.name).value(n);
        }
        w.endObject();
    }
    w.key("diagnostics").beginArray();
    for (const auto &d : diags)
        writeJson(w, d, graph);
    w.endArray();
    w.endObject();
    return out.str();
}

AnalysisReport
analyzeGraph(const dfg::Graph &graph, const AnalysisOptions &options)
{
    AnalysisReport report;
    Analyzer(graph, options, report).run();
    return report;
}

} // namespace pipestitch::analysis
