/**
 * @file
 * Execution statistics collected by the simulator: everything the
 * evaluation figures need (cycles, fires, IPC, buffer/NoC/memory
 * event counts for the energy model, stall breakdowns).
 */

#ifndef PIPESTITCH_SIM_STATS_HH
#define PIPESTITCH_SIM_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/graph.hh"

namespace pipestitch::sim {

struct SimStats
{
    int64_t cycles = 0;

    /** Fire count per node. */
    std::vector<int64_t> nodeFires;

    /** Tokens consumed per (node, input port): one NoC traversal
     *  each, over the route the mapping assigned to that edge. */
    std::vector<std::vector<int64_t>> portReads;

    /** Fire counts per PE class (dfg::PeClass order), PE-mapped only. */
    std::vector<int64_t> classFires = std::vector<int64_t>(5, 0);

    /** Fires of CF operators evaluated in NoC routers. */
    int64_t nocCfFires = 0;

    // Event counts for the energy model.
    int64_t bufferWrites = 0;
    int64_t bufferReads = 0;
    int64_t nocTraversals = 0; ///< producer→consumer token deliveries
    int64_t memLoads = 0;
    int64_t memStores = 0;
    int64_t steerDrops = 0;
    int64_t syncPlaneCycles = 0; ///< cycles any dispatch group evaluated
    int64_t dispatchSpawns = 0;  ///< threads launched
    int64_t dispatchConts = 0;
    int64_t shareConflicts = 0;  ///< fires deferred by PE sharing
    int64_t muxSwitches = 0;     ///< shared-PE resident alternations
    int64_t interTileTokens = 0; ///< tokens through inter-tile links

    // Stall census over sequential nodes: cycles in which a node had
    // at least one pending input token but did not fire.
    int64_t stallNoInput = 0;   ///< waiting on a missing operand
    int64_t stallNoSpace = 0;   ///< downstream backpressure
    int64_t bankConflictStalls = 0; ///< memory bank conflict

    /**
     * Total PE fires / cycles (the paper's IPC definition, Sec. 5.7:
     * "total number of times all PEs fired ... divided by the total
     * number of cycles"). CF-in-NoC fires are not PE fires.
     */
    double ipc() const;

    /** Total PE fires. */
    int64_t totalPeFires() const;
};

/**
 * Field-by-field equality over every counter. The parallel-scheduler
 * contract (docs/simulator.md) is bit-identity with the ReadyList
 * oracle, so "equal" means every field, not just cycles.
 */
bool statsEqual(const SimStats &a, const SimStats &b);

/** Inner- vs outer-loop per-unit IPC split (Fig. 18). */
struct LoopIpc
{
    double innerIpc = 0;    ///< inner-loop PE fires / cycles
    double outerIpc = 0;
    double innerPerUnit = 0; ///< innerIpc / #inner-loop PEs
    double outerPerUnit = 0;
    int innerPes = 0;
    int outerPes = 0;
};

/**
 * Split PE fires into innermost-loop vs. other ("outer") nodes and
 * normalize by PE counts, per the Fig. 18 definition.
 */
LoopIpc computeLoopIpc(const dfg::Graph &graph, const SimStats &stats);

} // namespace pipestitch::sim

#endif // PIPESTITCH_SIM_STATS_HH
