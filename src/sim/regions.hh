/**
 * @file
 * Spatial region partitioning for the ParallelRegions scheduler.
 *
 * A Program's fabric is split into K disjoint regions whose
 * select/census phases can execute independently each cycle. For
 * tiled programs (inter-tile channels present) the partition follows
 * the channel cut — regions are whole tiles, grouped to K bins — so
 * region boundaries coincide with the latency-N channels that
 * already decouple the tiles. Single-grid programs are layered with
 * the same BFS-order min-cut growth the tiled mapper uses to
 * partition units across tiles: atomic units (dispatch groups stay
 * whole so one region owns each SyncPlane) are laid out in BFS order
 * over the wire adjacency, cut into K balanced chunks, and refined
 * by moving boundary units toward the region they are most connected
 * to.
 *
 * The partition never affects simulation results — the engine's
 * coordinated commit keeps every job count bit-identical to the
 * ReadyList oracle — it only balances per-region work and, for
 * channel-cut partitions, bounds the lookahead window (see
 * sim/parallel.hh).
 */

#ifndef PIPESTITCH_SIM_REGIONS_HH
#define PIPESTITCH_SIM_REGIONS_HH

#include <string>
#include <vector>

#include "sim/program.hh"

namespace pipestitch::sim {

struct RegionPlan
{
    /** Number of regions (trailing regions may be empty). */
    int count = 1;
    /** Node id -> region index. */
    std::vector<int> regionOf;
    /** Per region: member node ids, ascending. */
    std::vector<std::vector<dfg::NodeId>> nodes;
    /** Partition follows tile/channel boundaries. */
    bool channelCut = false;
    /** Wire (non-channel) edges crossing region boundaries. */
    int cutWires = 0;
    /** Channel edges crossing region boundaries. */
    int cutChannels = 0;
};

/** Partition @p prog 's fabric into (at most) @p jobs regions. */
RegionPlan partitionRegions(const Program &prog, int jobs);

/** Verdict of verifyPartition: ok, or a structured diagnostic
 *  naming every violated invariant and the nodes implicated. */
struct PartitionVerdict
{
    bool ok = true;
    /** Human-readable list of violations, one per line. */
    std::string diagnostic;
    /** Nodes implicated in the violations (split dispatch groups,
     *  endpoints of bad cut edges), deduplicated and ascending. */
    std::vector<dfg::NodeId> violations;
};

/**
 * Check the invariants the ParallelRegions engine relies on:
 *
 *  - plan shape: regionOf covers every node with a region index in
 *    [0, count), and the per-region node lists agree with it;
 *  - dispatch groups are atomic — one region owns each SyncPlane,
 *    so census/select for a group never spans engines;
 *  - every cut channel has latency >= 1 and capacity >= 1, so the
 *    engine's decoupling window (ParallelEngine::windowBound) is
 *    always >= 1;
 *  - the plan's cutWires/cutChannels counters match a recount.
 *
 * partitionRegions output always passes; the check exists to fail
 * loudly (in the engine constructor) if a refactor breaks the
 * contract, and for tests to probe hand-corrupted plans.
 */
PartitionVerdict verifyPartition(const Program &prog,
                                 const RegionPlan &plan);

} // namespace pipestitch::sim

#endif // PIPESTITCH_SIM_REGIONS_HH
