#include "sim/report.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "base/logging.hh"
#include "base/table.hh"

namespace pipestitch::sim {

std::string
operatorReport(const dfg::Graph &graph, const SimStats &stats,
               int maxRows)
{
    std::vector<dfg::NodeId> order(
        static_cast<size_t>(graph.size()));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](dfg::NodeId a, dfg::NodeId b) {
                  return stats.nodeFires[static_cast<size_t>(a)] >
                         stats.nodeFires[static_cast<size_t>(b)];
              });

    Table t({"Op", "Kind", "Name", "Loop", "Where", "Fires",
             "Util"});
    double cycles = std::max<double>(1, stats.cycles);
    int rows = 0;
    for (dfg::NodeId id : order) {
        if (rows++ >= maxRows)
            break;
        const auto &n = graph.at(id);
        t.addRow({csprintf("n%d", id), dfg::nodeKindName(n.kind),
                  n.name,
                  n.loopId >= 0 ? csprintf("L%d", n.loopId) : "-",
                  n.kind == dfg::NodeKind::Trigger
                      ? "core"
                      : (n.cfInNoc ? "NoC" : "PE"),
                  csprintf("%lld",
                           static_cast<long long>(
                               stats.nodeFires[static_cast<size_t>(
                                   id)])),
                  Table::fmt(
                      stats.nodeFires[static_cast<size_t>(id)] /
                          cycles,
                      2)});
    }
    return t.render();
}

std::string
utilizationMap(const dfg::Graph &graph,
               const fabric::Fabric &fabric,
               const mapper::Mapping &mapping, const SimStats &stats)
{
    const auto &cfg = fabric.config();
    std::vector<double> util(static_cast<size_t>(fabric.numPes()),
                             -1.0);
    double cycles = std::max<double>(1, stats.cycles);
    for (dfg::NodeId id = 0; id < graph.size(); id++) {
        int pe = mapping.peOf[static_cast<size_t>(id)];
        if (pe < 0)
            continue;
        util[static_cast<size_t>(pe)] =
            stats.nodeFires[static_cast<size_t>(id)] / cycles;
    }

    std::ostringstream out;
    out << "fabric utilization: <class>.<decile> per mapped PE "
           "(x.0 = mapped but idle, '.' = unused)\n";
    for (int y = cfg.height - 1; y >= 0; y--) {
        out << "  ";
        for (int x = 0; x < cfg.width; x++) {
            int pe = fabric.peAt({x, y});
            char cls;
            switch (fabric.classAt(pe)) {
              case dfg::PeClass::Arith: cls = 'A'; break;
              case dfg::PeClass::Multiplier: cls = 'X'; break;
              case dfg::PeClass::ControlFlow: cls = 'C'; break;
              case dfg::PeClass::Memory: cls = 'M'; break;
              default: cls = 'S'; break;
            }
            double u = util[static_cast<size_t>(pe)];
            if (u < 0) {
                out << "   .";
            } else if (u == 0) {
                out << ' ' << cls << ".0";
            } else {
                int decile =
                    std::min(9, static_cast<int>(u * 10));
                out << ' ' << cls << '.' << decile;
            }
        }
        out << '\n';
    }
    return out.str();
}

} // namespace pipestitch::sim
