#include "sim/report.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "base/logging.hh"
#include "base/table.hh"
#include "trace/json.hh"

namespace pipestitch::sim {

Report &
Report::add(const std::string &key, int64_t v)
{
    Entry e;
    e.type = Entry::Type::Int;
    e.key = key;
    e.i = v;
    entries.push_back(std::move(e));
    return *this;
}

Report &
Report::add(const std::string &key, double v)
{
    Entry e;
    e.type = Entry::Type::Real;
    e.key = key;
    e.d = v;
    entries.push_back(std::move(e));
    return *this;
}

Report &
Report::add(const std::string &key, const std::string &v)
{
    Entry e;
    e.type = Entry::Type::Str;
    e.key = key;
    e.s = v;
    entries.push_back(std::move(e));
    return *this;
}

Report &
Report::add(const std::string &key, bool v)
{
    Entry e;
    e.type = Entry::Type::Bool;
    e.key = key;
    e.b = v;
    entries.push_back(std::move(e));
    return *this;
}

std::string
Report::render(const Entry &e) const
{
    switch (e.type) {
      case Entry::Type::Int:
        return csprintf("%lld", static_cast<long long>(e.i));
      case Entry::Type::Real: return csprintf("%.6g", e.d);
      case Entry::Type::Str: return e.s;
      case Entry::Type::Bool: return e.b ? "true" : "false";
    }
    return "";
}

bool
Report::has(const std::string &key) const
{
    for (const Entry &e : entries) {
        if (e.key == key)
            return true;
    }
    return false;
}

std::string
Report::get(const std::string &key) const
{
    for (const Entry &e : entries) {
        if (e.key == key)
            return render(e);
    }
    return "";
}

std::string
Report::toString() const
{
    std::string out;
    for (const Entry &e : entries) {
        if (!out.empty())
            out += ' ';
        out += e.key + '=' + render(e);
    }
    return out;
}

std::string
Report::toJson() const
{
    std::ostringstream out;
    trace::JsonWriter w(out);
    w.beginObject();
    for (const Entry &e : entries) {
        w.key(e.key);
        switch (e.type) {
          case Entry::Type::Int: w.value(e.i); break;
          case Entry::Type::Real: w.value(e.d); break;
          case Entry::Type::Str: w.value(e.s); break;
          case Entry::Type::Bool: w.value(e.b); break;
        }
    }
    w.endObject();
    return out.str();
}

Report
reportFor(const SimStats &stats)
{
    Report r;
    r.add("cycles", stats.cycles);
    r.add("fires", stats.totalPeFires());
    r.add("noc_cf_fires", stats.nocCfFires);
    r.add("ipc", stats.ipc());
    r.add("loads", stats.memLoads);
    r.add("stores", stats.memStores);
    r.add("spawns", stats.dispatchSpawns);
    r.add("conts", stats.dispatchConts);
    r.add("stall_input", stats.stallNoInput);
    r.add("stall_space", stats.stallNoSpace);
    r.add("stall_bank", stats.bankConflictStalls);
    // Only meaningful on tiled fabrics; omitted otherwise so
    // single-tile summaries stay byte-identical to the legacy form.
    if (stats.interTileTokens > 0)
        r.add("inter_tile_tokens", stats.interTileTokens);
    return r;
}

std::string
operatorReport(const dfg::Graph &graph, const SimStats &stats,
               int maxRows)
{
    std::vector<dfg::NodeId> order(
        static_cast<size_t>(graph.size()));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](dfg::NodeId a, dfg::NodeId b) {
                  return stats.nodeFires[static_cast<size_t>(a)] >
                         stats.nodeFires[static_cast<size_t>(b)];
              });

    Table t({"Op", "Kind", "Name", "Loop", "Where", "Fires",
             "Util"});
    double cycles = std::max<double>(1, stats.cycles);
    int rows = 0;
    for (dfg::NodeId id : order) {
        if (rows++ >= maxRows)
            break;
        const auto &n = graph.at(id);
        t.addRow({csprintf("n%d", id), dfg::nodeKindName(n.kind),
                  n.name,
                  n.loopId >= 0 ? csprintf("L%d", n.loopId) : "-",
                  n.kind == dfg::NodeKind::Trigger
                      ? "core"
                      : (n.cfInNoc ? "NoC" : "PE"),
                  csprintf("%lld",
                           static_cast<long long>(
                               stats.nodeFires[static_cast<size_t>(
                                   id)])),
                  Table::fmt(
                      stats.nodeFires[static_cast<size_t>(id)] /
                          cycles,
                      2)});
    }
    return t.render();
}

std::string
operatorReportJson(const dfg::Graph &graph, const SimStats &stats)
{
    std::vector<dfg::NodeId> order(
        static_cast<size_t>(graph.size()));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](dfg::NodeId a, dfg::NodeId b) {
                  return stats.nodeFires[static_cast<size_t>(a)] >
                         stats.nodeFires[static_cast<size_t>(b)];
              });

    std::ostringstream out;
    trace::JsonWriter w(out);
    double cycles = std::max<double>(1, stats.cycles);
    w.beginArray();
    for (dfg::NodeId id : order) {
        const auto &n = graph.at(id);
        w.beginObject();
        w.key("id").value(id);
        w.key("kind").value(dfg::nodeKindName(n.kind));
        w.key("name").value(n.name);
        w.key("loop").value(n.loopId);
        w.key("where").value(n.kind == dfg::NodeKind::Trigger
                                 ? "core"
                                 : (n.cfInNoc ? "noc" : "pe"));
        w.key("fires").value(
            stats.nodeFires[static_cast<size_t>(id)]);
        w.key("util").value(
            stats.nodeFires[static_cast<size_t>(id)] / cycles);
        w.endObject();
    }
    w.endArray();
    return out.str();
}

std::string
utilizationMap(const dfg::Graph &graph,
               const fabric::Fabric &fabric,
               const mapper::Mapping &mapping, const SimStats &stats)
{
    const auto &cfg = fabric.config();
    std::vector<double> util(static_cast<size_t>(fabric.numPes()),
                             -1.0);
    double cycles = std::max<double>(1, stats.cycles);
    for (dfg::NodeId id = 0; id < graph.size(); id++) {
        int pe = mapping.peOf[static_cast<size_t>(id)];
        if (pe < 0)
            continue;
        util[static_cast<size_t>(pe)] =
            stats.nodeFires[static_cast<size_t>(id)] / cycles;
    }

    std::ostringstream out;
    out << "fabric utilization: <class>.<decile> per mapped PE "
           "(x.0 = mapped but idle, '.' = unused)\n";
    for (int y = cfg.height - 1; y >= 0; y--) {
        out << "  ";
        for (int x = 0; x < cfg.width; x++) {
            int pe = fabric.peAt({x, y});
            char cls;
            switch (fabric.classAt(pe)) {
              case dfg::PeClass::Arith: cls = 'A'; break;
              case dfg::PeClass::Multiplier: cls = 'X'; break;
              case dfg::PeClass::ControlFlow: cls = 'C'; break;
              case dfg::PeClass::Memory: cls = 'M'; break;
              default: cls = 'S'; break;
            }
            double u = util[static_cast<size_t>(pe)];
            if (u < 0) {
                out << "   .";
            } else if (u == 0) {
                out << ' ' << cls << ".0";
            } else {
                int decile =
                    std::min(9, static_cast<int>(u * 10));
                out << ' ' << cls << '.' << decile;
            }
        }
        out << '\n';
    }
    return out.str();
}

} // namespace pipestitch::sim
