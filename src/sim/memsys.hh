/**
 * @file
 * Banked scratchpad memory model.
 *
 * The fabric's 256 kB SRAM is split into word-interleaved banks,
 * each servicing one access per cycle. Memory PEs arbitrate for bank
 * ports each cycle; losing the arbitration is the paper's
 * "memory-bank conflict" transient stall (Sec. 4.7). Loads complete
 * a fixed latency after issue.
 */

#ifndef PIPESTITCH_SIM_MEMSYS_HH
#define PIPESTITCH_SIM_MEMSYS_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "scalar/interpreter.hh"
#include "sim/token.hh"

namespace pipestitch::sim {

using MemImage = scalar::MemImage;

/** A load whose data is still in flight. */
struct PendingLoad
{
    int node;          ///< issuing Load node id
    Token data;        ///< value read at issue
    int64_t readyCycle;
};

class MemSystem
{
  public:
    MemSystem(MemImage &mem, int numBanks, int loadLatency);

    int bankOf(Word addr) const;

    /** Start-of-cycle: clear this cycle's bank port claims. */
    void beginCycle();

    /** Check whether @p addr 's bank port is still free this cycle. */
    bool bankFree(Word addr) const;

    /** Claim the bank port (call once per winning accessor). */
    void claimBank(Word addr);

    /** Read for a load issued at @p cycle; returns the pending slot. */
    PendingLoad issueLoad(int node, Word addr, int32_t tag,
                          int64_t cycle);

    /** Commit a store immediately (single-cycle write). */
    void store(Word addr, Word value);

    /** Loads completing at @p cycle (moved out of the pending list). */
    std::vector<PendingLoad> takeCompletions(int64_t cycle);

    bool idle() const { return pending.empty(); }

    int64_t pendingCount() const
    {
        return static_cast<int64_t>(pending.size());
    }

  private:
    void checkAddr(Word addr) const;

    MemImage &mem;
    int numBanks;
    int loadLatency;
    std::vector<bool> bankClaimed;
    std::deque<PendingLoad> pending; // ordered by readyCycle
};

} // namespace pipestitch::sim

#endif // PIPESTITCH_SIM_MEMSYS_HH
