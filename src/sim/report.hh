/**
 * @file
 * Human-readable execution reports: per-operator firing/utilization
 * tables and a fabric utilization heat map (which PE did how much
 * work), for debugging kernels and understanding mappings.
 */

#ifndef PIPESTITCH_SIM_REPORT_HH
#define PIPESTITCH_SIM_REPORT_HH

#include <string>

#include "dfg/graph.hh"
#include "fabric/fabric.hh"
#include "mapper/mapper.hh"
#include "sim/stats.hh"

namespace pipestitch::sim {

/**
 * Per-operator table: id, kind, name, loop, placement, fires, and
 * utilization (fires / cycles). Sorted by fire count, capped at
 * @p maxRows rows.
 */
std::string operatorReport(const dfg::Graph &graph,
                           const SimStats &stats, int maxRows = 24);

/**
 * ASCII heat map of the fabric: one cell per PE showing its class
 * letter and utilization decile (0-9, '.' for idle, space for
 * unused).
 */
std::string utilizationMap(const dfg::Graph &graph,
                           const fabric::Fabric &fabric,
                           const mapper::Mapping &mapping,
                           const SimStats &stats);

} // namespace pipestitch::sim

#endif // PIPESTITCH_SIM_REPORT_HH
