/**
 * @file
 * Execution reports.
 *
 * `Report` is the canonical structured result record: an ordered
 * list of key/value entries with both a terminal rendering
 * (`toString()`, "key=value ...") and a machine-readable one
 * (`toJson()`). `reportFor(stats)` builds the standard simulation
 * summary; callers append their own entries (kernel name, energy,
 * trace file...) before emitting. It replaces the old ad-hoc
 * `summarize()` string.
 *
 * The remaining functions are human-readable diagnostics:
 * per-operator firing/utilization tables (text and JSON) and a
 * fabric utilization heat map (which PE did how much work).
 */

#ifndef PIPESTITCH_SIM_REPORT_HH
#define PIPESTITCH_SIM_REPORT_HH

#include <string>
#include <vector>

#include "dfg/graph.hh"
#include "fabric/fabric.hh"
#include "mapper/mapper.hh"
#include "sim/stats.hh"

namespace pipestitch::sim {

/**
 * Version stamp carried as `schema_version` in every machine-
 * readable pstool output (run/map/lint/trace --json, serve
 * responses, figures --json, BENCH_*.json). Bump on any
 * backwards-incompatible field change and record the delta in
 * docs/json-schemas.md.
 */
constexpr int kJsonSchemaVersion = 1;

/** Ordered key/value result record with text and JSON renderings. */
class Report
{
  public:
    Report &add(const std::string &key, int64_t v);
    Report &
    add(const std::string &key, int v)
    {
        return add(key, static_cast<int64_t>(v));
    }
    Report &add(const std::string &key, double v);
    Report &add(const std::string &key, const std::string &v);
    Report &
    add(const std::string &key, const char *v)
    {
        return add(key, std::string(v));
    }
    Report &add(const std::string &key, bool v);

    bool has(const std::string &key) const;
    /** Rendered value of @p key, or "" when absent. */
    std::string get(const std::string &key) const;

    /** Terminal form: "key=value key=value ...". */
    std::string toString() const;

    /** One JSON object, keys in insertion order. */
    std::string toJson() const;

    size_t size() const { return entries.size(); }

  private:
    struct Entry
    {
        enum class Type { Int, Real, Str, Bool };
        Type type;
        std::string key;
        int64_t i = 0;
        double d = 0;
        std::string s;
        bool b = false;
    };

    std::string render(const Entry &e) const;

    std::vector<Entry> entries;
};

/** The standard simulation summary (cycles, fires, ipc, memory and
 *  stall counters) as a Report. */
Report reportFor(const SimStats &stats);

/**
 * Per-operator table: id, kind, name, loop, placement, fires, and
 * utilization (fires / cycles). Sorted by fire count, capped at
 * @p maxRows rows.
 */
std::string operatorReport(const dfg::Graph &graph,
                           const SimStats &stats, int maxRows = 24);

/**
 * Machine-readable form of the per-operator table: a JSON array of
 * {id, kind, name, loop, where, fires, util} objects covering every
 * node (no row cap), in descending fire order.
 */
std::string operatorReportJson(const dfg::Graph &graph,
                               const SimStats &stats);

/**
 * ASCII heat map of the fabric: one cell per PE showing its class
 * letter and utilization decile (0-9, '.' for idle, space for
 * unused).
 */
std::string utilizationMap(const dfg::Graph &graph,
                           const fabric::Fabric &fabric,
                           const mapper::Mapping &mapping,
                           const SimStats &stats);

} // namespace pipestitch::sim

#endif // PIPESTITCH_SIM_REPORT_HH
