#include "sim/stats.hh"

#include "base/logging.hh"

namespace pipestitch::sim {

int64_t
SimStats::totalPeFires() const
{
    int64_t total = 0;
    for (int64_t f : classFires)
        total += f;
    return total;
}

double
SimStats::ipc() const
{
    if (cycles == 0)
        return 0;
    return static_cast<double>(totalPeFires()) /
           static_cast<double>(cycles);
}

bool
statsEqual(const SimStats &a, const SimStats &b)
{
    return a.cycles == b.cycles && a.nodeFires == b.nodeFires &&
           a.portReads == b.portReads &&
           a.classFires == b.classFires &&
           a.nocCfFires == b.nocCfFires &&
           a.bufferWrites == b.bufferWrites &&
           a.bufferReads == b.bufferReads &&
           a.nocTraversals == b.nocTraversals &&
           a.memLoads == b.memLoads && a.memStores == b.memStores &&
           a.steerDrops == b.steerDrops &&
           a.syncPlaneCycles == b.syncPlaneCycles &&
           a.dispatchSpawns == b.dispatchSpawns &&
           a.dispatchConts == b.dispatchConts &&
           a.shareConflicts == b.shareConflicts &&
           a.muxSwitches == b.muxSwitches &&
           a.interTileTokens == b.interTileTokens &&
           a.stallNoInput == b.stallNoInput &&
           a.stallNoSpace == b.stallNoSpace &&
           a.bankConflictStalls == b.bankConflictStalls;
}

LoopIpc
computeLoopIpc(const dfg::Graph &graph, const SimStats &stats)
{
    LoopIpc out;
    int64_t innerFires = 0, outerFires = 0;
    for (dfg::NodeId id = 0; id < graph.size(); id++) {
        const dfg::Node &node = graph.at(id);
        if (node.kind == dfg::NodeKind::Trigger || node.cfInNoc)
            continue; // not a PE
        int64_t fires = stats.nodeFires[static_cast<size_t>(id)];
        if (node.innerLoop) {
            out.innerPes++;
            innerFires += fires;
        } else {
            out.outerPes++;
            outerFires += fires;
        }
    }
    double cycles = static_cast<double>(stats.cycles);
    if (cycles <= 0)
        return out;
    out.innerIpc = static_cast<double>(innerFires) / cycles;
    out.outerIpc = static_cast<double>(outerFires) / cycles;
    if (out.innerPes > 0)
        out.innerPerUnit = out.innerIpc / out.innerPes;
    if (out.outerPes > 0)
        out.outerPerUnit = out.outerIpc / out.outerPes;
    return out;
}

} // namespace pipestitch::sim
