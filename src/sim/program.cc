#include "sim/program.hh"

#include <algorithm>

#include "base/logging.hh"
#include "dfg/analysis.hh"

namespace pipestitch::sim {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::NodeKind;
using dfg::Operand;

namespace {

/** Destination-buffered mode: only CF-on-PE and memory PEs carry
 *  output buffers (Sec. 4.7); everything else delivers directly. */
bool
nodeHasOutBufs(const Node &node)
{
    return node.isControlFlow() || node.isMemory();
}

} // namespace

Program::Program(std::shared_ptr<const dfg::Graph> graph,
                 const SimConfig &config)
    : cfg(config), graphHold(std::move(graph))
{
    ps_assert(graphHold != nullptr, "Program needs a graph");
    const Graph &g = *graphHold;
    ps_assert(g.isFinalized(), "graph must be finalized");
    ps_assert(cfg.bufferDepth >= 1, "buffer depth must be >= 1");

    // Per-run observability belongs to ExecutionState::run(); strip
    // it so Programs are deeply immutable and freely shareable.
    cfg.observer = nullptr;
    cfg.trace = false;

    sourceMode = cfg.buffering == SimConfig::Buffering::Source;
    // ParallelRegions keeps the full ready-list tables so its
    // fallback paths (observer/trace/source-mode/share-group runs)
    // execute as the ReadyList oracle.
    readyMode = cfg.scheduler != SimConfig::Scheduler::DenseScan;

    for (const auto &node : g.nodes) {
        if (node.kind == NodeKind::Dispatch) {
            // Bubble flow control reserves two output slots for a
            // spawn set; shallower buffers could never launch a
            // thread (Sec. 4.4).
            ps_assert(cfg.bufferDepth >= 2,
                      "threaded graphs need buffer depth >= 2");
            break;
        }
    }

    const int n = g.size();
    inputRefs.resize(static_cast<size_t>(n));
    plan.resize(static_cast<size_t>(n));
    threadRegionOf.assign(static_cast<size_t>(n), -1);
    nocNode.assign(static_cast<size_t>(n), 0);

    // Resolve input wiring and endpoint indices. Endpoint index =
    // position in the producer port's consumer list.
    for (NodeId id = 0; id < n; id++) {
        const Node &node = g.at(id);
        auto &refs = inputRefs[static_cast<size_t>(id)];
        refs.resize(static_cast<size_t>(node.numInputs()));
        for (int i = 0; i < node.numInputs(); i++) {
            const Operand &op = node.inputs[static_cast<size_t>(i)];
            InputRef &ref = refs[static_cast<size_t>(i)];
            if (op.isImm()) {
                ref.isImm = true;
                ref.imm = op.imm;
            } else if (op.isWire()) {
                ref.prod = op.port.node;
                ref.prodPort = op.port.index;
                const auto &cons = g.consumersOf(op.port);
                for (size_t e = 0; e < cons.size(); e++) {
                    if (cons[e].node == id && cons[e].inputIndex == i)
                        ref.endpoint = static_cast<int>(e);
                }
            }
        }
    }

    // Buffer layout plan (ExecutionState materializes the FIFOs).
    for (NodeId id = 0; id < n; id++) {
        const Node &node = g.at(id);
        NodePlan &p = plan[static_cast<size_t>(id)];
        nocNode[static_cast<size_t>(id)] = node.cfInNoc ? 1 : 0;
        if (node.cfInNoc) {
            if (sourceMode) {
                // Flow-through relay: a shallow window consumers
                // pull from (the op itself is combinational).
                p.outsDepth = 2;
            } else {
                // Flow-through relay: tokens logically wait at the
                // upstream PE/wire interface until the router op can
                // pair them; modeled as input windows of the global
                // buffer depth, with direct delivery downstream.
                p.insDepth = cfg.bufferDepth;
            }
        } else if (sourceMode) {
            p.outsDepth = cfg.bufferDepth;
        } else {
            p.insDepth = cfg.bufferDepth;
            if (nodeHasOutBufs(node))
                p.outsDepth = cfg.bufferDepth;
        }
        // Nearest enclosing threaded loop (for debug-tag scoping).
        int l = node.loopId;
        while (l >= 0) {
            if (g.loopThreaded[static_cast<size_t>(l)]) {
                threadRegionOf[static_cast<size_t>(id)] = l;
                break;
            }
            l = g.loopParent[static_cast<size_t>(l)];
        }
    }

    nocTopo = dfg::nocCfTopoOrder(g);
    topoIndex.assign(static_cast<size_t>(n), -1);
    for (size_t i = 0; i < nocTopo.size(); i++)
        topoIndex[static_cast<size_t>(nocTopo[i])] =
            static_cast<int>(i);

    dispatchGroups.assign(static_cast<size_t>(g.numLoops), {});
    gateLoop.assign(static_cast<size_t>(n), -1);
    for (NodeId id = 0; id < n; id++) {
        const Node &node = g.at(id);
        if (node.kind == NodeKind::Dispatch) {
            dispatchGroups[static_cast<size_t>(node.loopId)].push_back(
                id);
            gateLoop[static_cast<size_t>(id)] = node.loopId;
        }
    }

    shareGroupOf.assign(static_cast<size_t>(n), -1);
    for (size_t gi = 0; gi < cfg.shareGroups.size(); gi++) {
        for (int id : cfg.shareGroups[gi]) {
            ps_assert(id >= 0 && id < n, "bad share-group node");
            ps_assert(shareGroupOf[static_cast<size_t>(id)] == -1,
                      "node %d in two share groups", id);
            shareGroupOf[static_cast<size_t>(id)] =
                static_cast<int>(gi);
        }
    }

    // Flatten consumer adjacency into CSR arrays for the wake paths.
    portBase.assign(static_cast<size_t>(n) + 1, 0);
    for (NodeId id = 0; id < n; id++) {
        portBase[static_cast<size_t>(id) + 1] =
            portBase[static_cast<size_t>(id)] +
            g.at(id).numOutputs();
    }
    consBase.assign(static_cast<size_t>(portBase.back()) + 1, 0);
    for (NodeId id = 0; id < n; id++) {
        for (int port = 0; port < g.at(id).numOutputs(); port++) {
            consBase[static_cast<size_t>(portBase[static_cast<size_t>(
                         id)] + port) + 1] =
                static_cast<int>(g.consumersOf({id, port}).size());
        }
    }
    for (size_t i = 1; i < consBase.size(); i++)
        consBase[i] += consBase[i - 1];
    consFlat.resize(static_cast<size_t>(consBase.back()));
    {
        size_t at = 0;
        for (NodeId id = 0; id < n; id++) {
            for (int port = 0; port < g.at(id).numOutputs();
                 port++) {
                for (const auto &c : g.consumersOf({id, port}))
                    consFlat[at++] = c.node;
            }
        }
    }

    for (NodeId id = 0; id < n; id++) {
        if (nocNode[static_cast<size_t>(id)])
            allNocNodes.push_back(id);
        else
            allSeqNodes.push_back(id);
        if (g.at(id).kind == NodeKind::Trigger)
            triggersTotal++;
    }

    // Inter-tile FIFO channels (tiled fabrics). Each entry turns one
    // consumer edge into a latency-N channel; see execution.cc
    // advanceChannels().
    chanIdOf.resize(static_cast<size_t>(n));
    for (NodeId id = 0; id < n; id++) {
        chanIdOf[static_cast<size_t>(id)].assign(
            static_cast<size_t>(g.at(id).numInputs()), -1);
    }
    for (const SimConfig::EdgeLatency &el : cfg.edgeLatencies) {
        ps_assert(!sourceMode, "inter-tile channels require "
                               "destination buffering");
        ps_assert(el.node >= 0 && el.node < n,
                  "edge latency names node %d outside the graph",
                  el.node);
        const Node &node = g.at(el.node);
        ps_assert(el.input >= 0 && el.input < node.numInputs(),
                  "edge latency names input %d of node %d (has %d)",
                  el.input, el.node, node.numInputs());
        const InputRef &ref =
            inputRefs[static_cast<size_t>(el.node)]
                     [static_cast<size_t>(el.input)];
        ps_assert(ref.wired(),
                  "edge latency on unwired input %d of node %d",
                  el.input, el.node);
        ps_assert(el.latency >= 1, "edge latency must be >= 1");
        int &slot = chanIdOf[static_cast<size_t>(el.node)]
                            [static_cast<size_t>(el.input)];
        ps_assert(slot == -1, "duplicate edge latency on node %d "
                              "input %d", el.node, el.input);
        Channel ch;
        ch.src = ref.prod;
        ch.srcPort = ref.prodPort;
        ch.dst = el.node;
        ch.dstIn = el.input;
        ch.latency = el.latency;
        ch.capacity = std::max(el.latency, 1);
        slot = static_cast<int>(channels.size());
        channels.push_back(ch);
        hasChannels = true;
    }
}

} // namespace pipestitch::sim
