/**
 * @file
 * sim::Program — the immutable compiled simulation artifact.
 *
 * A Program captures everything about a finalized dataflow graph and
 * a microarchitecture configuration that does not change between
 * runs: resolved input wiring, the CSR consumer adjacency used by
 * the wake paths, the NoC topological order, dispatch-group and
 * share-group membership, thread-region scoping, and the per-node
 * token-buffer layout. Building it is the per-simulation setup the
 * old `simulate()` redid on every call.
 *
 * The contract (see docs/simulator.md):
 *
 *  - a Program is deeply immutable after construction — every member
 *    is written exactly once, in the constructor;
 *  - any number of `ExecutionState`s (execution.hh) may share one
 *    Program concurrently from different threads with no locking;
 *  - all mutable run state (token buffers, gate FSMs, memory image,
 *    stats, scheduler worklists, observer) lives in ExecutionState.
 *
 * This mirrors the plan/execute split of image-pipeline graph
 * executors: plan once (sizes, cursors, layouts), execute many times
 * with per-execution state.
 */

#ifndef PIPESTITCH_SIM_PROGRAM_HH
#define PIPESTITCH_SIM_PROGRAM_HH

#include <memory>
#include <vector>

#include "dfg/graph.hh"
#include "sim/simulator.hh"

namespace pipestitch::sim {

/** Resolved wiring of one input port. */
struct InputRef
{
    bool isImm = false;
    Word imm = 0;
    dfg::NodeId prod = dfg::NoNode;
    int prodPort = 0;
    int endpoint = 0; ///< index into producer port's consumer list
    bool wired() const { return prod != dfg::NoNode; }
};

class Program
{
  public:
    /**
     * Build the immutable artifact for @p graph under @p config.
     * @p graph must be finalized and must outlive the Program (pass
     * an owning pointer, or a non-owning aliasing pointer when the
     * caller guarantees the lifetime, as `simulate()` does).
     *
     * The per-run fields of @p config (`observer`, `trace`) are
     * stripped — they belong to ExecutionState::run() — so Programs
     * built from configs differing only in observability compare
     * and behave identically.
     */
    Program(std::shared_ptr<const dfg::Graph> graph,
            const SimConfig &config);

    const dfg::Graph &graph() const { return *graphHold; }
    const std::shared_ptr<const dfg::Graph> &graphPtr() const
    {
        return graphHold;
    }
    const SimConfig &config() const { return cfg; }

    /** Per-node token-buffer layout (0 = no FIFOs on that side). */
    struct NodePlan
    {
        int insDepth = 0;
        int outsDepth = 0;
    };

    // ----------------------------------------------------------------
    // Immutable tables. Public for the engine's hot paths; written
    // only by the constructor. Always access through `const Program&`.
    // ----------------------------------------------------------------
    SimConfig cfg;    ///< observer/trace stripped
    bool sourceMode;  ///< buffering == Source
    bool readyMode;   ///< scheduler != DenseScan (ready-list tables)

    std::vector<std::vector<InputRef>> inputRefs; // [node][in]
    std::vector<NodePlan> plan;                   // [node]
    std::vector<int> threadRegionOf; ///< nearest threaded loop (-1)

    std::vector<dfg::NodeId> nocTopo;
    std::vector<int> topoIndex; ///< position in nocTopo (-1 = PE)
    std::vector<uint8_t> nocNode;

    std::vector<std::vector<dfg::NodeId>> dispatchGroups; // by loopId
    std::vector<int> gateLoop; ///< dispatch gate -> loopId (-1)

    // Time-multiplexing: node -> share group (-1 = exclusive PE).
    std::vector<int> shareGroupOf;

    // Consumer adjacency flattened into CSR arrays: the wake fan-out
    // of output port p of node n is
    //   consFlat[consBase[portBase[n]+p] .. consBase[portBase[n]+p+1])
    std::vector<int> portBase;
    std::vector<int> consBase;
    std::vector<dfg::NodeId> consFlat;

    std::vector<dfg::NodeId> allSeqNodes; ///< PE nodes, ascending id
    std::vector<dfg::NodeId> allNocNodes; ///< router CF nodes

    int triggersTotal = 0;

    /**
     * Inter-tile FIFO channel on one consumer edge (from
     * SimConfig::edgeLatencies): tokens spend `latency` cycles in
     * the channel before landing in the consumer's input buffer, and
     * the producer backpressures on channel occupancy (capacity =
     * max(latency, 1)) instead of the destination FIFO.
     */
    struct Channel
    {
        dfg::NodeId src = dfg::NoNode;
        int srcPort = 0;
        dfg::NodeId dst = dfg::NoNode;
        int dstIn = 0;
        int latency = 1;
        int capacity = 1;
    };

    std::vector<Channel> channels;
    std::vector<std::vector<int>> chanIdOf; ///< [node][in] (-1 = none)
    bool hasChannels = false;

  private:
    std::shared_ptr<const dfg::Graph> graphHold;
};

} // namespace pipestitch::sim

#endif // PIPESTITCH_SIM_PROGRAM_HH
