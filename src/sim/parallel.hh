/**
 * @file
 * sim::ParallelEngine — the Scheduler::ParallelRegions backend.
 *
 * A region-partitioned, structure-of-arrays re-implementation of the
 * destination-buffered cycle loop. The Program's fabric is split
 * into K spatial regions (sim/regions.hh); each cycle the
 * select/census phases — the bulk of the work — run independently
 * per region, on runner::ThreadPool workers when more than one
 * hardware thread is available, while token movement (commit, drain,
 * memory, channels, NoC settle) stays on the coordinating thread so
 * every cross-region write is serialized. Bank arbitration and
 * commits are replayed in ascending node-id order across regions,
 * which makes the engine bit-identical to the ReadyList oracle at
 * every job and thread count (tests/test_sim_par.cc sweeps both).
 *
 * Why this is safe without per-candidate locking: under destination
 * buffering the select phase is read-only — canFire() peeks FIFO
 * heads and never moves a token — so concurrent per-region scans
 * observe exactly the state the oracle's ascending scan would, and
 * the only order-sensitive select effect (memory-bank claims) is
 * deferred to a coordinated pass over the merged candidates.
 *
 * Data layout: all per-run hot state lives in flat arrays indexed by
 * the Program's CSR port layout — one slab each for token values,
 * tags and born stamps (depth-strided per port), per-port head/count
 * cursors, and a per-port "available from cycle" stamp that folds
 * emptiness, immediates and the born-stamp rule into a single
 * compare. Worklists are per-region bitmaps over region-local dense
 * indices, so scans iterate in ascending id order without the
 * oracle's per-round sorts and regions never write a shared word.
 *
 * Synchronization windows: for channel-cut partitions the
 * coordinator computes the conservative lookahead bound
 * W = min over cut channels of min(latency, capacity - occupancy);
 * the shipped engine executes the degenerate W = 1 (per-cycle
 * barrier) schedule, which single-grid partitions force anyway
 * (wire cuts have zero slack). windowBound() exposes the bound for
 * reporting; multi-cycle decoupled windows are the documented
 * follow-on (docs/simulator.md).
 *
 * Unsupported configurations (source buffering, share groups,
 * observers, stderr trace) never reach this engine —
 * ExecutionState::run() falls back to the ReadyList oracle for them.
 */

#ifndef PIPESTITCH_SIM_PARALLEL_HH
#define PIPESTITCH_SIM_PARALLEL_HH

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/regions.hh"

namespace pipestitch::runner {
class ThreadPool;
} // namespace pipestitch::runner

namespace pipestitch::sim {

/** True when @p prog 's configuration can run on the engine (the
 *  caller must additionally pin the oracle for observer/trace
 *  runs). */
bool parallelSupported(const Program &prog);

class ParallelEngine
{
  public:
    /**
     * Build the engine over @p program with @p jobs regions.
     * @p threads: 0 = min(jobs, hardware threads); 1 = force the
     * inline (no worker) path; > 1 = force that many pool workers.
     */
    ParallelEngine(std::shared_ptr<const Program> program, int jobs,
                   int threads);
    ~ParallelEngine();

    /** One simulation; mirrors ExecutionState::run() for supported
     *  configs. @p maxCyclesOverride 0 = the Program's maxCycles. */
    SimResult run(MemImage &mem, int64_t maxCyclesOverride);

    const RegionPlan &regionPlan() const { return plan; }
    /** Worker threads the per-region phases execute on (1 =
     *  inline on the calling thread). */
    int workerThreads() const { return physThreads; }
    /** Conservative lookahead bound at the current sync point:
     *  min over cross-region channels of min(latency, capacity -
     *  occupancy); 1 when any wire crosses regions (zero slack) or
     *  no channel crosses regions. */
    int windowBound() const;

  private:
    struct Region;

    enum : uint8_t { VNo = 0, VIdle, VInput, VSpace, VBank };
    enum : uint8_t { DormNone = 0, DormInput, DormSpace };

    // --- build ------------------------------------------------------
    void buildTables();
    void resetRun();

    // --- hot helpers (defined in parallel.cc) -----------------------
    inline bool avail(int ip) const;
    inline bool consumersAccept(dfg::NodeId id, int port) const;
    inline bool outSpace(dfg::NodeId id, int port, int need) const;
    /** Returns true when the token landed at the FIFO head (the
     *  only case where the consumer's avail state can change). */
    inline bool pushIn(int ip, Word value, int32_t tag, int64_t born);
    inline void deliver(dfg::NodeId from, int port, Word value,
                        int32_t tag);
    void emit(dfg::NodeId id, int port, Word value, int32_t tag);
    struct Tok
    {
        Word value = 0;
        int32_t tag = NoTag;
    };
    inline Tok peekIn(dfg::NodeId id, int in) const;
    Tok consumeIn(dfg::NodeId id, int in);
    int32_t combine2(dfg::NodeId id, int32_t a, int32_t b);
    int32_t combine3(dfg::NodeId id, int32_t a, int32_t b, int32_t c);

    /** Verdict for non-memory nodes; memory nodes that pass their
     *  input/space checks return VBank-with-candidate via @p memReady
     *  (bank arbitration happens in the coordinated pass). Input
     *  availability is tested against @p horizon — `cycle` for the
     *  current verdict, `cycle + 1` for the census' next-cycle
     *  prediction (every avail stamp is at most cycle + 1, so one
     *  cycle of lookahead is exact absent further wakes). */
    uint8_t scanCanFire(dfg::NodeId id, bool &memReady, Word &addr,
                        int64_t horizon);
    /** Full verdict including the bank check (census / NoC). */
    uint8_t canFireFull(dfg::NodeId id);
    void commitFire(dfg::NodeId id);
    /** Structural wake: space freed / state changed — the node's
     *  verdict may flip within the current cycle. */
    void wake(dfg::NodeId id);
    /**
     * Delivery wake: a token landed in the node's input FIFO. Under
     * the born-stamp rule a PE cannot consume it until next cycle,
     * so this wake retains the node for the census and next cycle's
     * scan (liveBits) but neither schedules a same-cycle re-scan
     * (nextBits) nor invalidates the verdict cache (wakeSerial) —
     * the oracle's re-evaluation would return the cached verdict
     * unchanged. NoC-owned latches consume same-cycle and take the
     * full wake path.
     */
    void wakeDeliver(dfg::NodeId id);
    /**
     * Space wake for a producer whose consumer just freed a FIFO
     * slot. canFire ranks Input before Space, so a producer whose
     * fresh verdict this cycle is Input- or Idle-blocked cannot be
     * enabled by downstream space — it takes the light (delivery)
     * wake path, skipping the same-cycle re-scan that the oracle
     * would spend only to re-derive the identical verdict.
     */
    void wakeSpace(dfg::NodeId id);
    void flushPortReads();

    // --- cycle phases -----------------------------------------------
    void drainPhase();
    void memCompletionsPhase();
    void channelsPhase();
    void decideDispatchGroups(bool firstRound);
    void nocSettle(bool pruneLive);
    void scanRegion(int r, bool firstRound);
    void censusRegion(int r);
    void runFixpoint();
    bool quiescentSlow() const;
    std::string diagnose() const;

    // ----------------------------------------------------------------
    std::shared_ptr<const Program> progHold;
    const Program &prog;
    RegionPlan plan;
    int physThreads = 1;
    std::unique_ptr<runner::ThreadPool> pool;

    // --- immutable tables (built once per engine) -------------------
    int n = 0;           ///< node count
    int depth = 4;       ///< uniform FIFO depth (cfg.bufferDepth)
    int numLoops = 0;
    int memBanks = 16;
    int memLatency = 2;
    bool memBypass = true;
    bool greedyDispatch = false;
    bool checkThreadOrder = true;

    std::vector<uint8_t> kindA;     ///< dfg::NodeKind
    std::vector<sir::Opcode> opcA;  ///< Arith opcode
    std::vector<uint8_t> wantA;     ///< arith operand count
    std::vector<Word> immA;
    std::vector<uint8_t> steerTrueA;
    std::vector<Word> streamStepA;
    std::vector<int32_t> loopIdA;
    std::vector<uint8_t> peClassA;
    std::vector<uint8_t> isMemA;
    std::vector<uint8_t> nocA;
    std::vector<uint8_t> hasOutBufA;
    std::vector<int32_t> insBase;   ///< [n+1] flat input-port index
    std::vector<int32_t> outsBase;  ///< [n+1] flat buffered-out index
    enum : uint8_t { PortUnwired = 0, PortWired, PortImm };
    std::vector<uint8_t> portMode;  ///< [P]
    std::vector<Word> portImmVal;   ///< [P]
    std::vector<int32_t> portProd;  ///< [P] producer node (wired)
    std::vector<uint8_t> portNocOwner; ///< [P] owner is router CF

    // Consumer-edge CSR: edges of (node, port) are
    // edge*[prog.consBase[prog.portBase[node]+port] ..).
    std::vector<int32_t> edgeNode;
    std::vector<int32_t> edgeIp;
    std::vector<int32_t> edgeChan;
    std::vector<uint8_t> edgeShed;

    std::vector<int32_t> chanBase;  ///< [C+1] ring slab offsets
    std::vector<int32_t> chCapA, chLatA;
    std::vector<int32_t> chSrcNode, chDstNode, chDstIp;
    std::vector<int32_t> cutChanList; ///< channels crossing regions

    // Region tables: per-region seq-node lists (ascending) and the
    // node -> (region, local index) maps the worklists use.
    std::vector<std::vector<int32_t>> regSeq;
    std::vector<int32_t> regionOfA;
    std::vector<int32_t> localIdx;
    int nocWords = 0;

    // --- per-run state ----------------------------------------------
    // Token slabs, SoA by field: values/tags/borns strided by depth.
    std::vector<Word> insVal;
    std::vector<int32_t> insTag;
    std::vector<int64_t> insBorn;
    std::vector<int32_t> insHeadA, insCount;
    /** Earliest cycle the head token can be consumed; INT64_MIN for
     *  immediates, INT64_MAX when empty/unwired. One compare folds
     *  the empty + imm + born-stamp checks. */
    std::vector<int64_t> insAvailFrom;
    std::vector<Word> outVal;
    std::vector<int32_t> outTag;
    std::vector<int32_t> outHeadA, outCount;
    std::vector<int32_t> insTokens;   ///< [n] tokens across ins
    std::vector<int32_t> reservedOutA;
    std::vector<uint8_t> fsmA;        ///< NodeRt::Fsm numbering
    std::vector<uint8_t> pendingSideA;
    std::vector<Word> latchValA;
    std::vector<int32_t> latchTagA;
    std::vector<Word> streamCurA, streamEndA;
    std::vector<uint8_t> trigFiredA;

    std::vector<uint8_t> groupChoiceA; ///< GroupChoice numbering
    std::vector<int64_t> groupDirtyUntilA;
    std::vector<uint8_t> groupPendingA;
    // lastVerdictA[i] holds a next-cycle verdict predicted by the
    // census (horizon cycle + 1); round 1 of the next fixpoint may
    // consume it instead of re-evaluating. Any wake of the node
    // invalidates the prediction. Not cleared per cycle — it must
    // survive from census into the next cycle's scan.
    std::vector<uint8_t> predB;
    // Per-loop "a gate fired in the round just committed" flag:
    // consumed by decideDispatchGroups to skip re-evaluating groups
    // whose inputs cannot have changed since the previous round.
    std::vector<uint8_t> groupFiredRound;
    std::vector<int32_t> gateLoops; ///< loops with dispatch gates

    std::vector<uint8_t> lastVerdictA;
    // Per-cycle flags, memset-cleared at cycle start: freshB =
    // verdict evaluated this cycle with no structural wake since;
    // wokenB/firedB/nocFiredB = woken / fired this cycle.
    std::vector<uint8_t> freshB, wokenB, firedB, nocFiredB;
    std::vector<int64_t> portReadsFlat; ///< insBase-indexed slab
    std::vector<uint8_t> dormantClassA;
    bool inPeFixpoint = false;
    bool inNocEval = false;

    struct Region
    {
        std::vector<uint64_t> liveBits, roundBits, nextBits;
        std::vector<int32_t> candFire;   ///< scan: fire-ready, asc
        std::vector<int32_t> candMem;    ///< scan: mem candidates
        std::vector<Word> candAddr;      ///< parallel to candMem
        int64_t dormantInput = 0, dormantSpace = 0;
        int64_t censusNoInput = 0, censusNoSpace = 0, censusBank = 0;
    };
    std::vector<Region> regs;
    std::vector<uint64_t> liveNocBits, nocSweepBits, nocNextBits;
    std::vector<uint64_t> drainBits;

    // Channel rings (SoA) and the banked memory model.
    std::vector<Word> chVal;
    std::vector<int32_t> chTag;
    std::vector<int64_t> chReady;
    std::vector<int32_t> chHead, chCount;
    std::vector<int64_t> bankClaimedAt; ///< == cycle -> claimed
    MemImage *mem = nullptr;
    std::vector<int32_t> pendNode;
    std::vector<Word> pendVal;
    std::vector<int32_t> pendTag;
    std::vector<int64_t> pendReady;
    int32_t pendHead = 0, pendCnt = 0;

    std::vector<int32_t> fireList;
    // K-way merge cursors / two-run merge scratch for the per-round
    // candidate gathering (per-region lists arrive sorted).
    std::vector<size_t> mergeIdx;
    std::vector<int32_t> mergeTmp;
    std::vector<std::future<void>> futScratch;

    int64_t tokensInFlight = 0;
    int triggersPending = 0;
    int streamsRunning = 0;
    int32_t nextThreadTag = 0;
    int64_t cycle = 0;
    int64_t bornStamp = 0;
    int64_t lastSyncPlane = -1;
    bool activeFlag = false;
    SimStats stats;
    std::string failure;
};

} // namespace pipestitch::sim

#endif // PIPESTITCH_SIM_PARALLEL_HH
