/**
 * @file
 * Certified steady-state performance bounds (PS-T analysis result).
 *
 * A BoundReport is the *static* half of the throughput-bound
 * analysis (analysis/throughput.hh): a set of BoundTerms whose
 * structural coefficients — recurrence cycle lengths, pipeline
 * depths, group memberships, channel latencies — are derived once
 * from a sim::Program and never change between runs. Evaluating a
 * term against a run's SimStats plugs in the run's fire counts and
 * yields a certified cycle lower bound: `simulated cycles` can never
 * be smaller than `certifiedCycles` for the same run, for any
 * scheduler (the ParallelRegions engine is bit-identical to the
 * ReadyList oracle, so one evaluation covers both).
 *
 * Soundness is per-term (each term states a resource or dependence
 * limit the timing model provably respects); the report's certified
 * bound is the max over certified terms. Advisory terms (hot-link
 * route contention: intra-tile links are circuit-switched wires the
 * simulator does not serialize on) are kept out of the certified
 * max and reported separately.
 *
 * executeOnFabric cross-checks every analyzed run against the bound,
 * mirroring the deadlock-certification cross-check; `pstool bound`
 * renders the binding constraint with a fix hint.
 */

#ifndef PIPESTITCH_SIM_BOUND_HH
#define PIPESTITCH_SIM_BOUND_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/graph.hh"
#include "sim/stats.hh"

namespace pipestitch::sim {

/** One static throughput/latency constraint. */
struct BoundTerm
{
    enum class Kind {
        /**
         * Loop-carried recurrence through a carry gate: the shortest
         * structural dependence cycle gate.out → ... → gate.cont has
         * weight `weight` (p_min) cycles, every cont consumption
         * chains behind a prior out emission by at least p_min, and
         * chains step over at most the gate's entry count, so
         *   cycles >= ceil(conts / entries) * p_min + 1.
         */
        Recurrence,
        /**
         * Pipeline fill + occupancy: a sequential node at depth d
         * (earliest possible first fire) that fires f times occupies
         * at least d + f cycles. `nodes`/`weights` carry (node,
         * depth) pairs; evaluation maximizes d + fires over members.
         */
        Pipeline,
        /**
         * SyncPlane dispatch-group serialization: every gate of one
         * dispatch group is sequential, so the group's busiest gate
         * needs at least its fire count in cycles.
         */
        Dispatch,
        /**
         * Time-multiplexed share group: at most one member fires per
         * cycle, so cycles >= min member depth + sum of member fires.
         */
        ShareGroup,
        /**
         * Memory banking: at most memBanks requests initiate per
         * cycle, so cycles >= ceil((loads + stores) / banks).
         */
        MemoryBanks,
        /**
         * Inter-tile channel occupancy: each token spends `latency`
         * cycles in a channel holding at most `capacity` tokens, so
         * cycles >= ceil(reads * latency / capacity).
         */
        Channel,
        /**
         * Advisory (not certified): the hottest statically-routed
         * link carries the summed token traffic of every edge routed
         * over it. The simulator does not serialize circuit-switched
         * wires, so this is a provisioning signal, not a certified
         * cycle bound.
         */
        HotLink,
    };

    Kind kind = Kind::Pipeline;
    /** Counted into the certified max (HotLink is advisory). */
    bool certified = true;

    /** Primary node (recurrence gate, channel destination...). */
    dfg::NodeId node = dfg::NoNode;
    /** Consumer input index for Channel terms (-1 otherwise). */
    int input = -1;
    /** Kind-specific coefficient: p_min (Recurrence), min member
     *  depth (ShareGroup). */
    int64_t weight = 0;
    int64_t latency = 0;  ///< Channel latency
    int64_t capacity = 1; ///< Channel capacity / memory banks

    /** Members: cycle nodes, pipeline nodes, group gates, edge
     *  destinations (HotLink). */
    std::vector<dfg::NodeId> nodes;
    /** Parallel with `nodes` where per-member data is needed:
     *  consumer input indices (HotLink edges). */
    std::vector<int> inputs;
    /** Parallel with `nodes`: per-member depth (Pipeline). */
    std::vector<int64_t> weights;

    /** Static description of the constraint (human-readable). */
    std::string detail;
    /** How to lift this bound if it binds. */
    std::string hint;
};

const char *boundTermKindName(BoundTerm::Kind k);

/** The static bound for one compiled Program. */
struct BoundReport
{
    std::vector<BoundTerm> terms;

    /** One evaluated term. */
    struct TermEval
    {
        int64_t cycles = 0;
        /** Member that realized the max (Pipeline), else the term's
         *  primary node. */
        dfg::NodeId node = dfg::NoNode;
    };

    /** The bound instantiated with one run's fire counts. */
    struct Evaluation
    {
        /** Max over certified terms; simulated cycles can never be
         *  smaller. 0 when no certified term applies. */
        int64_t certifiedCycles = 0;
        /** Max including advisory terms (provisioning signal). */
        int64_t advisoryCycles = 0;
        /** Index of the binding certified term (-1 when none). */
        int binding = -1;
        std::vector<TermEval> perTerm;

        bool holds(int64_t simCycles) const
        {
            return certifiedCycles <= simCycles;
        }
    };

    /** Instantiate every term against @p stats. */
    Evaluation evaluate(const SimStats &stats) const;
};

} // namespace pipestitch::sim

#endif // PIPESTITCH_SIM_BOUND_HH
