/**
 * @file
 * Cycle-level simulator for RipTide/Pipestitch dataflow graphs.
 *
 * The simulator executes the token-level microarchitectural rules of
 * the paper directly:
 *
 *  - ordered dataflow: every edge is a FIFO; nodes fire on in-order
 *    head tokens and stall on backpressure;
 *  - destination (input) buffering [Pipestitch] or source (output)
 *    buffering with multicast hold [RipTide / the PipeSB ablation]
 *    (Sec. 4.7, Fig. 12);
 *  - output buffers with bypass on memory and control-flow PEs
 *    (Sec. 4.7);
 *  - dispatch groups synchronized through the SyncPlane with bubble
 *    flow control: a full continuation set is preferred; a spawn set
 *    requires two free output slots at every gate (Fig. 10);
 *  - control flow mapped into NoC routers evaluates combinationally
 *    (adds no pipeline latency);
 *  - banked memory with per-bank port arbitration and fixed load
 *    latency.
 *
 * Tokens carry debug-only thread tags that let the simulator verify
 * the ordered-threading invariant; the architecture itself is
 * tagless.
 */

#ifndef PIPESTITCH_SIM_SIMULATOR_HH
#define PIPESTITCH_SIM_SIMULATOR_HH

#include <memory>
#include <string>

#include "dfg/graph.hh"
#include "sim/memsys.hh"
#include "sim/stats.hh"
#include "sim/token.hh"

namespace pipestitch::trace {
class SimObserver;
} // namespace pipestitch::trace

namespace pipestitch::sim {

/** Microarchitecture configuration for one simulation. */
struct SimConfig
{
    enum class Buffering {
        Source,      ///< RipTide / PipeSB: buffers at producer outputs
        Destination, ///< Pipestitch: buffers at consumer inputs
    };

    Buffering buffering = Buffering::Destination;

    enum class Scheduler {
        /**
         * Re-evaluate every node in every fixpoint round — the
         * original O(nodes × rounds) reference scheduler. Kept for
         * golden-stats verification and as the bench baseline.
         */
        DenseScan,
        /**
         * Event-driven ready list: only nodes woken by token
         * delivery, buffer-space frees, memory completions, or
         * dispatch-group decisions are re-evaluated. Cycle-exact
         * with DenseScan (enforced by tests/test_golden_stats.cc).
         */
        ReadyList,
        /**
         * Region-partitioned engine over structure-of-arrays token
         * state (sim/parallel.hh): the fabric is split into
         * `parallelJobs` spatial regions (mapper-style BFS min-cut,
         * or tile/channel boundaries for tiled programs); region
         * select/census phases run per region — on ThreadPool
         * workers when more than one hardware thread is available —
         * and commit/drain/memory/NoC phases stay coordinated so
         * results are bit-identical to ReadyList at every job count
         * (enforced by tests/test_sim_par.cc). Runs that attach an
         * observer or trace, use source buffering, or time-multiplex
         * PEs fall back to the ReadyList oracle.
         */
        ParallelRegions,
    };

    Scheduler scheduler = Scheduler::ReadyList;

    /**
     * ParallelRegions: number of spatial regions the fabric is
     * partitioned into. Results are bit-identical for any value
     * (like RunConfig::mapperJobs, this never enters memo keys);
     * it only shifts how select/census work is divided. <= 0 means
     * one region.
     */
    int parallelJobs = 4;

    /**
     * ParallelRegions: worker threads executing the per-region
     * phases. 0 (default) = min(parallelJobs, hardware threads),
     * so a single-core host runs the regions inline with zero
     * synchronization; > 1 forces real ThreadPool workers (used by
     * the TSan determinism tests); 1 forces the inline path.
     */
    int parallelThreads = 0;

    /** Token-buffer depth (the paper uses 4; Fig. 20 sweeps 4/8/16). */
    int bufferDepth = 4;

    int memBanks = 16;

    /** Cycles from load issue to data availability at the memory PE. */
    int memLatency = 2;

    /** Bypass memory/CF output buffers when downstream is free. */
    bool memBypass = true;

    /** Watchdog bound; exceeding it reports deadlock. */
    int64_t maxCycles = 100'000'000;

    /** Verify the thread-ordering invariant with debug tags. */
    bool checkThreadOrder = true;

    /**
     * Ablation (paper Fig. 9a): let each dispatch gate greedily
     * accept whichever token set it has, with no SyncPlane
     * synchronization. With multi-input threads this violates
     * ordering — the run is expected to corrupt token pairing,
     * which the debug tags catch. For demonstrating why the
     * SyncPlane exists; never enable for real runs.
     */
    bool greedyDispatch = false;

    /** Print every fire to stderr (cycle, node, kind, value). */
    bool trace = false;

    /**
     * Observability hooks (see trace/observer.hh); not owned, must
     * outlive the simulation. Null (the default) costs nothing on
     * the hot paths beyond a pointer test. While an observer is
     * attached the ready-list scheduler falls back to the reference
     * stall census so that both schedulers report identical event
     * streams.
     */
    trace::SimObserver *observer = nullptr;

    /**
     * Time-multiplexing groups (Sec. 6 extension): each inner vector
     * lists node ids sharing one PE; at most one member fires per
     * cycle, and alternating residents costs configuration-switch
     * energy. Residents keep their own architectural state (buffers,
     * gate FSMs); only the functional unit is shared.
     */
    std::vector<std::vector<int>> shareGroups;

    /**
     * Extra latency on one consumer edge: tokens bound for input
     * @c input of node @c node spend @c latency cycles in an
     * inter-tile FIFO channel before landing in the destination
     * buffer. Used by tiled fabrics (fabric::Topology) to model the
     * inter-tile NoC; the channel also bounds in-flight tokens at
     * max(latency, 1), giving boundary links real backpressure.
     * Only supported under destination buffering.
     */
    struct EdgeLatency
    {
        int node = 0;    ///< consumer node id
        int input = 0;   ///< consumer input index
        int latency = 0; ///< cycles in the channel (>= 1)
    };

    std::vector<EdgeLatency> edgeLatencies;
};

struct SimResult
{
    SimStats stats;
    bool deadlocked = false;
    /**
     * The run ended because `maxCycles` elapsed while the fabric was
     * still making progress — a non-terminating (or merely slow)
     * execution, not a quiesced deadlock. Static deadlock
     * certification (analysis/analyzer.hh) says nothing about
     * termination, so cross-checks must exempt this case.
     */
    bool watchdogExpired = false;
    /** Non-empty on deadlock / invariant trouble. */
    std::string diagnostic;
};

/**
 * Simulate @p graph against @p mem until the fabric drains.
 *
 * @p mem must be at least as large as the addresses the kernel
 * touches; it is mutated in place (compare with the scalar
 * interpreter's image for functional verification).
 */
SimResult simulate(const dfg::Graph &graph, MemImage &mem,
                   const SimConfig &config);

} // namespace pipestitch::sim

#endif // PIPESTITCH_SIM_SIMULATOR_HH
