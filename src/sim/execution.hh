/**
 * @file
 * sim::ExecutionState — one run's worth of mutable simulator state
 * over a shared, immutable sim::Program.
 *
 * The contract (see docs/simulator.md):
 *
 *  - an ExecutionState holds a shared_ptr to its Program and never
 *    writes through it;
 *  - everything mutable lives here: token FIFOs, gate FSMs, the
 *    scheduler's live sets and caches, the memory system (bound to
 *    the caller's MemImage for the duration of run()), stats, and
 *    the per-run observer/trace settings;
 *  - run() may be called repeatedly on one ExecutionState (state is
 *    reset each time), but a single ExecutionState must not be used
 *    from two threads at once. Concurrency = one ExecutionState per
 *    thread, all sharing one Program.
 *
 * The legacy simulate() entry point is now a thin wrapper that builds
 * a Program and runs one ExecutionState, so both paths are
 * cycle-exact by construction (tests/test_golden_stats.cc and
 * tests/test_execution.cc enforce this).
 */

#ifndef PIPESTITCH_SIM_EXECUTION_HH
#define PIPESTITCH_SIM_EXECUTION_HH

#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/program.hh"

namespace pipestitch::sim {

class ParallelEngine;

/** Per-run knobs stripped from the Program's SimConfig. */
struct RunOptions
{
    /** Observability hooks; not owned, must outlive the run. */
    trace::SimObserver *observer = nullptr;
    /** Print every fire to stderr. */
    bool trace = false;
    /** Watchdog override; 0 = the Program config's maxCycles. */
    int64_t maxCycles = 0;
};

class ExecutionState
{
  public:
    explicit ExecutionState(std::shared_ptr<const Program> program);
    ~ExecutionState();

    /**
     * Execute the program against @p mem until the fabric drains.
     * @p mem is mutated in place and referenced only for the
     * duration of the call. Resets all run state first, so the same
     * ExecutionState can be reused sequentially.
     *
     * Scheduler::ParallelRegions runs delegate to a cached
     * sim::ParallelEngine (bit-identical to the ReadyList oracle);
     * configurations the engine does not model — source buffering,
     * share groups — and runs with an observer or stderr trace
     * attached fall back to the oracle, as DenseScan did for PR 2.
     */
    SimResult run(MemImage &mem, const RunOptions &opts = {});

    const Program &program() const { return prog; }

  private:
    /** Why a node did not fire this cycle. */
    enum class Blocked { No, Idle, Input, Space, Bank };

    /** Per-node runtime state. */
    struct NodeRt
    {
        std::vector<TokenFifo> ins;  ///< input buffers / NoC latches
        std::vector<TokenFifo> outs; ///< output buffers
        int reservedOut = 0;         ///< in-flight loads holding outs[0]
        /** Gate FSM: carries/invariants/streams idle in Init; a carry
         *  that consumed a true decider but still awaits its backedge
         *  value sits in WaitVal (eager decider consumption keeps the
         *  multicast decider head from being held hostage by the
         *  loop's slowest path). Merge uses WaitVal the same way. */
        enum class Fsm { Init, Run, WaitVal };
        Fsm fsm = Fsm::Init;
        int pendingSide = 0;  ///< merge: selected input while waiting
        Token latched;        ///< invariant latch / pending decider tag
        Word streamCur = 0;
        Word streamEnd = 0;
        bool triggerFired = false;
    };

    // --- setup ------------------------------------------------------
    void reset();

    // --- per-cycle phases -------------------------------------------
    void drainOutputBuffers();
    void handleMemCompletions();
    void advanceChannels();
    void decideDispatchGroups();
    Blocked canFire(dfg::NodeId id);
    void commitFire(dfg::NodeId id);
    void evalNocNodes(bool pruneLive);
    void stallCensus();
    bool quiescentSlow() const;
    std::string diagnose() const;
    SimResult runLoop();

    // --- ready-list bookkeeping -------------------------------------
    void wake(dfg::NodeId id);
    void wakeConsumers(dfg::NodeId id, int port);
    void markDrainable(dfg::NodeId id);

    // --- token plumbing ---------------------------------------------
    bool inputAvail(dfg::NodeId id, int in) const;
    Token peekInput(dfg::NodeId id, int in) const;
    Token consumeInput(dfg::NodeId id, int in);
    bool consumersAccept(dfg::NodeId id, int port) const;
    bool outSpace(dfg::NodeId id, int port, int need) const;
    bool portHasConsumers(dfg::NodeId id, int port) const;
    void deliver(dfg::NodeId from, int port, const Token &token);
    void emit(dfg::NodeId id, int port, Token token);
    int32_t combineTags(dfg::NodeId id,
                        std::initializer_list<int32_t> tags);

    // ------------------------------------------------------------------
    std::shared_ptr<const Program> progHold;
    const Program &prog;
    const dfg::Graph &graph;
    SimConfig cfg; ///< per-run copy: prog.cfg + RunOptions overrides
    trace::SimObserver *obs = nullptr;
    bool sourceMode;
    bool readyMode;
    std::optional<MemSystem> memsys; ///< engaged only inside run()

    std::vector<NodeRt> rt;

    enum class GroupChoice { None, Cont, Spawn };
    std::vector<GroupChoice> groupChoice;

    std::vector<bool> shareUsed;        ///< per group, this cycle
    std::vector<dfg::NodeId> shareLast; ///< per group, last resident

    // Ready-list scheduler state. `liveSeq`/`liveNoc` are the
    // persistent maybe-ready sets (superset of anything that can
    // fire or count as stalled); `wokenAt` stamps the last wake so
    // the stall census can retain freshly-woken nodes whose tokens
    // are still aging (born-stamp rule).
    std::vector<dfg::NodeId> liveSeq, liveNoc;
    std::vector<uint8_t> inLive;
    std::vector<int64_t> wokenAt;

    // Dormant stall accounting: a PE that stalled on a missing
    // operand or on backpressure, and that no event has touched
    // since, is frozen — its census verdict cannot change until a
    // wake arrives (inputs only change via deliveries/retires, space
    // only via pops, and its tokens are fully aged because a node
    // woken this cycle is retained as active). Such nodes leave the
    // live set entirely and are billed per cycle through two O(1)
    // aggregates. Bank-blocked and share-blocked nodes stay active:
    // their verdicts depend on what *other* nodes do each cycle.
    enum : uint8_t { DormNone = 0, DormInput = 1, DormSpace = 2 };
    std::vector<uint8_t> dormantClass;
    int64_t dormantInput = 0, dormantSpace = 0;

    // Verdict cache: the census reuses the last fixpoint-round
    // evaluation of a node when no wake arrived after it. Sound for
    // the same reason dormancy is: a non-fired node's verdict can
    // only change through a wake event, and within one cycle bank
    // claims / input levels move monotonically toward the census
    // state (canFire checks Input before Space before Bank).
    std::vector<Blocked> lastVerdict;
    std::vector<int64_t> verdictSerial, wakeSerial;
    int64_t cycleStartSerial = 0;

    // Incremental SyncPlane: a dispatch group whose gates saw no
    // event (delivery, fire, drain) keeps its cached choice and
    // pending flag. `groupDirtyUntil` extends one cycle past the
    // last event so freshly delivered tokens age past the born
    // stamp before the group freezes.
    std::vector<int64_t> groupDirtyUntil; ///< per loop id
    std::vector<uint8_t> groupPending;    ///< cached anyPending

    // PE fixpoint rounds: candidates for the current round and the
    // wakeups collected (during commits) for the next one.
    std::vector<dfg::NodeId> curRound, nextRound;
    std::vector<int64_t> inRoundAt, inNextAt;
    int64_t roundSerial = 0;
    bool inPeFixpoint = false;

    // NoC combinational sweeps within one evalNocNodes call.
    std::vector<dfg::NodeId> nocSweep, nocNextSweep;
    std::vector<int64_t> inNocNextAt;
    int64_t nocSweepSerial = 0;
    bool inNocEval = false;

    // Nodes with possibly non-empty output buffers (dest mode).
    std::vector<dfg::NodeId> drainList;
    std::vector<uint8_t> inDrainList;

    // Inter-tile FIFO channels, structure-of-arrays ring slabs (one
    // `capacity`-slot segment per Program::Channel at chanSlabBase):
    // tokens mature at `chanReady` and then land in the destination
    // buffer. Counted in tokensInFlight while in the channel. The
    // ParallelEngine (sim/parallel.hh) carries the full SoA layout
    // for NodeRt's hot fields as well; here only the channel rings
    // are flattened (channel capacities are small and fixed, so the
    // deque-of-structs was pure allocator churn).
    std::vector<Token> chanTok;
    std::vector<int64_t> chanReady;
    std::vector<int> chanSlabBase; ///< [C+1] slab offsets
    std::vector<int> chanHead, chanCount;

    // Quiescence counters: exact mirrors of the fabric state the
    // O(n) scan used to inspect (verified against quiescentSlow()
    // at termination).
    int64_t tokensInFlight = 0;
    int triggersPending = 0;
    int streamsRunning = 0;

    int32_t nextThreadTag = 0;
    int64_t cycle = 0;
    int64_t bornStamp = 0; ///< birth cycle applied to pushed tokens
    int64_t lastSyncPlaneCycle = -1;
    bool active = false; ///< any event this cycle
    std::vector<dfg::NodeId> fireList;
    std::vector<int64_t> seqFiredAt; ///< per-cycle once-only guards
    std::vector<int64_t> nocFiredAt;

    SimStats stats;
    std::string failure;

    /** Cached ParallelRegions engine (built on first use; jobs and
     *  threads come from the Program's immutable config). */
    std::unique_ptr<ParallelEngine> parEngine;
};

} // namespace pipestitch::sim

#endif // PIPESTITCH_SIM_EXECUTION_HH
