#include "sim/simulator.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "base/logging.hh"
#include "dfg/analysis.hh"

namespace pipestitch::sim {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::NodeKind;
using dfg::Operand;
using dfg::PeClass;
namespace pidx = dfg::port_idx;

namespace {

/** Why a node did not fire this cycle. */
enum class Blocked { No, Idle, Input, Space, Bank };

/** Resolved wiring of one input port. */
struct InputRef
{
    bool isImm = false;
    Word imm = 0;
    NodeId prod = dfg::NoNode;
    int prodPort = 0;
    int endpoint = 0; ///< index into producer port's consumer list
    bool wired() const { return prod != dfg::NoNode; }
};

/** Per-node runtime state. */
struct NodeRt
{
    std::vector<TokenFifo> ins;  ///< input buffers / NoC latches
    std::vector<TokenFifo> outs; ///< output buffers (mode-dependent)
    int reservedOut = 0;         ///< in-flight loads holding outs[0]
    /** Gate FSM: carries/invariants/streams idle in Init; a carry
     *  that consumed a true decider but still awaits its backedge
     *  value sits in WaitVal (eager decider consumption keeps the
     *  multicast decider head from being held hostage by the loop's
     *  slowest path). Merge uses WaitVal the same way. */
    enum class Fsm { Init, Run, WaitVal };
    Fsm fsm = Fsm::Init;
    int pendingSide = 0;         ///< merge: selected input while waiting
    Token latched;               ///< invariant latch / pending decider tag
    Word streamCur = 0;
    Word streamEnd = 0;
    bool triggerFired = false;
    int threadRegion = -1; ///< nearest enclosing threaded loop id
};

class Engine
{
  public:
    Engine(const Graph &graph, MemImage &mem, const SimConfig &cfg)
        : graph(graph), cfg(cfg),
          sourceMode(cfg.buffering == SimConfig::Buffering::Source),
          memsys(mem, cfg.memBanks, cfg.memLatency)
    {
        init();
    }

    SimResult run();

  private:
    // --- setup ------------------------------------------------------
    void init();
    bool nodeHasOutBufs(const Node &node) const;

    // --- per-cycle phases -------------------------------------------
    void drainOutputBuffers();
    void handleMemCompletions();
    void decideDispatchGroups();
    Blocked canFire(NodeId id);
    void commitFire(NodeId id);
    void evalNocNodes();
    bool quiescent() const;
    std::string diagnose() const;

    // --- token plumbing ---------------------------------------------
    bool inputAvail(NodeId id, int in) const;
    Token peekInput(NodeId id, int in) const;
    Token consumeInput(NodeId id, int in);
    bool consumersAccept(NodeId id, int port) const;
    bool outSpace(NodeId id, int port, int need) const;
    bool portHasConsumers(NodeId id, int port) const;
    void deliver(NodeId from, int port, const Token &token);
    void emit(NodeId id, int port, Token token);
    int32_t combineTags(NodeId id, std::initializer_list<int32_t> tags);

    // ------------------------------------------------------------------
    const Graph &graph;
    SimConfig cfg;
    bool sourceMode;
    MemSystem memsys;

    std::vector<NodeRt> rt;
    std::vector<std::vector<InputRef>> inputRefs; // [node][in]
    std::vector<NodeId> nocTopo;
    std::vector<bool> nocNode;
    std::vector<std::vector<NodeId>> dispatchGroups; // by loopId

    enum class GroupChoice { None, Cont, Spawn };
    std::vector<GroupChoice> groupChoice;

    // Time-multiplexing: node → share group (-1 = exclusive PE).
    std::vector<int> shareGroupOf;
    std::vector<bool> shareUsed;    ///< per group, this cycle
    std::vector<NodeId> shareLast;  ///< per group, last resident

    int32_t nextThreadTag = 0;
    int64_t cycle = 0;
    int64_t bornStamp = 0; ///< birth cycle applied to pushed tokens
    int64_t lastSyncPlaneCycle = -1;
    bool active = false; ///< any event this cycle
    std::vector<NodeId> fireList;
    std::vector<bool> nocFired; ///< per-cycle once-only guard

    SimStats stats;
    std::string failure;
};

void
Engine::init()
{
    ps_assert(graph.isFinalized(), "graph must be finalized");
    ps_assert(cfg.bufferDepth >= 1, "buffer depth must be >= 1");
    for (const auto &node : graph.nodes) {
        if (node.kind == NodeKind::Dispatch) {
            // Bubble flow control reserves two output slots for a
            // spawn set; shallower buffers could never launch a
            // thread (Sec. 4.4).
            ps_assert(cfg.bufferDepth >= 2,
                      "threaded graphs need buffer depth >= 2");
            break;
        }
    }

    const int n = graph.size();
    rt.resize(static_cast<size_t>(n));
    inputRefs.resize(static_cast<size_t>(n));
    nocNode.assign(static_cast<size_t>(n), false);
    stats.nodeFires.assign(static_cast<size_t>(n), 0);
    stats.portReads.resize(static_cast<size_t>(n));
    for (NodeId id = 0; id < n; id++) {
        stats.portReads[static_cast<size_t>(id)].assign(
            static_cast<size_t>(graph.at(id).numInputs()), 0);
    }

    // Resolve input wiring and endpoint indices. Endpoint index =
    // position in the producer port's consumer list.
    for (NodeId id = 0; id < n; id++) {
        const Node &node = graph.at(id);
        auto &refs = inputRefs[static_cast<size_t>(id)];
        refs.resize(static_cast<size_t>(node.numInputs()));
        for (int i = 0; i < node.numInputs(); i++) {
            const Operand &op = node.inputs[static_cast<size_t>(i)];
            InputRef &ref = refs[static_cast<size_t>(i)];
            if (op.isImm()) {
                ref.isImm = true;
                ref.imm = op.imm;
            } else if (op.isWire()) {
                ref.prod = op.port.node;
                ref.prodPort = op.port.index;
                const auto &cons = graph.consumersOf(op.port);
                for (size_t e = 0; e < cons.size(); e++) {
                    if (cons[e].node == id && cons[e].inputIndex == i)
                        ref.endpoint = static_cast<int>(e);
                }
            }
        }
    }

    // Buffer allocation.
    for (NodeId id = 0; id < n; id++) {
        const Node &node = graph.at(id);
        NodeRt &r = rt[static_cast<size_t>(id)];
        nocNode[static_cast<size_t>(id)] = node.cfInNoc;
        if (node.cfInNoc) {
            if (sourceMode) {
                // Flow-through relay: a shallow window consumers
                // pull from (the op itself is combinational).
                r.outs.assign(static_cast<size_t>(node.numOutputs()),
                              TokenFifo(2));
            } else {
                // Flow-through relay: tokens logically wait at the
                // upstream PE/wire interface until the router op can
                // pair them; modeled as input windows of the global
                // buffer depth, with direct delivery downstream.
                r.ins.assign(static_cast<size_t>(node.numInputs()),
                             TokenFifo(cfg.bufferDepth));
            }
        } else if (sourceMode) {
            r.outs.assign(static_cast<size_t>(node.numOutputs()),
                          TokenFifo(cfg.bufferDepth));
        } else {
            r.ins.assign(static_cast<size_t>(node.numInputs()),
                         TokenFifo(cfg.bufferDepth));
            if (nodeHasOutBufs(node)) {
                r.outs.assign(static_cast<size_t>(node.numOutputs()),
                              TokenFifo(cfg.bufferDepth));
            }
        }
        // Nearest enclosing threaded loop (for debug-tag scoping).
        int l = node.loopId;
        while (l >= 0) {
            if (graph.loopThreaded[static_cast<size_t>(l)]) {
                r.threadRegion = l;
                break;
            }
            l = graph.loopParent[static_cast<size_t>(l)];
        }
    }

    if (sourceMode) {
        for (NodeId id = 0; id < n; id++) {
            NodeRt &r = rt[static_cast<size_t>(id)];
            for (int port = 0;
                 port < static_cast<int>(r.outs.size()); port++) {
                r.outs[static_cast<size_t>(port)].initEndpoints(
                    static_cast<int>(
                        graph.consumersOf({id, port}).size()));
            }
        }
    }

    nocTopo = dfg::nocCfTopoOrder(graph);

    dispatchGroups.assign(static_cast<size_t>(graph.numLoops), {});
    for (NodeId id = 0; id < n; id++) {
        const Node &node = graph.at(id);
        if (node.kind == NodeKind::Dispatch) {
            dispatchGroups[static_cast<size_t>(node.loopId)].push_back(
                id);
        }
    }
    groupChoice.assign(static_cast<size_t>(graph.numLoops),
                       GroupChoice::None);

    shareGroupOf.assign(static_cast<size_t>(n), -1);
    for (size_t g = 0; g < cfg.shareGroups.size(); g++) {
        for (int id : cfg.shareGroups[g]) {
            ps_assert(id >= 0 && id < n, "bad share-group node");
            ps_assert(shareGroupOf[static_cast<size_t>(id)] == -1,
                      "node %d in two share groups", id);
            shareGroupOf[static_cast<size_t>(id)] =
                static_cast<int>(g);
        }
    }
    shareUsed.assign(cfg.shareGroups.size(), false);
    shareLast.assign(cfg.shareGroups.size(), dfg::NoNode);
}

bool
Engine::nodeHasOutBufs(const Node &node) const
{
    // Destination-buffered mode: only CF-on-PE and memory PEs carry
    // output buffers (Sec. 4.7); everything else delivers directly.
    return node.isControlFlow() || node.isMemory();
}

// ---------------------------------------------------------------------
// Token plumbing
// ---------------------------------------------------------------------

bool
Engine::inputAvail(NodeId id, int in) const
{
    const InputRef &ref =
        inputRefs[static_cast<size_t>(id)][static_cast<size_t>(in)];
    if (ref.isImm)
        return true;
    if (!ref.wired())
        return false;
    if (sourceMode) {
        const TokenFifo &f =
            rt[static_cast<size_t>(ref.prod)]
                .outs[static_cast<size_t>(ref.prodPort)];
        // Registered PEs see only the multicast head; combinational
        // router CF snoops the buffered window.
        bool ok = nocNode[static_cast<size_t>(id)]
                      ? f.availFor(ref.endpoint)
                      : f.availHeadFor(ref.endpoint);
        if (!ok)
            return false;
        // A PE samples its inputs at the clock edge: it can only
        // consume tokens that were visible before this cycle began.
        // Router CF is combinational and may consume fresh tokens.
        if (!nocNode[static_cast<size_t>(id)] &&
            f.peekFor(ref.endpoint).born >= cycle) {
            return false;
        }
        return true;
    }
    const TokenFifo &f =
        rt[static_cast<size_t>(id)].ins[static_cast<size_t>(in)];
    if (f.empty())
        return false;
    if (!nocNode[static_cast<size_t>(id)] && f.head().born >= cycle)
        return false;
    return true;
}

Token
Engine::peekInput(NodeId id, int in) const
{
    const InputRef &ref =
        inputRefs[static_cast<size_t>(id)][static_cast<size_t>(in)];
    if (ref.isImm)
        return Token{ref.imm, NoTag};
    if (sourceMode) {
        Token t = rt[static_cast<size_t>(ref.prod)]
                      .outs[static_cast<size_t>(ref.prodPort)]
                      .peekFor(ref.endpoint);
        // Tokens crossing out of a threaded region shed their tag.
        if (rt[static_cast<size_t>(ref.prod)].threadRegion !=
            rt[static_cast<size_t>(id)].threadRegion) {
            t.tag = NoTag;
        }
        return t;
    }
    return rt[static_cast<size_t>(id)]
        .ins[static_cast<size_t>(in)]
        .head();
}

Token
Engine::consumeInput(NodeId id, int in)
{
    const InputRef &ref =
        inputRefs[static_cast<size_t>(id)][static_cast<size_t>(in)];
    Token t = peekInput(id, in);
    if (ref.isImm)
        return t;
    if (sourceMode) {
        rt[static_cast<size_t>(ref.prod)]
            .outs[static_cast<size_t>(ref.prodPort)]
            .takeFor(ref.endpoint);
        stats.nocTraversals++;
        stats.bufferReads++;
    } else {
        rt[static_cast<size_t>(id)]
            .ins[static_cast<size_t>(in)]
            .pop();
        stats.bufferReads++;
    }
    stats.portReads[static_cast<size_t>(id)]
                   [static_cast<size_t>(in)]++;
    active = true;
    return t;
}

bool
Engine::portHasConsumers(NodeId id, int port) const
{
    return !graph.consumersOf({id, port}).empty();
}

bool
Engine::consumersAccept(NodeId id, int port) const
{
    for (const auto &c : graph.consumersOf({id, port})) {
        const TokenFifo &f =
            rt[static_cast<size_t>(c.node)]
                .ins[static_cast<size_t>(c.inputIndex)];
        if (f.full())
            return false;
    }
    return true;
}

bool
Engine::outSpace(NodeId id, int port, int need) const
{
    if (!portHasConsumers(id, port))
        return true; // nothing to emit
    const NodeRt &r = rt[static_cast<size_t>(id)];
    if (!r.outs.empty()) {
        const TokenFifo &f = r.outs[static_cast<size_t>(port)];
        int reserved = port == 0 ? r.reservedOut : 0;
        return f.freeSlots() - reserved >= need;
    }
    // Destination mode without an output buffer: multicast delivery
    // requires space at every consumer.
    return consumersAccept(id, port);
}

void
Engine::deliver(NodeId from, int port, const Token &token)
{
    for (const auto &c : graph.consumersOf({from, port})) {
        Token t = token;
        if (rt[static_cast<size_t>(from)].threadRegion !=
            rt[static_cast<size_t>(c.node)].threadRegion) {
            t.tag = NoTag;
        }
        TokenFifo &f = rt[static_cast<size_t>(c.node)]
                           .ins[static_cast<size_t>(c.inputIndex)];
        ps_assert(!f.full(), "delivery into full buffer (node %d)",
                  c.node);
        t.born = bornStamp;
        f.push(t);
        stats.bufferWrites++;
        stats.nocTraversals++;
    }
    active = true;
}

void
Engine::emit(NodeId id, int port, Token token)
{
    if (!portHasConsumers(id, port))
        return;
    NodeRt &r = rt[static_cast<size_t>(id)];
    if (sourceMode || nocNode[static_cast<size_t>(id)]) {
        if (sourceMode) {
            token.born = bornStamp;
            r.outs[static_cast<size_t>(port)].push(token);
            stats.bufferWrites++;
            active = true;
        } else {
            // NoC node in destination mode: direct delivery.
            deliver(id, port, token);
        }
        return;
    }
    if (r.outs.empty()) {
        deliver(id, port, token);
        return;
    }
    // Output-buffered PE: bypass straight to consumers when the
    // buffer is empty and downstream has room (Sec. 4.7).
    const Node &node = graph.at(id);
    bool canBypass = !node.isMemory() || cfg.memBypass;
    TokenFifo &f = r.outs[static_cast<size_t>(port)];
    if (canBypass && f.empty() && consumersAccept(id, port)) {
        deliver(id, port, token);
    } else {
        ps_assert(!f.full(), "emit into full output buffer");
        token.born = bornStamp;
        f.push(token);
        stats.bufferWrites++;
        active = true;
    }
}

int32_t
Engine::combineTags(NodeId id, std::initializer_list<int32_t> tags)
{
    int32_t tag = NoTag;
    for (int32_t t : tags) {
        if (t == NoTag)
            continue;
        if (tag == NoTag) {
            tag = t;
        } else if (tag != t && cfg.checkThreadOrder &&
                   failure.empty()) {
            failure = csprintf(
                "thread-order violation at node %d (%s %s): tokens of "
                "threads %d and %d met (cycle %lld)",
                id, nodeKindName(graph.at(id).kind),
                graph.at(id).name.c_str(), tag, t,
                static_cast<long long>(cycle));
        }
    }
    return tag;
}

// ---------------------------------------------------------------------
// Cycle phases
// ---------------------------------------------------------------------

void
Engine::drainOutputBuffers()
{
    bornStamp = cycle - 1; // these tokens were ready last cycle
    if (sourceMode)
        return; // consumers pull directly from output buffers
    for (NodeId id = 0; id < graph.size(); id++) {
        NodeRt &r = rt[static_cast<size_t>(id)];
        if (r.outs.empty() || nocNode[static_cast<size_t>(id)])
            continue;
        for (int port = 0;
             port < static_cast<int>(r.outs.size()); port++) {
            TokenFifo &f = r.outs[static_cast<size_t>(port)];
            if (!f.empty() && consumersAccept(id, port)) {
                Token t = f.pop();
                stats.bufferReads++;
                deliver(id, port, t);
            }
        }
    }
}

void
Engine::handleMemCompletions()
{
    bornStamp = cycle - 1; // data crossed the NoC during the wait
    for (const auto &load : memsys.takeCompletions(cycle)) {
        NodeRt &r = rt[static_cast<size_t>(load.node)];
        Token data = load.data;
        data.born = bornStamp;
        // A load kept alive only for its order token has no data
        // consumers; its value is dropped at the PE boundary.
        if (!portHasConsumers(load.node, pidx::LoadDataOut)) {
            active = true;
            continue;
        }
        r.reservedOut--;
        if (sourceMode) {
            r.outs[static_cast<size_t>(pidx::LoadDataOut)].push(data);
            stats.bufferWrites++;
        } else {
            TokenFifo &f =
                r.outs[static_cast<size_t>(pidx::LoadDataOut)];
            if (cfg.memBypass && f.empty() &&
                consumersAccept(load.node, pidx::LoadDataOut)) {
                deliver(load.node, pidx::LoadDataOut, data);
            } else {
                ps_assert(!f.full(), "load completion overflow");
                f.push(data);
                stats.bufferWrites++;
            }
        }
        active = true;
    }
}

void
Engine::decideDispatchGroups()
{
    // Called once per sequential round; only bill the SyncPlane
    // once per cycle.
    bool anyEval = false;
    for (int l = 0; l < graph.numLoops; l++) {
        const auto &group = dispatchGroups[static_cast<size_t>(l)];
        groupChoice[static_cast<size_t>(l)] = GroupChoice::None;
        if (group.empty())
            continue;

        if (cfg.greedyDispatch) {
            // Fig. 9a ablation: no SyncPlane; each gate fends for
            // itself (decisions made per node in canFire).
            groupChoice[static_cast<size_t>(l)] =
                GroupChoice::None;
            bool anyPending = false;
            for (NodeId d : group) {
                anyPending |= inputAvail(d, pidx::DispatchCont) ||
                              inputAvail(d, pidx::DispatchSpawn);
            }
            if (anyPending && lastSyncPlaneCycle != cycle) {
                // (No SyncPlane energy in greedy mode.)
            }
            continue;
        }

        // Fig. 10 token-selection logic, evaluated over the
        // SyncPlane reduction of all gates in the group.
        bool anyPending = false;
        bool contAll = true, contNotFull = true;
        bool spawnAll = true, spawnTwoSlots = true;
        for (NodeId d : group) {
            const NodeRt &r = rt[static_cast<size_t>(d)];
            bool cAvail = inputAvail(d, pidx::DispatchCont);
            bool sAvail = inputAvail(d, pidx::DispatchSpawn);
            anyPending |= cAvail | sAvail;
            contAll &= cAvail;
            spawnAll &= sAvail;
            const TokenFifo &out = r.outs[0];
            if (out.freeSlots() < 1)
                contNotFull = false;
            if (out.freeSlots() < 2)
                spawnTwoSlots = false;
        }
        if (anyPending)
            anyEval = true;
        if (contAll && contNotFull) {
            groupChoice[static_cast<size_t>(l)] = GroupChoice::Cont;
        } else if (spawnAll && spawnTwoSlots) {
            groupChoice[static_cast<size_t>(l)] = GroupChoice::Spawn;
        }
    }
    if (anyEval && lastSyncPlaneCycle != cycle) {
        stats.syncPlaneCycles++;
        lastSyncPlaneCycle = cycle;
    }
}

Blocked
Engine::canFire(NodeId id)
{
    const Node &node = graph.at(id);
    NodeRt &r = rt[static_cast<size_t>(id)];

    auto need = [&](int in) { return inputAvail(id, in); };

    switch (node.kind) {
      case NodeKind::Trigger: {
        if (r.triggerFired)
            return Blocked::Idle;
        if (!outSpace(id, 0, 1))
            return Blocked::Space;
        return Blocked::No;
      }
      case NodeKind::Const: {
        if (!need(0))
            return Blocked::Input;
        return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
      }
      case NodeKind::Arith: {
        int want = sir::numOperands(node.op);
        for (int i = 0; i < want; i++) {
            if (!need(i))
                return Blocked::Input;
        }
        return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
      }
      case NodeKind::Steer: {
        if (!need(pidx::SteerDecider) || !need(pidx::SteerValue))
            return Blocked::Input;
        bool forward = (peekInput(id, pidx::SteerDecider).value != 0) ==
                       node.steerIfTrue;
        if (forward && !outSpace(id, 0, 1))
            return Blocked::Space;
        return Blocked::No;
      }
      case NodeKind::Carry: {
        if (r.fsm == NodeRt::Fsm::Init) {
            if (!need(pidx::CarryInit))
                return Blocked::Input;
            return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
        }
        if (r.fsm == NodeRt::Fsm::WaitVal) {
            if (!need(pidx::CarryCont))
                return Blocked::Input;
            return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
        }
        // Run: the decider is consumed eagerly; when the backedge
        // value is already present a true decider forwards it in the
        // same firing.
        if (!need(pidx::CarryDecider))
            return Blocked::Input;
        if (peekInput(id, pidx::CarryDecider).value != 0 &&
            need(pidx::CarryCont)) {
            return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
        }
        return Blocked::No;
      }
      case NodeKind::Invariant: {
        if (r.fsm == NodeRt::Fsm::Init) {
            if (!need(pidx::InvValue))
                return Blocked::Input;
            return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
        }
        if (!need(pidx::InvDecider))
            return Blocked::Input;
        if (peekInput(id, pidx::InvDecider).value != 0) {
            return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
        }
        return Blocked::No;
      }
      case NodeKind::Merge: {
        if (r.fsm == NodeRt::Fsm::WaitVal) {
            if (!need(r.pendingSide))
                return Blocked::Input;
            return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
        }
        if (!need(pidx::MergeDecider))
            return Blocked::Input;
        int side = peekInput(id, pidx::MergeDecider).value != 0
                       ? pidx::MergeTrue
                       : pidx::MergeFalse;
        const auto &sideOp =
            graph.at(id).inputs[static_cast<size_t>(side)];
        if (sideOp.isWire() && !need(side)) {
            // Consume the decider now, wait for the value.
            return Blocked::No;
        }
        return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
      }
      case NodeKind::Dispatch: {
        if (cfg.greedyDispatch) {
            // Unsynchronized: take any available token, preferring
            // continuation, with only local space checks.
            bool c = inputAvail(id, pidx::DispatchCont);
            bool s2 = inputAvail(id, pidx::DispatchSpawn);
            if (!c && !s2)
                return Blocked::Input;
            return outSpace(id, 0, 1) ? Blocked::No
                                      : Blocked::Space;
        }
        return groupChoice[static_cast<size_t>(node.loopId)] ==
                       GroupChoice::None
                   ? Blocked::Input
                   : Blocked::No;
      }
      case NodeKind::Load: {
        if (!need(pidx::LoadAddr))
            return Blocked::Input;
        const InputRef &ordRef =
            inputRefs[static_cast<size_t>(id)].size() >
                    static_cast<size_t>(pidx::LoadOrder)
                ? inputRefs[static_cast<size_t>(id)]
                           [static_cast<size_t>(pidx::LoadOrder)]
                : InputRef{};
        if (ordRef.wired() && !need(pidx::LoadOrder))
            return Blocked::Input;
        // Need a reservation slot for the returning data (unless
        // nothing consumes it).
        if (!r.outs.empty() &&
            portHasConsumers(id, pidx::LoadDataOut)) {
            const TokenFifo &f =
                r.outs[static_cast<size_t>(pidx::LoadDataOut)];
            if (f.freeSlots() - r.reservedOut < 1)
                return Blocked::Space;
        }
        if (portHasConsumers(id, pidx::LoadDoneOut) &&
            !outSpace(id, pidx::LoadDoneOut, 1)) {
            return Blocked::Space;
        }
        if (!memsys.bankFree(peekInput(id, pidx::LoadAddr).value +
                             node.imm))
            return Blocked::Bank;
        return Blocked::No;
      }
      case NodeKind::Store: {
        if (!need(pidx::StoreAddr) || !need(pidx::StoreData))
            return Blocked::Input;
        const auto &refs = inputRefs[static_cast<size_t>(id)];
        if (refs.size() > static_cast<size_t>(pidx::StoreOrder) &&
            refs[static_cast<size_t>(pidx::StoreOrder)].wired() &&
            !need(pidx::StoreOrder)) {
            return Blocked::Input;
        }
        if (portHasConsumers(id, pidx::StoreDoneOut) &&
            !outSpace(id, pidx::StoreDoneOut, 1)) {
            return Blocked::Space;
        }
        if (!memsys.bankFree(peekInput(id, pidx::StoreAddr).value +
                             node.imm))
            return Blocked::Bank;
        return Blocked::No;
      }
      case NodeKind::Stream: {
        if (r.fsm == NodeRt::Fsm::Init) {
            if (!need(pidx::StreamBegin) || !need(pidx::StreamEnd))
                return Blocked::Input;
            const auto &refs = inputRefs[static_cast<size_t>(id)];
            if (refs.size() >
                    static_cast<size_t>(pidx::StreamTrigger) &&
                refs[static_cast<size_t>(pidx::StreamTrigger)]
                    .wired() &&
                !need(pidx::StreamTrigger)) {
                return Blocked::Input;
            }
            Word cur = peekInput(id, pidx::StreamBegin).value;
            Word end = peekInput(id, pidx::StreamEnd).value;
            bool continuing = cur < end;
            if (continuing &&
                !outSpace(id, pidx::StreamIdxOut, 1))
                return Blocked::Space;
            if (!outSpace(id, pidx::StreamCondOut, 1))
                return Blocked::Space;
            return Blocked::No;
        }
        bool continuing = r.streamCur < r.streamEnd;
        if (continuing && !outSpace(id, pidx::StreamIdxOut, 1))
            return Blocked::Space;
        if (!outSpace(id, pidx::StreamCondOut, 1))
            return Blocked::Space;
        return Blocked::No;
      }
    }
    panic("unknown node kind");
}

void
Engine::commitFire(NodeId id)
{
    const Node &node = graph.at(id);
    NodeRt &r = rt[static_cast<size_t>(id)];

    if (nocNode[static_cast<size_t>(id)]) {
        stats.nocCfFires++;
    } else if (node.kind != NodeKind::Trigger) {
        stats.classFires[static_cast<size_t>(node.peClass())]++;
    }
    stats.nodeFires[static_cast<size_t>(id)]++;
    active = true;
    if (cfg.trace) {
        std::fprintf(stderr, "[%6lld] fire n%-3d %-9s %s\n",
                     static_cast<long long>(cycle), id,
                     nodeKindName(node.kind), node.name.c_str());
    }

    switch (node.kind) {
      case NodeKind::Trigger: {
        r.triggerFired = true;
        emit(id, 0, Token{node.imm, NoTag});
        break;
      }
      case NodeKind::Const: {
        Token t = consumeInput(id, 0);
        emit(id, 0, Token{node.imm, t.tag});
        break;
      }
      case NodeKind::Arith: {
        int want = sir::numOperands(node.op);
        Token a = consumeInput(id, 0);
        Token b = consumeInput(id, 1);
        Token c = want == 3 ? consumeInput(id, 2) : Token{};
        int32_t tag = combineTags(id, {a.tag, b.tag, c.tag});
        emit(id, 0,
             Token{sir::evalOpcode(node.op, a.value, b.value, c.value),
                   tag});
        break;
      }
      case NodeKind::Steer: {
        Token d = consumeInput(id, pidx::SteerDecider);
        Token v = consumeInput(id, pidx::SteerValue);
        int32_t tag = combineTags(id, {d.tag, v.tag});
        if ((d.value != 0) == node.steerIfTrue) {
            emit(id, 0, Token{v.value, tag});
        } else {
            stats.steerDrops++;
        }
        break;
      }
      case NodeKind::Carry: {
        if (r.fsm == NodeRt::Fsm::Init) {
            Token a = consumeInput(id, pidx::CarryInit);
            r.fsm = NodeRt::Fsm::Run;
            emit(id, 0, a);
        } else if (r.fsm == NodeRt::Fsm::WaitVal) {
            Token b = consumeInput(id, pidx::CarryCont);
            int32_t tag = combineTags(id, {r.latched.tag, b.tag});
            r.fsm = NodeRt::Fsm::Run;
            emit(id, 0, Token{b.value, tag});
        } else {
            Token d = consumeInput(id, pidx::CarryDecider);
            if (d.value == 0) {
                r.fsm = NodeRt::Fsm::Init;
            } else if (inputAvail(id, pidx::CarryCont)) {
                Token b = consumeInput(id, pidx::CarryCont);
                int32_t tag = combineTags(id, {d.tag, b.tag});
                emit(id, 0, Token{b.value, tag});
            } else {
                r.latched = d;
                r.fsm = NodeRt::Fsm::WaitVal;
            }
        }
        break;
      }
      case NodeKind::Invariant: {
        if (r.fsm == NodeRt::Fsm::Init) {
            Token a = consumeInput(id, pidx::InvValue);
            r.latched = a;
            r.fsm = NodeRt::Fsm::Run;
            emit(id, 0, a);
        } else {
            Token d = consumeInput(id, pidx::InvDecider);
            if (d.value != 0) {
                int32_t tag = combineTags(id, {d.tag, r.latched.tag});
                emit(id, 0, Token{r.latched.value, tag});
            } else {
                r.fsm = NodeRt::Fsm::Init;
                r.latched = Token{};
            }
        }
        break;
      }
      case NodeKind::Merge: {
        if (r.fsm == NodeRt::Fsm::WaitVal) {
            Token v = consumeInput(id, r.pendingSide);
            int32_t tag = combineTags(id, {r.latched.tag, v.tag});
            r.fsm = NodeRt::Fsm::Run;
            emit(id, 0, Token{v.value, tag});
            break;
        }
        Token d = consumeInput(id, pidx::MergeDecider);
        int side = d.value != 0 ? pidx::MergeTrue : pidx::MergeFalse;
        const auto &sideOp =
            graph.at(id).inputs[static_cast<size_t>(side)];
        if (sideOp.isWire() && !inputAvail(id, side)) {
            r.latched = d;
            r.pendingSide = side;
            r.fsm = NodeRt::Fsm::WaitVal;
            break;
        }
        Token v = consumeInput(id, side);
        int32_t tag = combineTags(id, {d.tag, v.tag});
        emit(id, 0, Token{v.value, tag});
        break;
      }
      case NodeKind::Dispatch: {
        GroupChoice choice =
            groupChoice[static_cast<size_t>(node.loopId)];
        if (cfg.greedyDispatch) {
            choice = inputAvail(id, pidx::DispatchCont)
                         ? GroupChoice::Cont
                         : GroupChoice::Spawn;
        }
        if (choice == GroupChoice::Cont) {
            Token t = consumeInput(id, pidx::DispatchCont);
            stats.dispatchConts++;
            emit(id, 0, t);
        } else {
            Token t = consumeInput(id, pidx::DispatchSpawn);
            // All gates in the group fire this cycle and must agree
            // on the new thread's identity; nextThreadTag advances
            // once per group per cycle (see run()).
            t.tag = nextThreadTag;
            stats.dispatchSpawns++;
            emit(id, 0, t);
        }
        break;
      }
      case NodeKind::Load: {
        Token addr = consumeInput(id, pidx::LoadAddr);
        addr.value += node.imm; // configured base offset
        int32_t tag = addr.tag;
        const auto &refs = inputRefs[static_cast<size_t>(id)];
        if (refs.size() > static_cast<size_t>(pidx::LoadOrder) &&
            refs[static_cast<size_t>(pidx::LoadOrder)].wired()) {
            Token ord = consumeInput(id, pidx::LoadOrder);
            tag = combineTags(id, {tag, ord.tag});
        }
        memsys.claimBank(addr.value);
        memsys.issueLoad(id, addr.value, tag, cycle);
        if (portHasConsumers(id, pidx::LoadDataOut))
            r.reservedOut++;
        stats.memLoads++;
        emit(id, pidx::LoadDoneOut, Token{1, tag});
        break;
      }
      case NodeKind::Store: {
        Token addr = consumeInput(id, pidx::StoreAddr);
        addr.value += node.imm; // configured base offset
        Token data = consumeInput(id, pidx::StoreData);
        int32_t tag = combineTags(id, {addr.tag, data.tag});
        const auto &refs = inputRefs[static_cast<size_t>(id)];
        if (refs.size() > static_cast<size_t>(pidx::StoreOrder) &&
            refs[static_cast<size_t>(pidx::StoreOrder)].wired()) {
            Token ord = consumeInput(id, pidx::StoreOrder);
            tag = combineTags(id, {tag, ord.tag});
        }
        memsys.claimBank(addr.value);
        memsys.store(addr.value, data.value);
        stats.memStores++;
        emit(id, pidx::StoreDoneOut, Token{1, tag});
        break;
      }
      case NodeKind::Stream: {
        if (r.fsm == NodeRt::Fsm::Init) {
            Token begin = consumeInput(id, pidx::StreamBegin);
            Token end = consumeInput(id, pidx::StreamEnd);
            const auto &refs = inputRefs[static_cast<size_t>(id)];
            int32_t tag = combineTags(id, {begin.tag, end.tag});
            if (refs.size() >
                    static_cast<size_t>(pidx::StreamTrigger) &&
                refs[static_cast<size_t>(pidx::StreamTrigger)]
                    .wired()) {
                Token trig = consumeInput(id, pidx::StreamTrigger);
                tag = combineTags(id, {tag, trig.tag});
            }
            r.streamCur = begin.value;
            r.streamEnd = end.value;
            r.latched.tag = tag;
            r.fsm = NodeRt::Fsm::Run;
        }
        int32_t tag = r.latched.tag;
        if (r.streamCur < r.streamEnd) {
            emit(id, pidx::StreamIdxOut, Token{r.streamCur, tag});
            emit(id, pidx::StreamCondOut, Token{1, tag});
            r.streamCur += node.streamStep;
        } else {
            emit(id, pidx::StreamCondOut, Token{0, tag});
            r.fsm = NodeRt::Fsm::Init;
        }
        break;
      }
    }
}

void
Engine::evalNocNodes()
{
    // CF ops in routers are combinational: they observe tokens that
    // became visible this cycle and forward them within the cycle,
    // in dependence (topological) order. Each router op handles at
    // most one token set per cycle (enforced by nocFired: the
    // routine runs both before the PE pass — modeling values that
    // settled through the NoC at the end of the previous cycle —
    // and after it, for same-cycle forwarding of fresh PE outputs).
    for (;;) {
        bool any = false;
        for (NodeId id : nocTopo) {
            if (nocFired[static_cast<size_t>(id)])
                continue;
            if (canFire(id) == Blocked::No) {
                nocFired[static_cast<size_t>(id)] = true;
                commitFire(id);
                any = true;
            }
        }
        // Sweep to a fixpoint: a router op whose consumer freed its
        // latch later in the same settle can still fire this cycle.
        if (!any)
            break;
    }
}

bool
Engine::quiescent() const
{
    if (!memsys.idle())
        return false;
    for (NodeId id = 0; id < graph.size(); id++) {
        const NodeRt &r = rt[static_cast<size_t>(id)];
        const Node &node = graph.at(id);
        if (node.kind == NodeKind::Trigger && !r.triggerFired)
            return false;
        if (node.kind == NodeKind::Stream &&
            r.fsm != NodeRt::Fsm::Init)
            return false;
        for (const auto &f : r.ins) {
            if (!f.empty())
                return false;
        }
        for (const auto &f : r.outs) {
            if (!f.empty())
                return false;
        }
    }
    return true;
}

std::string
Engine::diagnose() const
{
    std::ostringstream out;
    int listed = 0;
    for (NodeId id = 0; id < graph.size() && listed < 40; id++) {
        const NodeRt &r = rt[static_cast<size_t>(id)];
        const Node &node = graph.at(id);
        bool interesting = r.fsm != NodeRt::Fsm::Init;
        for (const auto &f : r.ins)
            interesting |= !f.empty();
        for (const auto &f : r.outs)
            interesting |= !f.empty();
        if (!interesting)
            continue;
        listed++;
        out << "  node " << id << " (" << nodeKindName(node.kind)
            << " " << node.name << ") ins=[";
        for (const auto &f : r.ins)
            out << f.size() << " ";
        out << "] outs=[";
        for (const auto &f : r.outs)
            out << f.size() << " ";
        out << "] fsm=" << static_cast<int>(r.fsm) << "\n";
    }
    return out.str();
}

SimResult
Engine::run()
{
    SimResult result;
    fireList.reserve(static_cast<size_t>(graph.size()));

    for (cycle = 0; cycle < cfg.maxCycles; cycle++) {
        active = false;
        memsys.beginCycle();
        nocFired.assign(static_cast<size_t>(graph.size()), false);
        shareUsed.assign(shareUsed.size(), false);

        drainOutputBuffers();
        handleMemCompletions();

        // Router CF settles over tokens left from the previous
        // cycle before the PEs sample their inputs.
        bornStamp = cycle - 1;
        evalNocNodes();

        // Sequential (PE) firing: iterate to a fixpoint within the
        // cycle. A PE only consumes tokens born in earlier cycles,
        // but a multicast head retired early in the cycle exposes
        // the next (older) token to consumers later in the same
        // cycle — the combinational acknowledge path. Each PE fires
        // at most once per cycle.
        bornStamp = cycle;
        std::vector<bool> seqFired(static_cast<size_t>(graph.size()),
                                   false);
        for (;;) {
            decideDispatchGroups();
            fireList.clear();
            for (NodeId id = 0; id < graph.size(); id++) {
                if (nocNode[static_cast<size_t>(id)] ||
                    seqFired[static_cast<size_t>(id)]) {
                    continue;
                }
                int sg = shareGroupOf[static_cast<size_t>(id)];
                if (sg >= 0) {
                    if (shareUsed[static_cast<size_t>(sg)]) {
                        stats.shareConflicts++;
                        continue;
                    }
                    // Fairness: the current resident yields when a
                    // housemate is also ready to fire this cycle.
                    if (shareLast[static_cast<size_t>(sg)] == id) {
                        bool housemateReady = false;
                        for (int other :
                             cfg.shareGroups[static_cast<size_t>(
                                 sg)]) {
                            if (other == id ||
                                seqFired[static_cast<size_t>(
                                    other)]) {
                                continue;
                            }
                            if (canFire(other) == Blocked::No) {
                                housemateReady = true;
                                break;
                            }
                        }
                        if (housemateReady) {
                            stats.shareConflicts++;
                            continue;
                        }
                    }
                }
                if (canFire(id) == Blocked::No) {
                    fireList.push_back(id);
                    seqFired[static_cast<size_t>(id)] = true;
                    if (sg >= 0) {
                        shareUsed[static_cast<size_t>(sg)] = true;
                        if (shareLast[static_cast<size_t>(sg)] !=
                            id) {
                            stats.muxSwitches++;
                            shareLast[static_cast<size_t>(sg)] =
                                id;
                        }
                    }
                    const Node &node = graph.at(id);
                    if (node.kind == NodeKind::Load) {
                        memsys.claimBank(
                            peekInput(id, pidx::LoadAddr).value +
                            node.imm);
                    } else if (node.kind == NodeKind::Store) {
                        memsys.claimBank(
                            peekInput(id, pidx::StoreAddr).value +
                            node.imm);
                    }
                }
            }
            if (fireList.empty())
                break;
            bool spawned = false;
            for (NodeId id : fireList) {
                if (graph.at(id).kind == NodeKind::Dispatch &&
                    groupChoice[static_cast<size_t>(
                        graph.at(id).loopId)] ==
                        GroupChoice::Spawn) {
                    spawned = true;
                }
                commitFire(id);
            }
            if (spawned)
                nextThreadTag++;
        }

        // Stall census for the PEs that never fired this cycle.
        for (NodeId id = 0; id < graph.size(); id++) {
            if (nocNode[static_cast<size_t>(id)] ||
                seqFired[static_cast<size_t>(id)]) {
                continue;
            }
            Blocked why = canFire(id);
            if (why == Blocked::Input) {
                const NodeRt &r = rt[static_cast<size_t>(id)];
                bool pending = false;
                for (const auto &f : r.ins)
                    pending |= !f.empty();
                if (pending)
                    stats.stallNoInput++;
            } else if (why == Blocked::Space) {
                stats.stallNoSpace++;
            } else if (why == Blocked::Bank) {
                stats.stallBank++;
                stats.bankConflictStalls++;
            }
            if (cfg.trace && why != Blocked::Idle &&
                why != Blocked::No) {
                std::fprintf(
                    stderr, "[%6lld] stall n%-3d %-9s %s (%s)\n",
                    static_cast<long long>(cycle), id,
                    nodeKindName(graph.at(id).kind),
                    graph.at(id).name.c_str(),
                    why == Blocked::Input    ? "input"
                    : why == Blocked::Space ? "space"
                                            : "bank");
            }
        }

        // Pass 3: combinational CF-in-NoC evaluation.
        evalNocNodes();

        if (!failure.empty()) {
            result.stats = stats;
            result.stats.cycles = cycle + 1;
            result.deadlocked = true;
            result.diagnostic = failure;
            return result;
        }

        if (quiescent()) {
            stats.cycles = cycle + 1;
            result.stats = stats;
            // A carry/invariant left mid-loop with no tokens in
            // flight means the graph leaked or starved tokens — a
            // compiler or simulator bug worth surfacing.
            for (NodeId id = 0; id < graph.size(); id++) {
                const Node &node = graph.at(id);
                if ((node.kind == NodeKind::Carry ||
                     node.kind == NodeKind::Invariant) &&
                    rt[static_cast<size_t>(id)].fsm !=
                        NodeRt::Fsm::Init) {
                    result.deadlocked = true;
                    result.diagnostic = csprintf(
                        "token leak: node %d (%s %s) finished in "
                        "run state",
                        id, nodeKindName(node.kind),
                        node.name.c_str());
                    break;
                }
            }
            return result;
        }

        if (!active && memsys.idle()) {
            stats.cycles = cycle + 1;
            result.stats = stats;
            result.deadlocked = true;
            result.diagnostic =
                csprintf("deadlock at cycle %lld:\n",
                         static_cast<long long>(cycle)) +
                diagnose();
            return result;
        }
    }

    stats.cycles = cfg.maxCycles;
    result.stats = stats;
    result.deadlocked = true;
    result.diagnostic = "watchdog: maxCycles exceeded\n" + diagnose();
    return result;
}

} // namespace

SimResult
simulate(const Graph &graph, MemImage &mem, const SimConfig &config)
{
    Engine engine(graph, mem, config);
    return engine.run();
}

} // namespace pipestitch::sim
