#include "sim/simulator.hh"

#include "sim/execution.hh"
#include "sim/program.hh"

namespace pipestitch::sim {

SimResult
simulate(const dfg::Graph &graph, MemImage &mem,
         const SimConfig &config)
{
    // One-shot path: build the immutable Program and run a single
    // ExecutionState over it. The graph outlives this call, so a
    // non-owning aliasing pointer is enough. Long-lived callers
    // (figures sweeps, pstool serve) build the Program once and
    // share it across executions instead.
    std::shared_ptr<const dfg::Graph> hold(
        std::shared_ptr<const dfg::Graph>(), &graph);
    auto program =
        std::make_shared<const Program>(std::move(hold), config);
    ExecutionState exec(std::move(program));
    return exec.run(mem, RunOptions{config.observer, config.trace,
                                    config.maxCycles});
}

} // namespace pipestitch::sim
