#include "sim/execution.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "base/logging.hh"
#include "sim/parallel.hh"
#include "trace/observer.hh"

namespace pipestitch::sim {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::NodeKind;
namespace pidx = dfg::port_idx;

ExecutionState::ExecutionState(std::shared_ptr<const Program> program)
    : progHold(std::move(program)), prog(*progHold),
      graph(prog.graph()), cfg(prog.cfg),
      sourceMode(prog.sourceMode), readyMode(prog.readyMode)
{
    reset();
}

ExecutionState::~ExecutionState() = default;

void
ExecutionState::reset()
{
    const int n = graph.size();

    rt.assign(static_cast<size_t>(n), NodeRt{});
    for (NodeId id = 0; id < n; id++) {
        const Node &node = graph.at(id);
        const Program::NodePlan &p = prog.plan[static_cast<size_t>(id)];
        NodeRt &r = rt[static_cast<size_t>(id)];
        if (p.insDepth > 0) {
            r.ins.assign(static_cast<size_t>(node.numInputs()),
                         TokenFifo(p.insDepth));
        }
        if (p.outsDepth > 0) {
            r.outs.assign(static_cast<size_t>(node.numOutputs()),
                          TokenFifo(p.outsDepth));
        }
    }
    if (sourceMode) {
        for (NodeId id = 0; id < n; id++) {
            NodeRt &r = rt[static_cast<size_t>(id)];
            for (int port = 0;
                 port < static_cast<int>(r.outs.size()); port++) {
                r.outs[static_cast<size_t>(port)].initEndpoints(
                    static_cast<int>(
                        graph.consumersOf({id, port}).size()));
            }
        }
    }

    stats = SimStats{};
    stats.nodeFires.assign(static_cast<size_t>(n), 0);
    stats.portReads.resize(static_cast<size_t>(n));
    for (NodeId id = 0; id < n; id++) {
        stats.portReads[static_cast<size_t>(id)].assign(
            static_cast<size_t>(graph.at(id).numInputs()), 0);
    }

    groupChoice.assign(static_cast<size_t>(graph.numLoops),
                       GroupChoice::None);
    shareUsed.assign(cfg.shareGroups.size(), false);
    shareLast.assign(cfg.shareGroups.size(), dfg::NoNode);

    // Ready-list state: everything starts live; the first stall
    // census prunes whatever turns out to be inert.
    liveSeq = prog.allSeqNodes;
    liveNoc = prog.allNocNodes;
    inLive.assign(static_cast<size_t>(n), 1);
    wokenAt.assign(static_cast<size_t>(n), -1);
    dormantClass.assign(static_cast<size_t>(n), DormNone);
    dormantInput = dormantSpace = 0;
    lastVerdict.assign(static_cast<size_t>(n), Blocked::Idle);
    verdictSerial.assign(static_cast<size_t>(n), -1);
    wakeSerial.assign(static_cast<size_t>(n), -1);
    cycleStartSerial = 0;
    // Dirty through cycle 1 so the initial trigger wave is seen.
    groupDirtyUntil.assign(static_cast<size_t>(graph.numLoops), 1);
    groupPending.assign(static_cast<size_t>(graph.numLoops), 0);
    curRound.clear();
    nextRound.clear();
    inRoundAt.assign(static_cast<size_t>(n), -1);
    inNextAt.assign(static_cast<size_t>(n), -1);
    roundSerial = 0;
    inPeFixpoint = false;
    nocSweep.clear();
    nocNextSweep.clear();
    inNocNextAt.assign(static_cast<size_t>(n), -1);
    nocSweepSerial = 0;
    inNocEval = false;
    drainList.clear();
    inDrainList.assign(static_cast<size_t>(n), 0);
    chanSlabBase.assign(prog.channels.size() + 1, 0);
    for (size_t ch = 0; ch < prog.channels.size(); ch++) {
        chanSlabBase[ch + 1] =
            chanSlabBase[ch] + prog.channels[ch].capacity;
    }
    chanTok.assign(static_cast<size_t>(chanSlabBase.back()),
                   Token{});
    chanReady.assign(static_cast<size_t>(chanSlabBase.back()), 0);
    chanHead.assign(prog.channels.size(), 0);
    chanCount.assign(prog.channels.size(), 0);
    seqFiredAt.assign(static_cast<size_t>(n), -1);
    nocFiredAt.assign(static_cast<size_t>(n), -1);

    tokensInFlight = 0;
    triggersPending = prog.triggersTotal;
    streamsRunning = 0;
    nextThreadTag = 0;
    cycle = 0;
    bornStamp = 0;
    lastSyncPlaneCycle = -1;
    active = false;
    fireList.clear();
    failure.clear();
}

SimResult
ExecutionState::run(MemImage &mem, const RunOptions &opts)
{
    cfg = prog.cfg;
    cfg.observer = opts.observer;
    cfg.trace = opts.trace;
    if (opts.maxCycles > 0)
        cfg.maxCycles = opts.maxCycles;
    obs = cfg.observer;

    // ParallelRegions: delegate to the region-partitioned engine.
    // Observer/trace runs need the oracle's per-fire hooks, so they
    // pin ReadyList — same policy DenseScan uses (docs/simulator.md).
    if (cfg.scheduler == SimConfig::Scheduler::ParallelRegions &&
        !obs && !cfg.trace && parallelSupported(prog)) {
        if (!parEngine) {
            parEngine = std::make_unique<ParallelEngine>(
                progHold, cfg.parallelJobs, cfg.parallelThreads);
        }
        return parEngine->run(mem, opts.maxCycles);
    }

    reset();
    memsys.emplace(mem, cfg.memBanks, cfg.memLatency);
    if (obs)
        obs->onSimBegin(graph, cfg);
    SimResult result = runLoop();
    memsys.reset();
    if (obs)
        obs->onSimEnd(result);
    return result;
}

// ---------------------------------------------------------------------
// Ready-list bookkeeping
// ---------------------------------------------------------------------

void
ExecutionState::wake(NodeId id)
{
    wokenAt[static_cast<size_t>(id)] = cycle;
    if (prog.nocNode[static_cast<size_t>(id)]) {
        if (!inLive[static_cast<size_t>(id)]) {
            inLive[static_cast<size_t>(id)] = 1;
            liveNoc.push_back(id);
        }
        if (inNocEval &&
            inNocNextAt[static_cast<size_t>(id)] != nocSweepSerial) {
            inNocNextAt[static_cast<size_t>(id)] = nocSweepSerial;
            nocNextSweep.push_back(id);
        }
    } else {
        wakeSerial[static_cast<size_t>(id)] = roundSerial;
        if (prog.gateLoop[static_cast<size_t>(id)] >= 0) {
            groupDirtyUntil[static_cast<size_t>(
                prog.gateLoop[static_cast<size_t>(id)])] = cycle + 1;
        }
        if (dormantClass[static_cast<size_t>(id)] != DormNone) {
            if (dormantClass[static_cast<size_t>(id)] == DormInput)
                dormantInput--;
            else
                dormantSpace--;
            dormantClass[static_cast<size_t>(id)] = DormNone;
        }
        if (!inLive[static_cast<size_t>(id)]) {
            inLive[static_cast<size_t>(id)] = 1;
            liveSeq.push_back(id);
        }
        if (inPeFixpoint &&
            inNextAt[static_cast<size_t>(id)] != roundSerial) {
            inNextAt[static_cast<size_t>(id)] = roundSerial;
            nextRound.push_back(id);
        }
    }
}

void
ExecutionState::wakeConsumers(NodeId id, int port)
{
    int p = prog.portBase[static_cast<size_t>(id)] + port;
    for (int i = prog.consBase[static_cast<size_t>(p)];
         i < prog.consBase[static_cast<size_t>(p) + 1]; i++) {
        wake(prog.consFlat[static_cast<size_t>(i)]);
    }
}

void
ExecutionState::markDrainable(NodeId id)
{
    if (!inDrainList[static_cast<size_t>(id)]) {
        inDrainList[static_cast<size_t>(id)] = 1;
        drainList.push_back(id);
    }
}

// ---------------------------------------------------------------------
// Token plumbing
// ---------------------------------------------------------------------

bool
ExecutionState::inputAvail(NodeId id, int in) const
{
    const InputRef &ref =
        prog.inputRefs[static_cast<size_t>(id)]
                      [static_cast<size_t>(in)];
    if (ref.isImm)
        return true;
    if (!ref.wired())
        return false;
    if (sourceMode) {
        const TokenFifo &f =
            rt[static_cast<size_t>(ref.prod)]
                .outs[static_cast<size_t>(ref.prodPort)];
        // Registered PEs see only the multicast head; combinational
        // router CF snoops the buffered window.
        bool ok = prog.nocNode[static_cast<size_t>(id)]
                      ? f.availFor(ref.endpoint)
                      : f.availHeadFor(ref.endpoint);
        if (!ok)
            return false;
        // A PE samples its inputs at the clock edge: it can only
        // consume tokens that were visible before this cycle began.
        // Router CF is combinational and may consume fresh tokens.
        if (!prog.nocNode[static_cast<size_t>(id)] &&
            f.peekFor(ref.endpoint).born >= cycle) {
            return false;
        }
        return true;
    }
    const TokenFifo &f =
        rt[static_cast<size_t>(id)].ins[static_cast<size_t>(in)];
    if (f.empty())
        return false;
    if (!prog.nocNode[static_cast<size_t>(id)] &&
        f.head().born >= cycle)
        return false;
    return true;
}

Token
ExecutionState::peekInput(NodeId id, int in) const
{
    const InputRef &ref =
        prog.inputRefs[static_cast<size_t>(id)]
                      [static_cast<size_t>(in)];
    if (ref.isImm)
        return Token{ref.imm, NoTag};
    if (sourceMode) {
        Token t = rt[static_cast<size_t>(ref.prod)]
                      .outs[static_cast<size_t>(ref.prodPort)]
                      .peekFor(ref.endpoint);
        // Tokens crossing out of a threaded region shed their tag.
        if (prog.threadRegionOf[static_cast<size_t>(ref.prod)] !=
            prog.threadRegionOf[static_cast<size_t>(id)]) {
            t.tag = NoTag;
        }
        return t;
    }
    return rt[static_cast<size_t>(id)]
        .ins[static_cast<size_t>(in)]
        .head();
}

Token
ExecutionState::consumeInput(NodeId id, int in)
{
    const InputRef &ref =
        prog.inputRefs[static_cast<size_t>(id)]
                      [static_cast<size_t>(in)];
    Token t = peekInput(id, in);
    if (ref.isImm)
        return t;
    if (sourceMode) {
        int retired = rt[static_cast<size_t>(ref.prod)]
                          .outs[static_cast<size_t>(ref.prodPort)]
                          .takeFor(ref.endpoint);
        tokensInFlight -= retired;
        stats.nocTraversals++;
        stats.bufferReads++;
        if (retired > 0) {
            // The producer regained buffer space, and the retired
            // head exposes the next entry to every other endpoint.
            wake(ref.prod);
            wakeConsumers(ref.prod, ref.prodPort);
        }
    } else {
        rt[static_cast<size_t>(id)]
            .ins[static_cast<size_t>(in)]
            .pop();
        tokensInFlight--;
        stats.bufferReads++;
        // The producer port delivering into this fifo has space now.
        wake(ref.prod);
    }
    stats.portReads[static_cast<size_t>(id)]
                   [static_cast<size_t>(in)]++;
    active = true;
    return t;
}

bool
ExecutionState::portHasConsumers(NodeId id, int port) const
{
    return !graph.consumersOf({id, port}).empty();
}

bool
ExecutionState::consumersAccept(NodeId id, int port) const
{
    for (const auto &c : graph.consumersOf({id, port})) {
        if (prog.hasChannels) {
            int ch = prog.chanIdOf[static_cast<size_t>(c.node)]
                                  [static_cast<size_t>(c.inputIndex)];
            if (ch >= 0) {
                // Channel edge: the producer backpressures on the
                // inter-tile channel, not the far-side buffer.
                if (chanCount[static_cast<size_t>(ch)] >=
                    prog.channels[static_cast<size_t>(ch)].capacity)
                    return false;
                continue;
            }
        }
        const TokenFifo &f =
            rt[static_cast<size_t>(c.node)]
                .ins[static_cast<size_t>(c.inputIndex)];
        if (f.full())
            return false;
    }
    return true;
}

bool
ExecutionState::outSpace(NodeId id, int port, int need) const
{
    if (!portHasConsumers(id, port))
        return true; // nothing to emit
    const NodeRt &r = rt[static_cast<size_t>(id)];
    if (!r.outs.empty()) {
        const TokenFifo &f = r.outs[static_cast<size_t>(port)];
        int reserved = port == 0 ? r.reservedOut : 0;
        return f.freeSlots() - reserved >= need;
    }
    // Destination mode without an output buffer: multicast delivery
    // requires space at every consumer.
    return consumersAccept(id, port);
}

void
ExecutionState::deliver(NodeId from, int port, const Token &token)
{
    for (const auto &c : graph.consumersOf({from, port})) {
        Token t = token;
        if (prog.threadRegionOf[static_cast<size_t>(from)] !=
            prog.threadRegionOf[static_cast<size_t>(c.node)]) {
            t.tag = NoTag;
        }
        if (prog.hasChannels) {
            int ch = prog.chanIdOf[static_cast<size_t>(c.node)]
                                  [static_cast<size_t>(c.inputIndex)];
            if (ch >= 0) {
                // Channel edge: the token enters the inter-tile
                // channel and matures `latency` cycles later
                // (advanceChannels moves it into the destination
                // buffer). The consumer is not woken yet.
                const Program::Channel &cc =
                    prog.channels[static_cast<size_t>(ch)];
                const size_t ci = static_cast<size_t>(ch);
                ps_assert(chanCount[ci] < cc.capacity,
                          "delivery into full channel (node %d)",
                          c.node);
                int pos = chanHead[ci] + chanCount[ci];
                if (pos >= cc.capacity)
                    pos -= cc.capacity;
                size_t slot =
                    static_cast<size_t>(chanSlabBase[ci] + pos);
                chanTok[slot] = t;
                chanReady[slot] = cycle + cc.latency;
                chanCount[ci]++;
                tokensInFlight++;
                stats.bufferWrites++;
                stats.nocTraversals++;
                stats.interTileTokens++;
                continue;
            }
        }
        TokenFifo &f = rt[static_cast<size_t>(c.node)]
                           .ins[static_cast<size_t>(c.inputIndex)];
        ps_assert(!f.full(), "delivery into full buffer (node %d)",
                  c.node);
        t.born = bornStamp;
        f.push(t);
        tokensInFlight++;
        stats.bufferWrites++;
        stats.nocTraversals++;
        wake(c.node);
    }
    active = true;
}

void
ExecutionState::emit(NodeId id, int port, Token token)
{
    if (!portHasConsumers(id, port))
        return;
    NodeRt &r = rt[static_cast<size_t>(id)];
    if (sourceMode || prog.nocNode[static_cast<size_t>(id)]) {
        if (sourceMode) {
            token.born = bornStamp;
            r.outs[static_cast<size_t>(port)].push(token);
            tokensInFlight++;
            stats.bufferWrites++;
            active = true;
            wakeConsumers(id, port);
        } else {
            // NoC node in destination mode: direct delivery.
            deliver(id, port, token);
        }
        return;
    }
    if (r.outs.empty()) {
        deliver(id, port, token);
        return;
    }
    // Output-buffered PE: bypass straight to consumers when the
    // buffer is empty and downstream has room (Sec. 4.7).
    const Node &node = graph.at(id);
    bool canBypass = !node.isMemory() || cfg.memBypass;
    TokenFifo &f = r.outs[static_cast<size_t>(port)];
    if (canBypass && f.empty() && consumersAccept(id, port)) {
        deliver(id, port, token);
    } else {
        ps_assert(!f.full(), "emit into full output buffer");
        token.born = bornStamp;
        f.push(token);
        tokensInFlight++;
        stats.bufferWrites++;
        active = true;
        markDrainable(id);
    }
}

int32_t
ExecutionState::combineTags(NodeId id,
                            std::initializer_list<int32_t> tags)
{
    int32_t tag = NoTag;
    for (int32_t t : tags) {
        if (t == NoTag)
            continue;
        if (tag == NoTag) {
            tag = t;
        } else if (tag != t && cfg.checkThreadOrder &&
                   failure.empty()) {
            failure = csprintf(
                "thread-order violation at node %d (%s %s): tokens of "
                "threads %d and %d met (cycle %lld)",
                id, nodeKindName(graph.at(id).kind),
                graph.at(id).name.c_str(), tag, t,
                static_cast<long long>(cycle));
        }
    }
    return tag;
}

// ---------------------------------------------------------------------
// Cycle phases
// ---------------------------------------------------------------------

void
ExecutionState::drainOutputBuffers()
{
    bornStamp = cycle - 1; // these tokens were ready last cycle
    if (sourceMode)
        return; // consumers pull directly from output buffers
    if (drainList.empty())
        return;
    // Ascending id order matches the reference full scan.
    std::sort(drainList.begin(), drainList.end());
    size_t keep = 0;
    for (NodeId id : drainList) {
        NodeRt &r = rt[static_cast<size_t>(id)];
        bool nonempty = false;
        for (int port = 0;
             port < static_cast<int>(r.outs.size()); port++) {
            TokenFifo &f = r.outs[static_cast<size_t>(port)];
            if (!f.empty() && consumersAccept(id, port)) {
                Token t = f.pop();
                tokensInFlight--;
                stats.bufferReads++;
                wake(id); // its output buffer has space again
                deliver(id, port, t);
            }
            nonempty |= !f.empty();
        }
        if (nonempty)
            drainList[keep++] = id;
        else
            inDrainList[static_cast<size_t>(id)] = 0;
    }
    drainList.resize(keep);
}

void
ExecutionState::handleMemCompletions()
{
    bornStamp = cycle - 1; // data crossed the NoC during the wait
    for (const auto &load : memsys->takeCompletions(cycle)) {
        NodeRt &r = rt[static_cast<size_t>(load.node)];
        Token data = load.data;
        data.born = bornStamp;
        // A load kept alive only for its order token has no data
        // consumers; its value is dropped at the PE boundary.
        if (!portHasConsumers(load.node, pidx::LoadDataOut)) {
            active = true;
            continue;
        }
        r.reservedOut--;
        wake(load.node); // reservation slot freed
        if (sourceMode) {
            r.outs[static_cast<size_t>(pidx::LoadDataOut)].push(data);
            tokensInFlight++;
            stats.bufferWrites++;
            wakeConsumers(load.node, pidx::LoadDataOut);
        } else {
            TokenFifo &f =
                r.outs[static_cast<size_t>(pidx::LoadDataOut)];
            if (cfg.memBypass && f.empty() &&
                consumersAccept(load.node, pidx::LoadDataOut)) {
                deliver(load.node, pidx::LoadDataOut, data);
            } else {
                ps_assert(!f.full(), "load completion overflow");
                f.push(data);
                tokensInFlight++;
                stats.bufferWrites++;
                markDrainable(load.node);
            }
        }
        active = true;
    }
}

void
ExecutionState::advanceChannels()
{
    bornStamp = cycle - 1; // matured tokens aged in the channel
    for (size_t ch = 0; ch < chanCount.size(); ch++) {
        if (chanCount[ch] == 0)
            continue;
        const Program::Channel &cc = prog.channels[ch];
        TokenFifo &f = rt[static_cast<size_t>(cc.dst)]
                           .ins[static_cast<size_t>(cc.dstIn)];
        bool freed = false;
        while (chanCount[ch] > 0 &&
               chanReady[static_cast<size_t>(chanSlabBase[ch] +
                                             chanHead[ch])] <=
                   cycle &&
               !f.full()) {
            size_t slot = static_cast<size_t>(chanSlabBase[ch] +
                                              chanHead[ch]);
            Token t = chanTok[slot];
            int h = chanHead[ch] + 1;
            chanHead[ch] = h >= cc.capacity ? 0 : h;
            chanCount[ch]--;
            t.born = bornStamp;
            f.push(t); // still one in-flight token: channel -> fifo
            stats.bufferWrites++;
            wake(cc.dst);
            freed = true;
            active = true;
        }
        if (freed) {
            // Channel space opened up; the producer may fire again.
            wake(cc.src);
        }
        if (chanCount[ch] > 0 &&
            chanReady[static_cast<size_t>(chanSlabBase[ch] +
                                          chanHead[ch])] > cycle) {
            // Tokens still crossing the boundary keep the fabric
            // busy — this is latency, not deadlock.
            active = true;
        }
    }
}

void
ExecutionState::decideDispatchGroups()
{
    // Called once per sequential round; only bill the SyncPlane
    // once per cycle.
    bool anyEval = false;
    for (int l = 0; l < graph.numLoops; l++) {
        const auto &group =
            prog.dispatchGroups[static_cast<size_t>(l)];
        if (readyMode && !cfg.greedyDispatch && !group.empty() &&
            cycle > groupDirtyUntil[static_cast<size_t>(l)]) {
            // No gate event since the last evaluation, so the
            // cached choice and pending flag are exactly what a
            // fresh scan would produce. The choice keeps its value
            // from the last dirty round.
            if (groupPending[static_cast<size_t>(l)])
                anyEval = true;
            continue;
        }
        groupChoice[static_cast<size_t>(l)] = GroupChoice::None;
        if (group.empty())
            continue;

        if (cfg.greedyDispatch) {
            // Fig. 9a ablation: no SyncPlane; each gate fends for
            // itself (decisions made per node in canFire).
            continue;
        }

        // Fig. 10 token-selection logic, evaluated over the
        // SyncPlane reduction of all gates in the group.
        bool anyPending = false;
        bool contAll = true, contNotFull = true;
        bool spawnAll = true, spawnTwoSlots = true;
        for (NodeId d : group) {
            const NodeRt &r = rt[static_cast<size_t>(d)];
            bool cAvail = inputAvail(d, pidx::DispatchCont);
            bool sAvail = inputAvail(d, pidx::DispatchSpawn);
            anyPending |= cAvail | sAvail;
            contAll &= cAvail;
            spawnAll &= sAvail;
            const TokenFifo &out = r.outs[0];
            if (out.freeSlots() < 1)
                contNotFull = false;
            if (out.freeSlots() < 2)
                spawnTwoSlots = false;
        }
        if (anyPending)
            anyEval = true;
        groupPending[static_cast<size_t>(l)] = anyPending;
        if (contAll && contNotFull) {
            groupChoice[static_cast<size_t>(l)] = GroupChoice::Cont;
        } else if (spawnAll && spawnTwoSlots) {
            groupChoice[static_cast<size_t>(l)] = GroupChoice::Spawn;
        }
    }
    if (anyEval && lastSyncPlaneCycle != cycle) {
        stats.syncPlaneCycles++;
        lastSyncPlaneCycle = cycle;
        if (obs)
            obs->onSyncPlane(cycle);
    }
}

ExecutionState::Blocked
ExecutionState::canFire(NodeId id)
{
    const Node &node = graph.at(id);
    NodeRt &r = rt[static_cast<size_t>(id)];

    auto need = [&](int in) { return inputAvail(id, in); };

    switch (node.kind) {
      case NodeKind::Trigger: {
        if (r.triggerFired)
            return Blocked::Idle;
        if (!outSpace(id, 0, 1))
            return Blocked::Space;
        return Blocked::No;
      }
      case NodeKind::Const: {
        if (!need(0))
            return Blocked::Input;
        return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
      }
      case NodeKind::Arith: {
        int want = sir::numOperands(node.op);
        for (int i = 0; i < want; i++) {
            if (!need(i))
                return Blocked::Input;
        }
        return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
      }
      case NodeKind::Steer: {
        if (!need(pidx::SteerDecider) || !need(pidx::SteerValue))
            return Blocked::Input;
        bool forward = (peekInput(id, pidx::SteerDecider).value != 0) ==
                       node.steerIfTrue;
        if (forward && !outSpace(id, 0, 1))
            return Blocked::Space;
        return Blocked::No;
      }
      case NodeKind::Carry: {
        if (r.fsm == NodeRt::Fsm::Init) {
            if (!need(pidx::CarryInit))
                return Blocked::Input;
            return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
        }
        if (r.fsm == NodeRt::Fsm::WaitVal) {
            if (!need(pidx::CarryCont))
                return Blocked::Input;
            return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
        }
        // Run: the decider is consumed eagerly; when the backedge
        // value is already present a true decider forwards it in the
        // same firing.
        if (!need(pidx::CarryDecider))
            return Blocked::Input;
        if (peekInput(id, pidx::CarryDecider).value != 0 &&
            need(pidx::CarryCont)) {
            return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
        }
        return Blocked::No;
      }
      case NodeKind::Invariant: {
        if (r.fsm == NodeRt::Fsm::Init) {
            if (!need(pidx::InvValue))
                return Blocked::Input;
            return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
        }
        if (!need(pidx::InvDecider))
            return Blocked::Input;
        if (peekInput(id, pidx::InvDecider).value != 0) {
            return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
        }
        return Blocked::No;
      }
      case NodeKind::Merge: {
        if (r.fsm == NodeRt::Fsm::WaitVal) {
            if (!need(r.pendingSide))
                return Blocked::Input;
            return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
        }
        if (!need(pidx::MergeDecider))
            return Blocked::Input;
        int side = peekInput(id, pidx::MergeDecider).value != 0
                       ? pidx::MergeTrue
                       : pidx::MergeFalse;
        const auto &sideOp =
            graph.at(id).inputs[static_cast<size_t>(side)];
        if (sideOp.isWire() && !need(side)) {
            // Consume the decider now, wait for the value.
            return Blocked::No;
        }
        return outSpace(id, 0, 1) ? Blocked::No : Blocked::Space;
      }
      case NodeKind::Dispatch: {
        if (cfg.greedyDispatch) {
            // Unsynchronized: take any available token, preferring
            // continuation, with only local space checks.
            bool c = inputAvail(id, pidx::DispatchCont);
            bool s2 = inputAvail(id, pidx::DispatchSpawn);
            if (!c && !s2)
                return Blocked::Input;
            return outSpace(id, 0, 1) ? Blocked::No
                                      : Blocked::Space;
        }
        return groupChoice[static_cast<size_t>(node.loopId)] ==
                       GroupChoice::None
                   ? Blocked::Input
                   : Blocked::No;
      }
      case NodeKind::Load: {
        if (!need(pidx::LoadAddr))
            return Blocked::Input;
        const auto &refs = prog.inputRefs[static_cast<size_t>(id)];
        const InputRef &ordRef =
            refs.size() > static_cast<size_t>(pidx::LoadOrder)
                ? refs[static_cast<size_t>(pidx::LoadOrder)]
                : InputRef{};
        if (ordRef.wired() && !need(pidx::LoadOrder))
            return Blocked::Input;
        // Need a reservation slot for the returning data (unless
        // nothing consumes it).
        if (!r.outs.empty() &&
            portHasConsumers(id, pidx::LoadDataOut)) {
            const TokenFifo &f =
                r.outs[static_cast<size_t>(pidx::LoadDataOut)];
            if (f.freeSlots() - r.reservedOut < 1)
                return Blocked::Space;
        }
        if (portHasConsumers(id, pidx::LoadDoneOut) &&
            !outSpace(id, pidx::LoadDoneOut, 1)) {
            return Blocked::Space;
        }
        if (!memsys->bankFree(peekInput(id, pidx::LoadAddr).value +
                              node.imm))
            return Blocked::Bank;
        return Blocked::No;
      }
      case NodeKind::Store: {
        if (!need(pidx::StoreAddr) || !need(pidx::StoreData))
            return Blocked::Input;
        const auto &refs = prog.inputRefs[static_cast<size_t>(id)];
        if (refs.size() > static_cast<size_t>(pidx::StoreOrder) &&
            refs[static_cast<size_t>(pidx::StoreOrder)].wired() &&
            !need(pidx::StoreOrder)) {
            return Blocked::Input;
        }
        if (portHasConsumers(id, pidx::StoreDoneOut) &&
            !outSpace(id, pidx::StoreDoneOut, 1)) {
            return Blocked::Space;
        }
        if (!memsys->bankFree(peekInput(id, pidx::StoreAddr).value +
                              node.imm))
            return Blocked::Bank;
        return Blocked::No;
      }
      case NodeKind::Stream: {
        if (r.fsm == NodeRt::Fsm::Init) {
            if (!need(pidx::StreamBegin) || !need(pidx::StreamEnd))
                return Blocked::Input;
            const auto &refs =
                prog.inputRefs[static_cast<size_t>(id)];
            if (refs.size() >
                    static_cast<size_t>(pidx::StreamTrigger) &&
                refs[static_cast<size_t>(pidx::StreamTrigger)]
                    .wired() &&
                !need(pidx::StreamTrigger)) {
                return Blocked::Input;
            }
            Word cur = peekInput(id, pidx::StreamBegin).value;
            Word end = peekInput(id, pidx::StreamEnd).value;
            bool continuing = cur < end;
            if (continuing &&
                !outSpace(id, pidx::StreamIdxOut, 1))
                return Blocked::Space;
            if (!outSpace(id, pidx::StreamCondOut, 1))
                return Blocked::Space;
            return Blocked::No;
        }
        bool continuing = r.streamCur < r.streamEnd;
        if (continuing && !outSpace(id, pidx::StreamIdxOut, 1))
            return Blocked::Space;
        if (!outSpace(id, pidx::StreamCondOut, 1))
            return Blocked::Space;
        return Blocked::No;
      }
    }
    panic("unknown node kind");
}

void
ExecutionState::commitFire(NodeId id)
{
    // A dormant node's blocked verdict is frozen until a wake event
    // clears it, so it can never have been selected to fire.
    ps_assert(dormantClass[static_cast<size_t>(id)] == DormNone,
              "dormant node %d fired without a wake", id);
    const Node &node = graph.at(id);
    NodeRt &r = rt[static_cast<size_t>(id)];

    if (prog.nocNode[static_cast<size_t>(id)]) {
        stats.nocCfFires++;
    } else if (node.kind != NodeKind::Trigger) {
        stats.classFires[static_cast<size_t>(node.peClass())]++;
    }
    stats.nodeFires[static_cast<size_t>(id)]++;
    active = true;
    if (obs)
        obs->onFire(cycle, id);
    if (cfg.trace) {
        std::fprintf(stderr, "[%6lld] fire n%-3d %-9s %s\n",
                     static_cast<long long>(cycle), id,
                     nodeKindName(node.kind), node.name.c_str());
    }

    switch (node.kind) {
      case NodeKind::Trigger: {
        r.triggerFired = true;
        triggersPending--;
        emit(id, 0, Token{node.imm, NoTag});
        break;
      }
      case NodeKind::Const: {
        Token t = consumeInput(id, 0);
        emit(id, 0, Token{node.imm, t.tag});
        break;
      }
      case NodeKind::Arith: {
        int want = sir::numOperands(node.op);
        Token a = consumeInput(id, 0);
        Token b = consumeInput(id, 1);
        Token c = want == 3 ? consumeInput(id, 2) : Token{};
        int32_t tag = combineTags(id, {a.tag, b.tag, c.tag});
        emit(id, 0,
             Token{sir::evalOpcode(node.op, a.value, b.value, c.value),
                   tag});
        break;
      }
      case NodeKind::Steer: {
        Token d = consumeInput(id, pidx::SteerDecider);
        Token v = consumeInput(id, pidx::SteerValue);
        int32_t tag = combineTags(id, {d.tag, v.tag});
        if ((d.value != 0) == node.steerIfTrue) {
            emit(id, 0, Token{v.value, tag});
        } else {
            stats.steerDrops++;
        }
        break;
      }
      case NodeKind::Carry: {
        if (r.fsm == NodeRt::Fsm::Init) {
            Token a = consumeInput(id, pidx::CarryInit);
            r.fsm = NodeRt::Fsm::Run;
            emit(id, 0, a);
        } else if (r.fsm == NodeRt::Fsm::WaitVal) {
            Token b = consumeInput(id, pidx::CarryCont);
            int32_t tag = combineTags(id, {r.latched.tag, b.tag});
            r.fsm = NodeRt::Fsm::Run;
            emit(id, 0, Token{b.value, tag});
        } else {
            Token d = consumeInput(id, pidx::CarryDecider);
            if (d.value == 0) {
                r.fsm = NodeRt::Fsm::Init;
            } else if (inputAvail(id, pidx::CarryCont)) {
                Token b = consumeInput(id, pidx::CarryCont);
                int32_t tag = combineTags(id, {d.tag, b.tag});
                emit(id, 0, Token{b.value, tag});
            } else {
                r.latched = d;
                r.fsm = NodeRt::Fsm::WaitVal;
            }
        }
        break;
      }
      case NodeKind::Invariant: {
        if (r.fsm == NodeRt::Fsm::Init) {
            Token a = consumeInput(id, pidx::InvValue);
            r.latched = a;
            r.fsm = NodeRt::Fsm::Run;
            emit(id, 0, a);
        } else {
            Token d = consumeInput(id, pidx::InvDecider);
            if (d.value != 0) {
                int32_t tag = combineTags(id, {d.tag, r.latched.tag});
                emit(id, 0, Token{r.latched.value, tag});
            } else {
                r.fsm = NodeRt::Fsm::Init;
                r.latched = Token{};
            }
        }
        break;
      }
      case NodeKind::Merge: {
        if (r.fsm == NodeRt::Fsm::WaitVal) {
            Token v = consumeInput(id, r.pendingSide);
            int32_t tag = combineTags(id, {r.latched.tag, v.tag});
            r.fsm = NodeRt::Fsm::Run;
            emit(id, 0, Token{v.value, tag});
            break;
        }
        Token d = consumeInput(id, pidx::MergeDecider);
        int side = d.value != 0 ? pidx::MergeTrue : pidx::MergeFalse;
        const auto &sideOp =
            graph.at(id).inputs[static_cast<size_t>(side)];
        if (sideOp.isWire() && !inputAvail(id, side)) {
            r.latched = d;
            r.pendingSide = side;
            r.fsm = NodeRt::Fsm::WaitVal;
            break;
        }
        Token v = consumeInput(id, side);
        int32_t tag = combineTags(id, {d.tag, v.tag});
        emit(id, 0, Token{v.value, tag});
        break;
      }
      case NodeKind::Dispatch: {
        // Firing consumes the gate's tokens and fills its output:
        // the group must be re-evaluated until the dust settles.
        groupDirtyUntil[static_cast<size_t>(node.loopId)] =
            cycle + 1;
        GroupChoice choice =
            groupChoice[static_cast<size_t>(node.loopId)];
        if (cfg.greedyDispatch) {
            choice = inputAvail(id, pidx::DispatchCont)
                         ? GroupChoice::Cont
                         : GroupChoice::Spawn;
        }
        if (choice == GroupChoice::Cont) {
            Token t = consumeInput(id, pidx::DispatchCont);
            stats.dispatchConts++;
            if (obs)
                obs->onDispatch(cycle, id, false, t.tag);
            emit(id, 0, t);
        } else {
            Token t = consumeInput(id, pidx::DispatchSpawn);
            // All gates in the group fire this cycle and must agree
            // on the new thread's identity; nextThreadTag advances
            // once per group per cycle (see runLoop()).
            t.tag = nextThreadTag;
            stats.dispatchSpawns++;
            if (obs)
                obs->onDispatch(cycle, id, true, t.tag);
            emit(id, 0, t);
        }
        break;
      }
      case NodeKind::Load: {
        Token addr = consumeInput(id, pidx::LoadAddr);
        addr.value += node.imm; // configured base offset
        int32_t tag = addr.tag;
        const auto &refs = prog.inputRefs[static_cast<size_t>(id)];
        if (refs.size() > static_cast<size_t>(pidx::LoadOrder) &&
            refs[static_cast<size_t>(pidx::LoadOrder)].wired()) {
            Token ord = consumeInput(id, pidx::LoadOrder);
            tag = combineTags(id, {tag, ord.tag});
        }
        // The bank port was claimed when the scheduler selected
        // this node (the claim must be visible to later candidates
        // within the same round).
        memsys->issueLoad(id, addr.value, tag, cycle);
        if (portHasConsumers(id, pidx::LoadDataOut))
            r.reservedOut++;
        stats.memLoads++;
        if (obs) {
            obs->onMemAccess(cycle, id, true, addr.value,
                             memsys->bankOf(addr.value));
        }
        emit(id, pidx::LoadDoneOut, Token{1, tag});
        break;
      }
      case NodeKind::Store: {
        Token addr = consumeInput(id, pidx::StoreAddr);
        addr.value += node.imm; // configured base offset
        Token data = consumeInput(id, pidx::StoreData);
        int32_t tag = combineTags(id, {addr.tag, data.tag});
        const auto &refs = prog.inputRefs[static_cast<size_t>(id)];
        if (refs.size() > static_cast<size_t>(pidx::StoreOrder) &&
            refs[static_cast<size_t>(pidx::StoreOrder)].wired()) {
            Token ord = consumeInput(id, pidx::StoreOrder);
            tag = combineTags(id, {tag, ord.tag});
        }
        // Bank port claimed at scheduler selection (see Load).
        memsys->store(addr.value, data.value);
        stats.memStores++;
        if (obs) {
            obs->onMemAccess(cycle, id, false, addr.value,
                             memsys->bankOf(addr.value));
        }
        emit(id, pidx::StoreDoneOut, Token{1, tag});
        break;
      }
      case NodeKind::Stream: {
        if (r.fsm == NodeRt::Fsm::Init) {
            Token begin = consumeInput(id, pidx::StreamBegin);
            Token end = consumeInput(id, pidx::StreamEnd);
            const auto &refs =
                prog.inputRefs[static_cast<size_t>(id)];
            int32_t tag = combineTags(id, {begin.tag, end.tag});
            if (refs.size() >
                    static_cast<size_t>(pidx::StreamTrigger) &&
                refs[static_cast<size_t>(pidx::StreamTrigger)]
                    .wired()) {
                Token trig = consumeInput(id, pidx::StreamTrigger);
                tag = combineTags(id, {tag, trig.tag});
            }
            r.streamCur = begin.value;
            r.streamEnd = end.value;
            r.latched.tag = tag;
            r.fsm = NodeRt::Fsm::Run;
            streamsRunning++;
        }
        int32_t tag = r.latched.tag;
        if (r.streamCur < r.streamEnd) {
            emit(id, pidx::StreamIdxOut, Token{r.streamCur, tag});
            emit(id, pidx::StreamCondOut, Token{1, tag});
            r.streamCur += node.streamStep;
        } else {
            emit(id, pidx::StreamCondOut, Token{0, tag});
            r.fsm = NodeRt::Fsm::Init;
            streamsRunning--;
        }
        break;
      }
    }
}

void
ExecutionState::evalNocNodes(bool pruneLive)
{
    // CF ops in routers are combinational: they observe tokens that
    // became visible this cycle and forward them within the cycle,
    // in dependence (topological) order. Each router op handles at
    // most one token set per cycle (enforced by nocFiredAt: the
    // routine runs both before the PE pass — modeling values that
    // settled through the NoC at the end of the previous cycle —
    // and after it, for same-cycle forwarding of fresh PE outputs).
    if (!readyMode) {
        for (;;) {
            bool any = false;
            for (NodeId id : prog.nocTopo) {
                if (nocFiredAt[static_cast<size_t>(id)] == cycle)
                    continue;
                if (canFire(id) == Blocked::No) {
                    nocFiredAt[static_cast<size_t>(id)] = cycle;
                    commitFire(id);
                    any = true;
                }
            }
            // Sweep to a fixpoint: a router op whose consumer freed
            // its latch later in the same settle can still fire this
            // cycle.
            if (!any)
                break;
        }
        return;
    }

    if (liveNoc.empty())
        return;
    auto topoLess = [this](NodeId a, NodeId b) {
        return prog.topoIndex[static_cast<size_t>(a)] <
               prog.topoIndex[static_cast<size_t>(b)];
    };
    // Firing within a sweep is confluent (ordered dataflow: no two
    // ops contend for the same token or the same buffer slot), so
    // sweeping only woken candidates — in topological order —
    // reaches the same fixpoint as full sweeps.
    inNocEval = true;
    nocSweep.assign(liveNoc.begin(), liveNoc.end());
    std::sort(nocSweep.begin(), nocSweep.end(), topoLess);
    while (!nocSweep.empty()) {
        nocSweepSerial++;
        for (NodeId id : nocSweep) {
            if (nocFiredAt[static_cast<size_t>(id)] == cycle)
                continue;
            if (canFire(id) == Blocked::No) {
                nocFiredAt[static_cast<size_t>(id)] = cycle;
                commitFire(id);
            }
        }
        nocSweep.swap(nocNextSweep);
        nocNextSweep.clear();
        std::sort(nocSweep.begin(), nocSweep.end(), topoLess);
    }
    inNocEval = false;

    if (pruneLive) {
        // End of the cycle's last settle: router ops that neither
        // fired nor were woken this cycle stay blocked until some
        // wake event re-adds them.
        size_t keep = 0;
        for (NodeId id : liveNoc) {
            if (nocFiredAt[static_cast<size_t>(id)] == cycle ||
                wokenAt[static_cast<size_t>(id)] == cycle) {
                liveNoc[keep++] = id;
            } else {
                inLive[static_cast<size_t>(id)] = 0;
            }
        }
        liveNoc.resize(keep);
    }
}

void
ExecutionState::stallCensus()
{
    // Census for the PEs that never fired this cycle. The ready-list
    // scheduler doubles this as the live-set prune: a node stays
    // active while it fired, was woken this cycle (its tokens may
    // still be aging past the born stamp), is bank-blocked, or is
    // fire-ready but share-blocked. Input/space-stalled nodes that
    // nothing touched are frozen — they move to the dormant
    // aggregates and are billed per cycle without re-evaluation.
    if (!readyMode || cfg.trace || obs) {
        // Reference scan (also the trace/observer fallback, so
        // observed runs attribute every stall per node, and both
        // schedulers emit identical stall events). Rebuilds the
        // live state from scratch to keep an observed ReadyList run
        // consistent.
        liveSeq.clear();
        std::fill(inLive.begin(), inLive.end(), 0);
        std::fill(dormantClass.begin(), dormantClass.end(),
                  static_cast<uint8_t>(DormNone));
        dormantInput = dormantSpace = 0;
        for (NodeId id : liveNoc)
            inLive[static_cast<size_t>(id)] = 1;
        for (NodeId id : prog.allSeqNodes) {
            bool retain;
            if (seqFiredAt[static_cast<size_t>(id)] == cycle) {
                retain = true; // may fire again next cycle
            } else {
                Blocked why = canFire(id);
                bool counted = false;
                if (why == Blocked::Input) {
                    const NodeRt &r = rt[static_cast<size_t>(id)];
                    bool pending = false;
                    for (const auto &f : r.ins)
                        pending |= !f.empty();
                    if (pending) {
                        stats.stallNoInput++;
                        counted = true;
                        if (obs) {
                            obs->onStall(
                                cycle, id,
                                trace::StallReason::NoInput);
                        }
                    }
                } else if (why == Blocked::Space) {
                    stats.stallNoSpace++;
                    counted = true;
                    if (obs) {
                        obs->onStall(cycle, id,
                                     trace::StallReason::NoSpace);
                    }
                } else if (why == Blocked::Bank) {
                    stats.bankConflictStalls++;
                    counted = true;
                    if (obs) {
                        obs->onStall(
                            cycle, id,
                            trace::StallReason::BankConflict);
                    }
                }
                if (cfg.trace && why != Blocked::Idle &&
                    why != Blocked::No) {
                    std::fprintf(
                        stderr, "[%6lld] stall n%-3d %-9s %s (%s)\n",
                        static_cast<long long>(cycle), id,
                        nodeKindName(graph.at(id).kind),
                        graph.at(id).name.c_str(),
                        why == Blocked::Input    ? "input"
                        : why == Blocked::Space ? "space"
                                                : "bank");
                }
                retain = counted || why == Blocked::No ||
                         wokenAt[static_cast<size_t>(id)] == cycle;
            }
            if (retain) {
                inLive[static_cast<size_t>(id)] = 1;
                liveSeq.push_back(id);
            }
        }
        return;
    }

    size_t keep = 0;
    for (NodeId id : liveSeq) {
        bool retain;
        if (seqFiredAt[static_cast<size_t>(id)] == cycle) {
            retain = true; // may fire again next cycle
        } else {
            // Reuse the last round's verdict when no wake arrived
            // after that evaluation (a non-fired node's verdict can
            // only change via a wake within the cycle).
            Blocked why =
                (verdictSerial[static_cast<size_t>(id)] >
                     cycleStartSerial &&
                 verdictSerial[static_cast<size_t>(id)] >
                     wakeSerial[static_cast<size_t>(id)])
                    ? lastVerdict[static_cast<size_t>(id)]
                    : canFire(id);
            bool woken = wokenAt[static_cast<size_t>(id)] == cycle;
            // A SyncPlane dispatch gate's verdict flips when its
            // group decides — no wake event — so it never dorms.
            bool pinned =
                !cfg.greedyDispatch &&
                graph.at(id).kind == NodeKind::Dispatch;
            if (why == Blocked::Input) {
                const NodeRt &r = rt[static_cast<size_t>(id)];
                bool pending = false;
                for (const auto &f : r.ins)
                    pending |= !f.empty();
                if (pending) {
                    if (woken || pinned) {
                        stats.stallNoInput++;
                        retain = true;
                    } else {
                        dormantClass[static_cast<size_t>(id)] =
                            DormInput;
                        dormantInput++;
                        retain = false;
                    }
                } else {
                    retain = woken || pinned;
                }
            } else if (why == Blocked::Space) {
                if (woken) {
                    stats.stallNoSpace++;
                    retain = true;
                } else {
                    dormantClass[static_cast<size_t>(id)] =
                        DormSpace;
                    dormantSpace++;
                    retain = false;
                }
            } else if (why == Blocked::Bank) {
                // Bank verdicts change with other nodes' claims;
                // stay active so next cycle's round 1 re-arbitrates.
                stats.bankConflictStalls++;
                retain = true;
            } else if (why == Blocked::No) {
                retain = true; // fire-ready but share-blocked
            } else {
                retain = woken; // Idle
            }
        }
        if (retain) {
            liveSeq[keep++] = id;
        } else {
            inLive[static_cast<size_t>(id)] = 0;
        }
    }
    liveSeq.resize(keep);
    stats.stallNoInput += dormantInput;
    stats.stallNoSpace += dormantSpace;
}

bool
ExecutionState::quiescentSlow() const
{
    if (!memsys->idle())
        return false;
    for (int c : chanCount) {
        if (c > 0)
            return false;
    }
    for (NodeId id = 0; id < graph.size(); id++) {
        const NodeRt &r = rt[static_cast<size_t>(id)];
        const Node &node = graph.at(id);
        if (node.kind == NodeKind::Trigger && !r.triggerFired)
            return false;
        if (node.kind == NodeKind::Stream &&
            r.fsm != NodeRt::Fsm::Init)
            return false;
        for (const auto &f : r.ins) {
            if (!f.empty())
                return false;
        }
        for (const auto &f : r.outs) {
            if (!f.empty())
                return false;
        }
    }
    return true;
}

std::string
ExecutionState::diagnose() const
{
    std::ostringstream out;
    int listed = 0;
    for (NodeId id = 0; id < graph.size() && listed < 40; id++) {
        const NodeRt &r = rt[static_cast<size_t>(id)];
        const Node &node = graph.at(id);
        bool interesting = r.fsm != NodeRt::Fsm::Init;
        for (const auto &f : r.ins)
            interesting |= !f.empty();
        for (const auto &f : r.outs)
            interesting |= !f.empty();
        if (!interesting)
            continue;
        listed++;
        out << "  node " << id << " (" << nodeKindName(node.kind)
            << " " << node.name << ") ins=[";
        for (const auto &f : r.ins)
            out << f.size() << " ";
        out << "] outs=[";
        for (const auto &f : r.outs)
            out << f.size() << " ";
        out << "] fsm=" << static_cast<int>(r.fsm) << "\n";
    }
    for (size_t ch = 0; ch < chanCount.size(); ch++) {
        if (chanCount[ch] == 0)
            continue;
        const Program::Channel &cc = prog.channels[ch];
        out << "  channel " << ch << " (node " << cc.src << " -> "
            << cc.dst << " in " << cc.dstIn << ") holds "
            << chanCount[ch] << " token(s)\n";
    }
    return out.str();
}

SimResult
ExecutionState::runLoop()
{
    SimResult result;
    fireList.reserve(static_cast<size_t>(graph.size()));

    for (cycle = 0; cycle < cfg.maxCycles; cycle++) {
        active = false;
        memsys->beginCycle();
        shareUsed.assign(shareUsed.size(), false);

        drainOutputBuffers();
        handleMemCompletions();
        if (prog.hasChannels)
            advanceChannels();

        // Router CF settles over tokens left from the previous
        // cycle before the PEs sample their inputs.
        bornStamp = cycle - 1;
        evalNocNodes(false);

        // Sequential (PE) firing: iterate to a fixpoint within the
        // cycle. A PE only consumes tokens born in earlier cycles,
        // but a multicast head retired early in the cycle exposes
        // the next (older) token to consumers later in the same
        // cycle — the combinational acknowledge path. Each PE fires
        // at most once per cycle.
        bornStamp = cycle;
        inPeFixpoint = true;
        cycleStartSerial = roundSerial;
        if (readyMode) {
            curRound.assign(liveSeq.begin(), liveSeq.end());
        }
        for (;;) {
            decideDispatchGroups();
            roundSerial++;
            if (readyMode) {
                for (NodeId id : curRound)
                    inRoundAt[static_cast<size_t>(id)] =
                        roundSerial;
                auto addCand = [&](NodeId id) {
                    if (inRoundAt[static_cast<size_t>(id)] !=
                        roundSerial) {
                        inRoundAt[static_cast<size_t>(id)] =
                            roundSerial;
                        curRound.push_back(id);
                    }
                };
                // A SyncPlane decision fires every gate of the
                // group, woken or not; share-group residency and
                // fairness are evaluated (and billed) every round.
                if (!cfg.greedyDispatch) {
                    for (int l = 0; l < graph.numLoops; l++) {
                        if (groupChoice[static_cast<size_t>(l)] ==
                            GroupChoice::None)
                            continue;
                        for (NodeId d :
                             prog.dispatchGroups[static_cast<size_t>(
                                 l)])
                            addCand(d);
                    }
                }
                for (const auto &group : cfg.shareGroups) {
                    for (int m : group)
                        addCand(m);
                }
                // Ascending id order matches the reference scan.
                std::sort(curRound.begin(), curRound.end());
            }
            const std::vector<NodeId> &cands =
                readyMode ? curRound : prog.allSeqNodes;
            fireList.clear();
            for (NodeId id : cands) {
                if (prog.nocNode[static_cast<size_t>(id)] ||
                    seqFiredAt[static_cast<size_t>(id)] == cycle) {
                    continue;
                }
                int sg = prog.shareGroupOf[static_cast<size_t>(id)];
                if (sg >= 0) {
                    if (shareUsed[static_cast<size_t>(sg)]) {
                        stats.shareConflicts++;
                        continue;
                    }
                    // Fairness: the current resident yields when a
                    // housemate is also ready to fire this cycle.
                    if (shareLast[static_cast<size_t>(sg)] == id) {
                        bool housemateReady = false;
                        for (int other :
                             cfg.shareGroups[static_cast<size_t>(
                                 sg)]) {
                            if (other == id ||
                                seqFiredAt[static_cast<size_t>(
                                    other)] == cycle) {
                                continue;
                            }
                            if (canFire(other) == Blocked::No) {
                                housemateReady = true;
                                break;
                            }
                        }
                        if (housemateReady) {
                            stats.shareConflicts++;
                            continue;
                        }
                    }
                }
                Blocked why = canFire(id);
                if (readyMode) {
                    lastVerdict[static_cast<size_t>(id)] = why;
                    verdictSerial[static_cast<size_t>(id)] =
                        roundSerial;
                }
                if (why == Blocked::No) {
                    fireList.push_back(id);
                    seqFiredAt[static_cast<size_t>(id)] = cycle;
                    if (sg >= 0) {
                        shareUsed[static_cast<size_t>(sg)] = true;
                        if (shareLast[static_cast<size_t>(sg)] !=
                            id) {
                            stats.muxSwitches++;
                            shareLast[static_cast<size_t>(sg)] =
                                id;
                        }
                    }
                    const Node &node = graph.at(id);
                    if (node.kind == NodeKind::Load) {
                        memsys->claimBank(
                            peekInput(id, pidx::LoadAddr).value +
                            node.imm);
                    } else if (node.kind == NodeKind::Store) {
                        memsys->claimBank(
                            peekInput(id, pidx::StoreAddr).value +
                            node.imm);
                    }
                }
            }
            if (fireList.empty())
                break;
            bool spawned = false;
            for (NodeId id : fireList) {
                if (graph.at(id).kind == NodeKind::Dispatch &&
                    groupChoice[static_cast<size_t>(
                        graph.at(id).loopId)] ==
                        GroupChoice::Spawn) {
                    spawned = true;
                }
                commitFire(id);
            }
            if (spawned)
                nextThreadTag++;
            if (readyMode) {
                curRound.swap(nextRound);
                nextRound.clear();
            }
        }
        inPeFixpoint = false;
        nextRound.clear();

        stallCensus();

        // Pass 3: combinational CF-in-NoC evaluation.
        evalNocNodes(true);

        if (!failure.empty()) {
            result.stats = stats;
            result.stats.cycles = cycle + 1;
            result.deadlocked = true;
            result.diagnostic = failure;
            return result;
        }

        if (memsys->idle() && tokensInFlight == 0 &&
            triggersPending == 0 && streamsRunning == 0) {
            ps_assert(quiescentSlow(),
                      "quiescence counters drifted from fabric "
                      "state at cycle %lld",
                      static_cast<long long>(cycle));
            stats.cycles = cycle + 1;
            result.stats = stats;
            // A carry/invariant left mid-loop with no tokens in
            // flight means the graph leaked or starved tokens — a
            // compiler or simulator bug worth surfacing.
            for (NodeId id = 0; id < graph.size(); id++) {
                const Node &node = graph.at(id);
                if ((node.kind == NodeKind::Carry ||
                     node.kind == NodeKind::Invariant) &&
                    rt[static_cast<size_t>(id)].fsm !=
                        NodeRt::Fsm::Init) {
                    result.deadlocked = true;
                    result.diagnostic = csprintf(
                        "token leak: node %d (%s %s) finished in "
                        "run state",
                        id, nodeKindName(node.kind),
                        node.name.c_str());
                    break;
                }
            }
            return result;
        }

        if (!active && memsys->idle()) {
            ps_assert(!quiescentSlow(),
                      "quiescence counters missed an empty fabric "
                      "at cycle %lld",
                      static_cast<long long>(cycle));
            stats.cycles = cycle + 1;
            result.stats = stats;
            result.deadlocked = true;
            result.diagnostic =
                csprintf("deadlock at cycle %lld:\n",
                         static_cast<long long>(cycle)) +
                diagnose();
            return result;
        }
    }

    stats.cycles = cfg.maxCycles;
    result.stats = stats;
    result.deadlocked = true;
    result.watchdogExpired = true;
    result.diagnostic = "watchdog: maxCycles exceeded\n" + diagnose();
    return result;
}

} // namespace pipestitch::sim
