#include "sim/parallel.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "base/logging.hh"
#include "runner/pool.hh"

namespace pipestitch::sim {

using dfg::Node;
using dfg::NodeId;
using dfg::NodeKind;
namespace pidx = dfg::port_idx;

namespace {

constexpr int64_t kAvailAlways = INT64_MIN; ///< immediate operand
constexpr int64_t kAvailNever = INT64_MAX;  ///< empty or unwired

// GroupChoice numbering (matches ExecutionState::GroupChoice).
constexpr uint8_t GcNone = 0;
constexpr uint8_t GcCont = 1;
constexpr uint8_t GcSpawn = 2;

// NodeRt::Fsm numbering (diagnose() prints the raw value).
constexpr uint8_t FsmInit = 0;
constexpr uint8_t FsmRun = 1;
constexpr uint8_t FsmWaitVal = 2;

inline void
setBit(std::vector<uint64_t> &bits, int i)
{
    bits[static_cast<size_t>(i >> 6)] |= uint64_t{1} << (i & 63);
}

} // namespace

bool
parallelSupported(const Program &prog)
{
    // Source buffering multicasts through producer-output cursors
    // (a different token-plumbing model) and time-multiplexed PEs
    // serialize arbitrarily across the fabric; both stay on the
    // ReadyList oracle.
    return !prog.sourceMode && prog.cfg.shareGroups.empty();
}

ParallelEngine::ParallelEngine(std::shared_ptr<const Program> program,
                               int jobs, int threads)
    : progHold(std::move(program)), prog(*progHold)
{
    ps_assert(parallelSupported(prog),
              "ParallelEngine over an unsupported Program");
    plan = partitionRegions(prog, std::max(1, jobs));
    PartitionVerdict verdict = verifyPartition(prog, plan);
    ps_assert(verdict.ok, "region partition violates engine "
                          "invariants:\n%s",
              verdict.diagnostic.c_str());
    if (threads > 0) {
        physThreads = std::min(threads, plan.count);
    } else {
        physThreads = std::min(plan.count, runner::defaultJobs());
    }
    physThreads = std::max(1, physThreads);
    if (physThreads > 1)
        pool = std::make_unique<runner::ThreadPool>(physThreads);
    buildTables();
}

ParallelEngine::~ParallelEngine() = default;

// ---------------------------------------------------------------------
// Build: flatten the Program into SoA tables
// ---------------------------------------------------------------------

void
ParallelEngine::buildTables()
{
    const dfg::Graph &g = prog.graph();
    n = g.size();
    depth = prog.cfg.bufferDepth;
    numLoops = g.numLoops;
    memBanks = prog.cfg.memBanks;
    memLatency = prog.cfg.memLatency;
    memBypass = prog.cfg.memBypass;
    greedyDispatch = prog.cfg.greedyDispatch;
    checkThreadOrder = prog.cfg.checkThreadOrder;

    kindA.resize(static_cast<size_t>(n));
    opcA.resize(static_cast<size_t>(n));
    wantA.resize(static_cast<size_t>(n));
    immA.resize(static_cast<size_t>(n));
    steerTrueA.resize(static_cast<size_t>(n));
    streamStepA.resize(static_cast<size_t>(n));
    loopIdA.resize(static_cast<size_t>(n));
    peClassA.resize(static_cast<size_t>(n));
    isMemA.resize(static_cast<size_t>(n));
    nocA.resize(static_cast<size_t>(n));
    hasOutBufA.resize(static_cast<size_t>(n));
    insBase.assign(static_cast<size_t>(n) + 1, 0);
    outsBase.assign(static_cast<size_t>(n) + 1, 0);
    for (NodeId id = 0; id < n; id++) {
        const Node &node = g.at(id);
        const size_t i = static_cast<size_t>(id);
        kindA[i] = static_cast<uint8_t>(node.kind);
        opcA[i] = node.op;
        wantA[i] = static_cast<uint8_t>(
            node.kind == NodeKind::Arith ? sir::numOperands(node.op)
                                         : 0);
        immA[i] = node.imm;
        steerTrueA[i] = node.steerIfTrue ? 1 : 0;
        streamStepA[i] = node.streamStep;
        loopIdA[i] = node.loopId;
        peClassA[i] = static_cast<uint8_t>(node.peClass());
        isMemA[i] = node.isMemory() ? 1 : 0;
        nocA[i] = prog.nocNode[i];
        const Program::NodePlan &p = prog.plan[i];
        // Destination buffering gives every node input FIFOs of the
        // uniform configured depth; only CF/memory PEs carry output
        // FIFOs (same depth). The SoA slabs assume that layout.
        ps_assert(node.numInputs() == 0 || p.insDepth == depth,
                  "non-uniform input depth on node %d", id);
        ps_assert(p.outsDepth == 0 || p.outsDepth == depth,
                  "non-uniform output depth on node %d", id);
        hasOutBufA[i] = p.outsDepth > 0 ? 1 : 0;
        insBase[i + 1] = insBase[i] + node.numInputs();
        outsBase[i + 1] =
            outsBase[i] + (p.outsDepth > 0 ? node.numOutputs() : 0);
    }

    const int P = insBase[static_cast<size_t>(n)];
    portMode.assign(static_cast<size_t>(P), PortUnwired);
    portImmVal.assign(static_cast<size_t>(P), 0);
    portProd.assign(static_cast<size_t>(P), -1);
    portNocOwner.assign(static_cast<size_t>(P), 0);
    for (NodeId id = 0; id < n; id++) {
        const auto &refs = prog.inputRefs[static_cast<size_t>(id)];
        for (size_t in = 0; in < refs.size(); in++) {
            int ip = insBase[static_cast<size_t>(id)] +
                     static_cast<int>(in);
            const size_t pi = static_cast<size_t>(ip);
            portNocOwner[pi] = nocA[static_cast<size_t>(id)];
            if (refs[in].isImm) {
                portMode[pi] = PortImm;
                portImmVal[pi] = refs[in].imm;
            } else if (refs[in].wired()) {
                portMode[pi] = PortWired;
                portProd[pi] = refs[in].prod;
            }
        }
    }

    // Consumer edges, flat and in the Program's CSR order (so
    // prog.consBase indexes these arrays directly).
    const int E = prog.consBase.back();
    edgeNode.resize(static_cast<size_t>(E));
    edgeIp.resize(static_cast<size_t>(E));
    edgeChan.assign(static_cast<size_t>(E), -1);
    edgeShed.resize(static_cast<size_t>(E));
    {
        size_t at = 0;
        for (NodeId id = 0; id < n; id++) {
            for (int port = 0; port < g.at(id).numOutputs();
                 port++) {
                for (const auto &c : g.consumersOf({id, port})) {
                    edgeNode[at] = c.node;
                    edgeIp[at] =
                        insBase[static_cast<size_t>(c.node)] +
                        c.inputIndex;
                    if (prog.hasChannels) {
                        edgeChan[at] =
                            prog.chanIdOf[static_cast<size_t>(
                                c.node)][static_cast<size_t>(
                                c.inputIndex)];
                    }
                    edgeShed[at] =
                        prog.threadRegionOf[static_cast<size_t>(
                            id)] !=
                                prog.threadRegionOf
                                    [static_cast<size_t>(c.node)]
                            ? 1
                            : 0;
                    at++;
                }
            }
        }
        ps_assert(at == static_cast<size_t>(E),
                  "edge table drifted from CSR layout");
    }

    const int C = static_cast<int>(prog.channels.size());
    chanBase.assign(static_cast<size_t>(C) + 1, 0);
    chCapA.resize(static_cast<size_t>(C));
    chLatA.resize(static_cast<size_t>(C));
    chSrcNode.resize(static_cast<size_t>(C));
    chDstNode.resize(static_cast<size_t>(C));
    chDstIp.resize(static_cast<size_t>(C));
    for (int ch = 0; ch < C; ch++) {
        const Program::Channel &cc =
            prog.channels[static_cast<size_t>(ch)];
        chanBase[static_cast<size_t>(ch) + 1] =
            chanBase[static_cast<size_t>(ch)] + cc.capacity;
        chCapA[static_cast<size_t>(ch)] = cc.capacity;
        chLatA[static_cast<size_t>(ch)] = cc.latency;
        chSrcNode[static_cast<size_t>(ch)] = cc.src;
        chDstNode[static_cast<size_t>(ch)] = cc.dst;
        chDstIp[static_cast<size_t>(ch)] =
            insBase[static_cast<size_t>(cc.dst)] + cc.dstIn;
        if (plan.regionOf[static_cast<size_t>(cc.src)] !=
            plan.regionOf[static_cast<size_t>(cc.dst)]) {
            cutChanList.push_back(ch);
        }
    }

    // Region-local PE indexing: regSeq[r] ascending, so ascending
    // local index == ascending node id within a region, and the
    // bitmap worklists are private per-region allocations.
    regSeq.assign(static_cast<size_t>(plan.count), {});
    regionOfA.assign(static_cast<size_t>(n), 0);
    localIdx.assign(static_cast<size_t>(n), -1);
    for (int r = 0; r < plan.count; r++) {
        for (NodeId id : plan.nodes[static_cast<size_t>(r)]) {
            regionOfA[static_cast<size_t>(id)] = r;
            if (nocA[static_cast<size_t>(id)])
                continue;
            localIdx[static_cast<size_t>(id)] = static_cast<int>(
                regSeq[static_cast<size_t>(r)].size());
            regSeq[static_cast<size_t>(r)].push_back(id);
        }
    }
    nocWords =
        (static_cast<int>(prog.nocTopo.size()) + 63) / 64;

    regs.assign(static_cast<size_t>(plan.count), Region{});
    for (int r = 0; r < plan.count; r++) {
        Region &R = regs[static_cast<size_t>(r)];
        size_t words =
            (regSeq[static_cast<size_t>(r)].size() + 63) / 64;
        R.liveBits.assign(words, 0);
        R.roundBits.assign(words, 0);
        R.nextBits.assign(words, 0);
    }
    liveNocBits.assign(static_cast<size_t>(nocWords), 0);
    nocSweepBits.assign(static_cast<size_t>(nocWords), 0);
    nocNextBits.assign(static_cast<size_t>(nocWords), 0);
    drainBits.assign((static_cast<size_t>(n) + 63) / 64, 0);

    // Per-run slabs sized once here, zeroed by resetRun().
    const size_t PD = static_cast<size_t>(P) *
                      static_cast<size_t>(depth);
    insVal.resize(PD);
    insTag.resize(PD);
    insBorn.resize(PD);
    insHeadA.resize(static_cast<size_t>(P));
    insCount.resize(static_cast<size_t>(P));
    insAvailFrom.resize(static_cast<size_t>(P));
    const size_t OD =
        static_cast<size_t>(outsBase[static_cast<size_t>(n)]) *
        static_cast<size_t>(depth);
    outVal.resize(OD);
    outTag.resize(OD);
    outHeadA.resize(static_cast<size_t>(outsBase[
        static_cast<size_t>(n)]));
    outCount.resize(outHeadA.size());
    insTokens.resize(static_cast<size_t>(n));
    reservedOutA.resize(static_cast<size_t>(n));
    fsmA.resize(static_cast<size_t>(n));
    pendingSideA.resize(static_cast<size_t>(n));
    latchValA.resize(static_cast<size_t>(n));
    latchTagA.resize(static_cast<size_t>(n));
    streamCurA.resize(static_cast<size_t>(n));
    streamEndA.resize(static_cast<size_t>(n));
    trigFiredA.resize(static_cast<size_t>(n));
    groupChoiceA.resize(static_cast<size_t>(numLoops));
    groupDirtyUntilA.resize(static_cast<size_t>(numLoops));
    groupPendingA.resize(static_cast<size_t>(numLoops));
    groupFiredRound.resize(static_cast<size_t>(numLoops));
    predB.resize(static_cast<size_t>(n));
    gateLoops.clear();
    for (int l = 0; l < numLoops; l++) {
        if (!prog.dispatchGroups[static_cast<size_t>(l)].empty())
            gateLoops.push_back(l);
    }
    lastVerdictA.resize(static_cast<size_t>(n));
    freshB.resize(static_cast<size_t>(n));
    wokenB.resize(static_cast<size_t>(n));
    firedB.resize(static_cast<size_t>(n));
    nocFiredB.resize(static_cast<size_t>(n));
    dormantClassA.resize(static_cast<size_t>(n));
    chVal.resize(static_cast<size_t>(chanBase.back()));
    chTag.resize(static_cast<size_t>(chanBase.back()));
    chReady.resize(static_cast<size_t>(chanBase.back()));
    chHead.resize(static_cast<size_t>(C));
    chCount.resize(static_cast<size_t>(C));
    bankClaimedAt.resize(static_cast<size_t>(memBanks));
    pendNode.resize(64);
    pendVal.resize(64);
    pendTag.resize(64);
    pendReady.resize(64);
    fireList.reserve(static_cast<size_t>(n));
}

void
ParallelEngine::resetRun()
{
    const int P = insBase[static_cast<size_t>(n)];
    std::fill(insHeadA.begin(), insHeadA.end(), 0);
    std::fill(insCount.begin(), insCount.end(), 0);
    for (int ip = 0; ip < P; ip++) {
        insAvailFrom[static_cast<size_t>(ip)] =
            portMode[static_cast<size_t>(ip)] == PortImm
                ? kAvailAlways
                : kAvailNever;
    }
    std::fill(outHeadA.begin(), outHeadA.end(), 0);
    std::fill(outCount.begin(), outCount.end(), 0);
    std::fill(insTokens.begin(), insTokens.end(), 0);
    std::fill(reservedOutA.begin(), reservedOutA.end(), 0);
    std::fill(fsmA.begin(), fsmA.end(), FsmInit);
    std::fill(pendingSideA.begin(), pendingSideA.end(), 0);
    std::fill(latchValA.begin(), latchValA.end(), 0);
    std::fill(latchTagA.begin(), latchTagA.end(), NoTag);
    std::fill(streamCurA.begin(), streamCurA.end(), 0);
    std::fill(streamEndA.begin(), streamEndA.end(), 0);
    std::fill(trigFiredA.begin(), trigFiredA.end(), 0);
    std::fill(groupChoiceA.begin(), groupChoiceA.end(), GcNone);
    // Dirty through cycle 1 so the initial trigger wave is seen.
    std::fill(groupDirtyUntilA.begin(), groupDirtyUntilA.end(), 1);
    std::fill(groupPendingA.begin(), groupPendingA.end(), 0);
    std::fill(groupFiredRound.begin(), groupFiredRound.end(), 0);
    std::fill(predB.begin(), predB.end(), 0);
    std::fill(lastVerdictA.begin(), lastVerdictA.end(), VIdle);
    std::fill(freshB.begin(), freshB.end(), 0);
    std::fill(wokenB.begin(), wokenB.end(), 0);
    std::fill(firedB.begin(), firedB.end(), 0);
    std::fill(nocFiredB.begin(), nocFiredB.end(), 0);
    std::fill(dormantClassA.begin(), dormantClassA.end(),
              static_cast<uint8_t>(DormNone));
    inPeFixpoint = false;
    inNocEval = false;

    // Everything starts live; the first census prunes inert nodes.
    for (int r = 0; r < plan.count; r++) {
        Region &R = regs[static_cast<size_t>(r)];
        size_t m = regSeq[static_cast<size_t>(r)].size();
        std::fill(R.liveBits.begin(), R.liveBits.end(), ~uint64_t{0});
        if (!R.liveBits.empty() && (m & 63) != 0)
            R.liveBits.back() = (uint64_t{1} << (m & 63)) - 1;
        std::fill(R.roundBits.begin(), R.roundBits.end(), 0);
        std::fill(R.nextBits.begin(), R.nextBits.end(), 0);
        R.candFire.clear();
        R.candMem.clear();
        R.candAddr.clear();
        R.dormantInput = R.dormantSpace = 0;
        R.censusNoInput = R.censusNoSpace = R.censusBank = 0;
    }
    {
        size_t m = prog.nocTopo.size();
        std::fill(liveNocBits.begin(), liveNocBits.end(),
                  ~uint64_t{0});
        if (!liveNocBits.empty() && (m & 63) != 0)
            liveNocBits.back() = (uint64_t{1} << (m & 63)) - 1;
    }
    std::fill(nocSweepBits.begin(), nocSweepBits.end(), 0);
    std::fill(nocNextBits.begin(), nocNextBits.end(), 0);
    std::fill(drainBits.begin(), drainBits.end(), 0);
    std::fill(chHead.begin(), chHead.end(), 0);
    std::fill(chCount.begin(), chCount.end(), 0);
    std::fill(bankClaimedAt.begin(), bankClaimedAt.end(), -1);
    pendHead = 0;
    pendCnt = 0;
    fireList.clear();

    tokensInFlight = 0;
    triggersPending = prog.triggersTotal;
    streamsRunning = 0;
    nextThreadTag = 0;
    cycle = 0;
    bornStamp = 0;
    lastSyncPlane = -1;
    activeFlag = false;
    failure.clear();

    stats = SimStats{};
    stats.nodeFires.assign(static_cast<size_t>(n), 0);
    stats.portReads.resize(static_cast<size_t>(n));
    for (NodeId id = 0; id < n; id++) {
        stats.portReads[static_cast<size_t>(id)].assign(
            static_cast<size_t>(insBase[static_cast<size_t>(id) + 1] -
                                insBase[static_cast<size_t>(id)]),
            0);
    }
    portReadsFlat.assign(
        static_cast<size_t>(insBase[static_cast<size_t>(n)]), 0);
}

/** Scatter the flat per-port read counters (kept hot as one slab,
 *  indexed by insBase) into the jagged SimStats layout. */
void
ParallelEngine::flushPortReads()
{
    for (NodeId id = 0; id < n; id++) {
        const size_t i = static_cast<size_t>(id);
        auto &row = stats.portReads[i];
        const int base = insBase[i];
        for (size_t in = 0; in < row.size(); in++)
            row[in] = portReadsFlat[static_cast<size_t>(base) + in];
    }
}

// ---------------------------------------------------------------------
// Hot helpers
// ---------------------------------------------------------------------

inline bool
ParallelEngine::avail(int ip) const
{
    return insAvailFrom[static_cast<size_t>(ip)] <= cycle;
}

inline ParallelEngine::Tok
ParallelEngine::peekIn(NodeId id, int in) const
{
    int ip = insBase[static_cast<size_t>(id)] + in;
    if (portMode[static_cast<size_t>(ip)] == PortImm)
        return Tok{portImmVal[static_cast<size_t>(ip)], NoTag};
    size_t slot = static_cast<size_t>(ip) *
                      static_cast<size_t>(depth) +
                  static_cast<size_t>(
                      insHeadA[static_cast<size_t>(ip)]);
    return Tok{insVal[slot], insTag[slot]};
}

inline bool
ParallelEngine::pushIn(int ip, Word value, int32_t tag, int64_t born)
{
    const size_t pi = static_cast<size_t>(ip);
    int c = insCount[pi];
    int pos = insHeadA[pi] + c;
    if (pos >= depth)
        pos -= depth;
    size_t slot = pi * static_cast<size_t>(depth) +
                  static_cast<size_t>(pos);
    insVal[slot] = value;
    insTag[slot] = tag;
    insBorn[slot] = born;
    insCount[pi] = c + 1;
    if (c == 0) {
        // New head: a PE samples it the cycle after its born stamp;
        // router CF consumes it immediately.
        insAvailFrom[pi] = portNocOwner[pi] ? 0 : born + 1;
        return true;
    }
    return false;
}

ParallelEngine::Tok
ParallelEngine::consumeIn(NodeId id, int in)
{
    int ip = insBase[static_cast<size_t>(id)] + in;
    const size_t pi = static_cast<size_t>(ip);
    if (portMode[pi] == PortImm)
        return Tok{portImmVal[pi], NoTag};
    int h = insHeadA[pi];
    size_t slot =
        pi * static_cast<size_t>(depth) + static_cast<size_t>(h);
    Tok t{insVal[slot], insTag[slot]};
    h++;
    if (h >= depth)
        h = 0;
    insHeadA[pi] = h;
    int c = --insCount[pi];
    if (c == 0) {
        insAvailFrom[pi] = kAvailNever;
    } else if (portNocOwner[pi]) {
        insAvailFrom[pi] = 0;
    } else {
        insAvailFrom[pi] =
            insBorn[pi * static_cast<size_t>(depth) +
                    static_cast<size_t>(h)] +
            1;
    }
    insTokens[static_cast<size_t>(id)]--;
    tokensInFlight--;
    stats.bufferReads++;
    // The producer port delivering into this fifo has space now.
    wakeSpace(portProd[pi]);
    portReadsFlat[pi]++;
    activeFlag = true;
    return t;
}

inline bool
ParallelEngine::consumersAccept(NodeId id, int port) const
{
    int p = prog.portBase[static_cast<size_t>(id)] + port;
    int e1 = prog.consBase[static_cast<size_t>(p) + 1];
    for (int e = prog.consBase[static_cast<size_t>(p)]; e < e1;
         e++) {
        int ch = edgeChan[static_cast<size_t>(e)];
        if (ch >= 0) {
            // Channel edge: the producer backpressures on the
            // inter-tile channel, not the far-side buffer.
            if (chCount[static_cast<size_t>(ch)] >=
                chCapA[static_cast<size_t>(ch)])
                return false;
            continue;
        }
        if (insCount[static_cast<size_t>(
                edgeIp[static_cast<size_t>(e)])] >= depth)
            return false;
    }
    return true;
}

inline bool
ParallelEngine::outSpace(NodeId id, int port, int need) const
{
    int p = prog.portBase[static_cast<size_t>(id)] + port;
    if (prog.consBase[static_cast<size_t>(p) + 1] ==
        prog.consBase[static_cast<size_t>(p)])
        return true; // nothing to emit
    if (hasOutBufA[static_cast<size_t>(id)]) {
        int op = outsBase[static_cast<size_t>(id)] + port;
        int reserved =
            port == 0 ? reservedOutA[static_cast<size_t>(id)] : 0;
        return depth - outCount[static_cast<size_t>(op)] -
                   reserved >=
               need;
    }
    // No output buffer: multicast delivery requires space at every
    // consumer.
    return consumersAccept(id, port);
}

inline void
ParallelEngine::deliver(NodeId from, int port, Word value,
                        int32_t tag)
{
    int p = prog.portBase[static_cast<size_t>(from)] + port;
    int e1 = prog.consBase[static_cast<size_t>(p) + 1];
    for (int e = prog.consBase[static_cast<size_t>(p)]; e < e1;
         e++) {
        const size_t ei = static_cast<size_t>(e);
        int32_t t = edgeShed[ei] ? NoTag : tag;
        int ch = edgeChan[ei];
        if (ch >= 0) {
            // Token enters the inter-tile channel and matures
            // `latency` cycles later; the consumer is not woken yet.
            const size_t ci = static_cast<size_t>(ch);
            ps_assert(chCount[ci] < chCapA[ci],
                      "delivery into full channel (node %d)",
                      edgeNode[ei]);
            int pos = chHead[ci] + chCount[ci];
            if (pos >= chCapA[ci])
                pos -= chCapA[ci];
            size_t slot = static_cast<size_t>(chanBase[ci] + pos);
            chVal[slot] = value;
            chTag[slot] = t;
            chReady[slot] = cycle + chLatA[ci];
            chCount[ci]++;
            tokensInFlight++;
            stats.bufferWrites++;
            stats.nocTraversals++;
            stats.interTileTokens++;
            continue;
        }
        int ip = edgeIp[ei];
        ps_assert(insCount[static_cast<size_t>(ip)] < depth,
                  "delivery into full buffer (node %d)",
                  edgeNode[ei]);
        bool head = pushIn(ip, value, t, bornStamp);
        insTokens[static_cast<size_t>(edgeNode[ei])]++;
        tokensInFlight++;
        stats.bufferWrites++;
        stats.nocTraversals++;
        // A non-head push leaves the consumer's avail state (and
        // hence every verdict in the fabric) untouched until a
        // consume moves the head, so a PE consumer needs no wake:
        // retained-woken and dormant nodes bill the same stall
        // counters cycle for cycle. NoC latches always wake — the
        // settle-sweep prune keys off wokenAt.
        if (head || nocA[static_cast<size_t>(edgeNode[ei])])
            wakeDeliver(edgeNode[ei]);
    }
    activeFlag = true;
}

void
ParallelEngine::emit(NodeId id, int port, Word value, int32_t tag)
{
    int p = prog.portBase[static_cast<size_t>(id)] + port;
    if (prog.consBase[static_cast<size_t>(p) + 1] ==
        prog.consBase[static_cast<size_t>(p)])
        return;
    if (nocA[static_cast<size_t>(id)] ||
        !hasOutBufA[static_cast<size_t>(id)]) {
        deliver(id, port, value, tag);
        return;
    }
    // Output-buffered PE: bypass straight to consumers when the
    // buffer is empty and downstream has room (Sec. 4.7).
    bool canBypass = !isMemA[static_cast<size_t>(id)] || memBypass;
    int op = outsBase[static_cast<size_t>(id)] + port;
    const size_t oi = static_cast<size_t>(op);
    if (canBypass && outCount[oi] == 0 && consumersAccept(id, port)) {
        deliver(id, port, value, tag);
        return;
    }
    ps_assert(outCount[oi] < depth, "emit into full output buffer");
    int pos = outHeadA[oi] + outCount[oi];
    if (pos >= depth)
        pos -= depth;
    size_t slot = oi * static_cast<size_t>(depth) +
                  static_cast<size_t>(pos);
    outVal[slot] = value;
    outTag[slot] = tag;
    outCount[oi]++;
    tokensInFlight++;
    stats.bufferWrites++;
    activeFlag = true;
    setBit(drainBits, id);
}

int32_t
ParallelEngine::combine2(NodeId id, int32_t a, int32_t b)
{
    if (a == NoTag)
        return b;
    if (b == NoTag)
        return a;
    if (a != b && checkThreadOrder && failure.empty()) {
        const Node &node = prog.graph().at(id);
        failure = csprintf(
            "thread-order violation at node %d (%s %s): tokens of "
            "threads %d and %d met (cycle %lld)",
            id, nodeKindName(node.kind), node.name.c_str(), a, b,
            static_cast<long long>(cycle));
    }
    return a;
}

int32_t
ParallelEngine::combine3(NodeId id, int32_t a, int32_t b, int32_t c)
{
    return combine2(id, combine2(id, a, b), c);
}

void
ParallelEngine::wake(NodeId id)
{
    const size_t i = static_cast<size_t>(id);
    if (nocA[i]) {
        wokenB[i] = 1;
        int t = prog.topoIndex[i];
        setBit(liveNocBits, t);
        if (inNocEval)
            setBit(nocNextBits, t);
        return;
    }
    wokenB[i] = 1;
    freshB[i] = 0; // structural change: the cached verdict is stale
    predB[i] = 0;
    int gl = prog.gateLoop[i];
    if (gl >= 0)
        groupDirtyUntilA[static_cast<size_t>(gl)] = cycle + 1;
    Region &R = regs[static_cast<size_t>(regionOfA[i])];
    if (dormantClassA[i] != DormNone) {
        if (dormantClassA[i] == DormInput)
            R.dormantInput--;
        else
            R.dormantSpace--;
        dormantClassA[i] = DormNone;
    }
    int li = localIdx[i];
    setBit(R.liveBits, li);
    if (inPeFixpoint)
        setBit(R.nextBits, li);
}

void
ParallelEngine::wakeDeliver(NodeId id)
{
    const size_t i = static_cast<size_t>(id);
    if (nocA[i]) {
        // NoC latches consume same-cycle: full wake semantics.
        wokenB[i] = 1;
        int t = prog.topoIndex[i];
        setBit(liveNocBits, t);
        if (inNocEval)
            setBit(nocNextBits, t);
        return;
    }
    // The landed token changes the next-cycle verdict even though
    // the current one is untouched: drop any census prediction
    // before the retained-already early exit.
    predB[i] = 0;
    if (wokenB[i])
        return; // already retained + group marked this cycle
    wokenB[i] = 1;
    // No freshness invalidation and no same-cycle re-scan: the delivered
    // token is born this cycle, so every verdict component the node
    // reads through avail() is unchanged until next cycle. The
    // cached verdict stays exactly what the oracle's re-evaluation
    // would return. The group-dirty window still extends so the
    // SyncPlane re-decides next cycle once the token has aged.
    int gl = prog.gateLoop[i];
    if (gl >= 0)
        groupDirtyUntilA[static_cast<size_t>(gl)] = cycle + 1;
    Region &R = regs[static_cast<size_t>(regionOfA[i])];
    if (dormantClassA[i] != DormNone) {
        if (dormantClassA[i] == DormInput)
            R.dormantInput--;
        else
            R.dormantSpace--;
        dormantClassA[i] = DormNone;
    }
    setBit(R.liveBits, localIdx[i]);
}

void
ParallelEngine::wakeSpace(NodeId id)
{
    const size_t i = static_cast<size_t>(id);
    // Fresh Input/Idle verdicts are immune to freed space (canFire
    // ranks Input before Space): retain the node without the
    // same-cycle re-scan.
    if (!nocA[i] && freshB[i]) {
        uint8_t v = lastVerdictA[i];
        if (v == VInput || v == VIdle) {
            wakeDeliver(id);
            return;
        }
    }
    wake(id);
}

// ---------------------------------------------------------------------
// canFire / commitFire (oracle transliteration over SoA state)
// ---------------------------------------------------------------------

uint8_t
ParallelEngine::scanCanFire(NodeId id, bool &memReady, Word &addr,
                            int64_t horizon)
{
    const size_t i = static_cast<size_t>(id);
    const int base = insBase[i];
    auto need = [&](int in) {
        return insAvailFrom[static_cast<size_t>(base + in)] <=
               horizon;
    };

    switch (static_cast<NodeKind>(kindA[i])) {
      case NodeKind::Trigger: {
        if (trigFiredA[i])
            return VIdle;
        if (!outSpace(id, 0, 1))
            return VSpace;
        return VNo;
      }
      case NodeKind::Const: {
        if (!need(0))
            return VInput;
        return outSpace(id, 0, 1) ? VNo : VSpace;
      }
      case NodeKind::Arith: {
        int want = wantA[i];
        for (int in = 0; in < want; in++) {
            if (!need(in))
                return VInput;
        }
        return outSpace(id, 0, 1) ? VNo : VSpace;
      }
      case NodeKind::Steer: {
        if (!need(pidx::SteerDecider) || !need(pidx::SteerValue))
            return VInput;
        bool forward =
            (peekIn(id, pidx::SteerDecider).value != 0) ==
            (steerTrueA[i] != 0);
        if (forward && !outSpace(id, 0, 1))
            return VSpace;
        return VNo;
      }
      case NodeKind::Carry: {
        if (fsmA[i] == FsmInit) {
            if (!need(pidx::CarryInit))
                return VInput;
            return outSpace(id, 0, 1) ? VNo : VSpace;
        }
        if (fsmA[i] == FsmWaitVal) {
            if (!need(pidx::CarryCont))
                return VInput;
            return outSpace(id, 0, 1) ? VNo : VSpace;
        }
        // Run: the decider is consumed eagerly; a true decider with
        // the backedge value present forwards it in one firing.
        if (!need(pidx::CarryDecider))
            return VInput;
        if (peekIn(id, pidx::CarryDecider).value != 0 &&
            need(pidx::CarryCont)) {
            return outSpace(id, 0, 1) ? VNo : VSpace;
        }
        return VNo;
      }
      case NodeKind::Invariant: {
        if (fsmA[i] == FsmInit) {
            if (!need(pidx::InvValue))
                return VInput;
            return outSpace(id, 0, 1) ? VNo : VSpace;
        }
        if (!need(pidx::InvDecider))
            return VInput;
        if (peekIn(id, pidx::InvDecider).value != 0) {
            return outSpace(id, 0, 1) ? VNo : VSpace;
        }
        return VNo;
      }
      case NodeKind::Merge: {
        if (fsmA[i] == FsmWaitVal) {
            if (!need(pendingSideA[i]))
                return VInput;
            return outSpace(id, 0, 1) ? VNo : VSpace;
        }
        if (!need(pidx::MergeDecider))
            return VInput;
        int side = peekIn(id, pidx::MergeDecider).value != 0
                       ? pidx::MergeTrue
                       : pidx::MergeFalse;
        if (portMode[static_cast<size_t>(base + side)] ==
                PortWired &&
            !need(side)) {
            // Consume the decider now, wait for the value.
            return VNo;
        }
        return outSpace(id, 0, 1) ? VNo : VSpace;
      }
      case NodeKind::Dispatch: {
        if (greedyDispatch) {
            bool c = need(pidx::DispatchCont);
            bool s = need(pidx::DispatchSpawn);
            if (!c && !s)
                return VInput;
            return outSpace(id, 0, 1) ? VNo : VSpace;
        }
        return groupChoiceA[static_cast<size_t>(loopIdA[i])] ==
                       GcNone
                   ? VInput
                   : VNo;
      }
      case NodeKind::Load: {
        if (!need(pidx::LoadAddr))
            return VInput;
        int numIns = insBase[i + 1] - base;
        if (numIns > pidx::LoadOrder &&
            portMode[static_cast<size_t>(base + pidx::LoadOrder)] ==
                PortWired &&
            !need(pidx::LoadOrder)) {
            return VInput;
        }
        // Need a reservation slot for the returning data (unless
        // nothing consumes it).
        int p = prog.portBase[i] + pidx::LoadDataOut;
        bool dataConsumed =
            prog.consBase[static_cast<size_t>(p) + 1] >
            prog.consBase[static_cast<size_t>(p)];
        if (hasOutBufA[i] && dataConsumed) {
            int op = outsBase[i] + pidx::LoadDataOut;
            if (depth - outCount[static_cast<size_t>(op)] -
                    reservedOutA[i] <
                1)
                return VSpace;
        }
        int pd = prog.portBase[i] + pidx::LoadDoneOut;
        if (prog.consBase[static_cast<size_t>(pd) + 1] >
                prog.consBase[static_cast<size_t>(pd)] &&
            !outSpace(id, pidx::LoadDoneOut, 1)) {
            return VSpace;
        }
        memReady = true;
        addr = peekIn(id, pidx::LoadAddr).value + immA[i];
        return VNo; // bank arbitration happens coordinated
      }
      case NodeKind::Store: {
        if (!need(pidx::StoreAddr) || !need(pidx::StoreData))
            return VInput;
        int numIns = insBase[i + 1] - base;
        if (numIns > pidx::StoreOrder &&
            portMode[static_cast<size_t>(base + pidx::StoreOrder)] ==
                PortWired &&
            !need(pidx::StoreOrder)) {
            return VInput;
        }
        int pd = prog.portBase[i] + pidx::StoreDoneOut;
        if (prog.consBase[static_cast<size_t>(pd) + 1] >
                prog.consBase[static_cast<size_t>(pd)] &&
            !outSpace(id, pidx::StoreDoneOut, 1)) {
            return VSpace;
        }
        memReady = true;
        addr = peekIn(id, pidx::StoreAddr).value + immA[i];
        return VNo;
      }
      case NodeKind::Stream: {
        Word cur, end;
        if (fsmA[i] == FsmInit) {
            if (!need(pidx::StreamBegin) || !need(pidx::StreamEnd))
                return VInput;
            int numIns = insBase[i + 1] - base;
            if (numIns > pidx::StreamTrigger &&
                portMode[static_cast<size_t>(
                    base + pidx::StreamTrigger)] == PortWired &&
                !need(pidx::StreamTrigger)) {
                return VInput;
            }
            cur = peekIn(id, pidx::StreamBegin).value;
            end = peekIn(id, pidx::StreamEnd).value;
        } else {
            cur = streamCurA[i];
            end = streamEndA[i];
        }
        if (cur < end && !outSpace(id, pidx::StreamIdxOut, 1))
            return VSpace;
        if (!outSpace(id, pidx::StreamCondOut, 1))
            return VSpace;
        return VNo;
      }
    }
    panic("unknown node kind");
}

uint8_t
ParallelEngine::canFireFull(NodeId id)
{
    bool memReady = false;
    Word addr = 0;
    uint8_t why = scanCanFire(id, memReady, addr, cycle);
    if (!memReady)
        return why;
    return bankClaimedAt[static_cast<size_t>(
               static_cast<uint32_t>(addr) %
               static_cast<uint32_t>(memBanks))] == cycle
               ? VBank
               : VNo;
}

__attribute__((flatten)) void
ParallelEngine::commitFire(NodeId id)
{
    const size_t i = static_cast<size_t>(id);
    // A dormant node's blocked verdict is frozen until a wake event
    // clears it, so it can never have been selected to fire.
    ps_assert(dormantClassA[i] == DormNone,
              "dormant node %d fired without a wake", id);

    if (nocA[i]) {
        stats.nocCfFires++;
    } else if (static_cast<NodeKind>(kindA[i]) !=
               NodeKind::Trigger) {
        stats.classFires[static_cast<size_t>(peClassA[i])]++;
    }
    stats.nodeFires[i]++;
    activeFlag = true;

    switch (static_cast<NodeKind>(kindA[i])) {
      case NodeKind::Trigger: {
        trigFiredA[i] = 1;
        triggersPending--;
        emit(id, 0, immA[i], NoTag);
        break;
      }
      case NodeKind::Const: {
        Tok t = consumeIn(id, 0);
        emit(id, 0, immA[i], t.tag);
        break;
      }
      case NodeKind::Arith: {
        int want = wantA[i];
        Tok a = consumeIn(id, 0);
        Tok b = consumeIn(id, 1);
        Tok c = want == 3 ? consumeIn(id, 2) : Tok{};
        int32_t tag = combine3(id, a.tag, b.tag, c.tag);
        emit(id, 0,
             sir::evalOpcode(opcA[i], a.value, b.value, c.value),
             tag);
        break;
      }
      case NodeKind::Steer: {
        Tok d = consumeIn(id, pidx::SteerDecider);
        Tok v = consumeIn(id, pidx::SteerValue);
        int32_t tag = combine2(id, d.tag, v.tag);
        if ((d.value != 0) == (steerTrueA[i] != 0)) {
            emit(id, 0, v.value, tag);
        } else {
            stats.steerDrops++;
        }
        break;
      }
      case NodeKind::Carry: {
        if (fsmA[i] == FsmInit) {
            Tok a = consumeIn(id, pidx::CarryInit);
            fsmA[i] = FsmRun;
            emit(id, 0, a.value, a.tag);
        } else if (fsmA[i] == FsmWaitVal) {
            Tok b = consumeIn(id, pidx::CarryCont);
            int32_t tag = combine2(id, latchTagA[i], b.tag);
            fsmA[i] = FsmRun;
            emit(id, 0, b.value, tag);
        } else {
            Tok d = consumeIn(id, pidx::CarryDecider);
            if (d.value == 0) {
                fsmA[i] = FsmInit;
            } else if (avail(insBase[i] + pidx::CarryCont)) {
                Tok b = consumeIn(id, pidx::CarryCont);
                int32_t tag = combine2(id, d.tag, b.tag);
                emit(id, 0, b.value, tag);
            } else {
                latchValA[i] = d.value;
                latchTagA[i] = d.tag;
                fsmA[i] = FsmWaitVal;
            }
        }
        break;
      }
      case NodeKind::Invariant: {
        if (fsmA[i] == FsmInit) {
            Tok a = consumeIn(id, pidx::InvValue);
            latchValA[i] = a.value;
            latchTagA[i] = a.tag;
            fsmA[i] = FsmRun;
            emit(id, 0, a.value, a.tag);
        } else {
            Tok d = consumeIn(id, pidx::InvDecider);
            if (d.value != 0) {
                int32_t tag = combine2(id, d.tag, latchTagA[i]);
                emit(id, 0, latchValA[i], tag);
            } else {
                fsmA[i] = FsmInit;
                latchValA[i] = 0;
                latchTagA[i] = NoTag;
            }
        }
        break;
      }
      case NodeKind::Merge: {
        if (fsmA[i] == FsmWaitVal) {
            Tok v = consumeIn(id, pendingSideA[i]);
            int32_t tag = combine2(id, latchTagA[i], v.tag);
            fsmA[i] = FsmRun;
            emit(id, 0, v.value, tag);
            break;
        }
        Tok d = consumeIn(id, pidx::MergeDecider);
        int side = d.value != 0 ? pidx::MergeTrue : pidx::MergeFalse;
        if (portMode[static_cast<size_t>(insBase[i] + side)] ==
                PortWired &&
            !avail(insBase[i] + side)) {
            latchValA[i] = d.value;
            latchTagA[i] = d.tag;
            pendingSideA[i] = static_cast<uint8_t>(side);
            fsmA[i] = FsmWaitVal;
            break;
        }
        Tok v = consumeIn(id, side);
        int32_t tag = combine2(id, d.tag, v.tag);
        emit(id, 0, v.value, tag);
        break;
      }
      case NodeKind::Dispatch: {
        // Firing consumes the gate's tokens and fills its output:
        // the group must be re-evaluated until the dust settles.
        groupDirtyUntilA[static_cast<size_t>(loopIdA[i])] =
            cycle + 1;
        groupFiredRound[static_cast<size_t>(loopIdA[i])] = 1;
        uint8_t choice =
            groupChoiceA[static_cast<size_t>(loopIdA[i])];
        if (greedyDispatch) {
            choice = avail(insBase[i] + pidx::DispatchCont)
                         ? GcCont
                         : GcSpawn;
        }
        if (choice == GcCont) {
            Tok t = consumeIn(id, pidx::DispatchCont);
            stats.dispatchConts++;
            emit(id, 0, t.value, t.tag);
        } else {
            Tok t = consumeIn(id, pidx::DispatchSpawn);
            // All gates in the group fire this cycle and must agree
            // on the new thread's identity; nextThreadTag advances
            // once per group per cycle (see runFixpoint()).
            stats.dispatchSpawns++;
            emit(id, 0, t.value, nextThreadTag);
        }
        break;
      }
      case NodeKind::Load: {
        Tok a = consumeIn(id, pidx::LoadAddr);
        Word addr = a.value + immA[i]; // configured base offset
        int32_t tag = a.tag;
        if (insBase[i + 1] - insBase[i] > pidx::LoadOrder &&
            portMode[static_cast<size_t>(insBase[i] +
                                         pidx::LoadOrder)] ==
                PortWired) {
            Tok ord = consumeIn(id, pidx::LoadOrder);
            tag = combine2(id, tag, ord.tag);
        }
        // The bank port was claimed at selection; the value is read
        // at issue (banked SRAM, fixed latency).
        ps_assert(addr >= 0 &&
                      static_cast<size_t>(addr) < mem->size(),
                  "memory address %d out of bounds (%zu words)",
                  addr, mem->size());
        if (pendCnt == static_cast<int32_t>(pendNode.size())) {
            // Grow the pending-load ring, preserving order.
            size_t cap = pendNode.size();
            std::vector<int32_t> nn(cap * 2);
            std::vector<Word> nv(cap * 2);
            std::vector<int32_t> nt(cap * 2);
            std::vector<int64_t> nr(cap * 2);
            for (size_t k = 0; k < cap; k++) {
                size_t src = (static_cast<size_t>(pendHead) + k) %
                             cap;
                nn[k] = pendNode[src];
                nv[k] = pendVal[src];
                nt[k] = pendTag[src];
                nr[k] = pendReady[src];
            }
            pendNode.swap(nn);
            pendVal.swap(nv);
            pendTag.swap(nt);
            pendReady.swap(nr);
            pendHead = 0;
        }
        {
            size_t slot = (static_cast<size_t>(pendHead) +
                           static_cast<size_t>(pendCnt)) %
                          pendNode.size();
            pendNode[slot] = id;
            pendVal[slot] = (*mem)[static_cast<size_t>(addr)];
            pendTag[slot] = tag;
            pendReady[slot] = cycle + memLatency;
            pendCnt++;
        }
        int p = prog.portBase[i] + pidx::LoadDataOut;
        if (prog.consBase[static_cast<size_t>(p) + 1] >
            prog.consBase[static_cast<size_t>(p)])
            reservedOutA[i]++;
        stats.memLoads++;
        emit(id, pidx::LoadDoneOut, 1, tag);
        break;
      }
      case NodeKind::Store: {
        Tok a = consumeIn(id, pidx::StoreAddr);
        Word addr = a.value + immA[i]; // configured base offset
        Tok data = consumeIn(id, pidx::StoreData);
        int32_t tag = combine2(id, a.tag, data.tag);
        if (insBase[i + 1] - insBase[i] > pidx::StoreOrder &&
            portMode[static_cast<size_t>(insBase[i] +
                                         pidx::StoreOrder)] ==
                PortWired) {
            Tok ord = consumeIn(id, pidx::StoreOrder);
            tag = combine2(id, tag, ord.tag);
        }
        ps_assert(addr >= 0 &&
                      static_cast<size_t>(addr) < mem->size(),
                  "memory address %d out of bounds (%zu words)",
                  addr, mem->size());
        (*mem)[static_cast<size_t>(addr)] = data.value;
        stats.memStores++;
        emit(id, pidx::StoreDoneOut, 1, tag);
        break;
      }
      case NodeKind::Stream: {
        if (fsmA[i] == FsmInit) {
            Tok begin = consumeIn(id, pidx::StreamBegin);
            Tok end = consumeIn(id, pidx::StreamEnd);
            int32_t tag = combine2(id, begin.tag, end.tag);
            if (insBase[i + 1] - insBase[i] > pidx::StreamTrigger &&
                portMode[static_cast<size_t>(
                    insBase[i] + pidx::StreamTrigger)] ==
                    PortWired) {
                Tok trig = consumeIn(id, pidx::StreamTrigger);
                tag = combine2(id, tag, trig.tag);
            }
            streamCurA[i] = begin.value;
            streamEndA[i] = end.value;
            latchTagA[i] = tag;
            fsmA[i] = FsmRun;
            streamsRunning++;
        }
        int32_t tag = latchTagA[i];
        if (streamCurA[i] < streamEndA[i]) {
            emit(id, pidx::StreamIdxOut, streamCurA[i], tag);
            emit(id, pidx::StreamCondOut, 1, tag);
            streamCurA[i] += streamStepA[i];
        } else {
            emit(id, pidx::StreamCondOut, 0, tag);
            fsmA[i] = FsmInit;
            streamsRunning--;
        }
        break;
      }
    }
}

// ---------------------------------------------------------------------
// Cycle phases
// ---------------------------------------------------------------------

void
ParallelEngine::drainPhase()
{
    bornStamp = cycle - 1; // these tokens were ready last cycle
    for (size_t w = 0; w < drainBits.size(); w++) {
        uint64_t bits = drainBits[w];
        if (!bits)
            continue;
        uint64_t keep = bits;
        while (bits) {
            int b = __builtin_ctzll(bits);
            bits &= bits - 1;
            NodeId id = static_cast<NodeId>(w * 64 +
                                            static_cast<size_t>(b));
            const size_t i = static_cast<size_t>(id);
            bool nonempty = false;
            int nOuts = outsBase[i + 1] - outsBase[i];
            for (int port = 0; port < nOuts; port++) {
                const size_t oi =
                    static_cast<size_t>(outsBase[i] + port);
                if (outCount[oi] > 0 &&
                    consumersAccept(id, port)) {
                    size_t slot =
                        oi * static_cast<size_t>(depth) +
                        static_cast<size_t>(outHeadA[oi]);
                    Word v = outVal[slot];
                    int32_t t = outTag[slot];
                    int h = outHeadA[oi] + 1;
                    outHeadA[oi] = h >= depth ? 0 : h;
                    outCount[oi]--;
                    tokensInFlight--;
                    stats.bufferReads++;
                    wake(id); // its output buffer has space again
                    deliver(id, port, v, t);
                }
                nonempty |= outCount[oi] > 0;
            }
            if (!nonempty)
                keep &= ~(uint64_t{1} << b);
        }
        drainBits[w] = keep;
    }
}

void
ParallelEngine::memCompletionsPhase()
{
    bornStamp = cycle - 1; // data crossed the NoC during the wait
    const size_t cap = pendNode.size();
    while (pendCnt > 0 &&
           pendReady[static_cast<size_t>(pendHead)] <= cycle) {
        const size_t slot = static_cast<size_t>(pendHead);
        NodeId id = pendNode[slot];
        Word v = pendVal[slot];
        int32_t t = pendTag[slot];
        pendHead = static_cast<int32_t>(
            (slot + 1) % cap);
        pendCnt--;
        const size_t i = static_cast<size_t>(id);
        int p = prog.portBase[i] + pidx::LoadDataOut;
        // A load kept alive only for its order token has no data
        // consumers; its value is dropped at the PE boundary.
        if (prog.consBase[static_cast<size_t>(p) + 1] ==
            prog.consBase[static_cast<size_t>(p)]) {
            activeFlag = true;
            continue;
        }
        reservedOutA[i]--;
        wake(id); // reservation slot freed
        const size_t oi =
            static_cast<size_t>(outsBase[i] + pidx::LoadDataOut);
        if (memBypass && outCount[oi] == 0 &&
            consumersAccept(id, pidx::LoadDataOut)) {
            deliver(id, pidx::LoadDataOut, v, t);
        } else {
            ps_assert(outCount[oi] < depth,
                      "load completion overflow");
            int pos = outHeadA[oi] + outCount[oi];
            if (pos >= depth)
                pos -= depth;
            size_t os = oi * static_cast<size_t>(depth) +
                        static_cast<size_t>(pos);
            outVal[os] = v;
            outTag[os] = t;
            outCount[oi]++;
            tokensInFlight++;
            stats.bufferWrites++;
            setBit(drainBits, id);
        }
        activeFlag = true;
    }
}

void
ParallelEngine::channelsPhase()
{
    bornStamp = cycle - 1; // matured tokens aged in the channel
    const int C = static_cast<int>(chCount.size());
    for (int ch = 0; ch < C; ch++) {
        const size_t ci = static_cast<size_t>(ch);
        if (chCount[ci] == 0)
            continue;
        int ip = chDstIp[ci];
        NodeId dst = chDstNode[ci];
        bool freed = false;
        while (chCount[ci] > 0) {
            size_t slot =
                static_cast<size_t>(chanBase[ci] + chHead[ci]);
            if (chReady[slot] > cycle ||
                insCount[static_cast<size_t>(ip)] >= depth)
                break;
            // Still one in-flight token: channel -> fifo.
            pushIn(ip, chVal[slot], chTag[slot], bornStamp);
            insTokens[static_cast<size_t>(dst)]++;
            int h = chHead[ci] + 1;
            chHead[ci] = h >= chCapA[ci] ? 0 : h;
            chCount[ci]--;
            stats.bufferWrites++;
            wake(dst);
            freed = true;
            activeFlag = true;
        }
        if (freed) {
            // Channel space opened up; the producer may fire again.
            wake(chSrcNode[ci]);
        }
        if (chCount[ci] > 0 &&
            chReady[static_cast<size_t>(chanBase[ci] +
                                        chHead[ci])] > cycle) {
            // Tokens still crossing the boundary keep the fabric
            // busy — this is latency, not deadlock.
            activeFlag = true;
        }
    }
}

void
ParallelEngine::decideDispatchGroups(bool firstRound)
{
    // Once per sequential round; the SyncPlane bills once per cycle.
    // Loops without dispatch gates have nothing to decide (their
    // choices stay None from reset), so only gateLoops are walked.
    bool anyEval = false;
    for (int l : gateLoops) {
        const size_t li = static_cast<size_t>(l);
        const auto &group = prog.dispatchGroups[li];
        if (!greedyDispatch && cycle > groupDirtyUntilA[li]) {
            // No gate event since the last evaluation: the cached
            // choice and pending flag are what a fresh scan would
            // produce.
            if (groupPendingA[li])
                anyEval = true;
            continue;
        }
        uint8_t firedPrev = groupFiredRound[li];
        groupFiredRound[li] = 0;
        if (!firstRound && !firedPrev) {
            // Within a cycle the group's inputs only change when
            // its own gates fire (deliveries don't age into avail
            // until next cycle, and gate output buffers drain only
            // in the serial phase): the stored choice and pending
            // flag are exactly what a re-evaluation would produce.
            if (groupPendingA[li])
                anyEval = true;
            continue;
        }
        groupChoiceA[li] = GcNone;
        if (greedyDispatch) {
            // Fig. 9a ablation: no SyncPlane; each gate fends for
            // itself (decisions made per node in canFire).
            continue;
        }
        // Fig. 10 token-selection over the SyncPlane reduction.
        bool anyPending = false;
        bool contAll = true, contNotFull = true;
        bool spawnAll = true, spawnTwoSlots = true;
        for (NodeId d : group) {
            const size_t di = static_cast<size_t>(d);
            bool cAvail = avail(insBase[di] + pidx::DispatchCont);
            bool sAvail = avail(insBase[di] + pidx::DispatchSpawn);
            anyPending |= cAvail | sAvail;
            contAll &= cAvail;
            spawnAll &= sAvail;
            int free =
                depth -
                outCount[static_cast<size_t>(outsBase[di])];
            if (free < 1)
                contNotFull = false;
            if (free < 2)
                spawnTwoSlots = false;
        }
        if (anyPending)
            anyEval = true;
        groupPendingA[li] = anyPending ? 1 : 0;
        if (contAll && contNotFull) {
            groupChoiceA[li] = GcCont;
        } else if (spawnAll && spawnTwoSlots) {
            groupChoiceA[li] = GcSpawn;
        }
    }
    if (anyEval && lastSyncPlane != cycle) {
        stats.syncPlaneCycles++;
        lastSyncPlane = cycle;
    }
}

__attribute__((flatten)) void
ParallelEngine::scanRegion(int r, bool firstRound)
{
    Region &R = regs[static_cast<size_t>(r)];
    R.candFire.clear();
    R.candMem.clear();
    R.candAddr.clear();
    const auto &seq = regSeq[static_cast<size_t>(r)];
    // Round 1 walks the live set in place (it must survive for the
    // census) unioned with any force-dispatched gates parked in
    // roundBits; later rounds consume the woken-set bitmap.
    for (size_t w = 0; w < R.roundBits.size(); w++) {
        uint64_t bits = R.roundBits[w];
        if (bits)
            R.roundBits[w] = 0;
        if (firstRound)
            bits |= R.liveBits[w];
        if (!bits)
            continue;
        while (bits) {
            int b = __builtin_ctzll(bits);
            bits &= bits - 1;
            NodeId id = seq[w * 64 + static_cast<size_t>(b)];
            const size_t i = static_cast<size_t>(id);
            if (firedB[i])
                continue;
            if (predB[i]) {
                // The census precomputed this cycle's verdict (no
                // event touched the node since — wakes clear the
                // flag): consume it instead of re-evaluating.
                predB[i] = 0;
                uint8_t pwhy = lastVerdictA[i];
                freshB[i] = 1;
                if (pwhy == VNo) {
                    firedB[i] = 1;
                    R.candFire.push_back(id);
                }
                continue;
            }
            bool memReady = false;
            Word addr = 0;
            uint8_t why = scanCanFire(id, memReady, addr, cycle);
            if (memReady) {
                // Verdict (Bank vs No) is stamped in the
                // coordinated arbitration pass.
                R.candMem.push_back(id);
                R.candAddr.push_back(addr);
                continue;
            }
            lastVerdictA[i] = why;
            freshB[i] = 1;
            if (why == VNo) {
                firedB[i] = 1;
                R.candFire.push_back(id);
            }
        }
    }
}

void
ParallelEngine::runFixpoint()
{
    inPeFixpoint = true;
    const int K = plan.count;
    // Round 1 scans liveBits in place (no copy into roundBits);
    // roundBits carries only force-dispatched gates at that point.
    for (bool firstRound = true;; firstRound = false) {
        decideDispatchGroups(firstRound);
        // A SyncPlane decision fires every gate of the group, woken
        // or not.
        if (!greedyDispatch) {
            for (int l : gateLoops) {
                if (groupChoiceA[static_cast<size_t>(l)] == GcNone)
                    continue;
                for (NodeId d :
                     prog.dispatchGroups[static_cast<size_t>(l)]) {
                    Region &R = regs[static_cast<size_t>(
                        regionOfA[static_cast<size_t>(d)])];
                    setBit(R.roundBits,
                           localIdx[static_cast<size_t>(d)]);
                }
            }
        }
        if (physThreads > 1 && K > 1) {
            futScratch.clear();
            for (int r = 1; r < K; r++) {
                futScratch.push_back(pool->submit(
                    [this, r, firstRound] { scanRegion(r, firstRound); }));
            }
            scanRegion(0, firstRound);
            for (auto &f : futScratch)
                f.get();
        } else {
            for (int r = 0; r < K; r++)
                scanRegion(r, firstRound);
        }

        // Coordinated bank arbitration, ascending node id across
        // regions — the order the oracle's single scan would claim
        // in (non-memory verdicts are independent of claims).
        // regSeq is ascending within every region, so each
        // candidate list arrives sorted: K-way merges replace the
        // per-round sorts.
        fireList.clear();
        mergeIdx.assign(static_cast<size_t>(K), 0);
        for (;;) {
            int best = -1;
            NodeId bid = 0;
            for (int r = 0; r < K; r++) {
                const auto &cf =
                    regs[static_cast<size_t>(r)].candFire;
                size_t k = mergeIdx[static_cast<size_t>(r)];
                if (k < cf.size() && (best < 0 || cf[k] < bid)) {
                    best = r;
                    bid = cf[k];
                }
            }
            if (best < 0)
                break;
            mergeIdx[static_cast<size_t>(best)]++;
            fireList.push_back(bid);
        }
        const size_t peFires = fireList.size();
        mergeIdx.assign(static_cast<size_t>(K), 0);
        for (;;) {
            int best = -1;
            NodeId bid = 0;
            for (int r = 0; r < K; r++) {
                const auto &cm =
                    regs[static_cast<size_t>(r)].candMem;
                size_t k = mergeIdx[static_cast<size_t>(r)];
                if (k < cm.size() && (best < 0 || cm[k] < bid)) {
                    best = r;
                    bid = cm[k];
                }
            }
            if (best < 0)
                break;
            Word addr = regs[static_cast<size_t>(best)]
                            .candAddr[mergeIdx[
                                static_cast<size_t>(best)]];
            mergeIdx[static_cast<size_t>(best)]++;
            const size_t i = static_cast<size_t>(bid);
            size_t bank = static_cast<uint32_t>(addr) %
                          static_cast<uint32_t>(memBanks);
            if (bankClaimedAt[bank] == cycle) {
                lastVerdictA[i] = VBank;
                freshB[i] = 1;
                continue;
            }
            bankClaimedAt[bank] = cycle;
            lastVerdictA[i] = VNo;
            freshB[i] = 1;
            firedB[i] = 1;
            fireList.push_back(bid);
        }
        if (fireList.empty())
            break;
        // Two sorted runs (PE winners, then mem winners): merge in
        // place of the old full sort.
        if (peFires > 0 && peFires < fireList.size()) {
            mergeTmp.resize(fireList.size());
            std::merge(fireList.begin(),
                       fireList.begin() +
                           static_cast<std::ptrdiff_t>(peFires),
                       fireList.begin() +
                           static_cast<std::ptrdiff_t>(peFires),
                       fireList.end(), mergeTmp.begin());
            fireList.swap(mergeTmp);
        }

        bool spawned = false;
        for (NodeId id : fireList) {
            if (static_cast<NodeKind>(
                    kindA[static_cast<size_t>(id)]) ==
                    NodeKind::Dispatch &&
                groupChoiceA[static_cast<size_t>(
                    loopIdA[static_cast<size_t>(id)])] == GcSpawn) {
                spawned = true;
            }
            commitFire(id);
        }
        if (spawned)
            nextThreadTag++;

        for (int r = 0; r < K; r++) {
            Region &R = regs[static_cast<size_t>(r)];
            // Scan consumed roundBits; wakes during the commits
            // filled nextBits for the next round.
            R.roundBits.swap(R.nextBits);
        }
    }
    inPeFixpoint = false;
    // No cleanup needed: the breaking round's scan consumed
    // roundBits to zero, and with no commits in that round nothing
    // wrote nextBits (wakes only touch it while inPeFixpoint).
}

__attribute__((flatten)) void
ParallelEngine::censusRegion(int r)
{
    Region &R = regs[static_cast<size_t>(r)];
    R.censusNoInput = R.censusNoSpace = R.censusBank = 0;
    const auto &seq = regSeq[static_cast<size_t>(r)];
    for (size_t w = 0; w < R.liveBits.size(); w++) {
        uint64_t bits = R.liveBits[w];
        if (!bits)
            continue;
        uint64_t keep = bits;
        while (bits) {
            int b = __builtin_ctzll(bits);
            bits &= bits - 1;
            NodeId id = seq[w * 64 + static_cast<size_t>(b)];
            const size_t i = static_cast<size_t>(id);
            bool retain;
            if (firedB[i]) {
                retain = true; // may fire again next cycle
            } else {
                // Reuse the last round's verdict when no wake
                // arrived after that evaluation.
                uint8_t why = freshB[i] ? lastVerdictA[i]
                                        : canFireFull(id);
                bool woken = wokenB[i] != 0;
                // A SyncPlane gate's verdict flips when its group
                // decides — no wake event — so it never dorms.
                bool pinned = !greedyDispatch &&
                              static_cast<NodeKind>(kindA[i]) ==
                                  NodeKind::Dispatch;
                if (why == VInput) {
                    if (pinned) {
                        if (insTokens[i] > 0)
                            R.censusNoInput++;
                        retain = true;
                    } else if (!woken) {
                        if (insTokens[i] > 0) {
                            dormantClassA[i] = DormInput;
                            R.dormantInput++;
                        }
                        retain = false;
                    } else {
                        // Woken but still input-blocked. Every
                        // avail stamp is at most cycle+1, so
                        // re-evaluating with the avail horizon one
                        // cycle ahead yields exactly the verdict
                        // next cycle's scan would produce absent
                        // further wakes. Still Input means the node
                        // cannot act next cycle: dorm it now and
                        // skip that wasted scan + census visit.
                        // Billing is unchanged — censusNoInput and
                        // dormantInput feed the same stall counter,
                        // and the oracle dorms the node one cycle
                        // later with the same cumulative count. Any
                        // enabling event wakes it back up.
                        bool memNext = false;
                        Word addrNext = 0;
                        uint8_t next = scanCanFire(id, memNext,
                                                   addrNext,
                                                   cycle + 1);
                        if (!memNext && next == VInput) {
                            // Clear the woken flag so a late wake
                            // (final NoC settle runs after the
                            // census) takes the full path and
                            // clears the dormancy again.
                            wokenB[i] = 0;
                            if (insTokens[i] > 0) {
                                dormantClassA[i] = DormInput;
                                R.dormantInput++;
                            }
                            retain = false;
                        } else {
                            if (insTokens[i] > 0)
                                R.censusNoInput++;
                            retain = true;
                            if (!memNext) {
                                // Hand the next-cycle verdict to
                                // round 1 (memory candidates still
                                // need live arbitration).
                                lastVerdictA[i] = next;
                                predB[i] = 1;
                            }
                        }
                    }
                } else if (why == VSpace) {
                    // A Space verdict cannot self-enable: inputs
                    // that passed stay avail and space is frozen
                    // until an event that wakes this node (consume,
                    // drain pop, channel/reservation free). Dorm
                    // immediately, woken or not — censusNoSpace and
                    // dormantSpace feed the same counter, and the
                    // oracle dorms it one cycle later with the same
                    // cumulative count.
                    wokenB[i] = 0;
                    dormantClassA[i] = DormSpace;
                    R.dormantSpace++;
                    retain = false;
                } else if (why == VBank) {
                    // Bank verdicts change with other nodes'
                    // claims; stay active for re-arbitration.
                    R.censusBank++;
                    retain = true;
                } else if (why == VNo) {
                    retain = true;
                } else {
                    // Idle: only a fired trigger — terminal, drop
                    // even when woken.
                    wokenB[i] = 0;
                    retain = false;
                }
            }
            if (!retain)
                keep &= ~(uint64_t{1} << b);
        }
        R.liveBits[w] = keep;
    }
}

void
ParallelEngine::nocSettle(bool pruneLive)
{
    if (nocWords == 0)
        return;
    // CF ops in routers are combinational: they observe tokens that
    // became visible this cycle and forward them within the cycle,
    // in topological order, at most one token set per router per
    // cycle (nocFiredAt). Ascending topo-index bit order is exactly
    // the oracle's topoLess sweep order.
    inNocEval = true;
    std::copy(liveNocBits.begin(), liveNocBits.end(),
              nocSweepBits.begin());
    for (;;) {
        bool anyBits = false;
        for (int w = 0; w < nocWords; w++) {
            uint64_t bits = nocSweepBits[static_cast<size_t>(w)];
            if (!bits)
                continue;
            anyBits = true;
            nocSweepBits[static_cast<size_t>(w)] = 0;
            while (bits) {
                int b = __builtin_ctzll(bits);
                bits &= bits - 1;
                NodeId id =
                    prog.nocTopo[static_cast<size_t>(w) * 64 +
                                 static_cast<size_t>(b)];
                if (nocFiredB[static_cast<size_t>(id)])
                    continue;
                if (canFireFull(id) == VNo) {
                    nocFiredB[static_cast<size_t>(id)] = 1;
                    commitFire(id);
                }
            }
        }
        if (!anyBits)
            break;
        // Wakes during the sweep collected the next sweep's
        // candidates.
        nocSweepBits.swap(nocNextBits);
    }
    inNocEval = false;

    if (pruneLive) {
        // End of the cycle's last settle: router ops that neither
        // fired nor were woken stay out until a wake re-adds them.
        for (int w = 0; w < nocWords; w++) {
            uint64_t bits = liveNocBits[static_cast<size_t>(w)];
            uint64_t keep = bits;
            while (bits) {
                int b = __builtin_ctzll(bits);
                bits &= bits - 1;
                NodeId id =
                    prog.nocTopo[static_cast<size_t>(w) * 64 +
                                 static_cast<size_t>(b)];
                if (!nocFiredB[static_cast<size_t>(id)] &&
                    !wokenB[static_cast<size_t>(id)]) {
                    keep &= ~(uint64_t{1} << b);
                }
            }
            liveNocBits[static_cast<size_t>(w)] = keep;
        }
    }
}

// ---------------------------------------------------------------------
// Termination support
// ---------------------------------------------------------------------

bool
ParallelEngine::quiescentSlow() const
{
    if (pendCnt > 0)
        return false;
    for (int c : chCount) {
        if (c > 0)
            return false;
    }
    for (NodeId id = 0; id < n; id++) {
        const size_t i = static_cast<size_t>(id);
        NodeKind kind = static_cast<NodeKind>(kindA[i]);
        if (kind == NodeKind::Trigger && !trigFiredA[i])
            return false;
        if (kind == NodeKind::Stream && fsmA[i] != FsmInit)
            return false;
        if (insTokens[i] > 0)
            return false;
        for (int op = outsBase[i]; op < outsBase[i + 1]; op++) {
            if (outCount[static_cast<size_t>(op)] > 0)
                return false;
        }
    }
    return true;
}

std::string
ParallelEngine::diagnose() const
{
    const dfg::Graph &g = prog.graph();
    std::ostringstream out;
    int listed = 0;
    for (NodeId id = 0; id < n && listed < 40; id++) {
        const size_t i = static_cast<size_t>(id);
        bool interesting = fsmA[i] != FsmInit;
        for (int ip = insBase[i]; ip < insBase[i + 1]; ip++)
            interesting |= insCount[static_cast<size_t>(ip)] > 0;
        for (int op = outsBase[i]; op < outsBase[i + 1]; op++)
            interesting |= outCount[static_cast<size_t>(op)] > 0;
        if (!interesting)
            continue;
        listed++;
        const Node &node = g.at(id);
        out << "  node " << id << " (" << nodeKindName(node.kind)
            << " " << node.name << ") ins=[";
        for (int ip = insBase[i]; ip < insBase[i + 1]; ip++)
            out << insCount[static_cast<size_t>(ip)] << " ";
        out << "] outs=[";
        for (int op = outsBase[i]; op < outsBase[i + 1]; op++)
            out << outCount[static_cast<size_t>(op)] << " ";
        out << "] fsm=" << static_cast<int>(fsmA[i]) << "\n";
    }
    for (size_t ch = 0; ch < chCount.size(); ch++) {
        if (chCount[ch] == 0)
            continue;
        const Program::Channel &cc = prog.channels[ch];
        out << "  channel " << ch << " (node " << cc.src << " -> "
            << cc.dst << " in " << cc.dstIn << ") holds "
            << chCount[ch] << " token(s)\n";
    }
    return out.str();
}

int
ParallelEngine::windowBound() const
{
    // Wire cuts synchronize every cycle (zero slack); so does a
    // partition with no cut channels at all (single region, or
    // regions only wire-coupled).
    if (plan.cutWires > 0 || cutChanList.empty())
        return 1;
    int w = INT32_MAX;
    for (int ch : cutChanList) {
        const size_t ci = static_cast<size_t>(ch);
        int slack = std::min(chLatA[ci],
                             chCapA[ci] - chCount[ci]);
        w = std::min(w, slack);
    }
    return std::max(1, w);
}

// ---------------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------------

SimResult
ParallelEngine::run(MemImage &memImage, int64_t maxCyclesOverride)
{
    mem = &memImage;
    resetRun();
    const int64_t maxCycles = maxCyclesOverride > 0
                                  ? maxCyclesOverride
                                  : prog.cfg.maxCycles;
    const bool hasChannels = prog.hasChannels;
    const int K = plan.count;
    SimResult result;

    for (cycle = 0; cycle < maxCycles; cycle++) {
        activeFlag = false;
        // Per-cycle flags are bytes cleared in bulk: for fabric-sized
        // n a memset is cheaper than the cycle-stamp compares it
        // replaces in the scan and census walks.
        std::memset(freshB.data(), 0, freshB.size());
        std::memset(wokenB.data(), 0, wokenB.size());
        std::memset(firedB.data(), 0, firedB.size());
        std::memset(nocFiredB.data(), 0, nocFiredB.size());

        drainPhase();
        memCompletionsPhase();
        if (hasChannels)
            channelsPhase();

        // Router CF settles over tokens left from the previous
        // cycle before the PEs sample their inputs.
        bornStamp = cycle - 1;
        nocSettle(false);

        // Sequential (PE) firing to a fixpoint within the cycle.
        bornStamp = cycle;
        runFixpoint();

        // Stall census per region, then serial aggregation
        // (int64 sums are order-independent).
        if (physThreads > 1 && K > 1) {
            futScratch.clear();
            for (int r = 1; r < K; r++) {
                futScratch.push_back(pool->submit(
                    [this, r] { censusRegion(r); }));
            }
            censusRegion(0);
            for (auto &f : futScratch)
                f.get();
        } else {
            for (int r = 0; r < K; r++)
                censusRegion(r);
        }
        for (int r = 0; r < K; r++) {
            const Region &R = regs[static_cast<size_t>(r)];
            stats.stallNoInput += R.censusNoInput + R.dormantInput;
            stats.stallNoSpace += R.censusNoSpace + R.dormantSpace;
            stats.bankConflictStalls += R.censusBank;
        }

        // Pass 3: combinational CF-in-NoC evaluation.
        nocSettle(true);

        if (!failure.empty()) {
            flushPortReads();
            result.stats = stats;
            result.stats.cycles = cycle + 1;
            result.deadlocked = true;
            result.diagnostic = failure;
            mem = nullptr;
            return result;
        }

        if (pendCnt == 0 && tokensInFlight == 0 &&
            triggersPending == 0 && streamsRunning == 0) {
            ps_assert(quiescentSlow(),
                      "quiescence counters drifted from fabric "
                      "state at cycle %lld",
                      static_cast<long long>(cycle));
            stats.cycles = cycle + 1;
            flushPortReads();
            result.stats = stats;
            // A carry/invariant left mid-loop with no tokens in
            // flight means the graph leaked or starved tokens.
            for (NodeId id = 0; id < n; id++) {
                NodeKind kind = static_cast<NodeKind>(
                    kindA[static_cast<size_t>(id)]);
                if ((kind == NodeKind::Carry ||
                     kind == NodeKind::Invariant) &&
                    fsmA[static_cast<size_t>(id)] != FsmInit) {
                    const Node &node = prog.graph().at(id);
                    result.deadlocked = true;
                    result.diagnostic = csprintf(
                        "token leak: node %d (%s %s) finished in "
                        "run state",
                        id, nodeKindName(node.kind),
                        node.name.c_str());
                    break;
                }
            }
            mem = nullptr;
            return result;
        }

        if (!activeFlag && pendCnt == 0) {
            ps_assert(!quiescentSlow(),
                      "quiescence counters missed an empty fabric "
                      "at cycle %lld",
                      static_cast<long long>(cycle));
            stats.cycles = cycle + 1;
            flushPortReads();
            result.stats = stats;
            result.deadlocked = true;
            result.diagnostic =
                csprintf("deadlock at cycle %lld:\n",
                         static_cast<long long>(cycle)) +
                diagnose();
            mem = nullptr;
            return result;
        }
    }

    stats.cycles = maxCycles;
    flushPortReads();
    result.stats = stats;
    result.deadlocked = true;
    result.watchdogExpired = true;
    result.diagnostic = "watchdog: maxCycles exceeded\n" + diagnose();
    mem = nullptr;
    return result;
}

} // namespace pipestitch::sim
