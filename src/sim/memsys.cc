#include "sim/memsys.hh"

#include "base/logging.hh"

namespace pipestitch::sim {

MemSystem::MemSystem(MemImage &mem, int numBanks, int loadLatency)
    : mem(mem), numBanks(numBanks), loadLatency(loadLatency),
      bankClaimed(static_cast<size_t>(numBanks), false)
{
    ps_assert(numBanks > 0, "need at least one memory bank");
    ps_assert(loadLatency >= 1, "load latency must be >= 1");
}

int
MemSystem::bankOf(Word addr) const
{
    return static_cast<int>(static_cast<uint32_t>(addr) %
                            static_cast<uint32_t>(numBanks));
}

void
MemSystem::beginCycle()
{
    bankClaimed.assign(static_cast<size_t>(numBanks), false);
}

bool
MemSystem::bankFree(Word addr) const
{
    return !bankClaimed[static_cast<size_t>(bankOf(addr))];
}

void
MemSystem::claimBank(Word addr)
{
    int bank = bankOf(addr);
    ps_assert(!bankClaimed[static_cast<size_t>(bank)],
              "bank %d claimed twice in one cycle", bank);
    bankClaimed[static_cast<size_t>(bank)] = true;
}

void
MemSystem::checkAddr(Word addr) const
{
    ps_assert(addr >= 0 &&
                  static_cast<size_t>(addr) < mem.size(),
              "memory address %d out of bounds (%zu words)", addr,
              mem.size());
}

PendingLoad
MemSystem::issueLoad(int node, Word addr, int32_t tag, int64_t cycle)
{
    checkAddr(addr);
    PendingLoad load{node,
                     Token{mem[static_cast<size_t>(addr)], tag},
                     cycle + loadLatency};
    pending.push_back(load);
    return load;
}

void
MemSystem::store(Word addr, Word value)
{
    checkAddr(addr);
    mem[static_cast<size_t>(addr)] = value;
}

std::vector<PendingLoad>
MemSystem::takeCompletions(int64_t cycle)
{
    std::vector<PendingLoad> done;
    while (!pending.empty() && pending.front().readyCycle <= cycle) {
        done.push_back(pending.front());
        pending.pop_front();
    }
    return done;
}

} // namespace pipestitch::sim
