#include "sim/bound.hh"

#include <algorithm>

#include "dfg/node.hh"

namespace pipestitch::sim {

namespace {

int64_t
readsAt(const SimStats &stats, dfg::NodeId node, int input)
{
    if (node < 0 ||
        static_cast<size_t>(node) >= stats.portReads.size())
        return 0;
    const auto &ports = stats.portReads[static_cast<size_t>(node)];
    if (input < 0 || static_cast<size_t>(input) >= ports.size())
        return 0;
    return ports[static_cast<size_t>(input)];
}

int64_t
firesOf(const SimStats &stats, dfg::NodeId node)
{
    if (node < 0 ||
        static_cast<size_t>(node) >= stats.nodeFires.size())
        return 0;
    return stats.nodeFires[static_cast<size_t>(node)];
}

int64_t
ceilDiv(int64_t a, int64_t b)
{
    return b > 0 ? (a + b - 1) / b : 0;
}

BoundReport::TermEval
evaluateTerm(const BoundTerm &t, const SimStats &stats)
{
    BoundReport::TermEval ev;
    ev.node = t.node;
    switch (t.kind) {
      case BoundTerm::Kind::Recurrence: {
        // Each init token starts one serial cont chain; conts split
        // across the chains, so the longest is at least
        // ceil(conts / entries) links, and every link trails its
        // predecessor by >= p_min cycles. Entries come from the
        // init-port reads, not from fire counts — a carry can fire
        // more than once per iteration (the while lowering emits
        // to both the body and the exit steer), which would
        // overestimate entries and collapse the chain.
        int64_t conts =
            readsAt(stats, t.node, dfg::port_idx::CarryCont);
        if (conts <= 0)
            break;
        int64_t entries = std::max<int64_t>(
            1, readsAt(stats, t.node, dfg::port_idx::CarryInit));
        int64_t chain = (conts - 1) / entries + 1;
        ev.cycles = chain * t.weight + 1;
        break;
      }
      case BoundTerm::Kind::Pipeline: {
        for (size_t i = 0; i < t.nodes.size(); i++) {
            int64_t fires = firesOf(stats, t.nodes[i]);
            if (fires <= 0)
                continue;
            int64_t c = t.weights[i] + fires;
            if (c > ev.cycles) {
                ev.cycles = c;
                ev.node = t.nodes[i];
            }
        }
        break;
      }
      case BoundTerm::Kind::Dispatch: {
        for (dfg::NodeId gate : t.nodes) {
            int64_t fires = firesOf(stats, gate);
            if (fires > ev.cycles) {
                ev.cycles = fires;
                ev.node = gate;
            }
        }
        break;
      }
      case BoundTerm::Kind::ShareGroup: {
        int64_t total = 0;
        for (dfg::NodeId member : t.nodes)
            total += firesOf(stats, member);
        if (total > 0)
            ev.cycles = t.weight + total;
        break;
      }
      case BoundTerm::Kind::MemoryBanks:
        ev.cycles =
            ceilDiv(stats.memLoads + stats.memStores, t.capacity);
        break;
      case BoundTerm::Kind::Channel: {
        int64_t reads = readsAt(stats, t.node, t.input);
        ev.cycles = ceilDiv(reads * t.latency, t.capacity);
        break;
      }
      case BoundTerm::Kind::HotLink: {
        int64_t total = 0;
        for (size_t i = 0; i < t.nodes.size(); i++)
            total += readsAt(stats, t.nodes[i], t.inputs[i]);
        ev.cycles = total;
        break;
      }
    }
    return ev;
}

} // namespace

const char *
boundTermKindName(BoundTerm::Kind k)
{
    switch (k) {
      case BoundTerm::Kind::Recurrence:
        return "recurrence";
      case BoundTerm::Kind::Pipeline:
        return "pipeline";
      case BoundTerm::Kind::Dispatch:
        return "dispatch";
      case BoundTerm::Kind::ShareGroup:
        return "share-group";
      case BoundTerm::Kind::MemoryBanks:
        return "memory-banks";
      case BoundTerm::Kind::Channel:
        return "channel";
      case BoundTerm::Kind::HotLink:
        return "hot-link";
    }
    return "?";
}

BoundReport::Evaluation
BoundReport::evaluate(const SimStats &stats) const
{
    Evaluation ev;
    ev.perTerm.reserve(terms.size());
    for (size_t i = 0; i < terms.size(); i++) {
        TermEval te = evaluateTerm(terms[i], stats);
        ev.perTerm.push_back(te);
        if (terms[i].certified) {
            if (te.cycles > ev.certifiedCycles) {
                ev.certifiedCycles = te.cycles;
                ev.binding = static_cast<int>(i);
            }
        }
        ev.advisoryCycles = std::max(ev.advisoryCycles, te.cycles);
    }
    ev.advisoryCycles =
        std::max(ev.advisoryCycles, ev.certifiedCycles);
    return ev;
}

} // namespace pipestitch::sim
