/**
 * @file
 * Tokens and token FIFOs.
 *
 * A token is a 32-bit value plus a debug-only thread tag used to
 * check the ordered-dataflow invariant (tokens of different threads
 * never interleave incorrectly at an operator). The tag models
 * nothing architectural: Pipestitch is tagless by design (Sec. 3),
 * and the simulator only uses tags for verification.
 */

#ifndef PIPESTITCH_SIM_TOKEN_HH
#define PIPESTITCH_SIM_TOKEN_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "sir/program.hh"

namespace pipestitch::sim {

using Word = sir::Word;

/** No-thread debug tag. */
constexpr int32_t NoTag = -1;

struct Token
{
    Word value = 0;
    int32_t tag = NoTag;
    /** Cycle the token became visible in its buffer (simulator
     *  bookkeeping: PEs sample only tokens born in earlier cycles;
     *  combinational router CF has no such restriction). */
    int64_t born = -1;
};

/**
 * Bounded FIFO of tokens.
 *
 * In destination-buffered mode each *input port* owns one and the
 * single consumer pops the head. In source-buffered mode each
 * *output port* owns one and multicasts: every consumer endpoint
 * reads the entries in order through its own cursor, and an entry
 * retires once every endpoint has consumed it. A consumer lagging by
 * more than the buffer depth therefore stalls the producer — the
 * imbalanced split-join penalty of source buffering (Fig. 12a) —
 * while small phase offsets between endpoints are absorbed.
 *
 * Storage is a fixed-capacity ring buffer sized once from the
 * configured depth, inline for the paper's depths (4–16) with a
 * one-time heap fallback beyond that. This is the simulator's
 * hottest data structure — one instance per buffered port, pushed
 * and popped every fire — and the previous std::deque paid a block
 * allocation per FIFO up front plus allocator traffic whenever a
 * push crossed a block boundary (see BM_TokenFifo).
 */
class TokenFifo
{
  public:
    explicit TokenFifo(int depth = 0) { setDepth(depth); }

    /** Set capacity. Only valid while the FIFO is empty. */
    void
    setDepth(int d)
    {
        ps_assert(count == 0, "resizing a non-empty token fifo");
        depth = d;
        if (depth > kInlineCap) {
            overflow.assign(static_cast<size_t>(depth), Token{});
        } else {
            // Shrinking back across the boundary must release the
            // heap buffer: at() dispatches on overflow.empty(), so a
            // stale vector would silently keep every access on the
            // heap path (and pin the old allocation) forever.
            overflow.clear();
            overflow.shrink_to_fit();
        }
        head_ = 0;
    }

    /** True while tokens live in the inline ring (depth <=
     *  kInlineDepth); tests pin the boundary with this. */
    bool usesInlineStorage() const { return overflow.empty(); }

    /** Largest depth served by the inline ring. */
    static constexpr int kInlineDepth = 16;

    /** Configure multicast endpoints (source-buffer mode). */
    void
    initEndpoints(int n)
    {
        consumed.assign(static_cast<size_t>(n), 0);
    }

    bool empty() const { return count == 0; }
    bool full() const { return count >= depth; }
    int size() const { return count; }
    int freeSlots() const { return depth - count; }
    int capacity() const { return depth; }

    const Token &
    head() const
    {
        return at(0);
    }

    void
    push(const Token &t)
    {
        ps_assert(!full(), "token fifo overflow");
        slot(count) = t;
        count++;
    }

    /** Single-consumer pop (destination-buffer mode). */
    Token
    pop()
    {
        ps_assert(count > 0, "token fifo underflow");
        Token t = slot(0);
        advanceHead();
        retired++;
        return t;
    }

    /** @{ Multicast endpoint interface (source-buffer mode). */

    /**
     * Availability for a consumer that can snoop buffered entries
     * beyond the head (combinational router CF: by the time a value
     * is registered it has already flowed through the switch).
     */
    bool
    availFor(int endpoint) const
    {
        int64_t offset =
            consumed[static_cast<size_t>(endpoint)] - retired;
        return offset < static_cast<int64_t>(count);
    }

    /**
     * Availability for a registered PE endpoint: only the head
     * entry is driven onto the network, so a consumer that already
     * took the head must wait for every other endpoint to take it
     * before seeing the next token (the Fig. 12a multicast hold).
     */
    bool
    availHeadFor(int endpoint) const
    {
        return count > 0 &&
               consumed[static_cast<size_t>(endpoint)] == retired;
    }

    const Token &
    peekFor(int endpoint) const
    {
        int64_t offset =
            consumed[static_cast<size_t>(endpoint)] - retired;
        return at(static_cast<int>(offset));
    }

    /**
     * Advance @p endpoint 's cursor; retires fully-read entries.
     * @return the number of entries retired (0 while another
     * endpoint still lags behind the head).
     */
    int
    takeFor(int endpoint)
    {
        consumed[static_cast<size_t>(endpoint)]++;
        int64_t minC = consumed[0];
        for (int64_t c : consumed)
            minC = std::min(minC, c);
        int n = 0;
        while (retired < minC) {
            advanceHead();
            retired++;
            n++;
        }
        return n;
    }
    /** @} */

  private:
    /** Depths the paper evaluates (4/8/16) stay allocation-free. */
    static constexpr int kInlineCap = kInlineDepth;

    const Token &
    at(int i) const
    {
        int idx = head_ + i;
        int cap = std::max(depth, 1);
        if (idx >= cap)
            idx -= cap;
        const Token *buf = overflow.empty() ? inlineBuf
                                            : overflow.data();
        return buf[idx];
    }

    Token &
    slot(int i)
    {
        return const_cast<Token &>(at(i));
    }

    void
    advanceHead()
    {
        head_++;
        count--;
        if (head_ >= std::max(depth, 1))
            head_ = 0;
    }

    Token inlineBuf[kInlineCap];
    std::vector<Token> overflow; ///< storage when depth > inline cap
    int depth = 0;
    int head_ = 0;  ///< ring index of the oldest entry
    int count = 0;  ///< live entries
    std::vector<int64_t> consumed; ///< per-endpoint read counts
    int64_t retired = 0;
};

} // namespace pipestitch::sim

#endif // PIPESTITCH_SIM_TOKEN_HH
