/**
 * @file
 * Tokens and token FIFOs.
 *
 * A token is a 32-bit value plus a debug-only thread tag used to
 * check the ordered-dataflow invariant (tokens of different threads
 * never interleave incorrectly at an operator). The tag models
 * nothing architectural: Pipestitch is tagless by design (Sec. 3),
 * and the simulator only uses tags for verification.
 */

#ifndef PIPESTITCH_SIM_TOKEN_HH
#define PIPESTITCH_SIM_TOKEN_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "base/logging.hh"
#include "sir/program.hh"

namespace pipestitch::sim {

using Word = sir::Word;

/** No-thread debug tag. */
constexpr int32_t NoTag = -1;

struct Token
{
    Word value = 0;
    int32_t tag = NoTag;
    /** Cycle the token became visible in its buffer (simulator
     *  bookkeeping: PEs sample only tokens born in earlier cycles;
     *  combinational router CF has no such restriction). */
    int64_t born = -1;
};

/**
 * Bounded FIFO of tokens.
 *
 * In destination-buffered mode each *input port* owns one and the
 * single consumer pops the head. In source-buffered mode each
 * *output port* owns one and multicasts: every consumer endpoint
 * reads the entries in order through its own cursor, and an entry
 * retires once every endpoint has consumed it. A consumer lagging by
 * more than the buffer depth therefore stalls the producer — the
 * imbalanced split-join penalty of source buffering (Fig. 12a) —
 * while small phase offsets between endpoints are absorbed.
 */
class TokenFifo
{
  public:
    explicit TokenFifo(int depth = 0) : depth(depth) {}

    void
    setDepth(int d)
    {
        depth = d;
    }

    /** Configure multicast endpoints (source-buffer mode). */
    void
    initEndpoints(int n)
    {
        consumed.assign(static_cast<size_t>(n), 0);
    }

    bool empty() const { return q.empty(); }
    bool full() const { return size() >= depth; }
    int size() const { return static_cast<int>(q.size()); }
    int freeSlots() const { return depth - size(); }
    int capacity() const { return depth; }

    const Token &
    head() const
    {
        return q.front();
    }

    void
    push(const Token &t)
    {
        ps_assert(!full(), "token fifo overflow");
        q.push_back(t);
    }

    /** Single-consumer pop (destination-buffer mode). */
    Token
    pop()
    {
        Token t = q.front();
        q.pop_front();
        retired++;
        return t;
    }

    /** @{ Multicast endpoint interface (source-buffer mode). */

    /**
     * Availability for a consumer that can snoop buffered entries
     * beyond the head (combinational router CF: by the time a value
     * is registered it has already flowed through the switch).
     */
    bool
    availFor(int endpoint) const
    {
        int64_t offset =
            consumed[static_cast<size_t>(endpoint)] - retired;
        return offset < static_cast<int64_t>(q.size());
    }

    /**
     * Availability for a registered PE endpoint: only the head
     * entry is driven onto the network, so a consumer that already
     * took the head must wait for every other endpoint to take it
     * before seeing the next token (the Fig. 12a multicast hold).
     */
    bool
    availHeadFor(int endpoint) const
    {
        return !q.empty() &&
               consumed[static_cast<size_t>(endpoint)] == retired;
    }

    const Token &
    peekFor(int endpoint) const
    {
        int64_t offset =
            consumed[static_cast<size_t>(endpoint)] - retired;
        return q[static_cast<size_t>(offset)];
    }

    /**
     * Advance @p endpoint 's cursor; retires fully-read entries.
     * @return the number of entries retired (0 while another
     * endpoint still lags behind the head).
     */
    int
    takeFor(int endpoint)
    {
        consumed[static_cast<size_t>(endpoint)]++;
        int64_t minC = consumed[0];
        for (int64_t c : consumed)
            minC = std::min(minC, c);
        int n = 0;
        while (retired < minC) {
            q.pop_front();
            retired++;
            n++;
        }
        return n;
    }
    /** @} */

  private:
    std::deque<Token> q;
    int depth;
    std::vector<int64_t> consumed; ///< per-endpoint read counts
    int64_t retired = 0;
};

} // namespace pipestitch::sim

#endif // PIPESTITCH_SIM_TOKEN_HH
