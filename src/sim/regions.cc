#include "sim/regions.hh"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

#include "base/logging.hh"

namespace pipestitch::sim {

using dfg::Graph;
using dfg::NodeId;

namespace {

struct UnionFind
{
    std::vector<int> parent;

    explicit UnionFind(int n) : parent(static_cast<size_t>(n))
    {
        std::iota(parent.begin(), parent.end(), 0);
    }

    int
    find(int x)
    {
        while (parent[static_cast<size_t>(x)] != x) {
            parent[static_cast<size_t>(x)] =
                parent[static_cast<size_t>(
                    parent[static_cast<size_t>(x)])];
            x = parent[static_cast<size_t>(x)];
        }
        return x;
    }

    void
    unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a != b)
            parent[static_cast<size_t>(std::max(a, b))] =
                std::min(a, b);
    }
};

struct Unit
{
    int id = 0; ///< lowest member node id (determinism key)
    int weight = 0;
    std::vector<NodeId> members;
};

} // namespace

RegionPlan
partitionRegions(const Program &prog, int jobs)
{
    const Graph &g = prog.graph();
    const int n = g.size();
    RegionPlan plan;
    plan.count = std::max(1, std::min(jobs, std::max(1, n)));
    plan.regionOf.assign(static_cast<size_t>(n), 0);
    plan.channelCut = prog.hasChannels;

    // --- atomic units -------------------------------------------------
    // Dispatch groups stay whole (one region owns each SyncPlane);
    // for tiled programs every wire edge is intra-tile, so uniting
    // wire endpoints reproduces the tile decomposition exactly.
    UnionFind uf(n);
    for (const auto &group : prog.dispatchGroups) {
        for (size_t i = 1; i < group.size(); i++)
            uf.unite(group[0], group[i]);
    }
    if (prog.hasChannels) {
        for (NodeId id = 0; id < n; id++) {
            const auto &refs = prog.inputRefs[static_cast<size_t>(id)];
            for (size_t in = 0; in < refs.size(); in++) {
                if (!refs[in].wired())
                    continue;
                if (prog.chanIdOf[static_cast<size_t>(id)][in] >= 0)
                    continue; // channel edges may cross regions
                uf.unite(refs[in].prod, id);
            }
        }
    }

    std::vector<int> unitOf(static_cast<size_t>(n), -1);
    std::vector<Unit> units;
    for (NodeId id = 0; id < n; id++) {
        int root = uf.find(id);
        if (unitOf[static_cast<size_t>(root)] < 0) {
            unitOf[static_cast<size_t>(root)] =
                static_cast<int>(units.size());
            units.push_back(Unit{id, 0, {}});
        }
        int u = unitOf[static_cast<size_t>(root)];
        unitOf[static_cast<size_t>(id)] = u;
        units[static_cast<size_t>(u)].weight++;
        units[static_cast<size_t>(u)].members.push_back(id);
    }
    const int nu = static_cast<int>(units.size());
    std::vector<int> regionOfUnit(static_cast<size_t>(nu), 0);

    // Unit adjacency over wire (non-channel) edges, weighted by edge
    // multiplicity.
    std::vector<std::vector<std::pair<int, int>>> adj(
        static_cast<size_t>(nu));
    auto addAdj = [&](int a, int b) {
        for (auto &e : adj[static_cast<size_t>(a)]) {
            if (e.first == b) {
                e.second++;
                return;
            }
        }
        adj[static_cast<size_t>(a)].push_back({b, 1});
    };
    for (NodeId id = 0; id < n; id++) {
        const auto &refs = prog.inputRefs[static_cast<size_t>(id)];
        for (size_t in = 0; in < refs.size(); in++) {
            if (!refs[in].wired())
                continue;
            if (prog.hasChannels &&
                prog.chanIdOf[static_cast<size_t>(id)][in] >= 0)
                continue;
            int a = unitOf[static_cast<size_t>(refs[in].prod)];
            int b = unitOf[static_cast<size_t>(id)];
            if (a == b)
                continue;
            addAdj(a, b);
            addAdj(b, a);
        }
    }

    const int k = plan.count;
    if (prog.hasChannels) {
        // Tile-boundary mode: bin-pack whole tiles onto K regions,
        // heaviest first, always into the lightest region (ties to
        // the lowest index) — deterministic LPT.
        std::vector<int> order(static_cast<size_t>(nu));
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            const Unit &ua = units[static_cast<size_t>(a)];
            const Unit &ub = units[static_cast<size_t>(b)];
            if (ua.weight != ub.weight)
                return ua.weight > ub.weight;
            return ua.id < ub.id;
        });
        std::vector<int> load(static_cast<size_t>(k), 0);
        for (int u : order) {
            int best = 0;
            for (int r = 1; r < k; r++) {
                if (load[static_cast<size_t>(r)] <
                    load[static_cast<size_t>(best)])
                    best = r;
            }
            regionOfUnit[static_cast<size_t>(u)] = best;
            load[static_cast<size_t>(best)] +=
                units[static_cast<size_t>(u)].weight;
        }
    } else {
        // BFS min-cut growth (the tiled mapper's partitioning idiom):
        // lay units out in BFS order over the wire adjacency — a
        // rough pipeline-depth layering for compiler-emitted graphs —
        // and cut the sequence into K weight-balanced chunks.
        std::vector<int> order;
        order.reserve(static_cast<size_t>(nu));
        std::vector<uint8_t> seen(static_cast<size_t>(nu), 0);
        for (int seed = 0; seed < nu; seed++) {
            if (seen[static_cast<size_t>(seed)])
                continue;
            size_t qhead = order.size();
            order.push_back(seed);
            seen[static_cast<size_t>(seed)] = 1;
            while (qhead < order.size()) {
                int u = order[qhead++];
                std::vector<int> next;
                for (const auto &e : adj[static_cast<size_t>(u)]) {
                    if (!seen[static_cast<size_t>(e.first)])
                        next.push_back(e.first);
                }
                std::sort(next.begin(), next.end(), [&](int a, int b) {
                    return units[static_cast<size_t>(a)].id <
                           units[static_cast<size_t>(b)].id;
                });
                for (int v : next) {
                    if (!seen[static_cast<size_t>(v)]) {
                        seen[static_cast<size_t>(v)] = 1;
                        order.push_back(v);
                    }
                }
            }
        }
        int total = n;
        int placed = 0;
        int region = 0;
        for (int u : order) {
            // Advance to the next chunk once this one reached its
            // proportional share of the node weight.
            while (region < k - 1 &&
                   placed >= ((region + 1) * total + k - 1) / k) {
                region++;
            }
            regionOfUnit[static_cast<size_t>(u)] = region;
            placed += units[static_cast<size_t>(u)].weight;
        }

        // Refinement: move units toward the region they are most
        // connected to when that strictly cuts fewer wires and keeps
        // the balance within slack (mirrors the tiled mapper's
        // connectivity-gain passes).
        const int slack = std::max(1, (total + k - 1) / k +
                                          std::max(1, total / (4 * k)));
        std::vector<int> load(static_cast<size_t>(k), 0);
        for (int u = 0; u < nu; u++) {
            load[static_cast<size_t>(
                regionOfUnit[static_cast<size_t>(u)])] +=
                units[static_cast<size_t>(u)].weight;
        }
        for (int pass = 0; pass < 4; pass++) {
            bool moved = false;
            for (int u : order) {
                int cur = regionOfUnit[static_cast<size_t>(u)];
                std::vector<int> conn(static_cast<size_t>(k), 0);
                for (const auto &e : adj[static_cast<size_t>(u)]) {
                    conn[static_cast<size_t>(regionOfUnit[
                        static_cast<size_t>(e.first)])] += e.second;
                }
                int best = cur;
                for (int r = 0; r < k; r++) {
                    if (r == cur)
                        continue;
                    if (conn[static_cast<size_t>(r)] <=
                        conn[static_cast<size_t>(best)])
                        continue;
                    if (load[static_cast<size_t>(r)] +
                            units[static_cast<size_t>(u)].weight >
                        slack)
                        continue;
                    best = r;
                }
                if (best != cur) {
                    load[static_cast<size_t>(cur)] -=
                        units[static_cast<size_t>(u)].weight;
                    load[static_cast<size_t>(best)] +=
                        units[static_cast<size_t>(u)].weight;
                    regionOfUnit[static_cast<size_t>(u)] = best;
                    moved = true;
                }
            }
            if (!moved)
                break;
        }
    }

    for (NodeId id = 0; id < n; id++) {
        plan.regionOf[static_cast<size_t>(id)] =
            regionOfUnit[static_cast<size_t>(
                unitOf[static_cast<size_t>(id)])];
    }
    plan.nodes.assign(static_cast<size_t>(k), {});
    for (NodeId id = 0; id < n; id++) {
        plan.nodes[static_cast<size_t>(
            plan.regionOf[static_cast<size_t>(id)])].push_back(id);
    }

    for (NodeId id = 0; id < n; id++) {
        const auto &refs = prog.inputRefs[static_cast<size_t>(id)];
        for (size_t in = 0; in < refs.size(); in++) {
            if (!refs[in].wired())
                continue;
            if (plan.regionOf[static_cast<size_t>(refs[in].prod)] ==
                plan.regionOf[static_cast<size_t>(id)])
                continue;
            bool isChan =
                prog.hasChannels &&
                prog.chanIdOf[static_cast<size_t>(id)][in] >= 0;
            if (isChan)
                plan.cutChannels++;
            else
                plan.cutWires++;
        }
    }
    return plan;
}

PartitionVerdict
verifyPartition(const Program &prog, const RegionPlan &plan)
{
    const Graph &g = prog.graph();
    const int n = g.size();
    PartitionVerdict v;
    std::ostringstream out;
    std::set<NodeId> bad;

    auto fail = [&](const std::string &line) {
        v.ok = false;
        out << line << "\n";
    };

    // --- plan shape ---------------------------------------------------
    if (plan.count < 1)
        fail("region count " + std::to_string(plan.count) + " < 1");
    if (static_cast<int>(plan.regionOf.size()) != n) {
        fail("regionOf covers " +
             std::to_string(plan.regionOf.size()) + " nodes, graph has " +
             std::to_string(n));
        // Per-node checks below would index out of bounds.
        v.diagnostic = out.str();
        return v;
    }
    for (NodeId id = 0; id < n; id++) {
        int r = plan.regionOf[static_cast<size_t>(id)];
        if (r < 0 || r >= plan.count) {
            fail("node " + std::to_string(id) + " in region " +
                 std::to_string(r) + ", valid range [0, " +
                 std::to_string(plan.count) + ")");
            bad.insert(id);
        }
    }
    if (static_cast<int>(plan.nodes.size()) != plan.count) {
        fail("plan lists " + std::to_string(plan.nodes.size()) +
             " regions, count says " + std::to_string(plan.count));
    } else {
        int listed = 0;
        for (int r = 0; r < plan.count; r++) {
            for (NodeId id : plan.nodes[static_cast<size_t>(r)]) {
                listed++;
                if (id < 0 || id >= n ||
                    plan.regionOf[static_cast<size_t>(id)] != r) {
                    fail("region " + std::to_string(r) +
                         " lists node " + std::to_string(id) +
                         " but regionOf disagrees");
                    if (id >= 0 && id < n)
                        bad.insert(id);
                }
            }
        }
        if (v.ok && listed != n)
            fail("region lists hold " + std::to_string(listed) +
                 " nodes, graph has " + std::to_string(n));
    }
    if (!v.ok) {
        v.diagnostic = out.str();
        v.violations.assign(bad.begin(), bad.end());
        return v;
    }

    // --- dispatch groups atomic (one region owns each SyncPlane) ------
    for (const auto &group : prog.dispatchGroups) {
        if (group.empty())
            continue;
        int home = plan.regionOf[static_cast<size_t>(group[0])];
        for (NodeId member : group) {
            if (plan.regionOf[static_cast<size_t>(member)] == home)
                continue;
            fail("dispatch group of node " +
                 std::to_string(group[0]) + " split: member " +
                 std::to_string(member) + " in region " +
                 std::to_string(
                     plan.regionOf[static_cast<size_t>(member)]) +
                 ", owner region " + std::to_string(home));
            for (NodeId m : group)
                bad.insert(m);
            break;
        }
    }

    // --- cut edges ----------------------------------------------------
    int cutWires = 0;
    int cutChannels = 0;
    for (NodeId id = 0; id < n; id++) {
        const auto &refs = prog.inputRefs[static_cast<size_t>(id)];
        for (size_t in = 0; in < refs.size(); in++) {
            if (!refs[in].wired())
                continue;
            NodeId prod = refs[in].prod;
            if (plan.regionOf[static_cast<size_t>(prod)] ==
                plan.regionOf[static_cast<size_t>(id)])
                continue;
            int ch = prog.hasChannels
                         ? prog.chanIdOf[static_cast<size_t>(id)][in]
                         : -1;
            if (ch < 0) {
                cutWires++;
                continue;
            }
            cutChannels++;
            const Program::Channel &c =
                prog.channels[static_cast<size_t>(ch)];
            if (c.latency < 1 || c.capacity < 1) {
                fail("cut channel " + std::to_string(prod) + " -> " +
                     std::to_string(id) + " (in " +
                     std::to_string(in) + ") has latency " +
                     std::to_string(c.latency) + ", capacity " +
                     std::to_string(c.capacity) +
                     "; the decoupling window needs both >= 1");
                bad.insert(prod);
                bad.insert(id);
            }
        }
    }
    if (cutWires != plan.cutWires)
        fail("plan says " + std::to_string(plan.cutWires) +
             " cut wires, recount finds " + std::to_string(cutWires));
    if (cutChannels != plan.cutChannels)
        fail("plan says " + std::to_string(plan.cutChannels) +
             " cut channels, recount finds " +
             std::to_string(cutChannels));

    v.diagnostic = out.str();
    v.violations.assign(bad.begin(), bad.end());
    return v;
}

} // namespace pipestitch::sim
