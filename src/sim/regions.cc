#include "sim/regions.hh"

#include <algorithm>
#include <numeric>

#include "base/logging.hh"

namespace pipestitch::sim {

using dfg::Graph;
using dfg::NodeId;

namespace {

struct UnionFind
{
    std::vector<int> parent;

    explicit UnionFind(int n) : parent(static_cast<size_t>(n))
    {
        std::iota(parent.begin(), parent.end(), 0);
    }

    int
    find(int x)
    {
        while (parent[static_cast<size_t>(x)] != x) {
            parent[static_cast<size_t>(x)] =
                parent[static_cast<size_t>(
                    parent[static_cast<size_t>(x)])];
            x = parent[static_cast<size_t>(x)];
        }
        return x;
    }

    void
    unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a != b)
            parent[static_cast<size_t>(std::max(a, b))] =
                std::min(a, b);
    }
};

struct Unit
{
    int id = 0; ///< lowest member node id (determinism key)
    int weight = 0;
    std::vector<NodeId> members;
};

} // namespace

RegionPlan
partitionRegions(const Program &prog, int jobs)
{
    const Graph &g = prog.graph();
    const int n = g.size();
    RegionPlan plan;
    plan.count = std::max(1, std::min(jobs, std::max(1, n)));
    plan.regionOf.assign(static_cast<size_t>(n), 0);
    plan.channelCut = prog.hasChannels;

    // --- atomic units -------------------------------------------------
    // Dispatch groups stay whole (one region owns each SyncPlane);
    // for tiled programs every wire edge is intra-tile, so uniting
    // wire endpoints reproduces the tile decomposition exactly.
    UnionFind uf(n);
    for (const auto &group : prog.dispatchGroups) {
        for (size_t i = 1; i < group.size(); i++)
            uf.unite(group[0], group[i]);
    }
    if (prog.hasChannels) {
        for (NodeId id = 0; id < n; id++) {
            const auto &refs = prog.inputRefs[static_cast<size_t>(id)];
            for (size_t in = 0; in < refs.size(); in++) {
                if (!refs[in].wired())
                    continue;
                if (prog.chanIdOf[static_cast<size_t>(id)][in] >= 0)
                    continue; // channel edges may cross regions
                uf.unite(refs[in].prod, id);
            }
        }
    }

    std::vector<int> unitOf(static_cast<size_t>(n), -1);
    std::vector<Unit> units;
    for (NodeId id = 0; id < n; id++) {
        int root = uf.find(id);
        if (unitOf[static_cast<size_t>(root)] < 0) {
            unitOf[static_cast<size_t>(root)] =
                static_cast<int>(units.size());
            units.push_back(Unit{id, 0, {}});
        }
        int u = unitOf[static_cast<size_t>(root)];
        unitOf[static_cast<size_t>(id)] = u;
        units[static_cast<size_t>(u)].weight++;
        units[static_cast<size_t>(u)].members.push_back(id);
    }
    const int nu = static_cast<int>(units.size());
    std::vector<int> regionOfUnit(static_cast<size_t>(nu), 0);

    // Unit adjacency over wire (non-channel) edges, weighted by edge
    // multiplicity.
    std::vector<std::vector<std::pair<int, int>>> adj(
        static_cast<size_t>(nu));
    auto addAdj = [&](int a, int b) {
        for (auto &e : adj[static_cast<size_t>(a)]) {
            if (e.first == b) {
                e.second++;
                return;
            }
        }
        adj[static_cast<size_t>(a)].push_back({b, 1});
    };
    for (NodeId id = 0; id < n; id++) {
        const auto &refs = prog.inputRefs[static_cast<size_t>(id)];
        for (size_t in = 0; in < refs.size(); in++) {
            if (!refs[in].wired())
                continue;
            if (prog.hasChannels &&
                prog.chanIdOf[static_cast<size_t>(id)][in] >= 0)
                continue;
            int a = unitOf[static_cast<size_t>(refs[in].prod)];
            int b = unitOf[static_cast<size_t>(id)];
            if (a == b)
                continue;
            addAdj(a, b);
            addAdj(b, a);
        }
    }

    const int k = plan.count;
    if (prog.hasChannels) {
        // Tile-boundary mode: bin-pack whole tiles onto K regions,
        // heaviest first, always into the lightest region (ties to
        // the lowest index) — deterministic LPT.
        std::vector<int> order(static_cast<size_t>(nu));
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            const Unit &ua = units[static_cast<size_t>(a)];
            const Unit &ub = units[static_cast<size_t>(b)];
            if (ua.weight != ub.weight)
                return ua.weight > ub.weight;
            return ua.id < ub.id;
        });
        std::vector<int> load(static_cast<size_t>(k), 0);
        for (int u : order) {
            int best = 0;
            for (int r = 1; r < k; r++) {
                if (load[static_cast<size_t>(r)] <
                    load[static_cast<size_t>(best)])
                    best = r;
            }
            regionOfUnit[static_cast<size_t>(u)] = best;
            load[static_cast<size_t>(best)] +=
                units[static_cast<size_t>(u)].weight;
        }
    } else {
        // BFS min-cut growth (the tiled mapper's partitioning idiom):
        // lay units out in BFS order over the wire adjacency — a
        // rough pipeline-depth layering for compiler-emitted graphs —
        // and cut the sequence into K weight-balanced chunks.
        std::vector<int> order;
        order.reserve(static_cast<size_t>(nu));
        std::vector<uint8_t> seen(static_cast<size_t>(nu), 0);
        for (int seed = 0; seed < nu; seed++) {
            if (seen[static_cast<size_t>(seed)])
                continue;
            size_t qhead = order.size();
            order.push_back(seed);
            seen[static_cast<size_t>(seed)] = 1;
            while (qhead < order.size()) {
                int u = order[qhead++];
                std::vector<int> next;
                for (const auto &e : adj[static_cast<size_t>(u)]) {
                    if (!seen[static_cast<size_t>(e.first)])
                        next.push_back(e.first);
                }
                std::sort(next.begin(), next.end(), [&](int a, int b) {
                    return units[static_cast<size_t>(a)].id <
                           units[static_cast<size_t>(b)].id;
                });
                for (int v : next) {
                    if (!seen[static_cast<size_t>(v)]) {
                        seen[static_cast<size_t>(v)] = 1;
                        order.push_back(v);
                    }
                }
            }
        }
        int total = n;
        int placed = 0;
        int region = 0;
        for (int u : order) {
            // Advance to the next chunk once this one reached its
            // proportional share of the node weight.
            while (region < k - 1 &&
                   placed >= ((region + 1) * total + k - 1) / k) {
                region++;
            }
            regionOfUnit[static_cast<size_t>(u)] = region;
            placed += units[static_cast<size_t>(u)].weight;
        }

        // Refinement: move units toward the region they are most
        // connected to when that strictly cuts fewer wires and keeps
        // the balance within slack (mirrors the tiled mapper's
        // connectivity-gain passes).
        const int slack = std::max(1, (total + k - 1) / k +
                                          std::max(1, total / (4 * k)));
        std::vector<int> load(static_cast<size_t>(k), 0);
        for (int u = 0; u < nu; u++) {
            load[static_cast<size_t>(
                regionOfUnit[static_cast<size_t>(u)])] +=
                units[static_cast<size_t>(u)].weight;
        }
        for (int pass = 0; pass < 4; pass++) {
            bool moved = false;
            for (int u : order) {
                int cur = regionOfUnit[static_cast<size_t>(u)];
                std::vector<int> conn(static_cast<size_t>(k), 0);
                for (const auto &e : adj[static_cast<size_t>(u)]) {
                    conn[static_cast<size_t>(regionOfUnit[
                        static_cast<size_t>(e.first)])] += e.second;
                }
                int best = cur;
                for (int r = 0; r < k; r++) {
                    if (r == cur)
                        continue;
                    if (conn[static_cast<size_t>(r)] <=
                        conn[static_cast<size_t>(best)])
                        continue;
                    if (load[static_cast<size_t>(r)] +
                            units[static_cast<size_t>(u)].weight >
                        slack)
                        continue;
                    best = r;
                }
                if (best != cur) {
                    load[static_cast<size_t>(cur)] -=
                        units[static_cast<size_t>(u)].weight;
                    load[static_cast<size_t>(best)] +=
                        units[static_cast<size_t>(u)].weight;
                    regionOfUnit[static_cast<size_t>(u)] = best;
                    moved = true;
                }
            }
            if (!moved)
                break;
        }
    }

    for (NodeId id = 0; id < n; id++) {
        plan.regionOf[static_cast<size_t>(id)] =
            regionOfUnit[static_cast<size_t>(
                unitOf[static_cast<size_t>(id)])];
    }
    plan.nodes.assign(static_cast<size_t>(k), {});
    for (NodeId id = 0; id < n; id++) {
        plan.nodes[static_cast<size_t>(
            plan.regionOf[static_cast<size_t>(id)])].push_back(id);
    }

    for (NodeId id = 0; id < n; id++) {
        const auto &refs = prog.inputRefs[static_cast<size_t>(id)];
        for (size_t in = 0; in < refs.size(); in++) {
            if (!refs[in].wired())
                continue;
            if (plan.regionOf[static_cast<size_t>(refs[in].prod)] ==
                plan.regionOf[static_cast<size_t>(id)])
                continue;
            bool isChan =
                prog.hasChannels &&
                prog.chanIdOf[static_cast<size_t>(id)][in] >= 0;
            if (isChan)
                plan.cutChannels++;
            else
                plan.cutWires++;
        }
    }
    return plan;
}

} // namespace pipestitch::sim
