#include "runner/serve.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "base/hash.hh"
#include "base/logging.hh"
#include "core/batch.hh"
#include "core/system.hh"
#include "runner/sweep.hh"
#include "scalar/interpreter.hh"
#include "sim/report.hh"
#include "sir/parser.hh"
#include "trace/chrome_trace.hh"
#include "trace/json.hh"
#include "trace/json_parse.hh"
#include "workloads/kernels.hh"

namespace pipestitch::runner {

namespace {

int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One admitted request, ready to execute. */
struct ParsedRequest
{
    std::string id;
    KernelPtr kernel;
    RunConfig cfg;
    std::string traceFile;
    int batch = 1; ///< shard count (>1 runs the batched path)
    uint64_t key = 0; ///< content key (kernel + config + trace file)
};

bool
variantFromName(const std::string &name,
                compiler::ArchVariant &out)
{
    if (name == "riptide")
        out = compiler::ArchVariant::RipTide;
    else if (name == "pipestitch")
        out = compiler::ArchVariant::Pipestitch;
    else if (name == "pipesb")
        out = compiler::ArchVariant::PipeSB;
    else if (name == "pipecfin")
        out = compiler::ArchVariant::PipeCFiN;
    else if (name == "pipecfop")
        out = compiler::ArchVariant::PipeCFoP;
    else
        return false;
    return true;
}

std::string
statusPayload(const char *status, const std::string &error)
{
    sim::Report r;
    r.add("schema_version", sim::kJsonSchemaVersion);
    r.add("status", status);
    if (!error.empty())
        r.add("error", error);
    return r.toJson();
}

/**
 * Parse one request line into @p out. @return false with @p error
 * set on any problem; @p out.id is still filled when the JSON was
 * readable, so the error response can carry the caller's id.
 */
bool
parseRequest(const std::string &line, const RunConfig &base,
             ParsedRequest &out, std::string &error)
{
    trace::JsonValue v;
    if (!trace::parseJson(line, v, &error)) {
        error = "bad JSON: " + error;
        return false;
    }
    if (!v.isObject()) {
        error = "request must be a JSON object";
        return false;
    }
    if (const auto *id = v.find("id"))
        out.id = id->asString();

    const auto *sirText = v.find("sir");
    if (!sirText ||
        sirText->kind != trace::JsonValue::Kind::String) {
        error = "missing \"sir\" (inline kernel text)";
        return false;
    }

    RunConfig cfg = base;
    if (const auto *s = v.find("variant")) {
        if (!variantFromName(s->asString(), cfg.variant)) {
            error = "unknown variant '" + s->asString() + "'";
            return false;
        }
    }
    if (const auto *d = v.find("depth"))
        cfg.sim.bufferDepth = static_cast<int>(d->asInt(4));
    if (const auto *u = v.find("unroll"))
        cfg.unrollFactor = static_cast<int>(u->asInt(1));
    if (const auto *t = v.find("tm"))
        cfg.allowTimeMultiplex = t->asBool();
    if (const auto *m = v.find("map"))
        cfg.map = m->asBool(true);
    if (const auto *g = v.find("verify"))
        cfg.verifyAgainstGolden = g->asBool(true);
    if (const auto *c = v.find("max_cycles"))
        cfg.sim.maxCycles = c->asInt(cfg.sim.maxCycles);
    if (const auto *tf = v.find("trace_file"))
        out.traceFile = tf->asString();
    if (const auto *s = v.find("scheduler")) {
        const std::string name = s->asString();
        if (name == "dense") {
            cfg.sim.scheduler = sim::SimConfig::Scheduler::DenseScan;
        } else if (name == "ready") {
            cfg.sim.scheduler = sim::SimConfig::Scheduler::ReadyList;
        } else if (name == "parallel") {
            cfg.sim.scheduler =
                sim::SimConfig::Scheduler::ParallelRegions;
        } else {
            error = "unknown scheduler '" + name +
                    "' (expected dense, ready, or parallel)";
            return false;
        }
    }
    // Tracing requires the observed single-engine path; the
    // parallel engine runs unobserved (its contract is bit-identical
    // *stats*, not an event stream). Reject the combination up
    // front with a structured error rather than silently falling
    // back.
    if (cfg.sim.scheduler ==
            sim::SimConfig::Scheduler::ParallelRegions &&
        !out.traceFile.empty()) {
        error = "\"trace_file\" cannot be combined with "
                "\"scheduler\": \"parallel\" — tracing needs an "
                "observed run; use the ready scheduler";
        return false;
    }
    if (const auto *t = v.find("tiles")) {
        // "TXxTY" overriding the server-default tile arrangement.
        int tx = 0, ty = 0;
        char junk;
        if (std::sscanf(t->asString().c_str(), "%dx%d%c", &tx, &ty,
                        &junk) != 2 ||
            tx < 1 || ty < 1) {
            error = "\"tiles\" must be \"TXxTY\" (e.g. \"2x2\")";
            return false;
        }
        cfg.tilesX = tx;
        cfg.tilesY = ty;
    }
    if (const auto *b = v.find("batch")) {
        out.batch = static_cast<int>(b->asInt(1));
        if (out.batch < 1) {
            error = "\"batch\" must be >= 1";
            return false;
        }
    }

    // The SIR parser and memory binding below were written for batch
    // tools and fatal() on user error; trap that into a response.
    try {
        ScopedFatalTrap trap;
        ScopedQuiet quiet(true);
        auto parsed = sir::parseSir(sirText->str, "<request>");
        workloads::KernelInstance kernel;
        kernel.name = parsed.program.name;
        kernel.prog = std::move(parsed.program);

        const auto *liveins = v.find("liveins");
        for (sir::Reg r : kernel.prog.liveIns) {
            const std::string &name =
                kernel.prog.regNames[static_cast<size_t>(r)];
            sir::Word value = 0;
            if (liveins) {
                if (const auto *x = liveins->find(name))
                    value = static_cast<sir::Word>(x->asInt());
            }
            kernel.liveIns.push_back(value);
        }

        kernel.memory = scalar::makeMemory(kernel.prog);
        if (const auto *init = v.find("init")) {
            if (!init->isObject()) {
                error = "\"init\" must be an object";
                return false;
            }
            for (const auto &[name, vals] : init->members) {
                auto it = parsed.arrays.find(name);
                if (it == parsed.arrays.end()) {
                    error = "init: no array '" + name + "'";
                    return false;
                }
                const auto &arr = kernel.prog.array(it->second);
                if (!vals.isArray() ||
                    static_cast<int64_t>(vals.elems.size()) >
                        arr.words) {
                    error = "init: bad values for '" + name + "'";
                    return false;
                }
                for (size_t i = 0; i < vals.elems.size(); i++) {
                    kernel.memory[static_cast<size_t>(arr.base) +
                                  i] =
                        static_cast<sir::Word>(
                            vals.elems[i].asInt());
                }
            }
        }
        out.kernel =
            std::make_shared<const workloads::KernelInstance>(
                std::move(kernel));
    } catch (const FatalError &e) {
        error = e.what();
        return false;
    }

    out.cfg = cfg;
    Hasher h;
    h.u64(MemoCache::runKey(*out.kernel, cfg))
        .str(out.traceFile)
        .i32(out.batch);
    out.key = h.digest();
    return true;
}

/** Deep-copy a kernel instance (sir::Program bodies are move-only,
 *  so shard replication clones via cloneStmts). */
workloads::KernelInstance
cloneKernel(const workloads::KernelInstance &k)
{
    workloads::KernelInstance out;
    out.name = k.name;
    out.prog = sir::Program(k.prog.name);
    out.prog.numRegs = k.prog.numRegs;
    out.prog.arrays = k.prog.arrays;
    out.prog.regNames = k.prog.regNames;
    out.prog.liveIns = k.prog.liveIns;
    out.prog.memWords = k.prog.memWords;
    out.prog.body = sir::cloneStmts(k.prog.body);
    out.liveIns = k.liveIns;
    out.memory = k.memory;
    return out;
}

/** The batched path: @p req.batch shards of the request's kernel
 *  dealt across the topology's tiles (core/batch.hh). */
std::string
runServeBatch(const ParsedRequest &req)
{
    std::vector<workloads::KernelInstance> shards;
    shards.reserve(static_cast<size_t>(req.batch));
    for (int i = 0; i < req.batch; i++)
        shards.push_back(cloneKernel(*req.kernel));
    std::string err;
    BatchRun batch = runBatch(shards, req.cfg, &err);
    if (!batch.success)
        return statusPayload("error", err);

    sim::Report r;
    r.add("schema_version", sim::kJsonSchemaVersion)
        .add("status", "ok")
        .add("kernel", req.kernel->name)
        .add("variant", compiler::archVariantName(req.cfg.variant))
        .add("tiles", batch.tiles)
        .add("batch", batch.shards)
        .add("total_cycles", batch.totalCycles)
        .add("makespan_cycles", batch.makespanCycles)
        .add("modeled_speedup", batch.modeledSpeedup)
        .add("seconds", batch.seconds);
    return r.toJson();
}

/** Execute one admitted request and render its response payload. */
std::string
runServeRequest(const ParsedRequest &req)
{
    ScopedQuiet quiet(true);
    // Any fatal() raised by pipeline stages that predate the
    // error-out-param plumbing becomes an error response, not a
    // server exit.
    ScopedFatalTrap trap;
    try {
        if (req.batch > 1)
            return runServeBatch(req);
        std::string err;
        PreparedPtr prepared =
            prepareKernel(*req.kernel, req.cfg, &err);
        if (!prepared)
            return statusPayload("error", err);

        trace::ChromeTraceSink chrome;
        RunConfig cfg = req.cfg;
        if (!req.traceFile.empty())
            cfg.sim.observer = &chrome;
        FabricRun run =
            executeOnFabric(*prepared, *req.kernel, cfg, &err);

        // A watchdog expiry is NOT a certified deadlock: the fabric
        // was still making progress when maxCycles elapsed. Clients
        // (and the lint cross-check) rely on the distinction.
        const char *status =
            run.sim.deadlocked
                ? (run.sim.watchdogExpired ? "watchdog"
                                           : "deadlock")
                : (!err.empty() ? "error" : "ok");

        sim::Report r;
        r.add("schema_version", sim::kJsonSchemaVersion)
            .add("status", status)
            .add("kernel", req.kernel->name)
            .add("variant",
                 compiler::archVariantName(req.cfg.variant));
        if (req.cfg.tiled()) {
            r.add("tiles_x", req.cfg.tilesX)
                .add("tiles_y", req.cfg.tilesY);
        }
        if (std::string(status) == "ok") {
            Hasher mem;
            mem.vec(run.memory);
            r.add("cycles", run.cycles())
                .add("seconds", run.seconds)
                .add("energy_pj", run.energy.totalPj())
                .add("edp_pj_s", run.edp)
                .add("ipc", run.sim.stats.ipc())
                .add("threads", run.sim.stats.dispatchSpawns)
                .add("operators", run.compiled.graph.size())
                .add("mem_hash", hashHex(mem.digest()));
        } else {
            r.add("error", err);
        }
        if (!req.traceFile.empty()) {
            std::ofstream f(req.traceFile);
            if (f) {
                chrome.write(f);
                r.add("trace_file", req.traceFile);
            } else {
                r.add("trace_error", "cannot write '" +
                                         req.traceFile + "'");
            }
        }
        return r.toJson();
    } catch (const FatalError &e) {
        return statusPayload("error", e.what());
    }
}

} // namespace

ServeServer::ServeServer(const ServeOptions &options)
    : opts(options), memo(options.cacheDir), pool(options.jobs)
{
}

ServeServer::~ServeServer() = default;

ServeServer::Response
ServeServer::immediate(const std::string &id,
                       const std::string &payload)
{
    std::promise<std::string> p;
    p.set_value(payload);
    return Response{
        id, p.get_future().share(),
        std::make_shared<std::atomic<int64_t>>(nowNs())};
}

ServeServer::Response
ServeServer::submit(const std::string &line)
{
    nReceived.fetch_add(1, std::memory_order_relaxed);

    // Parse on the intake thread: rejects and malformed requests
    // answer immediately, and the content key must gate dedup before
    // admission (a duplicate of an in-flight request is never
    // rejected — it costs no execution slot).
    ParsedRequest req;
    req.cfg.quiet = true;
    req.cfg.cache = &memo;
    std::string error;
    {
        RunConfig base;
        base.quiet = true;
        base.cache = &memo;
        base.fabric = opts.topology.tile;
        base.tilesX = opts.topology.tilesX;
        base.tilesY = opts.topology.tilesY;
        base.interTileLatency = opts.topology.interTileLatency;
        base.interTileCapacity = opts.topology.interTileCapacity;
        if (!parseRequest(line, base, req, error)) {
            nBadRequests.fetch_add(1, std::memory_order_relaxed);
            return immediate(req.id,
                             statusPayload("error", error));
        }
    }

    std::lock_guard<std::mutex> lock(mu);
    auto it = byContent.find(req.key);
    if (it != byContent.end()) {
        nDedupHits.fetch_add(1, std::memory_order_relaxed);
        return Response{req.id, it->second.first,
                        it->second.second};
    }

    int64_t queued = nAccepted.load(std::memory_order_relaxed) -
                     nCompleted.load(std::memory_order_relaxed);
    if (queued >= opts.maxQueue) {
        nRejected.fetch_add(1, std::memory_order_relaxed);
        return immediate(
            req.id,
            statusPayload(
                "rejected",
                csprintf("queue full (%lld queued, limit %d); "
                         "retry later",
                         static_cast<long long>(queued),
                         opts.maxQueue)));
    }

    nAccepted.fetch_add(1, std::memory_order_relaxed);
    int64_t peak = nPeakQueued.load(std::memory_order_relaxed);
    while (queued + 1 > peak &&
           !nPeakQueued.compare_exchange_weak(
               peak, queued + 1, std::memory_order_relaxed)) {
    }

    auto doneNs = std::make_shared<std::atomic<int64_t>>(0);
    std::shared_future<std::string> payload =
        pool.submit([this, req, doneNs] {
                std::string out = runServeRequest(req);
                doneNs->store(nowNs(), std::memory_order_relaxed);
                nCompleted.fetch_add(1,
                                     std::memory_order_relaxed);
                return out;
            })
            .share();
    byContent.emplace(req.key, std::make_pair(payload, doneNs));
    return Response{req.id, payload, doneNs};
}

std::string
ServeServer::render(const Response &r)
{
    const std::string &payload = r.payload.get();
    std::string head =
        "{\"id\":\"" + trace::jsonEscape(r.id) + "\"";
    // Payloads are always JSON objects; stitch the id in front.
    if (payload.size() >= 2 && payload.front() == '{') {
        if (payload == "{}")
            return head + "}";
        return head + "," + payload.substr(1);
    }
    return head + "}";
}

ServeStats
ServeServer::stats() const
{
    ServeStats s;
    s.received = nReceived.load(std::memory_order_relaxed);
    s.accepted = nAccepted.load(std::memory_order_relaxed);
    s.rejected = nRejected.load(std::memory_order_relaxed);
    s.badRequests = nBadRequests.load(std::memory_order_relaxed);
    s.dedupHits = nDedupHits.load(std::memory_order_relaxed);
    s.completed = nCompleted.load(std::memory_order_relaxed);
    s.peakQueued = nPeakQueued.load(std::memory_order_relaxed);
    return s;
}

int
serveLoop(ServeServer &server, std::istream &in, std::ostream &out)
{
    std::deque<ServeServer::Response> pending;
    auto flush = [&](bool block) {
        while (!pending.empty()) {
            auto &front = pending.front();
            if (!block &&
                front.payload.wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready) {
                break;
            }
            out << ServeServer::render(front) << "\n"
                << std::flush;
            pending.pop_front();
        }
    };
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        pending.push_back(server.submit(line));
        flush(false);
    }
    flush(true);
    return 0;
}

namespace {

/** Distinct request bodies (JSON objects without ids) for the load
 *  generator: two kernel shapes (streaming scale, data-dependent
 *  inner loop) in surface SIR syntax, crossed with variants and
 *  buffer depths, input arrays inlined so every run is real. */
std::vector<std::string>
benchRequestBodies(int unique)
{
    std::vector<std::string> bodies;
    for (int i = 0; static_cast<int>(bodies.size()) < unique;
         i++) {
        int n = (i % 4 < 2) ? 8 : 12;
        const char *variant =
            (i % 8) < 4 ? "pipestitch" : "riptide";
        int depth = (i % 2) ? 8 : 4;
        bool steps = (i / 8) % 2; // alternate kernel shape

        std::string sir;
        if (steps) {
            sir = csprintf("program bench_steps_%d\n"
                           "array seeds %d\n"
                           "array out %d\n"
                           "livein n\n"
                           "livein threshold\n"
                           "\n"
                           "foreach i = 0 .. n:\n"
                           "  v = load seeds[i]\n"
                           "  c = const 0\n"
                           "  while:\n"
                           "    big = gt v threshold\n"
                           "  cond big\n"
                           "  do:\n"
                           "    half = shr v 1\n"
                           "    v = add half 0\n"
                           "    c = add c 1\n"
                           "  end\n"
                           "  store out[i] = c\n"
                           "end\n",
                           i, n, n);
        } else {
            sir = csprintf("program bench_scale_%d\n"
                           "array x %d\n"
                           "array y %d\n"
                           "livein n\n"
                           "\n"
                           "foreach i = 0 .. n:\n"
                           "  v = load x[i]\n"
                           "  s = mul v %d\n"
                           "  r = add s %d\n"
                           "  store y[i] = r\n"
                           "end\n",
                           i, n, n, 3 + i % 5, 7 + i % 3);
        }

        std::ostringstream os;
        trace::JsonWriter w(os);
        w.beginObject();
        w.key("sir").value(sir);
        w.key("variant").value(variant);
        w.key("depth").value(depth);
        w.key("liveins").beginObject();
        w.key("n").value(n);
        if (steps)
            w.key("threshold").value(3);
        w.endObject();
        w.key("init").beginObject();
        w.key(steps ? "seeds" : "x").beginArray();
        for (int a = 0; a < n; a++)
            w.value(1 + (a * 17 + i * 29) % 97);
        w.endArray();
        w.endObject();
        w.endObject();
        bodies.push_back(os.str());
    }
    return bodies;
}

} // namespace

std::string
runServeBench(const ServeOptions &options,
              const ServeBenchOptions &bench)
{
    ServeOptions opts = options;
    // The bench measures behavior with the whole burst queued, so
    // the admission bound must cover it (pass a smaller --queue to
    // study rejects instead).
    opts.maxQueue = std::max(opts.maxQueue, bench.requests + 16);
    ServeServer server(opts);

    std::vector<std::string> bodies =
        benchRequestBodies(std::max(1, bench.unique));
    int n = bench.requests;

    std::vector<ServeServer::Response> responses;
    responses.reserve(static_cast<size_t>(n));
    std::vector<int64_t> submitNs(static_cast<size_t>(n));
    int64_t t0 = nowNs();
    for (int i = 0; i < n; i++) {
        const std::string &body =
            bodies[static_cast<size_t>(i) % bodies.size()];
        std::string line = "{\"id\":\"r" + std::to_string(i) +
                           "\"," + body.substr(1);
        submitNs[static_cast<size_t>(i)] = nowNs();
        responses.push_back(server.submit(line));
    }
    int64_t submittedNs = nowNs();

    std::vector<double> latMs(static_cast<size_t>(n));
    int64_t lastDone = submittedNs;
    int64_t okCount = 0;
    for (int i = 0; i < n; i++) {
        const auto &resp = responses[static_cast<size_t>(i)];
        const std::string &payload = resp.payload.get();
        if (payload.find("\"status\":\"ok\"") != std::string::npos)
            okCount++;
        int64_t done =
            resp.doneNs->load(std::memory_order_relaxed);
        if (done == 0)
            done = submitNs[static_cast<size_t>(i)];
        lastDone = std::max(lastDone, done);
        latMs[static_cast<size_t>(i)] =
            std::max<int64_t>(
                0, done - submitNs[static_cast<size_t>(i)]) /
            1e6;
    }
    std::sort(latMs.begin(), latMs.end());
    auto pct = [&](int p) {
        size_t idx = std::min(
            latMs.size() - 1,
            static_cast<size_t>(latMs.size()) * // round down
                static_cast<size_t>(p) / 100);
        return latMs[idx];
    };
    double wallS =
        static_cast<double>(lastDone - t0) / 1e9;

    ServeStats st = server.stats();
    sim::Report r;
    r.add("schema_version", sim::kJsonSchemaVersion)
        .add("requests", n)
        .add("unique", static_cast<int64_t>(bodies.size()))
        .add("jobs", server.threadCount())
        .add("queue_limit", opts.maxQueue)
        .add("accepted", st.accepted)
        .add("rejected", st.rejected)
        .add("dedup_hits", st.dedupHits)
        .add("dedup_rate",
             n > 0 ? static_cast<double>(st.dedupHits) / n : 0.0)
        .add("peak_queued", st.peakQueued)
        .add("ok", okCount)
        .add("failed", n - okCount)
        .add("submit_s",
             static_cast<double>(submittedNs - t0) / 1e9)
        .add("wall_s", wallS)
        .add("rps", wallS > 0 ? n / wallS : 0.0)
        .add("p50_ms", pct(50))
        .add("p99_ms", pct(99));
    return r.toJson();
}

} // namespace pipestitch::runner
