#include "runner/sweep.hh"

#include "analysis/throughput.hh"
#include "dfg/analysis.hh"
#include "sim/program.hh"

namespace pipestitch::runner {

Runner::Runner(const RunnerOptions &options)
    : opts(options), memo(options.memoize ? options.cacheDir : ""),
      workers(options.jobs)
{
}

std::shared_future<FabricRun>
Runner::enqueue(KernelPtr kernel, const RunConfig &config)
{
    RunConfig cfg = config;
    if (opts.memoize)
        cfg.cache = &memo;
    if (opts.quietRuns)
        cfg.quiet = true;

    // Observed or traced runs exist for their side effects — never
    // collapse them onto another job's execution. Stage memoization
    // still applies.
    bool dedupable = opts.memoize && !cfg.sim.observer &&
                     !cfg.sim.trace;
    uint64_t key = dedupable ? MemoCache::runKey(*kernel, cfg) : 0;
    if (dedupable) {
        std::lock_guard<std::mutex> lock(inflightMu);
        auto it = inflight.find(key);
        if (it != inflight.end()) {
            nDedupHits++;
            return it->second;
        }
    }

    std::shared_future<FabricRun> fut =
        workers
            .submit(
                [kernel = std::move(kernel), cfg] {
                    return runOnFabric(*kernel, cfg);
                })
            .share();
    if (dedupable) {
        std::lock_guard<std::mutex> lock(inflightMu);
        inflight.emplace(key, fut);
    }
    return fut;
}

FabricRun
Runner::run(KernelPtr kernel, const RunConfig &config)
{
    return enqueue(std::move(kernel), config).get();
}

int64_t
Runner::dedupHits() const
{
    std::lock_guard<std::mutex> lock(inflightMu);
    return nDedupHits;
}

size_t
Sweep::add(KernelPtr kernel, const RunConfig &config)
{
    SweepJob job;
    job.kernel = kernel;
    job.config = config;
    job.result = owner.enqueue(std::move(kernel), config);
    jobs.push_back(std::move(job));
    return jobs.size() - 1;
}

void
Sweep::addGrid(const std::vector<KernelPtr> &kernels,
               const std::vector<RunConfig> &configs)
{
    for (const auto &kernel : kernels)
        for (const auto &config : configs)
            add(kernel, config);
}

std::vector<FabricRun>
Sweep::run()
{
    std::vector<FabricRun> results;
    results.reserve(jobs.size());
    for (const SweepJob &job : jobs)
        results.push_back(job.result.get());
    return results;
}

size_t
Sweep::addCandidate(KernelPtr kernel, const RunConfig &config)
{
    candidates.emplace_back(std::move(kernel), config);
    return candidates.size() - 1;
}

std::vector<PrunedRun>
Sweep::runPruned()
{
    std::vector<PrunedRun> results;
    results.reserve(candidates.size());

    // The incumbent (fewest simulated cycles so far) and, per
    // compiled-graph fingerprint, the fire counts of one completed
    // run. The two are deliberately decoupled: fire counts are a
    // property of the graph and its inputs — not of placement,
    // buffering, banking, or scheduler — so any completed run of
    // the same graph instantiates a later candidate's bound
    // exactly, while the cycles to beat may come from a different
    // (faster) graph entirely. That cross-graph comparison is the
    // whole point: an unrolled incumbent's runtime can certify that
    // the plain graph's recurrence floor is already too slow.
    int64_t bestCycles = 0;
    struct FireRef
    {
        const workloads::KernelInstance *kernel;
        sim::SimStats stats;
    };
    std::map<uint64_t, FireRef> firesByGraph;

    for (const auto &[kernel, config] : candidates) {
        PrunedRun point;

        if (bestCycles > 0) {
            // Compile through the runner's memo (a hit whenever an
            // earlier candidate compiled the same options) and look
            // for a fire-count reference with the same graph. The
            // kernel-identity guard keeps a fingerprint collision
            // across kernels (different inputs, different fires)
            // from poisoning the evaluation.
            compiler::CompileOptions copts;
            copts.variant = config.variant;
            copts.threading = config.threading;
            copts.useStreams = config.useStreams;
            copts.bufferDepth = config.sim.bufferDepth;
            copts.unrollFactor = config.unrollFactor;
            compiler::CompileResult res;
            MemoCache *memo =
                owner.options().memoize ? &owner.cache() : nullptr;
            if (!memo || !memo->lookupCompile(*kernel, copts, res)) {
                res = compiler::compileProgram(kernel->prog,
                                               kernel->liveIns, copts);
                if (memo)
                    memo->storeCompile(*kernel, copts, res);
            }
            auto ref =
                firesByGraph.find(dfg::graphFingerprint(res.graph));
            if (ref != firesByGraph.end() &&
                ref->second.kernel == kernel.get()) {
                // Evaluate the certified floor under this
                // candidate's buffering/banking config.
                std::shared_ptr<const dfg::Graph> hold(
                    std::shared_ptr<const dfg::Graph>(), &res.graph);
                sim::SimConfig scfg = res.simConfig;
                scfg.bufferDepth = config.sim.bufferDepth;
                scfg.memBanks = config.fabric.memBanks;
                sim::Program prog(hold, scfg);
                sim::BoundReport::Evaluation ev =
                    analysis::computeBound(prog).evaluate(
                        ref->second.stats);
                point.boundCycles = ev.certifiedCycles;
                if (ev.certifiedCycles >= bestCycles) {
                    point.pruned = true;
                    results.push_back(std::move(point));
                    continue;
                }
            }
        }

        RunConfig cfg = config;
        if (point.boundCycles > 0)
            cfg.boundPruneCycles = point.boundCycles;
        point.run = owner.run(kernel, cfg);
        if (point.boundCycles == 0)
            point.boundCycles = point.run.boundCycles;

        const bool completed = !point.run.sim.deadlocked &&
                               !point.run.sim.watchdogExpired;
        if (completed) {
            firesByGraph.emplace(
                dfg::graphFingerprint(point.run.compiled.graph),
                FireRef{kernel.get(), point.run.sim.stats});
            if (bestCycles == 0 || point.run.cycles() < bestCycles)
                bestCycles = point.run.cycles();
        }
        results.push_back(std::move(point));
    }
    return results;
}

} // namespace pipestitch::runner
