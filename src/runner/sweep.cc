#include "runner/sweep.hh"

namespace pipestitch::runner {

Runner::Runner(const RunnerOptions &options)
    : opts(options), memo(options.memoize ? options.cacheDir : ""),
      workers(options.jobs)
{
}

std::shared_future<FabricRun>
Runner::enqueue(KernelPtr kernel, const RunConfig &config)
{
    RunConfig cfg = config;
    if (opts.memoize)
        cfg.cache = &memo;
    if (opts.quietRuns)
        cfg.quiet = true;

    // Observed or traced runs exist for their side effects — never
    // collapse them onto another job's execution. Stage memoization
    // still applies.
    bool dedupable = opts.memoize && !cfg.sim.observer &&
                     !cfg.sim.trace;
    uint64_t key = dedupable ? MemoCache::runKey(*kernel, cfg) : 0;
    if (dedupable) {
        std::lock_guard<std::mutex> lock(inflightMu);
        auto it = inflight.find(key);
        if (it != inflight.end()) {
            nDedupHits++;
            return it->second;
        }
    }

    std::shared_future<FabricRun> fut =
        workers
            .submit(
                [kernel = std::move(kernel), cfg] {
                    return runOnFabric(*kernel, cfg);
                })
            .share();
    if (dedupable) {
        std::lock_guard<std::mutex> lock(inflightMu);
        inflight.emplace(key, fut);
    }
    return fut;
}

FabricRun
Runner::run(KernelPtr kernel, const RunConfig &config)
{
    return enqueue(std::move(kernel), config).get();
}

int64_t
Runner::dedupHits() const
{
    std::lock_guard<std::mutex> lock(inflightMu);
    return nDedupHits;
}

size_t
Sweep::add(KernelPtr kernel, const RunConfig &config)
{
    SweepJob job;
    job.kernel = kernel;
    job.config = config;
    job.result = owner.enqueue(std::move(kernel), config);
    jobs.push_back(std::move(job));
    return jobs.size() - 1;
}

void
Sweep::addGrid(const std::vector<KernelPtr> &kernels,
               const std::vector<RunConfig> &configs)
{
    for (const auto &kernel : kernels)
        for (const auto &config : configs)
            add(kernel, config);
}

std::vector<FabricRun>
Sweep::run()
{
    std::vector<FabricRun> results;
    results.reserve(jobs.size());
    for (const SweepJob &job : jobs)
        results.push_back(job.result.get());
    return results;
}

} // namespace pipestitch::runner
