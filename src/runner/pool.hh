/**
 * @file
 * Fixed-size thread pool with a futures-based job API.
 *
 * Workers are started once and live for the pool's lifetime; jobs
 * are plain callables submitted from any thread, each returning a
 * std::future for its result. Destruction drains the queue (every
 * submitted job runs) and joins the workers; a submit that races
 * destruction runs its job on the submitting thread rather than
 * abandoning the future.
 *
 * The pipeline's fatal()/panic() error paths terminate the process
 * directly, exactly as they do in serial code, so job results never
 * carry exceptions across threads.
 */

#ifndef PIPESTITCH_RUNNER_POOL_HH
#define PIPESTITCH_RUNNER_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pipestitch::runner {

/** Default worker count: the machine's hardware concurrency. */
int defaultJobs();

class ThreadPool
{
  public:
    /** @p threads <= 0 means defaultJobs(). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const
    {
        return static_cast<int>(workers.size());
    }

    /** Queue @p fn; the future resolves when a worker finishes it. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        post([task] { (*task)(); });
        return result;
    }

  private:
    void post(std::function<void()> job);
    void workerLoop();

    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    bool stopping = false;
    std::vector<std::thread> workers;
};

} // namespace pipestitch::runner

#endif // PIPESTITCH_RUNNER_POOL_HH
