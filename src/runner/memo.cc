#include "runner/memo.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <thread>

#include "base/hash.hh"
#include "base/logging.hh"
#include "dfg/analysis.hh"
#include "sir/printer.hh"

namespace pipestitch::runner {

namespace {

/** Bump when the on-disk mapping format or any key ingredient
 *  changes; stale files then simply miss. (v4: integrity trailer.) */
constexpr int kDiskFormatVersion = 4;

/** Final line of every mapping file: "end <payload-bytes> <magic>".
 *  A file without it is torn — truncated by a crash or caught
 *  mid-replace on a filesystem without atomic rename — and is
 *  treated as a plain cache miss, never a parse error. */
constexpr char kTrailerMagic[] = "ps-intact";

/** True iff @p f ends with a well-formed trailer whose claimed
 *  payload length matches the bytes that precede it. Leaves the
 *  file position unspecified. */
bool
trailerIntact(FILE *f)
{
    if (std::fseek(f, 0, SEEK_END) != 0)
        return false;
    long size = std::ftell(f);
    // The trailer line is at most ~40 bytes; 63 is generous.
    char buf[64];
    long tail =
        std::min<long>(size, static_cast<long>(sizeof(buf)) - 1);
    if (tail <= 0 || std::fseek(f, size - tail, SEEK_SET) != 0 ||
        std::fread(buf, 1, static_cast<size_t>(tail), f) !=
            static_cast<size_t>(tail)) {
        return false;
    }
    buf[tail] = '\0';
    if (buf[tail - 1] != '\n')
        return false;
    buf[tail - 1] = '\0';
    const char *line = std::strrchr(buf, '\n');
    if (line)
        line++;
    else if (tail == size)
        line = buf; // whole file fit in the buffer
    else
        return false;
    long claimed = -1;
    char magic[16] = {0};
    if (std::sscanf(line, "end %ld %15s", &claimed, magic) != 2 ||
        std::strcmp(magic, kTrailerMagic) != 0) {
        return false;
    }
    long trailerLen = static_cast<long>(std::strlen(line)) + 1;
    return claimed == size - trailerLen;
}

/** Salted into every mapping key. Bump whenever the mapper's
 *  objective or search changes, so cached placements from an older
 *  mapper are never replayed against the new one (v2: portfolio
 *  anneal with the congestion-aware objective; v3: honest barrier
 *  snapshots, the greedy basin probe, and size-scaled schedules
 *  with keep-one halving at 20%, all of which change the selected
 *  winner). */
constexpr uint64_t kMappingKeyVersion = 3;

void
hashFabric(Hasher &h, const fabric::FabricConfig &f)
{
    h.i32(f.width)
        .i32(f.height)
        .vec(f.peMix)
        .i32(f.routerCfCapacity)
        .i32(f.linkCapacity)
        .i64(f.memBytes)
        .i32(f.memBanks)
        .f64(f.clockMHz);
}

/** The tile-grid fields of a RunConfig. Part of runKey and
 *  preparedKey: a 2×2 arrangement of the same per-tile grid is a
 *  different prepared artifact (partitioned mapping, channel
 *  latencies) than the 1×1 one. */
void
hashTiling(Hasher &h, const RunConfig &cfg)
{
    h.i32(cfg.tilesX)
        .i32(cfg.tilesY)
        .i32(cfg.interTileLatency)
        .i32(cfg.interTileCapacity);
}

} // namespace

MemoCache::MemoCache(std::string cacheDir) : dir(std::move(cacheDir))
{
    if (!dir.empty())
        sweepOrphanedTmpFiles();
}

void
MemoCache::sweepOrphanedTmpFiles() const
{
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return;
    const auto now = std::filesystem::file_time_type::clock::now();
    for (const auto &entry : it) {
        if (entry.path().filename().string().find(".tmp.") ==
            std::string::npos) {
            continue;
        }
        auto mtime =
            std::filesystem::last_write_time(entry.path(), ec);
        if (ec)
            continue;
        // A live writer holds its tmp file for milliseconds; one
        // this old belongs to a crashed process.
        if (now - mtime > std::chrono::hours(1))
            std::filesystem::remove(entry.path(), ec);
    }
}

uint64_t
MemoCache::programKey(const workloads::KernelInstance &k)
{
    Hasher h;
    h.str(sir::print(k.prog)).vec(k.liveIns);
    return h.digest();
}

uint64_t
MemoCache::kernelKey(const workloads::KernelInstance &k)
{
    Hasher h;
    h.u64(programKey(k)).vec(k.memory);
    return h.digest();
}

uint64_t
MemoCache::compileKey(const workloads::KernelInstance &k,
                      const compiler::CompileOptions &opts)
{
    Hasher h;
    h.u64(programKey(k))
        .i32(static_cast<int32_t>(opts.variant))
        .i32(static_cast<int32_t>(opts.threading))
        .b(opts.useStreams)
        .i32(opts.bufferDepth)
        .i32(opts.unrollFactor);
    return h.digest();
}

uint64_t
MemoCache::mappingKey(const dfg::Graph &graph,
                      const fabric::FabricConfig &fabric,
                      const mapper::MapperOptions &opts)
{
    Hasher h;
    h.u64(kMappingKeyVersion);
    h.u64(dfg::graphFingerprint(graph));
    hashFabric(h, fabric);
    // Everything that shapes the result. `jobs` and
    // `verifyIncremental` are deliberately absent: the portfolio
    // winner is bit-identical for any thread count, and the
    // verification mode only adds assertions.
    h.u64(opts.rngSeed)
        .i32(opts.annealIterations)
        .f64(opts.startTemperature)
        .i32(opts.portfolioSeeds)
        .f64(opts.congestionWeight)
        .f64(opts.congestionPhase)
        .i32(opts.maxTargetedRestarts);
    h.u64(static_cast<uint64_t>(opts.boundPruneCycles));
    h.u64(opts.shareGroups.size());
    for (const auto &group : opts.shareGroups)
        h.vec(group);
    return h.digest();
}

uint64_t
MemoCache::runKey(const workloads::KernelInstance &k,
                  const RunConfig &cfg)
{
    Hasher h;
    h.u64(kernelKey(k))
        .i32(static_cast<int32_t>(cfg.variant))
        .i32(static_cast<int32_t>(cfg.threading))
        .b(cfg.useStreams)
        .i32(cfg.unrollFactor)
        .b(cfg.allowTimeMultiplex)
        .b(cfg.map)
        .b(cfg.verifyAgainstGolden)
        .u64(cfg.mapperSeed)
        .i32(cfg.mapperSeeds)
        .i64(cfg.boundPruneCycles);
    hashFabric(h, cfg.fabric);
    hashTiling(h, cfg);
    // SimConfig: only the user-settable fields. The derived ones
    // (buffering, memBypass, memBanks, shareGroups) are functions of
    // the inputs above, and quiet/trace/observer do not affect the
    // result. parallelJobs/parallelThreads are deliberately
    // excluded too: the ParallelRegions engine is bit-identical to
    // the oracle at every job and thread count, so they must not
    // fragment the cache.
    h.i32(static_cast<int32_t>(cfg.sim.scheduler))
        .i32(cfg.sim.bufferDepth)
        .i32(cfg.sim.memLatency)
        .i64(cfg.sim.maxCycles)
        .b(cfg.sim.checkThreadOrder)
        .b(cfg.sim.greedyDispatch);
    return h.digest();
}

uint64_t
MemoCache::preparedKey(const workloads::KernelInstance &k,
                       const RunConfig &cfg)
{
    Hasher h;
    // programKey, not kernelKey: the memory image is per-execution
    // state and must not fragment the prepared cache — that sharing
    // is exactly what lets serve batch same-kernel requests with
    // different inputs onto one Program.
    h.u64(programKey(k))
        .i32(static_cast<int32_t>(cfg.variant))
        .i32(static_cast<int32_t>(cfg.threading))
        .b(cfg.useStreams)
        .i32(cfg.unrollFactor)
        .b(cfg.allowTimeMultiplex)
        .b(cfg.map)
        .b(cfg.analyze)
        .u64(cfg.mapperSeed)
        .i32(cfg.mapperSeeds)
        .i64(cfg.boundPruneCycles);
    hashFabric(h, cfg.fabric);
    hashTiling(h, cfg);
    // Same SimConfig subset as runKey (and the same
    // parallelJobs/parallelThreads exclusion — job count never
    // changes the result).
    h.i32(static_cast<int32_t>(cfg.sim.scheduler))
        .i32(cfg.sim.bufferDepth)
        .i32(cfg.sim.memLatency)
        .i64(cfg.sim.maxCycles)
        .b(cfg.sim.checkThreadOrder)
        .b(cfg.sim.greedyDispatch);
    return h.digest();
}

std::shared_ptr<const PreparedKernel>
MemoCache::lookupPrepared(const workloads::KernelInstance &kernel,
                          const RunConfig &config)
{
    uint64_t key = preparedKey(kernel, config);
    std::lock_guard<std::mutex> lock(mu);
    auto it = prepareds.find(key);
    if (it == prepareds.end()) {
        nPreparedComputes.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    nPreparedHits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
MemoCache::storePrepared(
    const workloads::KernelInstance &kernel, const RunConfig &config,
    std::shared_ptr<const PreparedKernel> prepared)
{
    uint64_t key = preparedKey(kernel, config);
    std::lock_guard<std::mutex> lock(mu);
    prepareds.emplace(key, std::move(prepared));
}

bool
MemoCache::lookupCompile(const workloads::KernelInstance &kernel,
                         const compiler::CompileOptions &opts,
                         compiler::CompileResult &out)
{
    uint64_t key = compileKey(kernel, opts);
    std::lock_guard<std::mutex> lock(mu);
    auto it = compiles.find(key);
    if (it == compiles.end()) {
        nCompileComputes.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    nCompileHits.fetch_add(1, std::memory_order_relaxed);
    out = it->second;
    return true;
}

void
MemoCache::storeCompile(const workloads::KernelInstance &kernel,
                        const compiler::CompileOptions &opts,
                        const compiler::CompileResult &result)
{
    uint64_t key = compileKey(kernel, opts);
    std::lock_guard<std::mutex> lock(mu);
    compiles.emplace(key, result);
}

bool
MemoCache::lookupMapping(const dfg::Graph &graph,
                         const fabric::FabricConfig &fabric,
                         const mapper::MapperOptions &opts,
                         mapper::Mapping &out)
{
    uint64_t key = mappingKey(graph, fabric, opts);
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = mappings.find(key);
        if (it != mappings.end()) {
            nMapHits.fetch_add(1, std::memory_order_relaxed);
            out = it->second;
            return true;
        }
    }
    if (!dir.empty() && loadMappingFile(key, out)) {
        nMapDiskHits.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu);
        mappings.emplace(key, out);
        return true;
    }
    nMapComputes.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
MemoCache::storeMapping(const dfg::Graph &graph,
                        const fabric::FabricConfig &fabric,
                        const mapper::MapperOptions &opts,
                        const mapper::Mapping &mapping)
{
    uint64_t key = mappingKey(graph, fabric, opts);
    {
        std::lock_guard<std::mutex> lock(mu);
        mappings.emplace(key, mapping);
    }
    // Failed mappings are cheap to recompute and their error text is
    // diagnostic, not canonical — only successes go to disk.
    if (!dir.empty() && mapping.success)
        saveMappingFile(key, mapping);
}

MemoStats
MemoCache::stats() const
{
    MemoStats s;
    s.compileHits = nCompileHits.load(std::memory_order_relaxed);
    s.compileComputes =
        nCompileComputes.load(std::memory_order_relaxed);
    s.mapHits = nMapHits.load(std::memory_order_relaxed);
    s.mapDiskHits = nMapDiskHits.load(std::memory_order_relaxed);
    s.mapComputes = nMapComputes.load(std::memory_order_relaxed);
    s.preparedHits = nPreparedHits.load(std::memory_order_relaxed);
    s.preparedComputes =
        nPreparedComputes.load(std::memory_order_relaxed);
    return s;
}

std::string
MemoCache::mappingPath(uint64_t key) const
{
    return dir + "/map-" + hashHex(key) + ".txt";
}

bool
MemoCache::loadMappingFile(uint64_t key, mapper::Mapping &out) const
{
    FILE *f = std::fopen(mappingPath(key).c_str(), "r");
    if (!f)
        return false;
    if (!trailerIntact(f)) {
        // Torn write (crash mid-write, or caught mid-replace where
        // rename is not atomic): silently miss and recompute.
        std::fclose(f);
        return false;
    }
    std::rewind(f);
    mapper::Mapping m;
    m.success = true;
    int version = 0;
    size_t nPe = 0, nRouter = 0, nHops = 0;
    bool ok =
        std::fscanf(f, "pipestitch-mapping %d\n", &version) == 1 &&
        version == kDiskFormatVersion &&
        std::fscanf(f, "wirelength %" SCNd64 "\n",
                    &m.totalWireLength) == 1 &&
        std::fscanf(f, "avghops %la\n", &m.avgHops) == 1 &&
        std::fscanf(f, "maxlinkload %d\n", &m.maxLinkLoad) == 1 &&
        std::fscanf(f, "cost %la\n", &m.cost) == 1 &&
        std::fscanf(f, "overflow %" SCNd64 "\n",
                    &m.congestionOverflow) == 1 &&
        std::fscanf(f, "winningseed %d\n", &m.winningSeed) == 1 &&
        std::fscanf(f, "earlyexits %d\n", &m.seedsEarlyExited) ==
            1 &&
        std::fscanf(f, "halved %d\n", &m.seedsHalved) == 1 &&
        std::fscanf(f, "pe %zu\n", &nPe) == 1;
    if (ok) {
        m.peOf.resize(nPe);
        for (size_t i = 0; ok && i < nPe; i++)
            ok = std::fscanf(f, "%d", &m.peOf[i]) == 1;
    }
    ok = ok && std::fscanf(f, "\nrouter %zu\n", &nRouter) == 1;
    if (ok) {
        m.routerOf.resize(nRouter);
        for (size_t i = 0; ok && i < nRouter; i++)
            ok = std::fscanf(f, "%d", &m.routerOf[i]) == 1;
    }
    ok = ok && std::fscanf(f, "\nhops %zu\n", &nHops) == 1;
    if (ok) {
        m.hopsOf.resize(nHops);
        for (size_t i = 0; ok && i < nHops; i++) {
            size_t nPorts = 0;
            ok = std::fscanf(f, "%zu", &nPorts) == 1;
            if (!ok)
                break;
            m.hopsOf[i].resize(nPorts);
            for (size_t j = 0; ok && j < nPorts; j++)
                ok = std::fscanf(f, "%d", &m.hopsOf[i][j]) == 1;
        }
    }
    std::fclose(f);
    if (!ok) {
        warn("ignoring malformed mapping cache file %s",
             mappingPath(key).c_str());
        return false;
    }
    out = std::move(m);
    return true;
}

void
MemoCache::saveMappingFile(uint64_t key,
                           const mapper::Mapping &mapping) const
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("cannot create cache dir %s: %s", dir.c_str(),
             ec.message().c_str());
        return;
    }
    std::string path = mappingPath(key);
    // Unique tmp name per writer thread, then an atomic rename, so
    // concurrent processes sharing a cache dir never see torn files.
    std::string tmp =
        path + ".tmp." +
        std::to_string(static_cast<uint64_t>(std::hash<std::thread::id>{}(
            std::this_thread::get_id())));
    FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        warn("cannot write mapping cache file %s", tmp.c_str());
        return;
    }
    std::fprintf(f, "pipestitch-mapping %d\n", kDiskFormatVersion);
    std::fprintf(f, "wirelength %" PRId64 "\n",
                 mapping.totalWireLength);
    // %a round-trips the double exactly.
    std::fprintf(f, "avghops %a\n", mapping.avgHops);
    std::fprintf(f, "maxlinkload %d\n", mapping.maxLinkLoad);
    std::fprintf(f, "cost %a\n", mapping.cost);
    std::fprintf(f, "overflow %" PRId64 "\n",
                 mapping.congestionOverflow);
    std::fprintf(f, "winningseed %d\n", mapping.winningSeed);
    std::fprintf(f, "earlyexits %d\n", mapping.seedsEarlyExited);
    std::fprintf(f, "halved %d\n", mapping.seedsHalved);
    std::fprintf(f, "pe %zu\n", mapping.peOf.size());
    for (int v : mapping.peOf)
        std::fprintf(f, "%d ", v);
    std::fprintf(f, "\nrouter %zu\n", mapping.routerOf.size());
    for (int v : mapping.routerOf)
        std::fprintf(f, "%d ", v);
    std::fprintf(f, "\nhops %zu\n", mapping.hopsOf.size());
    for (const auto &ports : mapping.hopsOf) {
        std::fprintf(f, "%zu", ports.size());
        for (int v : ports)
            std::fprintf(f, " %d", v);
        std::fprintf(f, "\n");
    }
    // Integrity trailer: readers reject any file whose trailer is
    // missing or disagrees with the preceding byte count.
    long payloadBytes = std::ftell(f);
    std::fprintf(f, "end %ld %s\n", payloadBytes, kTrailerMagic);
    bool bad = std::ferror(f) != 0;
    if (std::fclose(f) != 0)
        bad = true;
    if (bad) {
        // Disk full or similar: never publish a torn file.
        warn("error writing mapping cache file %s", tmp.c_str());
        std::filesystem::remove(tmp, ec);
        return;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

} // namespace pipestitch::runner
