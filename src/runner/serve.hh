/**
 * @file
 * `pstool serve` — a resident simulation service over newline-
 * delimited JSON (one request per line on stdin, one response per
 * line on stdout; see docs/serve.md for the schema).
 *
 * Each request names a kernel (inline SIR text), a variant, and a
 * sim configuration; the server compiles, maps, lints, and simulates
 * it and answers with a result record whose `status` distinguishes
 * `ok`, `deadlock` (quiesced), `watchdog` (maxCycles elapsed while
 * the fabric was live), `rejected` (admission control), and `error`
 * (malformed request, analysis/map failure, golden divergence).
 *
 * Concurrency and caching:
 *  - requests execute on a runner::ThreadPool; responses complete
 *    out of order and are stitched to their request `id`s;
 *  - content-identical requests (same kernel text, live-ins, memory,
 *    config) collapse onto one in-flight execution and one memoized
 *    response — the serve-level analogue of runner::Runner's run
 *    dedup;
 *  - distinct requests for the same kernel×config share one
 *    immutable sim::Program through the MemoCache prepared layer;
 *    only per-run ExecutionState is rebuilt per request;
 *  - admission control: at most `maxQueue` requests may be queued or
 *    running; excess requests get an immediate structured
 *    `rejected` response instead of unbounded buffering.
 *
 * A request that fails anywhere in the pipeline — including fatal()
 * paths written for batch tools — produces an `error` response; the
 * server never exits on user input (base/logging.hh
 * ScopedFatalTrap).
 */

#ifndef PIPESTITCH_RUNNER_SERVE_HH
#define PIPESTITCH_RUNNER_SERVE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "fabric/fabric.hh"
#include "runner/memo.hh"
#include "runner/pool.hh"

namespace pipestitch::runner {

struct ServeOptions
{
    /** Worker threads; <= 0 means defaultJobs(). */
    int jobs = 0;

    /** Admission bound: max requests queued or running at once.
     *  Further submissions get an immediate `rejected` response. */
    int maxQueue = 1024;

    /** On-disk mapping cache directory ("" disables). */
    std::string cacheDir;

    /** Default fabric for every request (`pstool serve --fabric=`).
     *  A request's `tiles` field overrides the tile arrangement. */
    fabric::Topology topology;
};

/** Snapshot of server activity since construction. */
struct ServeStats
{
    int64_t received = 0;   ///< submit() calls
    int64_t accepted = 0;   ///< admitted to the pool
    int64_t rejected = 0;   ///< refused by admission control
    int64_t badRequests = 0; ///< unparseable (immediate error)
    int64_t dedupHits = 0;  ///< served from an identical request
    int64_t completed = 0;  ///< executions finished
    int64_t peakQueued = 0; ///< high-water mark of queued+running
};

class ServeServer
{
  public:
    explicit ServeServer(const ServeOptions &options = {});
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /** One submitted request: the response payload (a JSON object
     *  without the `id` member) resolves when execution finishes;
     *  `doneNs` carries the steady-clock completion stamp for
     *  latency accounting. */
    struct Response
    {
        std::string id;
        std::shared_future<std::string> payload;
        std::shared_ptr<std::atomic<int64_t>> doneNs;
    };

    /**
     * Submit one request line (a complete JSON object, no trailing
     * newline). Never blocks on execution: rejected or unparseable
     * requests come back with an already-resolved payload.
     */
    Response submit(const std::string &line);

    /** Final response line for a resolved @p r (blocks until the
     *  payload is ready). */
    static std::string render(const Response &r);

    ServeStats stats() const;
    MemoCache &cache() { return memo; }
    int threadCount() { return pool.threadCount(); }

  private:
    Response immediate(const std::string &id,
                       const std::string &payload);

    ServeOptions opts;
    MemoCache memo;

    mutable std::mutex mu;
    /** Request content key -> shared payload (in-flight or done). */
    std::unordered_map<
        uint64_t, std::pair<std::shared_future<std::string>,
                            std::shared_ptr<std::atomic<int64_t>>>>
        byContent;

    std::atomic<int64_t> nReceived{0};
    std::atomic<int64_t> nAccepted{0};
    std::atomic<int64_t> nRejected{0};
    std::atomic<int64_t> nBadRequests{0};
    std::atomic<int64_t> nDedupHits{0};
    std::atomic<int64_t> nCompleted{0};
    std::atomic<int64_t> nPeakQueued{0};

    /** Last member: joins workers before the state above dies. */
    ThreadPool pool;
};

/**
 * Pump @p in to @p out: one request per line, one response per line,
 * in submission order. Returns 0; individual request failures are
 * reported in-band.
 */
int serveLoop(ServeServer &server, std::istream &in,
              std::ostream &out);

/** Load-generator options for `pstool serve --bench`. */
struct ServeBenchOptions
{
    int requests = 10000; ///< total requests to submit
    int unique = 32;      ///< distinct request contents
};

/**
 * Drive @p n requests through a fresh server (admission bound lifted
 * to cover the whole burst so the queue genuinely reaches @p n) and
 * return the benchmark record: requests/sec plus p50/p99 latency and
 * the dedup hit rate, as written to BENCH_serve.json.
 */
std::string runServeBench(const ServeOptions &options,
                          const ServeBenchOptions &bench);

} // namespace pipestitch::runner

#endif // PIPESTITCH_RUNNER_SERVE_HH
