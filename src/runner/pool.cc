#include "runner/pool.hh"

#include <algorithm>

namespace pipestitch::runner {

int
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads)
{
    int n = threads <= 0 ? defaultJobs() : threads;
    workers.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; i++)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &w : workers)
        w.join();
    // Workers only exit once stopping is set AND the queue is empty,
    // so everything posted before shutdown began has run. Any job
    // still here slipped past both guards (e.g. a post() that held
    // the lock between our stopping store and the last worker's
    // final check); run it now rather than break its promise.
    for (auto &job : queue)
        job();
    queue.clear();
}

void
ThreadPool::post(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mu);
        if (!stopping) {
            queue.push_back(std::move(job));
            lock.unlock();
            cv.notify_one();
            return;
        }
    }
    // Shutdown has begun: the workers may already have drained the
    // queue and exited, so nothing would ever pop this job. The
    // header guarantees every submitted job runs — honor it on the
    // posting thread instead of abandoning the future to a
    // broken_promise mid-shutdown.
    job();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock,
                    [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
        }
        job();
    }
}

} // namespace pipestitch::runner
