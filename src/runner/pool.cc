#include "runner/pool.hh"

#include <algorithm>

namespace pipestitch::runner {

int
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads)
{
    int n = threads <= 0 ? defaultJobs() : threads;
    workers.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; i++)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::post(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        queue.push_back(std::move(job));
    }
    cv.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock,
                    [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
        }
        job();
    }
}

} // namespace pipestitch::runner
