/**
 * @file
 * Concurrent execution of (kernel × variant × config) grids.
 *
 * Runner owns a ThreadPool and a MemoCache and executes runOnFabric
 * jobs on worker threads; every job shares the cache, so a compile
 * or mapping computed for one job is a hit for all later ones. On
 * top of that, exact-duplicate jobs (same kernel content, same
 * RunConfig) collapse to a single execution via a shared_future —
 * the figure suite re-runs many identical (kernel, variant) points
 * across figures, and each is simulated once.
 *
 * Sweep is the grid layer: add jobs one at a time or as a
 * kernels×configs cross product, then run() them concurrently.
 * Results come back in submission order regardless of completion
 * order, so output is deterministic for any --jobs value.
 *
 * Enqueue jobs only from outside the pool (enqueue() is not
 * reentrant from a worker): a job that blocked on a nested future
 * could deadlock a fully-busy pool. Compound workloads (e.g. the
 * DNN) should be submitted as one job that calls runOnFabric
 * internally — they still share the stage cache.
 */

#ifndef PIPESTITCH_RUNNER_SWEEP_HH
#define PIPESTITCH_RUNNER_SWEEP_HH

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/system.hh"
#include "runner/memo.hh"
#include "runner/pool.hh"

namespace pipestitch::runner {

/**
 * Kernels are shared read-only between the submitting thread and
 * the workers (KernelInstance is move-only — its SIR statements are
 * unique_ptrs — and copying megabyte memory images per job would be
 * wasteful anyway).
 */
using KernelPtr = std::shared_ptr<const workloads::KernelInstance>;

/** Wrap a freshly built kernel for submission. */
inline KernelPtr
share(workloads::KernelInstance &&kernel)
{
    return std::make_shared<const workloads::KernelInstance>(
        std::move(kernel));
}

struct RunnerOptions
{
    /** Worker threads; <= 0 means hardware concurrency. */
    int jobs = 0;

    /** On-disk mapping cache directory ("" disables). */
    std::string cacheDir;

    /** Master switch for stage memoization and run dedup. */
    bool memoize = true;

    /** Silence warn()/inform() inside pooled runs (keeps parallel
     *  output readable; direct runOnFabric calls are unaffected). */
    bool quietRuns = true;
};

class Runner
{
  public:
    explicit Runner(const RunnerOptions &options = RunnerOptions{});

    ThreadPool &pool() { return workers; }
    MemoCache &cache() { return memo; }
    const RunnerOptions &options() const { return opts; }

    /**
     * Queue one runOnFabric job. @p config is captured by value with
     * the runner's cache and quiet policy applied. Duplicate jobs
     * share one execution. Call from outside the pool only.
     */
    std::shared_future<FabricRun> enqueue(KernelPtr kernel,
                                          const RunConfig &config);

    /** Convenience: enqueue and wait. */
    FabricRun run(KernelPtr kernel, const RunConfig &config);

    /** Submit an arbitrary job to the pool (see ThreadPool). */
    template <typename F>
    auto
    submit(F &&fn)
    {
        return workers.submit(std::forward<F>(fn));
    }

    /** Exact-duplicate jobs served from an earlier enqueue. */
    int64_t dedupHits() const;

  private:
    RunnerOptions opts;
    MemoCache memo;
    ThreadPool workers;

    mutable std::mutex inflightMu;
    std::map<uint64_t, std::shared_future<FabricRun>> inflight;
    int64_t nDedupHits = 0;
};

/** One grid point plus its future result. */
struct SweepJob
{
    KernelPtr kernel;
    RunConfig config;
    std::shared_future<FabricRun> result;
};

/** One point of a bound-pruned exploration (Sweep::runPruned). */
struct PrunedRun
{
    /** True when the candidate was skipped because its certified
     *  static bound already met or exceeded the incumbent's
     *  simulated cycles; `run` is then default-constructed. */
    bool pruned = false;

    /** The certified cycle floor the decision used: the candidate's
     *  pre-run bound when one could be evaluated (same compiled
     *  graph as the reference), otherwise the run's own
     *  FabricRun::boundCycles (0 with analysis off). */
    int64_t boundCycles = 0;

    FabricRun run;
};

class Sweep
{
  public:
    explicit Sweep(Runner &runner) : owner(runner) {}

    /** Add one point; returns its submission index. */
    size_t add(KernelPtr kernel, const RunConfig &config);

    /** Cross product: every kernel under every config. */
    void addGrid(const std::vector<KernelPtr> &kernels,
                 const std::vector<RunConfig> &configs);

    size_t size() const { return jobs.size(); }
    const SweepJob &job(size_t i) const { return jobs[i]; }

    /** Wait for all points; results in submission order. */
    std::vector<FabricRun> run();

    /** Record a candidate for runPruned() without enqueuing it
     *  (add() submits eagerly; pruning decides lazily). Returns the
     *  candidate's index. */
    size_t addCandidate(KernelPtr kernel, const RunConfig &config);

    size_t candidateCount() const { return candidates.size(); }

    /**
     * Bound-guided design-space exploration over the recorded
     * candidates — the lower-bound pruning consumer of the PS-T
     * throughput analysis (docs/static-analysis.md).
     *
     * Candidates are alternatives for one workload (variants,
     * unroll factors, buffer depths...). Each is compiled (a memo
     * hit when cached) and, when an earlier completed run shares
     * its graph, its certified bound is instantiated with that
     * run's fire counts — fire counts are a property of the graph
     * and its inputs, not of placement, buffering, or scheduler,
     * so the reuse is exact. A candidate whose certified floor
     * already meets or exceeds the incumbent's simulated cycles
     * cannot win and is skipped — e.g. an unrolled incumbent's
     * runtime certifies the plain graph's recurrence floor is too
     * slow. Everything else runs fully (with the floor forwarded
     * as RunConfig::boundPruneCycles so the mapper trims its
     * portfolio) and may become the incumbent. Candidates whose
     * graph has not been seen always run.
     *
     * Runs serially on the calling thread — pruning is inherently
     * sequential (each decision needs the incumbent so far). Results
     * are in submission order. Call from outside the pool.
     */
    std::vector<PrunedRun> runPruned();

  private:
    Runner &owner;
    std::vector<SweepJob> jobs;
    std::vector<std::pair<KernelPtr, RunConfig>> candidates;
};

} // namespace pipestitch::runner

#endif // PIPESTITCH_RUNNER_SWEEP_HH
