/**
 * @file
 * Content-addressed memo cache for the compile→map→simulate
 * pipeline.
 *
 * Keys are 64-bit content hashes: a kernel is addressed by its
 * printed SIR plus bound live-ins (and, for whole runs, its initial
 * memory image), a graph by dfg::graphFingerprint, and every option
 * struct contributes all of its fields. Identical inputs therefore
 * hit regardless of which sweep, figure, or process asked first.
 *
 * Three layers:
 *  - compile results, in-memory (compiling is cheap relative to
 *    mapping but far from free at paper scale);
 *  - mapper placements, in-memory plus an optional on-disk layer
 *    (`cacheDir`) so successive figure binaries skip the
 *    simulated-annealing mapper entirely;
 *  - whole FabricRuns, deduplicated in-flight by runner::Runner
 *    (see sweep.hh) rather than here — a run embeds its mutated
 *    memory image, so only exact-duplicate jobs may share one.
 *
 * All methods are thread-safe; counters let tests assert "the warm
 * rerun computed zero mappings".
 */

#ifndef PIPESTITCH_RUNNER_MEMO_HH
#define PIPESTITCH_RUNNER_MEMO_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/system.hh"

namespace pipestitch::runner {

/** Snapshot of cache activity since construction. */
struct MemoStats
{
    int64_t compileHits = 0;
    int64_t compileComputes = 0;
    int64_t mapHits = 0;     ///< in-memory mapping hits
    int64_t mapDiskHits = 0; ///< mapping loaded from cacheDir
    int64_t mapComputes = 0; ///< mapper actually invoked
    int64_t preparedHits = 0;     ///< whole-artifact hits
    int64_t preparedComputes = 0; ///< prepare pipelines actually run
};

class MemoCache final : public PipelineCache
{
  public:
    /** @p cacheDir empty disables the on-disk mapping layer; the
     *  directory is created on first store. */
    explicit MemoCache(std::string cacheDir = "");

    bool lookupCompile(const workloads::KernelInstance &kernel,
                       const compiler::CompileOptions &opts,
                       compiler::CompileResult &out) override;
    void storeCompile(const workloads::KernelInstance &kernel,
                      const compiler::CompileOptions &opts,
                      const compiler::CompileResult &result) override;

    bool lookupMapping(const dfg::Graph &graph,
                       const fabric::FabricConfig &fabric,
                       const mapper::MapperOptions &opts,
                       mapper::Mapping &out) override;
    void storeMapping(const dfg::Graph &graph,
                      const fabric::FabricConfig &fabric,
                      const mapper::MapperOptions &opts,
                      const mapper::Mapping &mapping) override;

    /** Whole prepared artifacts (in-memory only: a built Program is
     *  not serializable). Shared by reference, so N concurrent
     *  executions of one kernel×config reuse one Program. */
    std::shared_ptr<const PreparedKernel>
    lookupPrepared(const workloads::KernelInstance &kernel,
                   const RunConfig &config) override;
    void storePrepared(
        const workloads::KernelInstance &kernel,
        const RunConfig &config,
        std::shared_ptr<const PreparedKernel> prepared) override;

    MemoStats stats() const;

    const std::string &cacheDir() const { return dir; }

    /** @{ Content keys (exposed for the run-level dedup and tests). */
    static uint64_t programKey(const workloads::KernelInstance &k);
    static uint64_t kernelKey(const workloads::KernelInstance &k);
    static uint64_t compileKey(const workloads::KernelInstance &k,
                               const compiler::CompileOptions &opts);
    static uint64_t mappingKey(const dfg::Graph &graph,
                               const fabric::FabricConfig &fabric,
                               const mapper::MapperOptions &opts);
    static uint64_t runKey(const workloads::KernelInstance &k,
                           const RunConfig &cfg);
    /** Prepared-artifact key: like runKey but without the memory
     *  image (per-execution state) or golden-verify flag. */
    static uint64_t preparedKey(const workloads::KernelInstance &k,
                                const RunConfig &cfg);
    /** @} */

  private:
    std::string mappingPath(uint64_t key) const;
    bool loadMappingFile(uint64_t key, mapper::Mapping &out) const;
    void saveMappingFile(uint64_t key,
                         const mapper::Mapping &mapping) const;
    /** Delete `*.tmp.*` leftovers from crashed writers (aged, so a
     *  live writer's in-flight tmp file is never touched). */
    void sweepOrphanedTmpFiles() const;

    mutable std::mutex mu;
    std::unordered_map<uint64_t, compiler::CompileResult> compiles;
    std::unordered_map<uint64_t, mapper::Mapping> mappings;
    std::unordered_map<uint64_t,
                       std::shared_ptr<const PreparedKernel>>
        prepareds;
    std::string dir;

    mutable std::atomic<int64_t> nCompileHits{0};
    mutable std::atomic<int64_t> nCompileComputes{0};
    mutable std::atomic<int64_t> nMapHits{0};
    mutable std::atomic<int64_t> nMapDiskHits{0};
    mutable std::atomic<int64_t> nMapComputes{0};
    mutable std::atomic<int64_t> nPreparedHits{0};
    mutable std::atomic<int64_t> nPreparedComputes{0};
};

} // namespace pipestitch::runner

#endif // PIPESTITCH_RUNNER_MEMO_HH
