/**
 * @file
 * Scalar-core cost profiles.
 *
 * Converts the interpreter's dynamic instruction counts into cycles
 * and energy for the two scalar comparison points the paper uses: the
 * small in-order RISC-V control core synthesized next to the fabric,
 * and an off-the-shelf Cortex-M33 MCU (Figs. 1 and 3).
 *
 * Energy constants are calibrated so that the *relative* trends match
 * the paper (CGRA ≈ 5-7× lower energy/op than the scalar core; M33
 * several times worse than the sub-28nm scalar core). See DESIGN.md,
 * "Substitutions".
 */

#ifndef PIPESTITCH_SCALAR_PROFILE_HH
#define PIPESTITCH_SCALAR_PROFILE_HH

#include <string>

#include "scalar/interpreter.hh"

namespace pipestitch::scalar {

/** Per-instruction-class CPI and energy for one scalar core. */
struct ScalarProfile
{
    std::string name;
    double freqMHz;

    double cpiAlu;
    double cpiMul;
    double cpiLoad;
    double cpiStore;
    double cpiBranch;
    double cpiMove;

    /** Pipeline energy per instruction (fetch/decode/RF/bypass). */
    double pjPerInstr;
    /** Additional SRAM energy per memory access. */
    double pjPerMemAccess;
    /** Static power burned while the core is active. */
    double leakageUW;

    /** Total cycles for @p c. */
    double cycles(const EventCounts &c) const;
    /** Wall-clock seconds for @p c. */
    double seconds(const EventCounts &c) const;
    /** Total energy in pJ (dynamic + leakage over the runtime). */
    double energyPj(const EventCounts &c) const;
};

/** The small RISC-V in-order control core (paper's "Scalar"). */
const ScalarProfile &riptideScalarProfile();

/** Cortex-M33-class MCU used in the end-to-end models. */
const ScalarProfile &cortexM33Profile();

} // namespace pipestitch::scalar

#endif // PIPESTITCH_SCALAR_PROFILE_HH
