#include "scalar/profile.hh"

namespace pipestitch::scalar {

double
ScalarProfile::cycles(const EventCounts &c) const
{
    return static_cast<double>(c.alu) * cpiAlu +
           static_cast<double>(c.mul) * cpiMul +
           static_cast<double>(c.load) * cpiLoad +
           static_cast<double>(c.store) * cpiStore +
           static_cast<double>(c.branch) * cpiBranch +
           static_cast<double>(c.moves) * cpiMove;
}

double
ScalarProfile::seconds(const EventCounts &c) const
{
    return cycles(c) / (freqMHz * 1e6);
}

double
ScalarProfile::energyPj(const EventCounts &c) const
{
    double dynamic =
        static_cast<double>(c.total()) * pjPerInstr +
        static_cast<double>(c.load + c.store) * pjPerMemAccess;
    double leakage = seconds(c) * leakageUW * 1e6; // µW·s = µJ = 1e6 pJ
    return dynamic + leakage;
}

const ScalarProfile &
riptideScalarProfile()
{
    // Small in-order RV32 control core, sub-28nm, 50 MHz (paper
    // Sec. 5.1). ~16 pJ/instr pipeline energy puts the CGRA at the
    // ~6× energy advantage the RipTide line of work reports.
    static const ScalarProfile profile = {
        .name = "scalar-rv32",
        .freqMHz = 50.0,
        .cpiAlu = 1.0,
        .cpiMul = 2.0,
        .cpiLoad = 2.0,
        .cpiStore = 1.0,
        .cpiBranch = 2.0,
        .cpiMove = 1.0,
        .pjPerInstr = 16.0,
        .pjPerMemAccess = 7.0,
        .leakageUW = 15.0,
    };
    return profile;
}

const ScalarProfile &
cortexM33Profile()
{
    // Off-the-shelf MCU in a mature process node: substantially more
    // energy per instruction and a similar clock; used only in the
    // end-to-end harvesting/lifetime models (Figs. 1 and 3).
    static const ScalarProfile profile = {
        .name = "cortex-m33",
        .freqMHz = 48.0,
        .cpiAlu = 1.0,
        .cpiMul = 1.0,
        .cpiLoad = 2.0,
        .cpiStore = 1.0,
        .cpiBranch = 2.5,
        .cpiMove = 1.0,
        .pjPerInstr = 65.0,
        .pjPerMemAccess = 20.0,
        .leakageUW = 80.0,
    };
    return profile;
}

} // namespace pipestitch::scalar
