#include "scalar/interpreter.hh"

#include "base/logging.hh"

namespace pipestitch::scalar {

using namespace sir;

EventCounts &
EventCounts::operator+=(const EventCounts &other)
{
    alu += other.alu;
    mul += other.mul;
    load += other.load;
    store += other.store;
    branch += other.branch;
    moves += other.moves;
    return *this;
}

namespace {

class Interp
{
  public:
    Interp(const Program &prog, MemImage &mem, int64_t maxSteps)
        : prog(prog), mem(mem), maxSteps(maxSteps),
          regs(static_cast<size_t>(prog.numRegs), 0)
    {}

    RunResult
    run(const std::vector<Word> &liveIns)
    {
        ps_assert(liveIns.size() == prog.liveIns.size(),
                  "program %s expects %zu live-ins, got %zu",
                  prog.name.c_str(), prog.liveIns.size(),
                  liveIns.size());
        for (size_t i = 0; i < liveIns.size(); i++)
            regs[static_cast<size_t>(prog.liveIns[i])] = liveIns[i];
        execList(prog.body);
        return {counts};
    }

  private:
    Word
    get(Reg r) const
    {
        return regs[static_cast<size_t>(r)];
    }

    void
    set(Reg r, Word v)
    {
        regs[static_cast<size_t>(r)] = v;
    }

    void
    step()
    {
        if (++steps > maxSteps) {
            fatal("program %s exceeded %lld interpreter steps "
                  "(non-terminating kernel?)",
                  prog.name.c_str(),
                  static_cast<long long>(maxSteps));
        }
    }

    Word
    memAt(Reg addrReg, Word offset) const
    {
        int64_t addr = int64_t{get(addrReg)} + offset;
        ps_assert(addr >= 0 &&
                      addr < static_cast<int64_t>(mem.size()),
                  "program %s: address %lld out of bounds (%zu words)",
                  prog.name.c_str(), static_cast<long long>(addr),
                  mem.size());
        return static_cast<Word>(addr);
    }

    void
    execList(const StmtList &list)
    {
        for (const auto &stmt : list)
            execStmt(*stmt);
    }

    void
    execStmt(const Stmt &stmt)
    {
        step();
        switch (stmt.kind()) {
          case Stmt::Kind::Const: {
            const auto &s = static_cast<const ConstStmt &>(stmt);
            set(s.dst, s.value);
            counts.moves++;
            break;
          }
          case Stmt::Kind::Compute: {
            const auto &s = static_cast<const ComputeStmt &>(stmt);
            Word c = s.op == Opcode::Select ? get(s.c) : 0;
            set(s.dst, evalOpcode(s.op, get(s.a), get(s.b), c));
            if (isMultiplierOp(s.op)) {
                counts.mul++;
            } else if (s.op == Opcode::Select) {
                // cmov-less ISA: branchy select ≈ branch + move.
                counts.branch++;
                counts.moves++;
            } else {
                counts.alu++;
            }
            break;
          }
          case Stmt::Kind::Load: {
            const auto &s = static_cast<const LoadStmt &>(stmt);
            set(s.dst,
                mem[static_cast<size_t>(memAt(s.addr, s.offset))]);
            counts.load++;
            break;
          }
          case Stmt::Kind::Store: {
            const auto &s = static_cast<const StoreStmt &>(stmt);
            mem[static_cast<size_t>(memAt(s.addr, s.offset))] =
                get(s.value);
            counts.store++;
            break;
          }
          case Stmt::Kind::If: {
            const auto &s = static_cast<const IfStmt &>(stmt);
            counts.branch++;
            if (get(s.cond))
                execList(s.thenBody);
            else
                execList(s.elseBody);
            break;
          }
          case Stmt::Kind::For: {
            const auto &s = static_cast<const ForStmt &>(stmt);
            counts.moves++; // induction init
            Word end = get(s.end);
            for (Word i = get(s.begin); i < end; i += s.step) {
                step();
                set(s.var, i);
                execList(s.body);
                counts.alu++;    // increment
                counts.branch++; // compare-and-branch
            }
            counts.branch++; // final (failing) check
            break;
          }
          case Stmt::Kind::While: {
            const auto &s = static_cast<const WhileStmt &>(stmt);
            for (;;) {
                step();
                execList(s.header);
                counts.branch++;
                if (!get(s.cond))
                    break;
                execList(s.body);
            }
            break;
          }
        }
    }

    const Program &prog;
    MemImage &mem;
    int64_t maxSteps;
    int64_t steps = 0;
    std::vector<Word> regs;
    EventCounts counts;
};

} // namespace

RunResult
interpret(const Program &prog, MemImage &mem,
          const std::vector<Word> &liveIns, int64_t maxSteps)
{
    ps_assert(static_cast<int64_t>(mem.size()) >= prog.memWords,
              "memory image too small for program %s",
              prog.name.c_str());
    return Interp(prog, mem, maxSteps).run(liveIns);
}

MemImage
makeMemory(const Program &prog)
{
    return MemImage(static_cast<size_t>(prog.memWords), 0);
}

} // namespace pipestitch::scalar
