/**
 * @file
 * Sequential SIR interpreter.
 *
 * Serves two roles:
 *  - the *golden functional model*: every dataflow execution is
 *    checked against the interpreter's final memory image;
 *  - the *scalar baseline*: it counts dynamic instruction events that
 *    a ScalarProfile converts into cycles and energy for the RISC-V
 *    control core and Cortex-M33 comparison points.
 */

#ifndef PIPESTITCH_SCALAR_INTERPRETER_HH
#define PIPESTITCH_SCALAR_INTERPRETER_HH

#include <cstdint>
#include <vector>

#include "sir/program.hh"

namespace pipestitch::scalar {

/** Word-addressed flat memory image shared with the dataflow sim. */
using MemImage = std::vector<sir::Word>;

/** Dynamic instruction counts by class. */
struct EventCounts
{
    int64_t alu = 0;
    int64_t mul = 0;
    int64_t load = 0;
    int64_t store = 0;
    int64_t branch = 0;
    int64_t moves = 0; // constant materialization / register moves

    int64_t total() const
    {
        return alu + mul + load + store + branch + moves;
    }

    EventCounts &operator+=(const EventCounts &other);
};

/** Result of one interpreted kernel execution. */
struct RunResult
{
    EventCounts counts;
};

/**
 * Execute @p prog on @p mem.
 *
 * @param liveIns one value per prog.liveIns entry, in order.
 * @param maxSteps safety bound on executed statements; exceeded ⇒
 *        fatal (a non-terminating kernel is a user error).
 */
RunResult interpret(const sir::Program &prog, MemImage &mem,
                    const std::vector<sir::Word> &liveIns,
                    int64_t maxSteps = int64_t{1} << 40);

/** Allocate a zeroed memory image sized for @p prog. */
MemImage makeMemory(const sir::Program &prog);

} // namespace pipestitch::scalar

#endif // PIPESTITCH_SCALAR_INTERPRETER_HH
