#include "workloads/dnn.hh"

#include "base/logging.hh"
#include "core/system.hh"
#include "workloads/kernels.hh"

namespace pipestitch::workloads {

int64_t
DnnModel::footprintBytes() const
{
    int64_t words = 0;
    for (const auto &w : weights)
        words += w.words();
    for (int d : config.dims)
        words += 2 * d; // worst-case sparse activations (idx + val)
    return words * 4;
}

DnnModel
buildDnn(const DnnConfig &config)
{
    ps_assert(config.dims.size() ==
                  config.weightSparsity.size() + 1,
              "need one sparsity per layer");
    DnnModel model;
    model.config = config;
    Rng rng(config.seed);
    for (size_t l = 0; l + 1 < config.dims.size(); l++) {
        model.weights.push_back(
            randomCsr(config.dims[l + 1], config.dims[l],
                      config.weightSparsity[l], rng, -4, 4));
    }
    model.input = randomSparseVec(config.dims[0],
                                  config.inputSparsity, rng, 1, 8);
    return model;
}

namespace {

/** Extract the dense layer output from a finished memory image. */
std::vector<Word>
denseOut(const sir::Program &prog, const scalar::MemImage &mem,
         int rows)
{
    // The SpMSpVd "out" array is the program's last array.
    const auto &arr = prog.arrays.back();
    ps_assert(arr.name == "out", "unexpected kernel layout");
    ps_assert(arr.words >= rows, "output array too small");
    std::vector<Word> out(static_cast<size_t>(rows));
    for (int i = 0; i < rows; i++)
        out[static_cast<size_t>(i)] =
            mem[static_cast<size_t>(arr.base + i)];
    return out;
}

/** Extract the sparse activation from a finished sparsify run. */
SparseVec
sparseOut(const sir::Program &prog, const scalar::MemImage &mem,
          int length)
{
    const sir::Array *sidx = nullptr, *sval = nullptr,
                     *cnt = nullptr;
    for (const auto &a : prog.arrays) {
        if (a.name == "sidx")
            sidx = &a;
        if (a.name == "sval")
            sval = &a;
        if (a.name == "count")
            cnt = &a;
    }
    ps_assert(sidx && sval && cnt, "unexpected sparsify layout");
    SparseVec v;
    v.length = length;
    Word n = mem[static_cast<size_t>(cnt->base)];
    for (Word i = 0; i < n; i++) {
        v.idx.push_back(mem[static_cast<size_t>(sidx->base + i)]);
        v.val.push_back(mem[static_cast<size_t>(sval->base + i)]);
    }
    return v;
}

} // namespace

DnnInference
runDnnOnFabric(const DnnModel &model, compiler::ArchVariant variant,
               int bufferDepth)
{
    RunConfig cfg;
    cfg.variant = variant;
    cfg.sim.bufferDepth = bufferDepth;
    return runDnnOnFabric(model, cfg);
}

DnnInference
runDnnOnFabric(const DnnModel &model, const RunConfig &cfg)
{
    DnnInference total;
    total.system = compiler::archVariantName(cfg.variant);

    SparseVec act = model.input;
    const size_t layers = model.weights.size();
    for (size_t l = 0; l < layers; l++) {
        const Csr &w = model.weights[l];
        auto layerKernel = makeSpMSpVdFrom(
            w, act, csprintf("dnn_layer%zu", l));
        FabricRun run = runOnFabric(layerKernel, cfg);
        total.cycles += static_cast<double>(run.cycles());
        total.seconds += run.seconds;
        total.energy.cgraPj += run.energy.cgraPj;
        total.energy.memPj += run.energy.memPj;
        total.energy.scalarPj += run.energy.scalarPj;
        total.energy.otherPj += run.energy.otherPj;
        auto dense = denseOut(layerKernel.prog, run.memory, w.rows);

        if (l + 1 == layers) {
            total.logits = dense;
            break;
        }
        auto sparsifyKernel = makeSparsify(dense);
        FabricRun srun = runOnFabric(sparsifyKernel, cfg);
        total.cycles += static_cast<double>(srun.cycles());
        total.seconds += srun.seconds;
        total.energy.cgraPj += srun.energy.cgraPj;
        total.energy.memPj += srun.energy.memPj;
        total.energy.scalarPj += srun.energy.scalarPj;
        total.energy.otherPj += srun.energy.otherPj;
        act = sparseOut(sparsifyKernel.prog, srun.memory, w.rows);
    }
    return total;
}

DnnInference
runDnnOnScalar(const DnnModel &model,
               const scalar::ScalarProfile &profile)
{
    DnnInference total;
    total.system = profile.name;

    SparseVec act = model.input;
    const size_t layers = model.weights.size();
    for (size_t l = 0; l < layers; l++) {
        const Csr &w = model.weights[l];
        auto layerKernel = makeSpMSpVdFrom(
            w, act, csprintf("dnn_layer%zu", l));
        ScalarRun run = runOnScalar(layerKernel, profile);
        total.cycles += run.cycles;
        total.seconds += run.seconds;
        total.energy.memPj += run.energy.memPj;
        total.energy.scalarPj += run.energy.scalarPj;
        auto dense = denseOut(layerKernel.prog, run.memory, w.rows);

        if (l + 1 == layers) {
            total.logits = dense;
            break;
        }
        auto sparsifyKernel = makeSparsify(dense);
        ScalarRun srun = runOnScalar(sparsifyKernel, profile);
        total.cycles += srun.cycles;
        total.seconds += srun.seconds;
        total.energy.memPj += srun.energy.memPj;
        total.energy.scalarPj += srun.energy.scalarPj;
        act = sparseOut(sparsifyKernel.prog, srun.memory, w.rows);
    }
    return total;
}

} // namespace pipestitch::workloads
