/**
 * @file
 * The paper's benchmark kernels (Table 1), written against the
 * foreach programming model:
 *
 *   DMM      dense matrix multiply          (regular, unthreaded)
 *   SpMV     CSR matrix × dense vector      (regular, unthreaded)
 *   Dither   1-D error-diffusion dithering  (threaded rows)
 *   SpSlice  sparse matrix slicing          (threaded rows)
 *   SpMSpVd  sparse×sparse vector, dense out(threaded rows)
 *   SpMSpMd  sparse×sparse matrix, dense out(threaded dot products)
 *
 * Address arithmetic uses shifts for power-of-two dimensions (the
 * strength reduction any real compiler performs), keeping the two
 * multiplier PEs free for data products.
 */

#ifndef PIPESTITCH_WORKLOADS_KERNELS_HH
#define PIPESTITCH_WORKLOADS_KERNELS_HH

#include <string>
#include <vector>

#include "scalar/interpreter.hh"
#include "sir/program.hh"
#include "workloads/matrix.hh"

namespace pipestitch::workloads {

/** A kernel plus its bound parameters and initialized memory. */
struct KernelInstance
{
    std::string name;
    sir::Program prog;
    std::vector<Word> liveIns;
    scalar::MemImage memory;
};

/** Dense n×n matrix multiply (n power of two). */
KernelInstance makeDmm(int n, uint64_t seed);

/** CSR (n×n, given sparsity) times dense vector. */
KernelInstance makeSpmv(int n, double sparsity, uint64_t seed);

/** Error-diffusion dithering of a width×height image
 *  (width power of two; rows are independent foreach threads). */
KernelInstance makeDither(int width, int height, uint64_t seed);

/** Slice rows/cols [n/4, 3n/4) of a CSR matrix into a dense block. */
KernelInstance makeSpSlice(int n, double sparsity, uint64_t seed);

/** Sparse matrix × sparse vector with dense output. */
KernelInstance makeSpMSpVd(int n, double sparsity, uint64_t seed);

/** Sparse matrix × sparse matrix with dense output
 *  (inner-product over A rows and B^T rows). */
KernelInstance makeSpMSpMd(int n, double sparsity, uint64_t seed);

/**
 * 3×3 dense convolution over a width×height image (valid region
 * only). Not in the paper's table — included to exercise four-deep
 * affine loop nests, which consume the fabric's entire stream-PE
 * budget. Regular, II = 1, unthreaded.
 */
KernelInstance makeConv3x3(int width, int height, uint64_t seed);

/**
 * Fused sparsify/ReLU: dense vector → sparse (idx, val) plus count
 * (the DNN's inter-layer kernel; sequential, unthreaded).
 */
KernelInstance makeSparsify(const std::vector<Word> &dense);

/**
 * SpMSpVd instance over explicit operands (used by the DNN, where
 * the matrix is a layer's weights and the vector the activations).
 */
KernelInstance makeSpMSpVdFrom(const Csr &matrix,
                               const SparseVec &vec,
                               const std::string &name);

/**
 * Data-parallel SpMV shards for batched tiled execution
 * (core/batch.hh): @p count instances sharing one program and one
 * CSR structure (from @p seed), each with its own dense input
 * vector. Because only memory contents differ, all shards execute
 * against a single prepared mapping — one per tile replica.
 */
std::vector<KernelInstance> makeSpmvShards(int n, double sparsity,
                                           uint64_t seed, int count);

/** All six standalone kernels at the paper's Table 1 parameters. */
std::vector<KernelInstance> paperKernels(uint64_t seed = 1);

/** Reduced-size variants of the same kernels (fast tests). */
std::vector<KernelInstance> smallKernels(uint64_t seed = 1);

} // namespace pipestitch::workloads

#endif // PIPESTITCH_WORKLOADS_KERNELS_HH
