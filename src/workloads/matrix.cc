#include "workloads/matrix.hh"

#include "base/logging.hh"

namespace pipestitch::workloads {

namespace {

Word
nonZeroValue(Rng &rng, Word lo, Word hi)
{
    for (;;) {
        Word v = static_cast<Word>(rng.nextRange(lo, hi));
        if (v != 0)
            return v;
    }
}

} // namespace

Csr
randomCsr(int rows, int cols, double sparsity, Rng &rng, Word lo,
          Word hi)
{
    ps_assert(sparsity >= 0.0 && sparsity <= 1.0,
              "sparsity must be in [0,1]");
    Csr m;
    m.rows = rows;
    m.cols = cols;
    m.rowPtr.reserve(static_cast<size_t>(rows) + 1);
    m.rowPtr.push_back(0);
    for (int r = 0; r < rows; r++) {
        for (int c = 0; c < cols; c++) {
            if (rng.nextBool(1.0 - sparsity)) {
                m.colIdx.push_back(c);
                m.values.push_back(nonZeroValue(rng, lo, hi));
            }
        }
        m.rowPtr.push_back(static_cast<Word>(m.values.size()));
    }
    return m;
}

std::vector<Word>
randomDense(int n, Rng &rng, Word lo, Word hi)
{
    std::vector<Word> v(static_cast<size_t>(n));
    for (auto &x : v)
        x = static_cast<Word>(rng.nextRange(lo, hi));
    return v;
}

SparseVec
randomSparseVec(int n, double sparsity, Rng &rng, Word lo, Word hi)
{
    SparseVec v;
    v.length = n;
    for (int i = 0; i < n; i++) {
        if (rng.nextBool(1.0 - sparsity)) {
            v.idx.push_back(i);
            v.val.push_back(nonZeroValue(rng, lo, hi));
        }
    }
    return v;
}

Csr
transpose(const Csr &m)
{
    Csr t;
    t.rows = m.cols;
    t.cols = m.rows;
    t.rowPtr.assign(static_cast<size_t>(m.cols) + 1, 0);
    for (Word c : m.colIdx)
        t.rowPtr[static_cast<size_t>(c) + 1]++;
    for (size_t i = 1; i < t.rowPtr.size(); i++)
        t.rowPtr[i] += t.rowPtr[i - 1];
    t.colIdx.assign(m.values.size(), 0);
    t.values.assign(m.values.size(), 0);
    std::vector<Word> cursor(t.rowPtr.begin(), t.rowPtr.end() - 1);
    for (int r = 0; r < m.rows; r++) {
        for (Word k = m.rowPtr[static_cast<size_t>(r)];
             k < m.rowPtr[static_cast<size_t>(r) + 1]; k++) {
            Word c = m.colIdx[static_cast<size_t>(k)];
            Word pos = cursor[static_cast<size_t>(c)]++;
            t.colIdx[static_cast<size_t>(pos)] = r;
            t.values[static_cast<size_t>(pos)] =
                m.values[static_cast<size_t>(k)];
        }
    }
    return t;
}

std::vector<Word>
randomImage(int width, int height, Rng &rng)
{
    std::vector<Word> img(static_cast<size_t>(width) *
                          static_cast<size_t>(height));
    for (auto &p : img)
        p = static_cast<Word>(rng.nextBounded(256));
    return img;
}

} // namespace pipestitch::workloads
