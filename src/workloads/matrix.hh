/**
 * @file
 * Dense/sparse matrix utilities for workload generation: CSR
 * matrices and sparse vectors with controlled sparsity, drawn from
 * the deterministic RNG (paper Sec. 5.2 evaluates on random inputs).
 */

#ifndef PIPESTITCH_WORKLOADS_MATRIX_HH
#define PIPESTITCH_WORKLOADS_MATRIX_HH

#include <vector>

#include "base/random.hh"
#include "sir/program.hh"

namespace pipestitch::workloads {

using sir::Word;

/** Compressed sparse row matrix of 32-bit integers. */
struct Csr
{
    int rows = 0;
    int cols = 0;
    std::vector<Word> rowPtr; // rows + 1 entries
    std::vector<Word> colIdx; // nnz entries, ascending per row
    std::vector<Word> values; // nnz entries

    int nnz() const { return static_cast<int>(values.size()); }

    /** Memory footprint in words (rowPtr + colIdx + values). */
    int64_t words() const
    {
        return static_cast<int64_t>(rowPtr.size()) +
               2 * static_cast<int64_t>(values.size());
    }
};

/** Sparse vector: ascending indices plus matching values. */
struct SparseVec
{
    int length = 0;
    std::vector<Word> idx;
    std::vector<Word> val;

    int nnz() const { return static_cast<int>(val.size()); }
};

/**
 * Random CSR with each entry present with probability
 * (1 - sparsity); values uniform in [lo, hi] excluding 0.
 */
Csr randomCsr(int rows, int cols, double sparsity, Rng &rng,
              Word lo = -8, Word hi = 8);

/** Random dense vector with values in [lo, hi]. */
std::vector<Word> randomDense(int n, Rng &rng, Word lo = -8,
                              Word hi = 8);

/** Random sparse vector (density = 1 - sparsity). */
SparseVec randomSparseVec(int n, double sparsity, Rng &rng,
                          Word lo = -8, Word hi = 8);

/** Transpose @p m (used to build the B^T operand of SpMSpMd). */
Csr transpose(const Csr &m);

/** Dense row-major image with values in [0, 255]. */
std::vector<Word> randomImage(int width, int height, Rng &rng);

} // namespace pipestitch::workloads

#endif // PIPESTITCH_WORKLOADS_MATRIX_HH
