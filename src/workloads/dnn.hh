/**
 * @file
 * The paper's end-to-end application: a 4-layer sparse DNN
 * (MNIST-scale input) composed of SpMSpVd layers with fused
 * sparsify/ReLU between them (Sec. 5.2). Weights are synthetic
 * random CSR matrices at the paper's layer sparsities (75–97 %);
 * the evaluation depends on sparsity structure and footprint, not
 * classification accuracy (see DESIGN.md).
 */

#ifndef PIPESTITCH_WORKLOADS_DNN_HH
#define PIPESTITCH_WORKLOADS_DNN_HH

#include <optional>
#include <string>
#include <vector>

#include "compiler/compile.hh"
#include "core/system.hh"
#include "energy/model.hh"
#include "workloads/matrix.hh"

namespace pipestitch::workloads {

struct DnnConfig
{
    /** Layer widths: input followed by each layer's output size. */
    std::vector<int> dims = {784, 512, 256, 128, 10};

    /** Weight sparsity per layer (97 % … 75 %, Sec. 5.2). */
    std::vector<double> weightSparsity = {0.97, 0.93, 0.88, 0.75};

    /** Input activation sparsity (MNIST-like). */
    double inputSparsity = 0.75;

    uint64_t seed = 1;
};

/** The generated network. */
struct DnnModel
{
    DnnConfig config;
    std::vector<Csr> weights;
    SparseVec input;

    /** Weight + activation memory footprint in bytes. */
    int64_t footprintBytes() const;
};

DnnModel buildDnn(const DnnConfig &config = DnnConfig{});

/** Totals for one full inference on one system. */
struct DnnInference
{
    std::string system;
    double cycles = 0;
    double seconds = 0;
    energy::EnergyBreakdown energy;
    std::vector<Word> logits;
};

/** Run one inference on a CGRA variant (per-layer kernels summed). */
DnnInference runDnnOnFabric(const DnnModel &model,
                            compiler::ArchVariant variant,
                            int bufferDepth = 4);

/**
 * Same, under an explicit RunConfig (the layer runs inherit its
 * cache/quiet/fabric settings; `variant` and `sim.bufferDepth`
 * come from the config itself).
 */
DnnInference runDnnOnFabric(const DnnModel &model,
                            const RunConfig &config);

/** Run one inference on a scalar core profile. */
DnnInference runDnnOnScalar(const DnnModel &model,
                            const scalar::ScalarProfile &profile);

} // namespace pipestitch::workloads

#endif // PIPESTITCH_WORKLOADS_DNN_HH
