#include "workloads/kernels.hh"

#include "base/logging.hh"
#include "sir/builder.hh"

namespace pipestitch::workloads {

using sir::Builder;
using sir::Opcode;
using sir::Reg;

namespace {

int
log2of(int n)
{
    int l = 0;
    while ((1 << l) < n)
        l++;
    ps_assert((1 << l) == n, "%d is not a power of two", n);
    return l;
}

/** Copy a vector into the memory image at the array's base. */
void
blit(scalar::MemImage &mem, int64_t base,
     const std::vector<Word> &data)
{
    for (size_t i = 0; i < data.size(); i++)
        mem[static_cast<size_t>(base) + i] = data[i];
}

/** Emit the two-pointer sparse dot-product loop (shared by
 *  SpMSpVd, SpMSpMd and the DNN layers). Returns the accumulator. */
Reg
emitMergeDot(Builder &b, Reg ka0, Reg kaEnd, Reg kb0, Reg kbEnd,
             sir::ArrayId aCol, sir::ArrayId aVal,
             sir::ArrayId bCol, sir::ArrayId bVal)
{
    // If-converted two-pointer intersection: pointer advances and
    // the accumulation are predicated with selects rather than
    // branches, the form RipTide-class compilers emit to keep
    // control-flow operator counts within the fabric's CF budget.
    // The carried dependence through the column loads keeps the
    // inner II well above 1, so the loop still threads.
    Reg ka = b.reg("ka");
    b.assign(ka, ka0);
    Reg kb = b.reg("kb");
    b.assign(kb, kb0);
    Reg acc = b.reg("acc");
    b.assignConst(acc, 0);
    b.whileLoop(
        [&] {
            Reg inA = b.lt(ka, kaEnd);
            Reg inB = b.lt(kb, kbEnd);
            return b.band(inA, inB);
        },
        [&] {
            Reg ca = b.loadIdx(aCol, ka);
            Reg cb = b.loadIdx(bCol, kb);
            Reg same = b.eq(ca, cb);
            Reg prod =
                b.mul(b.loadIdx(aVal, ka), b.loadIdx(bVal, kb));
            Reg contrib = b.select(same, prod, b.let(0));
            b.computeInto(acc, Opcode::Add, acc, contrib);
            b.computeInto(ka, Opcode::Add, ka, b.le(ca, cb));
            b.computeInto(kb, Opcode::Add, kb, b.ge(ca, cb));
        });
    return acc;
}

} // namespace

KernelInstance
makeDmm(int n, uint64_t seed)
{
    int lg = log2of(n);
    Builder b("dmm");
    auto A = b.array("A", n * n);
    auto B = b.array("B", n * n);
    auto C = b.array("C", n * n);
    Reg nr = b.liveIn("n");
    // All three loops are independent; the programmer marks the
    // outer two foreach (the II=1 heuristic still compiles the nest
    // unthreaded, Table 1), which also tells the compiler the C
    // stores need no ordering chain.
    b.forEach0(nr, [&](Reg i) {
        Reg iN = b.shl(i, lg);
        b.forEach0(nr, [&](Reg j) {
            Reg acc = b.reg("acc");
            b.assignConst(acc, 0);
            b.forLoop0(nr, [&](Reg k) {
                Reg a = b.loadIdx(A, b.add(iN, k));
                Reg bv = b.loadIdx(B, b.add(b.shl(k, lg), j));
                b.computeInto(acc, Opcode::Add, acc, b.mul(a, bv));
            });
            b.storeIdx(C, b.add(iN, j), acc);
        });
    });

    KernelInstance inst;
    inst.name = "DMM";
    inst.prog = b.finish();
    inst.liveIns = {n};
    inst.memory = scalar::makeMemory(inst.prog);
    Rng rng(seed);
    blit(inst.memory, inst.prog.array(A).base,
         randomDense(n * n, rng));
    blit(inst.memory, inst.prog.array(B).base,
         randomDense(n * n, rng));
    return inst;
}

KernelInstance
makeSpmv(int n, double sparsity, uint64_t seed)
{
    Rng rng(seed);
    Csr m = randomCsr(n, n, sparsity, rng);
    auto x = randomDense(n, rng);

    Builder b("spmv");
    auto rp = b.array("rowptr", n + 1);
    auto ci = b.array("colidx", std::max(m.nnz(), 1));
    auto va = b.array("val", std::max(m.nnz(), 1));
    auto xv = b.array("x", n);
    auto yv = b.array("y", n);
    Reg nr = b.liveIn("n");
    b.forEach0(nr, [&](Reg i) {
        Reg start = b.loadIdx(rp, i);
        Reg end = b.loadIdx(rp, b.addi(i, 1));
        Reg acc = b.reg("acc");
        b.assignConst(acc, 0);
        b.forLoop(start, end, 1, [&](Reg k) {
            Reg c = b.loadIdx(ci, k);
            Reg v = b.loadIdx(va, k);
            b.computeInto(acc, Opcode::Add, acc,
                          b.mul(v, b.loadIdx(xv, c)));
        });
        b.storeIdx(yv, i, acc);
    });

    KernelInstance inst;
    inst.name = "SpMV";
    inst.prog = b.finish();
    inst.liveIns = {n};
    inst.memory = scalar::makeMemory(inst.prog);
    blit(inst.memory, inst.prog.array(rp).base, m.rowPtr);
    blit(inst.memory, inst.prog.array(ci).base, m.colIdx);
    blit(inst.memory, inst.prog.array(va).base, m.values);
    blit(inst.memory, inst.prog.array(xv).base, x);
    return inst;
}

std::vector<KernelInstance>
makeSpmvShards(int n, double sparsity, uint64_t seed, int count)
{
    std::vector<KernelInstance> shards;
    shards.reserve(static_cast<size_t>(std::max(count, 0)));
    for (int s = 0; s < count; s++) {
        // Same seed → same CSR structure and program; each shard
        // then gets its own dense vector, so only memory differs.
        KernelInstance inst = makeSpmv(n, sparsity, seed);
        Rng rng(seed + 7919u * static_cast<uint64_t>(s + 1));
        for (const auto &arr : inst.prog.arrays) {
            if (arr.name == "x")
                blit(inst.memory, arr.base, randomDense(n, rng));
        }
        shards.push_back(std::move(inst));
    }
    return shards;
}

KernelInstance
makeDither(int width, int height, uint64_t seed)
{
    int lg = log2of(width);
    Builder b("dither");
    auto img = b.array("img", width * height);
    auto out = b.array("out", width * height);
    Reg h = b.liveIn("h");
    Reg w = b.liveIn("w");
    b.forEach0(h, [&](Reg y) {
        Reg rowBase = b.shl(y, lg);
        Reg err = b.reg("err");
        b.assignConst(err, 0);
        b.forLoop0(w, [&](Reg x) {
            Reg addr = b.add(rowBase, x);
            Reg v = b.add(b.loadIdx(img, addr), err);
            Reg big = b.gti(v, 127);
            Reg outv = b.select(big, b.let(255), b.let(0));
            b.storeIdx(out, addr, outv);
            b.computeInto(err, Opcode::Sub, v, outv);
        });
    });

    KernelInstance inst;
    inst.name = "Dither";
    inst.prog = b.finish();
    inst.liveIns = {height, width};
    inst.memory = scalar::makeMemory(inst.prog);
    Rng rng(seed);
    blit(inst.memory, inst.prog.array(img).base,
         randomImage(width, height, rng));
    return inst;
}

KernelInstance
makeSpSlice(int n, double sparsity, uint64_t seed)
{
    Rng rng(seed);
    Csr m = randomCsr(n, n, sparsity, rng);
    int r0 = n / 4, r1 = 3 * n / 4;
    int c0 = n / 4, c1 = 3 * n / 4;
    int w = c1 - c0;
    int lgw = log2of(w);

    Builder b("spslice");
    auto rp = b.array("rowptr", n + 1);
    auto ci = b.array("colidx", std::max(m.nnz(), 1));
    auto va = b.array("val", std::max(m.nnz(), 1));
    auto out = b.array("out", (r1 - r0) * w);
    Reg r0r = b.liveIn("r0");
    Reg r1r = b.liveIn("r1");
    Reg c0r = b.liveIn("c0");
    Reg c1r = b.liveIn("c1");
    b.forEach(r0r, r1r, 1, [&](Reg i) {
        Reg k = b.reg("k");
        b.loadIdxInto(k, rp, i);
        Reg kend = b.loadIdx(rp, b.addi(i, 1));
        Reg outRow = b.shl(b.sub(i, r0r), lgw);
        Reg c = b.reg("c");
        b.whileLoop(
            [&] {
                Reg inb = b.lt(k, kend);
                Reg safe = b.select(inb, k, b.let(0));
                b.loadIdxInto(c, ci, safe);
                Reg cOk = b.lt(c, c1r);
                return b.band(inb, cOk);
            },
            [&] {
                Reg keep = b.ge(c, c0r);
                b.ifThen(keep, [&] {
                    Reg addr = b.add(outRow, b.sub(c, c0r));
                    b.storeIdx(out, addr, b.loadIdx(va, k));
                });
                b.computeInto(k, Opcode::Add, k, b.let(1));
            });
    });

    KernelInstance inst;
    inst.name = "SpSlice";
    inst.prog = b.finish();
    inst.liveIns = {r0, r1, c0, c1};
    inst.memory = scalar::makeMemory(inst.prog);
    blit(inst.memory, inst.prog.array(rp).base, m.rowPtr);
    blit(inst.memory, inst.prog.array(ci).base, m.colIdx);
    blit(inst.memory, inst.prog.array(va).base, m.values);
    return inst;
}

namespace {

KernelInstance
buildSpMSpVd(const Csr &m, const SparseVec &vec,
             const std::string &name)
{
    Builder b("spmspvd");
    auto rp = b.array("rowptr", m.rows + 1);
    auto ci = b.array("colidx", std::max(m.nnz(), 1));
    auto va = b.array("val", std::max(m.nnz(), 1));
    auto vi = b.array("vidx", std::max(vec.nnz(), 1));
    auto vv = b.array("vval", std::max(vec.nnz(), 1));
    auto out = b.array("out", m.rows);
    Reg nr = b.liveIn("rows");
    Reg vn = b.liveIn("vnnz");
    b.forEach0(nr, [&](Reg i) {
        Reg ka0 = b.loadIdx(rp, i);
        Reg kaEnd = b.loadIdx(rp, b.addi(i, 1));
        Reg acc = emitMergeDot(b, ka0, kaEnd, b.let(0), vn, ci, va,
                               vi, vv);
        b.storeIdx(out, i, acc);
    });

    KernelInstance inst;
    inst.name = name;
    inst.prog = b.finish();
    inst.liveIns = {m.rows, vec.nnz()};
    inst.memory = scalar::makeMemory(inst.prog);
    blit(inst.memory, inst.prog.array(rp).base, m.rowPtr);
    blit(inst.memory, inst.prog.array(ci).base, m.colIdx);
    blit(inst.memory, inst.prog.array(va).base, m.values);
    blit(inst.memory, inst.prog.array(vi).base, vec.idx);
    blit(inst.memory, inst.prog.array(vv).base, vec.val);
    return inst;
}

} // namespace

KernelInstance
makeSpMSpVd(int n, double sparsity, uint64_t seed)
{
    Rng rng(seed);
    Csr m = randomCsr(n, n, sparsity, rng);
    SparseVec vec = randomSparseVec(n, sparsity, rng);
    return buildSpMSpVd(m, vec, "SpMSpVd");
}

KernelInstance
makeSpMSpVdFrom(const Csr &matrix, const SparseVec &vec,
                const std::string &name)
{
    return buildSpMSpVd(matrix, vec, name);
}

KernelInstance
makeSpMSpMd(int n, double sparsity, uint64_t seed)
{
    Rng rng(seed);
    Csr a = randomCsr(n, n, sparsity, rng);
    Csr bt = transpose(randomCsr(n, n, sparsity, rng));
    int lg = log2of(n);

    Builder b("spmspmd");
    auto arp = b.array("arp", n + 1);
    auto aci = b.array("acol", std::max(a.nnz(), 1));
    auto ava = b.array("aval", std::max(a.nnz(), 1));
    auto brp = b.array("brp", n + 1);
    auto bci = b.array("bcol", std::max(bt.nnz(), 1));
    auto bva = b.array("bval", std::max(bt.nnz(), 1));
    auto C = b.array("C", n * n);
    Reg nr = b.liveIn("n");
    b.forLoop0(nr, [&](Reg i) {
        Reg ka0 = b.loadIdx(arp, i);
        Reg kaEnd = b.loadIdx(arp, b.addi(i, 1));
        Reg iN = b.shl(i, lg);
        b.forEach0(nr, [&](Reg j) {
            Reg kb0 = b.loadIdx(brp, j);
            Reg kbEnd = b.loadIdx(brp, b.addi(j, 1));
            Reg acc = emitMergeDot(b, ka0, kaEnd, kb0, kbEnd, aci,
                                   ava, bci, bva);
            b.storeIdx(C, b.add(iN, j), acc);
        });
    });

    KernelInstance inst;
    inst.name = "SpMSpMd";
    inst.prog = b.finish();
    inst.liveIns = {n};
    inst.memory = scalar::makeMemory(inst.prog);
    blit(inst.memory, inst.prog.array(arp).base, a.rowPtr);
    blit(inst.memory, inst.prog.array(aci).base, a.colIdx);
    blit(inst.memory, inst.prog.array(ava).base, a.values);
    blit(inst.memory, inst.prog.array(brp).base, bt.rowPtr);
    blit(inst.memory, inst.prog.array(bci).base, bt.colIdx);
    blit(inst.memory, inst.prog.array(bva).base, bt.values);
    return inst;
}

KernelInstance
makeConv3x3(int width, int height, uint64_t seed)
{
    int lg = log2of(width);
    Builder b("conv3x3");
    auto img = b.array("img", width * height);
    auto kern = b.array("kernel", 9);
    auto out = b.array("out", width * height);
    Reg h = b.liveIn("h");
    Reg w = b.liveIn("w");
    // Valid region: y in [1, h-1), x in [1, w-1).
    Reg hEnd = b.addi(h, -1);
    Reg wEnd = b.addi(w, -1);
    b.forEach(b.let(1), hEnd, 1, [&](Reg y) {
        b.forEach(b.let(1), wEnd, 1, [&](Reg x) {
            Reg acc = b.reg("acc");
            b.assignConst(acc, 0);
            b.forLoop0(b.let(3), [&](Reg ky) {
                b.forLoop0(b.let(3), [&](Reg kx) {
                    Reg iy = b.add(y, b.addi(ky, -1));
                    Reg ix = b.add(x, b.addi(kx, -1));
                    Reg pix = b.loadIdx(
                        img, b.add(b.shl(iy, lg), ix));
                    Reg kv = b.loadIdx(
                        kern, b.add(b.muli(ky, 3), kx));
                    b.computeInto(acc, Opcode::Add, acc,
                                  b.mul(pix, kv));
                });
            });
            b.storeIdx(out, b.add(b.shl(y, lg), x), acc);
        });
    });

    KernelInstance inst;
    inst.name = "Conv3x3";
    inst.prog = b.finish();
    inst.liveIns = {height, width};
    inst.memory = scalar::makeMemory(inst.prog);
    Rng rng(seed);
    blit(inst.memory, inst.prog.array(img).base,
         randomImage(width, height, rng));
    blit(inst.memory, inst.prog.array(kern).base,
         randomDense(9, rng, -2, 2));
    return inst;
}

KernelInstance
makeSparsify(const std::vector<Word> &dense)
{
    int n = static_cast<int>(dense.size());
    Builder b("sparsify");
    auto dv = b.array("dense", n);
    auto si = b.array("sidx", n);
    auto sv = b.array("sval", n);
    auto cnt = b.array("count", 1);
    Reg nr = b.liveIn("n");
    Reg count = b.reg("count");
    b.assignConst(count, 0);
    b.forLoop0(nr, [&](Reg i) {
        Reg v = b.loadIdx(dv, i);
        Reg pos = b.gti(v, 0); // ReLU: keep positive activations
        b.ifThen(pos, [&] {
            b.storeIdx(si, count, i);
            b.storeIdx(sv, count, v);
            b.computeInto(count, Opcode::Add, count, b.let(1));
        });
    });
    b.storeIdx(cnt, b.let(0), count);

    KernelInstance inst;
    inst.name = "Sparsify";
    inst.prog = b.finish();
    inst.liveIns = {n};
    inst.memory = scalar::makeMemory(inst.prog);
    blit(inst.memory, inst.prog.array(dv).base, dense);
    return inst;
}

std::vector<KernelInstance>
paperKernels(uint64_t seed)
{
    // Table 1 parameters.
    std::vector<KernelInstance> out;
    out.push_back(makeDmm(64, seed));
    out.push_back(makeSpmv(64, 0.90, seed + 1));
    out.push_back(makeDither(128, 128, seed + 2));
    out.push_back(makeSpSlice(64, 0.89, seed + 3));
    out.push_back(makeSpMSpVd(128, 0.90, seed + 4));
    out.push_back(makeSpMSpMd(64, 0.89, seed + 5));
    return out;
}

std::vector<KernelInstance>
smallKernels(uint64_t seed)
{
    std::vector<KernelInstance> out;
    out.push_back(makeDmm(8, seed));
    out.push_back(makeSpmv(16, 0.8, seed + 1));
    out.push_back(makeDither(16, 8, seed + 2));
    out.push_back(makeSpSlice(16, 0.8, seed + 3));
    out.push_back(makeSpMSpVd(16, 0.8, seed + 4));
    out.push_back(makeSpMSpMd(8, 0.8, seed + 5));
    return out;
}

} // namespace pipestitch::workloads
