#include "energy/model.hh"

namespace pipestitch::energy {

namespace {

/** Core accounting shared by the averaged and mapped variants;
 *  @p nocDynOverride replaces the traversal term when >= 0. */
EnergyBreakdown
fabricEnergyImpl(const sim::SimStats &stats,
                 const fabric::AreaBreakdown &area, double avgHops,
                 int nodes, const EnergyParams &params,
                 double nocTraversalPjOverride)
{
    EnergyBreakdown out;

    double peDyn = 0;
    for (size_t c = 0; c < 5; c++) {
        peDyn += static_cast<double>(stats.classFires[c]) *
                 params.peFirePj[c];
    }
    double bufDyn =
        static_cast<double>(stats.bufferWrites) *
            params.bufferWritePj +
        static_cast<double>(stats.bufferReads) * params.bufferReadPj;
    double traversalPj =
        nocTraversalPjOverride >= 0
            ? nocTraversalPjOverride
            : static_cast<double>(stats.nocTraversals) *
                  (params.nocBasePj +
                   avgHops * params.nocPerHopPj);
    double nocDyn =
        traversalPj +
        static_cast<double>(stats.nocCfFires) * params.nocCfFirePj;
    double syncDyn = static_cast<double>(stats.syncPlaneCycles) *
                     params.syncPlanePj;
    double muxDyn = static_cast<double>(stats.muxSwitches) *
                    params.muxSwitchPj;

    double cycles = static_cast<double>(stats.cycles);
    double fabricLeak = (area.peUm2 + area.nocUm2) *
                        params.leakagePjPerUm2PerCycle * cycles;
    out.cgraPj = peDyn + bufDyn + nocDyn + syncDyn + muxDyn +
                 fabricLeak;

    double memDyn =
        static_cast<double>(stats.memLoads + stats.memStores) *
        params.bankAccessPj;
    double memLeak =
        area.memUm2 * params.leakagePjPerUm2PerCycle * cycles;
    out.memPj = memDyn + memLeak;

    // The scalar core configures the fabric, then sleeps (leakage).
    out.scalarPj =
        params.configPjPerNode * static_cast<double>(nodes) +
        area.scalarUm2 * params.leakagePjPerUm2PerCycle * cycles;

    out.otherPj =
        (peDyn + bufDyn + nocDyn + memDyn) * params.otherFraction +
        area.otherUm2 * params.leakagePjPerUm2PerCycle * cycles;
    return out;
}

} // namespace

EnergyBreakdown
fabricEnergy(const sim::SimStats &stats,
             const fabric::AreaBreakdown &area, double avgHops,
             int nodes, const EnergyParams &params)
{
    return fabricEnergyImpl(stats, area, avgHops, nodes, params,
                            -1.0);
}

EnergyBreakdown
fabricEnergyMapped(const sim::SimStats &stats,
                   const fabric::AreaBreakdown &area,
                   const mapper::Mapping &mapping, int nodes,
                   const EnergyParams &params)
{
    double traversalPj = 0;
    for (size_t n = 0; n < stats.portReads.size(); n++) {
        for (size_t i = 0; i < stats.portReads[n].size(); i++) {
            int64_t reads = stats.portReads[n][i];
            if (reads == 0)
                continue;
            int hops = mapping.hopsOf[n][i];
            traversalPj +=
                static_cast<double>(reads) *
                (params.nocBasePj + hops * params.nocPerHopPj);
        }
    }
    return fabricEnergyImpl(stats, area, mapping.avgHops, nodes,
                            params, traversalPj);
}

EnergyBreakdown
scalarEnergy(const scalar::EventCounts &counts,
             const scalar::ScalarProfile &profile)
{
    EnergyBreakdown out;
    double memDyn =
        static_cast<double>(counts.load + counts.store) *
        profile.pjPerMemAccess;
    double total = profile.energyPj(counts);
    out.memPj = memDyn;
    out.scalarPj = total - memDyn;
    return out;
}

double
secondsFor(int64_t cycles, double clockMHz)
{
    return static_cast<double>(cycles) / (clockMHz * 1e6);
}

double
edp(const EnergyBreakdown &energy, double seconds)
{
    return energy.totalPj() * seconds;
}

} // namespace pipestitch::energy
