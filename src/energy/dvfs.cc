#include "energy/dvfs.hh"

#include <algorithm>

namespace pipestitch::energy {

DvfsPoint
scaleToRate(int64_t cycles, double dynamicPj, double leakagePw,
            double nominalMHz, double targetRate,
            double vminFraction)
{
    DvfsPoint out;
    // Required frequency for the target rate.
    double needed =
        targetRate * static_cast<double>(cycles) / 1e6; // MHz
    double f = std::max(needed, nominalMHz * vminFraction);
    double scale = f / nominalMHz; // V ∝ f ⇒ E_dyn ∝ f²
    double runSeconds = static_cast<double>(cycles) / (f * 1e6);
    // Leakage power scales ∝ V (first order).
    double leak = leakagePw * scale * runSeconds;
    out.freqMHz = f;
    out.rate = 1.0 / runSeconds;
    out.energyPj = dynamicPj * scale * scale + leak;
    return out;
}

} // namespace pipestitch::energy
