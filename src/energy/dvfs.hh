/**
 * @file
 * First-order DVFS model (Sec. 2.2, Fig. 4): with V ∝ f, dynamic
 * energy per operation scales as V² ∝ f², while leakage energy per
 * second is constant (so leakage per run scales as 1/f). Pipestitch
 * finishes the same work in fewer cycles, so at iso-throughput it
 * can run at a lower frequency and voltage than RipTide.
 */

#ifndef PIPESTITCH_ENERGY_DVFS_HH
#define PIPESTITCH_ENERGY_DVFS_HH

#include "energy/model.hh"

namespace pipestitch::energy {

struct DvfsPoint
{
    double freqMHz = 0;
    double rate = 0;     ///< kernels per second at this frequency
    double energyPj = 0; ///< energy per kernel execution
};

/**
 * Scale an execution measured at @p params.clockMHz to the frequency
 * that achieves @p targetRate (kernel executions per second).
 *
 * @param cycles    cycles per kernel execution (frequency-invariant)
 * @param dynamicPj dynamic energy per execution at nominal V/f
 * @param leakagePw leakage power at nominal voltage, in pJ/s
 * @param nominalMHz nominal frequency (V scales linearly with f)
 * @param vminFraction lowest usable V/f fraction (technology limit)
 */
DvfsPoint scaleToRate(int64_t cycles, double dynamicPj,
                      double leakagePw, double nominalMHz,
                      double targetRate,
                      double vminFraction = 0.4);

} // namespace pipestitch::energy

#endif // PIPESTITCH_ENERGY_DVFS_HH
