/**
 * @file
 * Event-based energy model.
 *
 * The paper derives energy from gate-level activity (Joules on
 * synthesized RTL); we substitute per-event energies applied to the
 * simulator's event counts — PE fires by class, buffer accesses,
 * NoC hop traversals, SyncPlane activity, SRAM bank accesses — plus
 * area-proportional leakage over the measured cycle count. Constants
 * are sub-28nm magnitudes calibrated so the *relative* results match
 * the paper's trends: CGRA ≈ 5-7× less energy/op than the scalar
 * core, Pipestitch ≈ 1.05× RipTide on threaded kernels and ≈ 1.2×
 * on DMM (destination buffering + CF-on-PE costs, Fig. 14).
 */

#ifndef PIPESTITCH_ENERGY_MODEL_HH
#define PIPESTITCH_ENERGY_MODEL_HH

#include <string>

#include "fabric/area.hh"
#include "mapper/mapper.hh"
#include "scalar/profile.hh"
#include "sim/stats.hh"

namespace pipestitch::energy {

/** Energy split used by Fig. 14 (CGRA / Memory / Scalar / Other). */
struct EnergyBreakdown
{
    double cgraPj = 0;
    double memPj = 0;
    double scalarPj = 0;
    double otherPj = 0;

    double
    totalPj() const
    {
        return cgraPj + memPj + scalarPj + otherPj;
    }

    double totalUj() const { return totalPj() / 1e6; }
};

/** Per-event energy constants (pJ). */
struct EnergyParams
{
    // PE fire energy by dfg::PeClass order.
    double peFirePj[5] = {0.70, 2.20, 0.35, 0.80, 0.90};
    double nocCfFirePj = 0.15;  ///< CF executed in a router
    double bufferWritePj = 0.12;
    double bufferReadPj = 0.06;
    double nocPerHopPj = 0.20;
    double nocBasePj = 0.10;    ///< local ejection/injection
    double bankAccessPj = 3.0;  ///< 32-bit scratchpad access
    double syncPlanePj = 0.25;  ///< per active SyncPlane cycle
    double muxSwitchPj = 1.5;   ///< shared-PE configuration swap
    double configPjPerNode = 22.0; ///< one-time fabric configuration
    double leakagePjPerUm2PerCycle = 1.2e-6;
    double otherFraction = 0.05; ///< clocking/glue share of dynamic
    double clockMHz = 50.0;
};

/**
 * Energy of one fabric execution.
 *
 * @param stats   simulator event counts
 * @param area    area of the active design (leakage scaling)
 * @param avgHops mean NoC route length from the mapping
 * @param nodes   configured operator count (configuration energy)
 */
EnergyBreakdown fabricEnergy(const sim::SimStats &stats,
                             const fabric::AreaBreakdown &area,
                             double avgHops, int nodes,
                             const EnergyParams &params = {});

/**
 * As above, but charges NoC energy per edge over the routes the
 * mapping actually assigned (per-port consumption counts × that
 * port's hop distance) instead of a global average.
 */
EnergyBreakdown fabricEnergyMapped(const sim::SimStats &stats,
                                   const fabric::AreaBreakdown &area,
                                   const mapper::Mapping &mapping,
                                   int nodes,
                                   const EnergyParams &params = {});

/** Energy of a scalar-core execution under @p profile. */
EnergyBreakdown scalarEnergy(const scalar::EventCounts &counts,
                             const scalar::ScalarProfile &profile);

/** Wall-clock seconds for @p cycles at @p clockMHz. */
double secondsFor(int64_t cycles, double clockMHz);

/** Energy-delay product in pJ·s. */
double edp(const EnergyBreakdown &energy, double seconds);

} // namespace pipestitch::energy

#endif // PIPESTITCH_ENERGY_MODEL_HH
