/**
 * @file
 * Extreme-edge system models for the end-to-end figures:
 *
 *  - Fig. 1: end-to-end inference rate vs. harvested input power.
 *    The device banks harvested energy and duty-cycles: if the
 *    harvester cannot sustain continuous compute, rate is
 *    energy-limited (P/E); otherwise it is performance-limited
 *    (1/T). Pipestitch's higher peak performance raises the plateau
 *    and keeps harvested energy from being stranded.
 *
 *  - Fig. 3: device lifetime on a primary D-cell battery vs. target
 *    inference rate, including sleep power. A system cannot serve
 *    rates beyond its performance wall at 1/T.
 */

#ifndef PIPESTITCH_HARVEST_HARVEST_HH
#define PIPESTITCH_HARVEST_HARVEST_HH

#include <optional>
#include <vector>

namespace pipestitch::harvest {

/** One compute platform's per-inference cost. */
struct Platform
{
    const char *name;
    double inferenceSeconds;
    double inferenceJoules;
};

struct HarvesterConfig
{
    /** Fraction of harvested power surviving conversion/storage. */
    double harvestEfficiency = 0.8;
    /** Always-on sleep/standby power (W). */
    double sleepPowerW = 2e-6;
};

/**
 * Achievable end-to-end rate (Hz) at harvested power @p powerW
 * (Fig. 1): min(energy-limited, performance-limited), zero when the
 * harvester cannot even cover sleep power.
 */
double endToEndRate(const Platform &platform, double powerW,
                    const HarvesterConfig &cfg = HarvesterConfig{});

struct BatteryConfig
{
    /** Primary D-cell: ~1.5 V × 12 Ah ≈ 65 kJ usable. */
    double energyJoules = 65e3;
    double sleepPowerW = 2e-6;
};

/**
 * Lifetime in years at a sustained @p rateHz (Fig. 3); empty when
 * the platform cannot reach that rate (its performance wall).
 */
std::optional<double> lifetimeYears(
    const Platform &platform, double rateHz,
    const BatteryConfig &cfg = BatteryConfig{});

} // namespace pipestitch::harvest

#endif // PIPESTITCH_HARVEST_HARVEST_HH
