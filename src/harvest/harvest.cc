#include "harvest/harvest.hh"

#include <algorithm>

namespace pipestitch::harvest {

double
endToEndRate(const Platform &platform, double powerW,
             const HarvesterConfig &cfg)
{
    double usable = powerW * cfg.harvestEfficiency - cfg.sleepPowerW;
    if (usable <= 0)
        return 0;
    double energyLimited = usable / platform.inferenceJoules;
    double perfLimited = 1.0 / platform.inferenceSeconds;
    return std::min(energyLimited, perfLimited);
}

std::optional<double>
lifetimeYears(const Platform &platform, double rateHz,
              const BatteryConfig &cfg)
{
    if (rateHz > 1.0 / platform.inferenceSeconds)
        return std::nullopt; // beyond the performance wall
    double draw =
        rateHz * platform.inferenceJoules + cfg.sleepPowerW;
    double seconds = cfg.energyJoules / draw;
    return seconds / (365.25 * 24 * 3600);
}

} // namespace pipestitch::harvest
