#include "core/batch.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "base/logging.hh"
#include "energy/model.hh"
#include "scalar/interpreter.hh"
#include "sim/execution.hh"

namespace pipestitch {

namespace {

void
reportFailure(std::string *error, std::string msg)
{
    if (!error)
        fatal("%s", msg.c_str());
    if (error->empty())
        *error = std::move(msg);
}

} // namespace

BatchRun
runBatch(const std::vector<workloads::KernelInstance> &shards,
         const RunConfig &config, std::string *error)
{
    BatchRun batch;
    batch.tiles = config.tilesX * config.tilesY;
    batch.shards = static_cast<int>(shards.size());

    if (shards.empty()) {
        reportFailure(error, "runBatch: no shards to execute");
        batch.error = error ? *error : "";
        return batch;
    }
    {
        std::string terr;
        if (!config.topology().validate(&terr)) {
            reportFailure(
                error,
                csprintf("runBatch: invalid topology: %s",
                         terr.c_str()));
            batch.error = error ? *error : "";
            return batch;
        }
    }
    // One mapping serves every tile, so every shard must be an
    // instance of the same kernel: the compiled program bakes the
    // live-ins in, and only the memory image is per-execution.
    for (size_t i = 1; i < shards.size(); i++) {
        if (shards[i].liveIns != shards[0].liveIns ||
            shards[i].prog.memWords != shards[0].prog.memWords) {
            reportFailure(
                error,
                csprintf("runBatch: shard %zu (%s) is not an "
                         "instance of shard 0 (%s) — batched tiles "
                         "share one program and differ only in "
                         "memory contents",
                         i, shards[i].name.c_str(),
                         shards[0].name.c_str()));
            batch.error = error ? *error : "";
            return batch;
        }
    }

    // Prepare ONCE, as a single tile: each tile of the topology
    // holds a replica of this per-tile placement, so the batch never
    // pays cross-tile routing inside a shard — only the injection
    // round trip modeled below.
    RunConfig tileCfg = config;
    tileCfg.tilesX = 1;
    tileCfg.tilesY = 1;
    std::string perr;
    PreparedPtr prep = prepareKernel(shards[0], tileCfg,
                                     error ? &perr : nullptr);
    if (!prep) {
        reportFailure(error, std::move(perr));
        batch.error = error ? *error : "";
        return batch;
    }
    batch.prepared = prep;

    const int tiles = batch.tiles;
    const int64_t overhead =
        2 * static_cast<int64_t>(config.interTileLatency);
    batch.shardCycles.assign(shards.size(), 0);
    batch.shardTile.assign(shards.size(), 0);

    std::vector<std::string> tileError(static_cast<size_t>(tiles));
    auto wallStart = std::chrono::steady_clock::now();

    // One worker per tile, one warmed ExecutionState per worker —
    // run() resets all run state, so one ExecutionState streams
    // every shard its tile claims. Shards sit in one shared queue
    // and each idle tile claims the next one (work-stealing): a
    // tile stuck on a slow shard never holds a fixed stride of the
    // queue the way the old round-robin deal did.
    std::atomic<size_t> nextShard{0};
    auto runTile = [&](int t) {
        ScopedQuiet scopedQuiet(config.quiet);
        sim::ExecutionState exec(prep->program);
        for (;;) {
            size_t i = nextShard.fetch_add(1);
            if (i >= shards.size())
                break;
            const workloads::KernelInstance &shard = shards[i];
            scalar::MemImage mem = shard.memory;
            mem.resize(std::max(
                mem.size(),
                static_cast<size_t>(shard.prog.memWords)));
            sim::RunOptions ropts;
            ropts.maxCycles = config.sim.maxCycles;
            sim::SimResult res = exec.run(mem, ropts);
            if (res.deadlocked) {
                tileError[static_cast<size_t>(t)] = csprintf(
                    "shard %zu (%s) %s on tile %d:\n%s", i,
                    shard.name.c_str(),
                    res.watchdogExpired
                        ? "exceeded its cycle watchdog"
                        : "deadlocked",
                    t, res.diagnostic.c_str());
                return;
            }
            if (config.verifyAgainstGolden) {
                scalar::MemImage golden = shard.memory;
                golden.resize(mem.size());
                scalar::interpret(shard.prog, golden,
                                  shard.liveIns);
                if (golden != mem) {
                    tileError[static_cast<size_t>(t)] = csprintf(
                        "shard %zu (%s) diverged from the golden "
                        "model on tile %d",
                        i, shard.name.c_str(), t);
                    return;
                }
            }
            batch.shardCycles[i] = res.stats.cycles;
        }
    };

    if (tiles > 1) {
        std::vector<std::thread> workers;
        workers.reserve(static_cast<size_t>(tiles));
        for (int t = 0; t < tiles; t++)
            workers.emplace_back(runTile, t);
        for (auto &w : workers)
            w.join();
    } else {
        runTile(0);
    }

    batch.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart)
            .count();

    for (int t = 0; t < tiles; t++) {
        if (tileError[static_cast<size_t>(t)].empty())
            continue;
        reportFailure(error,
                      "runBatch: " + tileError[static_cast<size_t>(t)]);
        batch.error = error ? *error : "";
        return batch;
    }

    // Throughput model: serial baseline vs batched makespan. The
    // modeled schedule mirrors the stealing executor
    // deterministically (per-shard cycles are arrangement-
    // invariant): longest remaining shard first, each onto the tile
    // that finishes it earliest — work always steals away from the
    // slowest tile while another is free. Remote tiles pay the
    // injection round trip per shard, so tile 0 wins ties.
    for (int64_t c : batch.shardCycles)
        batch.totalCycles += c;
    std::vector<size_t> order(shards.size());
    for (size_t i = 0; i < order.size(); i++)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) {
                  if (batch.shardCycles[a] != batch.shardCycles[b])
                      return batch.shardCycles[a] >
                             batch.shardCycles[b];
                  return a < b;
              });
    std::vector<int64_t> tileSum(static_cast<size_t>(tiles), 0);
    for (size_t i : order) {
        int best = 0;
        int64_t bestFinish = 0;
        for (int t = 0; t < tiles; t++) {
            int64_t finish = tileSum[static_cast<size_t>(t)] +
                             batch.shardCycles[i] +
                             (t > 0 ? overhead : 0);
            if (t == 0 || finish < bestFinish) {
                best = t;
                bestFinish = finish;
            }
        }
        batch.shardTile[i] = best;
        tileSum[static_cast<size_t>(best)] = bestFinish;
    }
    for (int t = 0; t < tiles; t++)
        batch.makespanCycles =
            std::max(batch.makespanCycles,
                     tileSum[static_cast<size_t>(t)]);
    batch.modeledSpeedup =
        batch.makespanCycles > 0
            ? static_cast<double>(batch.totalCycles) /
                  static_cast<double>(batch.makespanCycles)
            : 1.0;

    // The legacy round-robin deal (shard i → tile i % tiles), kept
    // as the regression baseline: bench-tiles asserts the modeled
    // schedule never loses to it.
    std::fill(tileSum.begin(), tileSum.end(), 0);
    for (size_t i = 0; i < shards.size(); i++) {
        int t = static_cast<int>(i) % tiles;
        tileSum[static_cast<size_t>(t)] +=
            batch.shardCycles[i] + (t > 0 ? overhead : 0);
    }
    int64_t rrMakespan = 0;
    for (int t = 0; t < tiles; t++)
        rrMakespan =
            std::max(rrMakespan, tileSum[static_cast<size_t>(t)]);
    batch.roundRobinSpeedup =
        rrMakespan > 0 ? static_cast<double>(batch.totalCycles) /
                             static_cast<double>(rrMakespan)
                       : 1.0;
    batch.seconds = energy::secondsFor(batch.makespanCycles,
                                       config.fabric.clockMHz);
    batch.success = true;
    return batch;
}

} // namespace pipestitch
