#include "core/system.hh"

#include "analysis/placement.hh"
#include "analysis/throughput.hh"
#include "base/logging.hh"
#include "compiler/timemux.hh"
#include "mapper/tiled.hh"
#include "scalar/interpreter.hh"
#include "sim/execution.hh"

namespace pipestitch {

namespace {

/** Report a pipeline failure: fatal() for batch callers (error ==
 *  null), collected for resident callers (the serve daemon must not
 *  exit the process on a bad request). */
void
reportFailure(std::string *error, std::string msg)
{
    if (!error)
        fatal("%s", msg.c_str());
    if (error->empty())
        *error = std::move(msg);
}

} // namespace

PreparedPtr
prepareKernel(const workloads::KernelInstance &kernel,
              const RunConfig &config, std::string *error)
{
    ScopedQuiet scopedQuiet(config.quiet);
    if (config.cache) {
        if (auto hit = config.cache->lookupPrepared(kernel, config))
            return hit;
    }

    auto prep = std::make_shared<PreparedKernel>();

    compiler::CompileOptions copts;
    copts.variant = config.variant;
    copts.threading = config.threading;
    copts.useStreams = config.useStreams;
    copts.bufferDepth = config.sim.bufferDepth;
    copts.unrollFactor = config.unrollFactor;
    compiler::CompileResult compiled;
    if (!config.cache ||
        !config.cache->lookupCompile(kernel, copts, compiled)) {
        compiled = compiler::compileProgram(kernel.prog,
                                            kernel.liveIns, copts);
        if (config.cache)
            config.cache->storeCompile(kernel, copts, compiled);
    }
    prep->compiled = std::make_shared<const compiler::CompileResult>(
        std::move(compiled));
    const dfg::Graph &graph = prep->compiled->graph;

    if (config.analyze) {
        analysis::AnalysisOptions aopts;
        aopts.bufferDepth = config.sim.bufferDepth;
        prep->analysis = analysis::analyzeGraph(graph, aopts);
        if (!prep->analysis.ok()) {
            reportFailure(
                error,
                csprintf("kernel %s fails static analysis on %s:\n%s",
                         kernel.name.c_str(),
                         compiler::archVariantName(config.variant),
                         prep->analysis.toString(graph).c_str()));
            return nullptr;
        }
    }

    prep->tiled = config.tiled();
    prep->topo = config.topology();
    if (prep->tiled) {
        std::string terr;
        if (!prep->topo.validate(&terr)) {
            reportFailure(
                error,
                csprintf("kernel %s: invalid tiled topology: %s",
                         kernel.name.c_str(), terr.c_str()));
            return nullptr;
        }
        if (!config.map) {
            reportFailure(
                error,
                csprintf("kernel %s: tiled fabrics require mapping "
                         "(the tile partition drives the inter-tile "
                         "channel model)",
                         kernel.name.c_str()));
            return nullptr;
        }
        if (prep->compiled->simConfig.buffering ==
            sim::SimConfig::Buffering::Source) {
            reportFailure(
                error,
                csprintf("kernel %s: tiled fabrics model inter-tile "
                         "edges as destination-buffered channels; "
                         "the %s variant's source buffering is not "
                         "supported across tiles",
                         kernel.name.c_str(),
                         compiler::archVariantName(config.variant)));
            return nullptr;
        }
    }

    // The lint/area fabric: the whole tile grid when tiled (so the
    // placement rules see boundary links and PS-P06 applies), the
    // plain grid otherwise.
    fabric::Fabric fab = prep->tiled ? fabric::Fabric(prep->topo)
                                     : fabric::Fabric(config.fabric);
    compiler::ShareGroups shareGroups;
    if (config.allowTimeMultiplex) {
        shareGroups = compiler::planTimeMultiplexing(
            graph, prep->tiled ? prep->topo.globalConfig()
                               : config.fabric);
    }
    if (config.map) {
        mapper::MapperOptions mopts;
        mopts.rngSeed = config.mapperSeed;
        mopts.portfolioSeeds = config.mapperSeeds;
        mopts.jobs = config.mapperJobs;
        mopts.boundPruneCycles = config.boundPruneCycles;
        mopts.shareGroups = shareGroups;
        if (prep->tiled) {
            // Tiled placements bypass the mapping memo — its key and
            // disk format are per-grid. Whole-artifact prepared
            // caching still covers them.
            mapper::TiledMapping tm =
                mapper::mapGraphTiled(graph, prep->topo, mopts);
            prep->mapping = std::move(tm.merged);
            prep->tileOf = std::move(tm.tileOf);
            prep->cutEdges = tm.cutEdges;
            prep->interTileLoadMax = tm.interTileLoadMax;
        } else if (!config.cache ||
                   !config.cache->lookupMapping(
                       graph, config.fabric, mopts, prep->mapping)) {
            prep->mapping = mapper::mapGraph(graph, fab, mopts);
            if (config.cache)
                config.cache->storeMapping(graph, config.fabric,
                                           mopts, prep->mapping);
        }
        if (!prep->mapping.success) {
            reportFailure(
                error,
                csprintf(
                    "kernel %s does not map onto the fabric (%s): %s",
                    kernel.name.c_str(),
                    compiler::archVariantName(config.variant),
                    prep->mapping.error.c_str()));
            return nullptr;
        }
        prep->mapped = true;
        prep->avgHops = prep->mapping.avgHops;
        if (config.analyze) {
            analysis::PlacementLintOptions popts;
            popts.shareGroups = shareGroups;
            analysis::lintPlacement(graph, fab, prep->mapping,
                                    prep->analysis, popts);
            if (!prep->analysis.ok()) {
                reportFailure(
                    error,
                    csprintf(
                        "kernel %s fails placement lint on %s:\n%s",
                        kernel.name.c_str(),
                        compiler::archVariantName(config.variant),
                        prep->analysis.toString(graph).c_str()));
                return nullptr;
            }
        }
    }

    // The user's sim config drives the run; only the derived fields
    // come from elsewhere (variant microarchitecture, fabric
    // banking, time-multiplexing plan). Per-run observability is
    // stripped — it rides in at execute time.
    auto simCfg = config.sim;
    simCfg.buffering = prep->compiled->simConfig.buffering;
    simCfg.memBypass = prep->compiled->simConfig.memBypass;
    simCfg.memBanks = prep->tiled
                          ? prep->topo.globalConfig().memBanks
                          : config.fabric.memBanks;
    simCfg.edgeLatencies.clear();
    if (prep->tiled) {
        // Every cross-tile wire edge becomes a latency-N channel in
        // the simulator, priced at the topology's boundary latency.
        // The trigger (tile -1) injects from the scalar core, not
        // over the inter-tile NoC.
        for (dfg::NodeId id = 0; id < graph.size(); id++) {
            const dfg::Node &n = graph.at(id);
            int ct = prep->tileOf[static_cast<size_t>(id)];
            for (int i = 0; i < n.numInputs(); i++) {
                const auto &in = n.inputs[static_cast<size_t>(i)];
                if (!in.isWire())
                    continue;
                int pt =
                    prep->tileOf[static_cast<size_t>(in.port.node)];
                if (pt >= 0 && ct >= 0 && pt != ct) {
                    simCfg.edgeLatencies.push_back(
                        {id, i, config.interTileLatency});
                }
            }
        }
    }
    simCfg.shareGroups.clear();
    for (const auto &group : shareGroups) {
        simCfg.shareGroups.emplace_back(group.begin(), group.end());
    }
    simCfg.observer = nullptr;
    simCfg.trace = false;
    prep->simCfg = simCfg;

    // The Program's graph pointer shares ownership with the
    // CompileResult (not the PreparedKernel, which would be a
    // reference cycle).
    std::shared_ptr<const dfg::Graph> graphPtr(prep->compiled,
                                               &prep->compiled->graph);
    prep->program = std::make_shared<const sim::Program>(
        std::move(graphPtr), simCfg);

    if (config.analyze) {
        // Static throughput bound over the built Program (so
        // inter-tile channels are priced); the route term is
        // advisory provisioning info on top.
        prep->bound = analysis::computeBound(*prep->program);
        if (prep->mapped) {
            analysis::addRouteBound(prep->bound, graph, fab,
                                    prep->mapping);
        }
    }

    auto areaVariant =
        config.variant == compiler::ArchVariant::RipTide
            ? fabric::AreaVariant::RipTide
            : fabric::AreaVariant::Pipestitch;
    prep->area =
        fabric::computeArea(fab, areaVariant, config.sim.bufferDepth);

    PreparedPtr out = std::move(prep);
    if (config.cache)
        config.cache->storePrepared(kernel, config, out);
    return out;
}

FabricRun
executeOnFabric(const PreparedKernel &prepared,
                const workloads::KernelInstance &kernel,
                const RunConfig &config, std::string *error)
{
    ScopedQuiet scopedQuiet(config.quiet);
    FabricRun run;
    run.compiled = *prepared.compiled;
    run.mapping = prepared.mapping;
    run.analysis = prepared.analysis;

    run.memory = kernel.memory;
    run.memory.resize(std::max(
        run.memory.size(),
        static_cast<size_t>(kernel.prog.memWords)));

    sim::RunOptions ropts;
    ropts.observer = config.sim.observer;
    ropts.trace = config.sim.trace;
    ropts.maxCycles = config.sim.maxCycles;
    sim::ExecutionState exec(prepared.program);
    run.sim = exec.run(run.memory, ropts);
    if (run.sim.deadlocked) {
        // Cross-check: every quiescence deadlock reaching this
        // point contradicts the analyzer (errors already failed the
        // prepare above), so name the disagreement — one of the two
        // models is wrong, which is a different bug than a bad
        // kernel. Watchdog expiry is exempt: the fabric was still
        // making progress, and termination is input-dependent —
        // outside what static certification claims.
        if (config.analyze && run.analysis.deadlockFree &&
            !run.sim.watchdogExpired) {
            reportFailure(
                error,
                csprintf(
                    "kernel %s on %s: static analyzer certified the "
                    "graph deadlock-free but the simulator "
                    "deadlocked — analyzer and simulator disagree:"
                    "\n%s",
                    kernel.name.c_str(),
                    compiler::archVariantName(config.variant),
                    run.sim.diagnostic.c_str()));
        }
        reportFailure(
            error,
            csprintf("kernel %s %s on %s:\n%s", kernel.name.c_str(),
                     run.sim.watchdogExpired
                         ? "exceeded its cycle watchdog"
                         : "deadlocked",
                     compiler::archVariantName(config.variant),
                     run.sim.diagnostic.c_str()));
        return run;
    }

    if (config.analyze) {
        // Cross-check the certified throughput bound, mirroring the
        // deadlock-certification check above: the bound's terms are
        // provable cycle floors, so a run that beats it means the
        // analyzer and the simulator disagree about the timing
        // model — a toolchain bug, not a kernel property.
        sim::BoundReport::Evaluation ev =
            prepared.bound.evaluate(run.sim.stats);
        run.boundCycles = ev.certifiedCycles;
        run.bound = prepared.bound;
        run.boundEval = ev;
        if (!ev.holds(run.sim.stats.cycles)) {
            const char *binding =
                ev.binding >= 0
                    ? sim::boundTermKindName(
                          prepared.bound
                              .terms[static_cast<size_t>(ev.binding)]
                              .kind)
                    : "?";
            reportFailure(
                error,
                csprintf(
                    "kernel %s on %s: simulated %lld cycles beats "
                    "the certified static bound of %lld cycles "
                    "(binding term: %s) — analyzer and simulator "
                    "disagree",
                    kernel.name.c_str(),
                    compiler::archVariantName(config.variant),
                    static_cast<long long>(run.sim.stats.cycles),
                    static_cast<long long>(ev.certifiedCycles),
                    binding));
            return run;
        }
    }

    if (config.verifyAgainstGolden) {
        scalar::MemImage golden = kernel.memory;
        golden.resize(run.memory.size());
        scalar::interpret(kernel.prog, golden, kernel.liveIns);
        if (golden != run.memory) {
            reportFailure(
                error,
                csprintf(
                    "kernel %s on %s diverged from the golden model",
                    kernel.name.c_str(),
                    compiler::archVariantName(config.variant)));
            return run;
        }
    }

    run.area = prepared.area;
    run.energy =
        prepared.mapped
            ? energy::fabricEnergyMapped(run.sim.stats, run.area,
                                         run.mapping,
                                         run.compiled.graph.size())
            : energy::fabricEnergy(run.sim.stats, run.area,
                                   prepared.avgHops,
                                   run.compiled.graph.size());
    run.seconds = energy::secondsFor(run.sim.stats.cycles,
                                     config.fabric.clockMHz);
    run.edp = energy::edp(run.energy, run.seconds);
    return run;
}

FabricRun
runOnFabric(const workloads::KernelInstance &kernel,
            const RunConfig &config, std::string *error)
{
    PreparedPtr prepared = prepareKernel(kernel, config, error);
    if (!prepared)
        return FabricRun{};
    return executeOnFabric(*prepared, kernel, config, error);
}

ScalarRun
runOnScalar(const workloads::KernelInstance &kernel,
            const scalar::ScalarProfile &profile)
{
    ScalarRun run;
    run.memory = kernel.memory;
    run.memory.resize(std::max(
        run.memory.size(),
        static_cast<size_t>(kernel.prog.memWords)));
    auto result =
        scalar::interpret(kernel.prog, run.memory, kernel.liveIns);
    run.counts = result.counts;
    run.cycles = profile.cycles(run.counts);
    run.seconds = profile.seconds(run.counts);
    run.energy = energy::scalarEnergy(run.counts, profile);
    run.edp = energy::edp(run.energy, run.seconds);
    return run;
}

} // namespace pipestitch
