#include "core/system.hh"

#include "analysis/placement.hh"
#include "base/logging.hh"
#include "compiler/timemux.hh"
#include "scalar/interpreter.hh"

namespace pipestitch {

FabricRun
runOnFabric(const workloads::KernelInstance &kernel,
            const RunConfig &config)
{
    ScopedQuiet scopedQuiet(config.quiet);
    FabricRun run;

    compiler::CompileOptions copts;
    copts.variant = config.variant;
    copts.threading = config.threading;
    copts.useStreams = config.useStreams;
    copts.bufferDepth = config.sim.bufferDepth;
    copts.unrollFactor = config.unrollFactor;
    if (!config.cache ||
        !config.cache->lookupCompile(kernel, copts, run.compiled)) {
        run.compiled = compiler::compileProgram(kernel.prog,
                                                kernel.liveIns, copts);
        if (config.cache)
            config.cache->storeCompile(kernel, copts, run.compiled);
    }

    if (config.analyze) {
        analysis::AnalysisOptions aopts;
        aopts.bufferDepth = config.sim.bufferDepth;
        run.analysis = analysis::analyzeGraph(run.compiled.graph,
                                              aopts);
        if (!run.analysis.ok()) {
            fatal("kernel %s fails static analysis on %s:\n%s",
                  kernel.name.c_str(),
                  compiler::archVariantName(config.variant),
                  run.analysis.toString(run.compiled.graph).c_str());
        }
    }

    fabric::Fabric fab(config.fabric);
    compiler::ShareGroups shareGroups;
    if (config.allowTimeMultiplex) {
        shareGroups = compiler::planTimeMultiplexing(
            run.compiled.graph, config.fabric);
    }
    double avgHops = 2.0; // fallback when mapping is skipped
    if (config.map) {
        mapper::MapperOptions mopts;
        mopts.rngSeed = config.mapperSeed;
        mopts.portfolioSeeds = config.mapperSeeds;
        mopts.jobs = config.mapperJobs;
        mopts.shareGroups = shareGroups;
        if (!config.cache ||
            !config.cache->lookupMapping(run.compiled.graph,
                                         config.fabric, mopts,
                                         run.mapping)) {
            run.mapping =
                mapper::mapGraph(run.compiled.graph, fab, mopts);
            if (config.cache)
                config.cache->storeMapping(run.compiled.graph,
                                           config.fabric, mopts,
                                           run.mapping);
        }
        if (!run.mapping.success) {
            fatal("kernel %s does not map onto the fabric (%s): %s",
                  kernel.name.c_str(),
                  compiler::archVariantName(config.variant),
                  run.mapping.error.c_str());
        }
        avgHops = run.mapping.avgHops;
        if (config.analyze) {
            analysis::PlacementLintOptions popts;
            popts.shareGroups = shareGroups;
            analysis::lintPlacement(run.compiled.graph, fab,
                                    run.mapping, run.analysis,
                                    popts);
            if (!run.analysis.ok()) {
                fatal("kernel %s fails placement lint on %s:\n%s",
                      kernel.name.c_str(),
                      compiler::archVariantName(config.variant),
                      run.analysis.toString(run.compiled.graph)
                          .c_str());
            }
        }
    }

    run.memory = kernel.memory;
    run.memory.resize(std::max(
        run.memory.size(),
        static_cast<size_t>(kernel.prog.memWords)));

    // The user's sim config drives the run; only the derived fields
    // come from elsewhere (variant microarchitecture, fabric
    // banking, time-multiplexing plan).
    auto simCfg = config.sim;
    simCfg.buffering = run.compiled.simConfig.buffering;
    simCfg.memBypass = run.compiled.simConfig.memBypass;
    simCfg.memBanks = config.fabric.memBanks;
    simCfg.shareGroups.clear();
    for (const auto &group : shareGroups) {
        simCfg.shareGroups.emplace_back(group.begin(), group.end());
    }
    run.sim = sim::simulate(run.compiled.graph, run.memory, simCfg);
    if (run.sim.deadlocked) {
        // Cross-check: every quiescence deadlock reaching this
        // point contradicts the analyzer (errors already fatal'd
        // above), so name the disagreement — one of the two models
        // is wrong, which is a different bug than a bad kernel.
        // Watchdog expiry is exempt: the fabric was still making
        // progress, and termination is input-dependent — outside
        // what static certification claims.
        if (config.analyze && run.analysis.deadlockFree &&
            !run.sim.watchdogExpired) {
            fatal("kernel %s on %s: static analyzer certified the "
                  "graph deadlock-free but the simulator "
                  "deadlocked — analyzer and simulator disagree:"
                  "\n%s",
                  kernel.name.c_str(),
                  compiler::archVariantName(config.variant),
                  run.sim.diagnostic.c_str());
        }
        fatal("kernel %s deadlocked on %s:\n%s", kernel.name.c_str(),
              compiler::archVariantName(config.variant),
              run.sim.diagnostic.c_str());
    }

    if (config.verifyAgainstGolden) {
        scalar::MemImage golden = kernel.memory;
        golden.resize(run.memory.size());
        scalar::interpret(kernel.prog, golden, kernel.liveIns);
        if (golden != run.memory) {
            fatal("kernel %s on %s diverged from the golden model",
                  kernel.name.c_str(),
                  compiler::archVariantName(config.variant));
        }
    }

    auto areaVariant =
        config.variant == compiler::ArchVariant::RipTide
            ? fabric::AreaVariant::RipTide
            : fabric::AreaVariant::Pipestitch;
    run.area = fabric::computeArea(fab, areaVariant,
                                   config.sim.bufferDepth);
    run.energy =
        config.map
            ? energy::fabricEnergyMapped(run.sim.stats, run.area,
                                         run.mapping,
                                         run.compiled.graph.size())
            : energy::fabricEnergy(run.sim.stats, run.area, avgHops,
                                   run.compiled.graph.size());
    run.seconds = energy::secondsFor(run.sim.stats.cycles,
                                     config.fabric.clockMHz);
    run.edp = energy::edp(run.energy, run.seconds);
    return run;
}

ScalarRun
runOnScalar(const workloads::KernelInstance &kernel,
            const scalar::ScalarProfile &profile)
{
    ScalarRun run;
    run.memory = kernel.memory;
    run.memory.resize(std::max(
        run.memory.size(),
        static_cast<size_t>(kernel.prog.memWords)));
    auto result =
        scalar::interpret(kernel.prog, run.memory, kernel.liveIns);
    run.counts = result.counts;
    run.cycles = profile.cycles(run.counts);
    run.seconds = profile.seconds(run.counts);
    run.energy = energy::scalarEnergy(run.counts, profile);
    run.edp = energy::edp(run.energy, run.seconds);
    return run;
}

} // namespace pipestitch
