/**
 * @file
 * Public one-call API: compile a kernel for an architecture
 * variant, map it onto the fabric, simulate it cycle-by-cycle, and
 * account energy — or run the same kernel on a scalar-core model.
 *
 * This is the entry point examples and benches use:
 *
 * @code
 *   auto kernel = workloads::makeSpmv(64, 0.9, seed);
 *   RunConfig cfg;
 *   cfg.variant = compiler::ArchVariant::Pipestitch;
 *   cfg.sim.bufferDepth = 8;       // simulator knobs live in .sim
 *   FabricRun run = runOnFabric(kernel, cfg);
 *   // run.sim.stats.cycles, run.energy.totalPj(), run.memory...
 * @endcode
 *
 * Simulator knobs (buffer depth, scheduler, thread-order checking,
 * watchdog, observability hooks) live in the embedded
 * `RunConfig::sim` — a `sim::SimConfig`, the single source of
 * truth; there are no duplicated fields at the RunConfig level. To
 * observe a run, attach a `trace::SimObserver` (Chrome-trace or
 * stall-timeline sink, see trace/observer.hh) via
 * `cfg.sim.observer`. Fields the toolchain derives itself —
 * `sim.buffering` / `sim.memBypass` (from the variant),
 * `sim.memBanks` (from the fabric config), and `sim.shareGroups`
 * (from the time-multiplexing planner) — are overwritten by
 * runOnFabric.
 */

#ifndef PIPESTITCH_CORE_SYSTEM_HH
#define PIPESTITCH_CORE_SYSTEM_HH

#include <memory>
#include <string>

#include "analysis/analyzer.hh"
#include "compiler/compile.hh"
#include "sim/bound.hh"
#include "energy/model.hh"
#include "fabric/area.hh"
#include "fabric/fabric.hh"
#include "mapper/mapper.hh"
#include "scalar/profile.hh"
#include "sim/program.hh"
#include "sim/simulator.hh"
#include "workloads/kernels.hh"

namespace pipestitch {

struct PreparedKernel;
struct RunConfig;

/**
 * Hook for memoizing the expensive pipeline stages. runOnFabric
 * consults it (when set on the RunConfig) before compiling or
 * mapping, and offers the freshly computed result back after a miss.
 * Implementations own keying and storage — the canonical one is
 * runner::MemoCache, which content-addresses kernels and graphs and
 * can persist mapper placements to disk. Implementations must be
 * thread-safe: sweeps call runOnFabric from many threads against one
 * shared cache.
 *
 * Both stages are deterministic functions of the arguments the
 * hooks receive, so serving a hit is behavior-preserving by
 * construction.
 */
class PipelineCache
{
  public:
    virtual ~PipelineCache() = default;

    /** @return true and fill @p out on a hit. */
    virtual bool lookupCompile(const workloads::KernelInstance &kernel,
                               const compiler::CompileOptions &opts,
                               compiler::CompileResult &out) = 0;
    virtual void storeCompile(const workloads::KernelInstance &kernel,
                              const compiler::CompileOptions &opts,
                              const compiler::CompileResult &result) = 0;

    /** @return true and fill @p out on a hit. */
    virtual bool lookupMapping(const dfg::Graph &graph,
                               const fabric::FabricConfig &fabric,
                               const mapper::MapperOptions &opts,
                               mapper::Mapping &out) = 0;
    virtual void storeMapping(const dfg::Graph &graph,
                              const fabric::FabricConfig &fabric,
                              const mapper::MapperOptions &opts,
                              const mapper::Mapping &mapping) = 0;

    /**
     * Whole prepared artifacts (compile + map + lint + built
     * sim::Program), shared read-only by reference — a hit skips
     * every prepare stage at once. Optional: the default never hits,
     * so implementations that only memoize stages keep working.
     * Keying must exclude the kernel's memory image (that is
     * per-execution state) and the per-run sim fields
     * (observer/trace).
     */
    virtual std::shared_ptr<const PreparedKernel>
    lookupPrepared(const workloads::KernelInstance &,
                   const RunConfig &)
    {
        return nullptr;
    }
    virtual void
    storePrepared(const workloads::KernelInstance &,
                  const RunConfig &,
                  std::shared_ptr<const PreparedKernel>)
    {
    }
};

/** Configuration of one fabric execution. Aggregate-initializable;
 *  every field has a working default. */
struct RunConfig
{
    compiler::ArchVariant variant =
        compiler::ArchVariant::Pipestitch;

    /** The per-tile grid. With tilesX/tilesY at 1 (the default)
     *  this is the whole fabric — the legacy single-grid setup. */
    fabric::FabricConfig fabric;

    /** Tile grid (see fabric::Topology). More than one tile routes
     *  the prepare pipeline through the partition-then-place tiled
     *  mapper and models cross-tile edges as latency-N channels. */
    int tilesX = 1;
    int tilesY = 1;
    int interTileLatency = 4;
    int interTileCapacity = 4;

    compiler::CompileOptions::Threading threading =
        compiler::CompileOptions::Threading::Heuristic;
    bool useStreams = true;

    /** Spatial unrolling factor (see CompileOptions). */
    int unrollFactor = 1;

    /**
     * Allow time-multiplexing (Sec. 6 extension): when the kernel's
     * PE demand exceeds the fabric, fold cold (non-inner-loop)
     * operators onto shared PEs instead of failing to map.
     */
    bool allowTimeMultiplex = false;

    /** Map onto the fabric (adds placement/routing + real hop
     *  counts). Disable for quick functional runs. */
    bool map = true;

    /** Require the final memory image to match the golden scalar
     *  interpreter (cheap insurance; on by default). */
    bool verifyAgainstGolden = true;

    /**
     * Run the static analyzer on every compiled graph (deadlock /
     * balance passes, analysis/analyzer.hh) and every mapping
     * (placement lint, analysis/placement.hh); fatal() on any error
     * diagnostic. The analyzer's verdict is also cross-checked
     * against the simulator: a graph certified deadlock-free that
     * nonetheless deadlocks in simulation fails the run with a
     * disagreement diagnosis instead of a plain deadlock report.
     * On by default so every sweep verifies every graph it
     * compiles; the report lands in FabricRun::analysis.
     */
    bool analyze = true;

    uint64_t mapperSeed = 1;

    /** Portfolio restarts for the annealing mapper (result-bearing:
     *  part of cache keys). */
    int mapperSeeds = 4;

    /** Worker threads for the mapper portfolio. The winner is
     *  bit-identical for any value, so this never enters cache
     *  keys. */
    int mapperJobs = 1;

    /** Certified throughput floor handed to the mapper (see
     *  MapperOptions::boundPruneCycles); result-bearing, part of
     *  cache keys. Set by runner::Sweep::runPruned for candidates
     *  explored after an incumbent exists; 0 (off) otherwise. */
    int64_t boundPruneCycles = 0;

    /**
     * Memo cache for the compile and map stages (not owned; null
     * disables memoization). See PipelineCache.
     */
    PipelineCache *cache = nullptr;

    /**
     * Silence warn()/inform() for this run only (on whichever
     * thread executes it), instead of the process-wide setQuiet().
     * Parallel sweeps set this so one noisy run cannot silence — or
     * be silenced by — its neighbors.
     */
    bool quiet = false;

    /**
     * Simulator configuration — the single source of truth for
     * `bufferDepth`, `checkThreadOrder`, `scheduler`, `maxCycles`,
     * `trace`, and `observer`. runOnFabric overwrites the derived
     * fields: `buffering`/`memBypass` follow the compiled variant,
     * `memBanks` follows `fabric.memBanks`, and `shareGroups` comes
     * from the time-multiplexing planner.
     */
    sim::SimConfig sim;

    bool tiled() const { return tilesX * tilesY > 1; }

    fabric::Topology
    topology() const
    {
        fabric::Topology t;
        t.tile = fabric;
        t.tilesX = tilesX;
        t.tilesY = tilesY;
        t.interTileLatency = interTileLatency;
        t.interTileCapacity = interTileCapacity;
        return t;
    }
};

/** Everything produced by one fabric execution. */
struct FabricRun
{
    compiler::CompileResult compiled;
    mapper::Mapping mapping;
    /** Static-analyzer findings (empty when RunConfig::analyze is
     *  off; placement rules only when mapping ran). */
    analysis::AnalysisReport analysis;
    sim::SimResult sim;
    fabric::AreaBreakdown area;
    energy::EnergyBreakdown energy;
    scalar::MemImage memory; ///< final memory image

    double seconds = 0;
    double edp = 0; ///< pJ·s

    /**
     * Certified static throughput bound instantiated with this
     * run's fire counts (0 when RunConfig::analyze is off). On
     * every clean analyzed run, executeOnFabric cross-checks
     * boundCycles <= cycles() and fails the run on violation —
     * mirroring the deadlock-certification cross-check.
     */
    int64_t boundCycles = 0;
    /** The bound's structural terms and their per-run evaluation
     *  (empty/zero when RunConfig::analyze is off). `pstool bound`
     *  renders these; boundEval.binding indexes the term that set
     *  boundCycles. */
    sim::BoundReport bound;
    sim::BoundReport::Evaluation boundEval;

    int64_t cycles() const { return sim.stats.cycles; }
};

/**
 * The immutable product of the prepare pipeline: one kernel compiled,
 * statically analyzed, mapped, linted, and lowered into a built
 * sim::Program, under one RunConfig. Deeply read-only after
 * prepareKernel returns; any number of threads may execute it
 * concurrently (each execution owns its ExecutionState and memory
 * image). This is the unit `pstool serve` and the figures sweeps
 * cache and share — prepare once, execute N times.
 */
struct PreparedKernel
{
    /** Owned by shared_ptr so the Program's graph pointer can alias
     *  it (the graph must outlive every execution). */
    std::shared_ptr<const compiler::CompileResult> compiled;
    mapper::Mapping mapping;
    analysis::AnalysisReport analysis;
    /** Fully derived simulator config (buffering/memBypass from the
     *  variant, memBanks from the fabric, shareGroups from the
     *  time-multiplexing planner); observer/trace stripped. */
    sim::SimConfig simCfg;
    std::shared_ptr<const sim::Program> program;
    /**
     * Static throughput-bound terms for `program`
     * (analysis::computeBound + the advisory route term when
     * mapped). Structural only — evaluate against a run's SimStats
     * to get that run's certified cycle floor. Empty when
     * RunConfig::analyze is off.
     */
    sim::BoundReport bound;
    fabric::AreaBreakdown area;
    double avgHops = 2.0; ///< mapping's, or the unmapped fallback
    bool mapped = false;

    // Tiled-fabric extras (RunConfig::tiled() prepares these).
    bool tiled = false;
    fabric::Topology topo;     ///< 1×1 wrapping `fabric` otherwise
    std::vector<int> tileOf;   ///< node → tile (-1 trigger)
    int64_t cutEdges = 0;      ///< cross-tile consumer edges
    int interTileLoadMax = 0;  ///< max routes on a boundary link
};

using PreparedPtr = std::shared_ptr<const PreparedKernel>;

/**
 * Run the prepare pipeline (or fetch the whole artifact from
 * config.cache). Failure contract: with @p error null any failure is
 * fatal() — the legacy batch behavior; with @p error non-null the
 * function returns nullptr and fills *error instead, so long-lived
 * callers (the serve daemon) survive bad requests.
 */
PreparedPtr prepareKernel(const workloads::KernelInstance &kernel,
                          const RunConfig &config,
                          std::string *error = nullptr);

/**
 * Execute @p prepared once: fresh memory image from @p kernel, one
 * sim::ExecutionState over the shared Program, then golden
 * verification and energy/EDP accounting. Thread-safe with respect
 * to other executions of the same PreparedKernel.
 *
 * Failure contract: with @p error null, deadlock / golden mismatch
 * are fatal() (legacy). With @p error non-null, *error is set and
 * the partial FabricRun is still returned — run.sim distinguishes a
 * certified deadlock from watchdog expiry.
 */
FabricRun executeOnFabric(const PreparedKernel &prepared,
                          const workloads::KernelInstance &kernel,
                          const RunConfig &config,
                          std::string *error = nullptr);

/** One scalar-core execution (golden model + baseline numbers). */
struct ScalarRun
{
    scalar::EventCounts counts;
    energy::EnergyBreakdown energy;
    scalar::MemImage memory;
    double cycles = 0;
    double seconds = 0;
    double edp = 0;
};

/**
 * Compile+map+simulate @p kernel under @p config — prepareKernel +
 * executeOnFabric in one call, under the same error contract: with
 * @p error null any failure is fatal() (legacy batch behavior);
 * with @p error non-null, *error is set and the partial FabricRun
 * (default-constructed when even prepare failed) is returned.
 */
FabricRun runOnFabric(const workloads::KernelInstance &kernel,
                      const RunConfig &config,
                      std::string *error = nullptr);

/** Interpret @p kernel under @p profile (default: the RISC-V
 *  control core the paper's "Scalar" bars use). */
ScalarRun runOnScalar(
    const workloads::KernelInstance &kernel,
    const scalar::ScalarProfile &profile =
        scalar::riptideScalarProfile());

} // namespace pipestitch

#endif // PIPESTITCH_CORE_SYSTEM_HH
