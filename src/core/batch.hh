/**
 * @file
 * Batched data-parallel execution: one prepared mapping, many data
 * shards, streamed through the replicated tiles of a
 * fabric::Topology. Every tile holds the same per-tile placement
 * (prepared once from the first shard), so a shard can run on any
 * tile; shards sit in one shared queue and every tile worker (one
 * thread + one warmed sim::ExecutionState each — the prepare-once /
 * execute-N machinery from core/system.hh) claims the next shard
 * the moment it goes idle, stealing work a slower tile would have
 * owned under a fixed round-robin deal.
 *
 * The throughput model is deliberately simple: a tile runs its
 * shards back-to-back, and a shard on a remote tile (any tile but
 * the scalar core's tile 0) pays one inter-tile round trip
 * (2 × interTileLatency) to inject arguments and drain results.
 * Because per-shard cycles are arrangement-invariant, the model
 * replays the stealing schedule deterministically: longest
 * remaining shard first, each onto the tile that finishes it
 * earliest. `totalCycles` (the sum over shards) is the single-tile
 * serial baseline and `makespanCycles` (the latest tile finish) the
 * batched finish time, so modeledSpeedup = total / makespan;
 * `roundRobinSpeedup` reports the legacy shard-i → tile-i%tiles
 * deal on the same measured cycles as the regression baseline.
 */

#ifndef PIPESTITCH_CORE_BATCH_HH
#define PIPESTITCH_CORE_BATCH_HH

#include <string>
#include <vector>

#include "core/system.hh"

namespace pipestitch {

/** The result of one batched run. */
struct BatchRun
{
    bool success = false;
    std::string error;

    /** The shared artifact every shard executed (null when prepare
     *  itself failed). */
    PreparedPtr prepared;

    int tiles = 1;  ///< topology tile count
    int shards = 0; ///< shard count actually executed

    /** Per-shard fabric cycles, in input order (excludes the
     *  inter-tile injection overhead — that is a property of the
     *  tile a shard landed on, reported via makespanCycles). */
    std::vector<int64_t> shardCycles;
    /** Tile the throughput model schedules each shard onto
     *  (longest-first onto the earliest-finishing tile — the
     *  deterministic replay of the stealing executor). */
    std::vector<int> shardTile;

    /** Σ shardCycles: the one-tile serial baseline. */
    int64_t totalCycles = 0;
    /** max over tiles of (Σ its shards' cycles + injection
     *  overhead): the batched finish time. */
    int64_t makespanCycles = 0;
    /** totalCycles / makespanCycles (≥ 1 when batching helps). */
    double modeledSpeedup = 1.0;
    /** Modeled speedup of the legacy round-robin deal on the same
     *  per-shard cycles — the baseline the stealing schedule must
     *  never lose to. */
    double roundRobinSpeedup = 1.0;

    double seconds = 0;     ///< makespan at the tile clock
    double wallSeconds = 0; ///< host time spent simulating
};

/**
 * Execute every kernel in @p shards against one shared prepared
 * mapping. All shards must be instances of the same kernel (same
 * program and live-ins — typically SpMV row blocks or DNN batch
 * slices from the same generator); the mapping is prepared from
 * shards[0] under @p config with tiling forced to a single tile
 * (each tile of the topology holds that same placement).
 *
 * Failure contract mirrors runOnFabric: with @p error null any
 * failure is fatal(); otherwise *error and BatchRun::error are set
 * and success stays false. Per-shard golden verification follows
 * config.verifyAgainstGolden.
 */
BatchRun runBatch(const std::vector<workloads::KernelInstance> &shards,
                  const RunConfig &config,
                  std::string *error = nullptr);

} // namespace pipestitch

#endif // PIPESTITCH_CORE_BATCH_HH
