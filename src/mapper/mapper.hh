/**
 * @file
 * Mapping DFGs onto the fabric: class-constrained placement plus
 * dimension-ordered routing with link-capacity checking.
 *
 * The paper uses RipTide's SAT-based mapper; we substitute a
 * portfolio of simulated anneals over a congestion-aware wirelength
 * objective with a post-route capacity check (see DESIGN.md
 * "Substitutions"). The evaluation only depends on the mapping
 * through (a) "does the kernel fit", (b) operator counts (Fig. 21),
 * and (c) NoC hop counts feeding the energy model — all of which
 * this mapper provides.
 *
 * The anneal maintains per-node cached partial costs and applies
 * O(degree) deltas per move; `portfolioSeeds` independently-seeded
 * anneals run in lockstep chunks (optionally on a thread pool) and
 * share a best-cost bound for early exit. The winner is chosen by
 * (lowest cost, lowest seed index), so the emitted mapping is
 * bit-identical for any `jobs` value.
 */

#ifndef PIPESTITCH_MAPPER_MAPPER_HH
#define PIPESTITCH_MAPPER_MAPPER_HH

#include <string>
#include <vector>

#include "dfg/graph.hh"
#include "fabric/fabric.hh"

namespace pipestitch::mapper {

struct MapperOptions
{
    /** Base RNG seed; every stochastic choice derives from it. */
    uint64_t rngSeed = 1;

    /** Total anneal budget, split evenly across the portfolio. */
    int annealIterations = 20000;

    double startTemperature = 4.0;

    /** Number of independently-seeded anneal restarts. */
    int portfolioSeeds = 4;

    /** Worker threads for the portfolio (1 = run in-line; clamped
     *  to the host's cores; negative = force that many workers,
     *  bypassing the clamp — for tests). Does not affect the
     *  result, only wall-clock; never part of cache keys. */
    int jobs = 1;

    /** Weight of the link-overload term in the anneal objective. */
    double congestionWeight = 8.0;

    /** Fraction of each anneal's schedule (the cooling tail) that
     *  includes the congestion term; the hotter head optimizes pure
     *  wirelength, which is cheaper per move. */
    double congestionPhase = 0.3;

    /** Max targeted restarts (perturbing only nodes on overloaded
     *  links) before giving up with a structured error. */
    int maxTargetedRestarts = 4;

    /** Cross-check every incremental delta against a from-scratch
     *  recompute (slow; for tests). Never part of cache keys. */
    bool verifyIncremental = false;

    /** Time-multiplexing groups: members share one PE (the first
     *  member is the placement representative). */
    std::vector<std::vector<dfg::NodeId>> shareGroups;

    /**
     * Certified throughput floor in cycles (analysis::computeBound),
     * or 0 when unknown. A DSE driver (runner::Sweep::runPruned)
     * sets this to tell the mapper the graph cannot retire faster
     * than this floor no matter where nodes land: the portfolio
     * trims to a single seed, because polishing wirelength cannot
     * buy cycles the recurrence/dispatch structure already forbids.
     * Default off — standalone mapping quality and the CI mapper
     * cost baseline are unchanged.
     */
    int64_t boundPruneCycles = 0;
};

struct Mapping
{
    bool success = false;
    std::string error;

    /** On failure: the nodes implicated (oversubscribed class or
     *  endpoints of over-capacity links). Empty on success. */
    std::vector<dfg::NodeId> failedNodes;

    /** Node → PE index; -1 for CF-in-NoC nodes and the trigger. */
    std::vector<int> peOf;

    /** CF-in-NoC node → hosting router (PE-grid index); -1 else. */
    std::vector<int> routerOf;

    /** Per (consumer node, input port): route length in mesh hops. */
    std::vector<std::vector<int>> hopsOf;

    int64_t totalWireLength = 0;
    double avgHops = 0;
    int maxLinkLoad = 0;

    /** Anneal objective of the emitted placement:
     *  wirelength + congestionWeight * total link overload. */
    double cost = 0;

    /** Total routed wires above link capacity (0 on success). */
    int64_t congestionOverflow = 0;

    /** Portfolio member that produced the placement (-1 = the
     *  greedy-init incumbent). */
    int winningSeed = -1;

    /** Portfolio members that early-exited because the shared
     *  best-cost bound proved they could not catch the incumbent
     *  in their remaining temperature budget. */
    int seedsEarlyExited = 0;

    /** Portfolio members cut by successive halving at a chunk
     *  barrier (budget reallocation to the leaders, not a
     *  bound-driven proof of hopelessness). */
    int seedsHalved = 0;

    /** Fabric position (grid index) used for a node's traffic. */
    int positionOf(dfg::NodeId id) const;
};

Mapping mapGraph(const dfg::Graph &graph,
                 const fabric::Fabric &fabric,
                 const MapperOptions &options = MapperOptions{});

} // namespace pipestitch::mapper

#endif // PIPESTITCH_MAPPER_MAPPER_HH
