/**
 * @file
 * Mapping DFGs onto the fabric: class-constrained placement plus
 * dimension-ordered routing with link-capacity checking.
 *
 * The paper uses RipTide's SAT-based mapper; we substitute simulated
 * annealing over wirelength with a post-route capacity check (see
 * DESIGN.md "Substitutions"). The evaluation only depends on the
 * mapping through (a) "does the kernel fit", (b) operator counts
 * (Fig. 21), and (c) NoC hop counts feeding the energy model — all
 * of which this mapper provides.
 */

#ifndef PIPESTITCH_MAPPER_MAPPER_HH
#define PIPESTITCH_MAPPER_MAPPER_HH

#include <string>
#include <vector>

#include "dfg/graph.hh"
#include "fabric/fabric.hh"

namespace pipestitch::mapper {

struct MapperOptions
{
    uint64_t seed = 1;
    int annealIterations = 20000;
    double startTemperature = 8.0;

    /** Time-multiplexing groups: members share one PE (the first
     *  member is the placement representative). */
    std::vector<std::vector<dfg::NodeId>> shareGroups;
};

struct Mapping
{
    bool success = false;
    std::string error;

    /** Node → PE index; -1 for CF-in-NoC nodes and the trigger. */
    std::vector<int> peOf;

    /** CF-in-NoC node → hosting router (PE-grid index); -1 else. */
    std::vector<int> routerOf;

    /** Per (consumer node, input port): route length in mesh hops. */
    std::vector<std::vector<int>> hopsOf;

    int64_t totalWireLength = 0;
    double avgHops = 0;
    int maxLinkLoad = 0;

    /** Fabric position (grid index) used for a node's traffic. */
    int positionOf(dfg::NodeId id) const;
};

Mapping mapGraph(const dfg::Graph &graph,
                 const fabric::Fabric &fabric,
                 const MapperOptions &options = MapperOptions{});

} // namespace pipestitch::mapper

#endif // PIPESTITCH_MAPPER_MAPPER_HH
