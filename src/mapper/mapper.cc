#include "mapper/mapper.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <span>

#include "base/logging.hh"
#include "base/random.hh"
#include "mapper/routecost.hh"
#include "runner/pool.hh"

namespace pipestitch::mapper {

using dfg::Consumer;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::NodeKind;
using dfg::PeClass;
using fabric::Coord;
using fabric::Fabric;

namespace {

/** Lockstep chunk: all portfolio members run this many iterations
 *  between barriers, so every shared-bound read happens at the same
 *  point of every schedule regardless of thread count. */
constexpr int kChunkIters = 512;

/**
 * Division-free uniform pick in [0, bound): one wide multiply on a
 * 64-bit draw. The bias is O(bound/2^64) — irrelevant for move
 * sampling — while Rng::nextBounded's rejection sampling costs two
 * integer divisions per call, which dominates the anneal's inner
 * loop. Mapper-local so the global Rng stream (which generates
 * workload data) is untouched.
 */
inline uint64_t
pick(Rng &rng, uint64_t bound)
{
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(rng.next()) * bound) >> 64);
}

/** Pseudo move-class for CF-in-NoC operators (hosted on routers). */
constexpr int kNocClass = 5;
constexpr int kNumMoveClasses = 6;

/** One (source, output port) multicast distribution tree. */
struct Tree
{
    NodeId src;
    int port;
};

/**
 * One full placement state with cached partial costs.
 *
 * `nodeWl` caches each representative's summed Manhattan distance to
 * its neighbors; `wl` is the (double-counted-and-halved) total.
 * When the congestion phase is active, `load` carries the per-link
 * circuit-switched route counts and `overflow` the total wires above
 * capacity; both are maintained incrementally per move.
 */
struct Candidate
{
    std::vector<int> pos;        // rep → grid index; -1 unplaced
    std::vector<Coord> coord;    // rep → coordinates ({0,0} trigger)
    std::vector<int64_t> nodeWl; // rep → Σ manhattan to neighbors
    int64_t wl = 0;
    std::vector<int> load; // per link; valid when congestionOn
    int64_t overflow = 0;
    // Move-local link-delta accumulator (evaluate-then-commit): a
    // rejected move never touches `load`, it only resets these.
    std::vector<int> deltaLoad;
    std::vector<size_t> touchedLinks;
    std::vector<uint32_t> linkStamp;
    uint32_t linkEpoch = 0;
    std::vector<NodeId> occupant; // per PE
    std::vector<int> routerLoad;  // per router (CF slots)
    routecost::ClaimScratch scratch;
    std::vector<uint32_t> treeStamp; // move-local tree dedupe
    uint32_t treeEpoch = 0;
    std::vector<int> affected; // scratch: trees touched by a move
    mutable std::vector<int> snapLoad; // chunk-snapshot loads
    mutable routecost::ClaimScratch snapScratch;
    Rng rng{0};
    double temp = 0;
    double cooling = 1.0;
    bool congestionOn = false;
    int itersDone = 0;
    bool abandoned = false;
    // Why `abandoned` was set: true when the shared bound proved
    // the member could not catch the incumbent; false when
    // successive halving cut it to reallocate budget.
    bool boundExited = false;
    // Set once a full chunk accepts no move: the schedule has cooled
    // past the point of useful exploration, and the strict
    // improvements a frozen tail could still find are a subset of
    // what the descent polish applies to the winner anyway.
    bool frozen = false;
    int chunkAccepts = 0;
    // Best full-objective snapshot, updated at chunk barriers.
    double bestCost = 0;
    std::vector<int> bestPos;
};

class MapperRun
{
  public:
    MapperRun(const Graph &graph, const Fabric &fab,
              const MapperOptions &opts)
        : graph(graph), fab(fab), opts(opts),
          width(fab.config().width),
          numLinks(routecost::linkCount(fab.config())),
          linkCap(fab.config().linkCapacity),
          cfCap(fab.config().routerCfCapacity),
          // A certified throughput floor collapses the portfolio:
          // when the bound says placement cannot buy cycles, one
          // seed's descent is enough to find a legal mapping.
          seeds(opts.boundPruneCycles > 0
                    ? 1
                    : std::max(1, opts.portfolioSeeds)),
          // Per-member schedule (the full budget when there is no
          // portfolio): bound-driven exits after the scouts'
          // burn-in and keep-one halving past 20% of the schedule
          // keep the summed iterations well under the budget while
          // the surviving schedule still cools slowly enough to
          // approach a single long anneal's quality. Small graphs
          // afford a longer 40% schedule within the same wall
          // budget (the same size threshold the polish uses to
          // scale its kick count); past ~40 representatives the
          // per-chunk cost dominates and the schedule drops to 20%.
          perSeedIters(seeds > 1
                           ? (graph.size() > 40
                                  ? opts.annealIterations / 5
                                  : opts.annealIterations * 2 / 5)
                           : std::max(0, opts.annealIterations))
    {}

    Mapping run();

  private:
    // --- setup ----------------------------------------------------
    void buildStructure();
    bool checkFeasible(Mapping &m) const;
    void initCandidate(Candidate &c) const;
    void greedyInit(Candidate &c) const;
    void randomInit(Candidate &c) const;
    void placeNocByCentroid(Candidate &c) const;
    void finishInit(Candidate &c) const;

    // --- incremental cost engine ---------------------------------
    Coord coordFor(const Candidate &c, NodeId id) const
    {
        return c.coord[static_cast<size_t>(
            repOf[static_cast<size_t>(id)])];
    }
    void moveOne(Candidate &c, NodeId rep, Coord to) const;
    void collectAffectedTrees(Candidate &c, NodeId a,
                              NodeId b) const;
    void applyAffectedTrees(Candidate &c, int sign) const;
    void traceAffectedDelta(Candidate &c, int sign,
                            NodeId a = dfg::NoNode, Coord aC = {},
                            NodeId b = dfg::NoNode,
                            Coord bC = {}) const;
    void enableCongestion(Candidate &c, bool force) const;
    int64_t recomputeWirelength(const Candidate &c) const;
    int64_t recomputeOverflow(const Candidate &c,
                              std::vector<int> &load,
                              routecost::ClaimScratch &scratch) const;
    double fullCost(const Candidate &c) const;
    void verifyIncremental(const Candidate &c) const;

    // --- anneal / portfolio --------------------------------------
    double priceMove(Candidate &c, NodeId a, NodeId b, int fromPos,
                     int toPos, int64_t &wlDelta,
                     int64_t &dOf) const;
    void clearMoveDelta(Candidate &c) const;
    void commitMove(Candidate &c, int cls, NodeId a, NodeId b,
                    int fromPos, int toPos, int64_t dOf) const;
    void annealStep(Candidate &c) const;
    void descend(Candidate &c, int maxPasses = 8) const;
    void runChunk(Candidate &c, int iters) const;
    bool shouldAbandon(const Candidate &c, double bound) const;
    void portfolio(std::vector<int> &winnerPos, int &winnerSeed,
                   int &earlyExited, int &halved) const;

    // --- congestion repair / finish ------------------------------
    void candidateFromPos(Candidate &c,
                          const std::vector<int> &pos) const;
    void polish(std::vector<int> &pos) const;
    std::vector<NodeId> collectCulprits(Candidate &c) const;
    void perturbCulprits(Candidate &c,
                         const std::vector<NodeId> &culprits) const;
    bool repairCongestion(std::vector<int> &pos,
                          std::vector<NodeId> &implicated) const;
    void finishMapping(Mapping &m,
                       const std::vector<int> &pos) const;

    const Graph &graph;
    const Fabric &fab;
    const MapperOptions &opts;
    const int width;
    const size_t numLinks;
    const int linkCap;
    const int cfCap;
    const int seeds;
    const int perSeedIters;

    std::vector<NodeId> repOf;     // node → placement representative
    std::vector<int8_t> moveClass; // rep → 0..4 PE, 5 NoC, -1 fixed
    std::vector<std::vector<NodeId>> byClass; // movable reps
    std::vector<int> classesInUse;
    std::vector<Coord> gridCoord; // grid index → coordinates
    // Per move-class, per grid slot: the other slots of that class
    // sorted nearest-first (ties by index) — the move generator's
    // range-limited target lists.
    // Flattened [cls][fromPos] -> nearest-first target list. One
    // contiguous pool plus (offset, length) per slot keeps the
    // anneal's hottest lookup to two dependent loads.
    std::vector<int> nearPool;
    std::vector<std::pair<int, int>> nearSpan; // cls*numPes + pos
    std::span<const int> nearestFor(int cls, int fromPos) const
    {
        const auto &[off, len] = nearSpan[static_cast<size_t>(
            cls * fab.numPes() + fromPos)];
        return {nearPool.data() + off, static_cast<size_t>(len)};
    }
    // CSR adjacency over representatives (wire edges, both
    // directions, multiplicity kept, same-rep edges dropped).
    std::vector<int> adjStart;
    std::vector<NodeId> adjNode;
    // Multicast trees and, per representative, the trees whose
    // links depend on its position (as source or as a consumer).
    std::vector<Tree> trees;
    std::vector<int> treeStart;
    std::vector<int> treeIds;
};

void
MapperRun::buildStructure()
{
    const size_t n = static_cast<size_t>(graph.size());
    repOf.resize(n);
    for (NodeId id = 0; id < graph.size(); id++)
        repOf[static_cast<size_t>(id)] = id;
    for (const auto &group : opts.shareGroups) {
        for (size_t i = 1; i < group.size(); i++)
            repOf[static_cast<size_t>(group[i])] = group[0];
    }

    moveClass.assign(n, -1);
    byClass.assign(kNumMoveClasses, {});
    for (NodeId id = 0; id < graph.size(); id++) {
        if (repOf[static_cast<size_t>(id)] != id)
            continue; // aliases ride with their representative
        const Node &node = graph.at(id);
        if (node.kind == NodeKind::Trigger)
            continue; // injected from the scalar-core corner
        int cls = node.cfInNoc
                      ? kNocClass
                      : static_cast<int>(node.peClass());
        moveClass[static_cast<size_t>(id)] =
            static_cast<int8_t>(cls);
        byClass[static_cast<size_t>(cls)].push_back(id);
    }
    for (int c = 0; c < kNumMoveClasses; c++) {
        size_t count = byClass[static_cast<size_t>(c)].size();
        size_t slots =
            c == kNocClass
                ? static_cast<size_t>(fab.numPes())
                : fab.pesOfClass(static_cast<PeClass>(c)).size();
        // A class participates if a node can actually go somewhere
        // new: a spare slot or a partner to swap with.
        if (count >= 1 && (slots > count || count >= 2))
            classesInUse.push_back(c);
    }

    gridCoord.resize(static_cast<size_t>(fab.numPes()));
    for (int pe = 0; pe < fab.numPes(); pe++)
        gridCoord[static_cast<size_t>(pe)] = fab.coordOf(pe);

    nearPool.clear();
    nearSpan.assign(
        static_cast<size_t>(kNumMoveClasses * fab.numPes()),
        {0, 0});
    std::vector<int> list;
    for (int cls : classesInUse) {
        std::vector<int> slots;
        if (cls == kNocClass) {
            slots.resize(static_cast<size_t>(fab.numPes()));
            for (int pe = 0; pe < fab.numPes(); pe++)
                slots[static_cast<size_t>(pe)] = pe;
        } else {
            const auto &supply =
                fab.pesOfClass(static_cast<PeClass>(cls));
            slots.assign(supply.begin(), supply.end());
        }
        for (int from : slots) {
            list.clear();
            for (int to : slots) {
                if (to != from)
                    list.push_back(to);
            }
            Coord at = gridCoord[static_cast<size_t>(from)];
            std::sort(list.begin(), list.end(),
                      [&](int a, int b) {
                          int da = fabric::manhattan(
                              gridCoord[static_cast<size_t>(a)], at);
                          int db = fabric::manhattan(
                              gridCoord[static_cast<size_t>(b)], at);
                          return da != db ? da < db : a < b;
                      });
            nearSpan[static_cast<size_t>(cls * fab.numPes() +
                                         from)] = {
                static_cast<int>(nearPool.size()),
                static_cast<int>(list.size())};
            nearPool.insert(nearPool.end(), list.begin(),
                            list.end());
        }
    }

    // Rep-level adjacency from wire edges.
    std::vector<int> degree(n, 0);
    for (NodeId id = 0; id < graph.size(); id++) {
        const Node &node = graph.at(id);
        NodeId rt = repOf[static_cast<size_t>(id)];
        for (int i = 0; i < node.numInputs(); i++) {
            const auto &in = node.inputs[static_cast<size_t>(i)];
            if (!in.isWire())
                continue;
            NodeId rf = repOf[static_cast<size_t>(in.port.node)];
            if (rf == rt)
                continue; // co-located: always zero length
            degree[static_cast<size_t>(rf)]++;
            degree[static_cast<size_t>(rt)]++;
        }
    }
    adjStart.assign(n + 1, 0);
    for (size_t i = 0; i < n; i++)
        adjStart[i + 1] = adjStart[i] + degree[i];
    adjNode.resize(static_cast<size_t>(adjStart[n]));
    std::vector<int> fill(adjStart.begin(), adjStart.end() - 1);
    for (NodeId id = 0; id < graph.size(); id++) {
        const Node &node = graph.at(id);
        NodeId rt = repOf[static_cast<size_t>(id)];
        for (int i = 0; i < node.numInputs(); i++) {
            const auto &in = node.inputs[static_cast<size_t>(i)];
            if (!in.isWire())
                continue;
            NodeId rf = repOf[static_cast<size_t>(in.port.node)];
            if (rf == rt)
                continue;
            adjNode[static_cast<size_t>(
                fill[static_cast<size_t>(rf)]++)] = rt;
            adjNode[static_cast<size_t>(
                fill[static_cast<size_t>(rt)]++)] = rf;
        }
    }

    // Multicast trees, and which reps each tree's links depend on.
    std::vector<std::vector<int>> treesOf(n);
    std::vector<uint32_t> seen(n, 0);
    uint32_t epoch = 0;
    for (NodeId src = 0; src < graph.size(); src++) {
        const Node &node = graph.at(src);
        for (int port = 0; port < node.numOutputs(); port++) {
            const auto &consumers = graph.consumersOf({src, port});
            if (consumers.empty())
                continue;
            int t = static_cast<int>(trees.size());
            trees.push_back({src, port});
            epoch++;
            auto touch = [&](NodeId id) {
                NodeId r = repOf[static_cast<size_t>(id)];
                if (seen[static_cast<size_t>(r)] != epoch) {
                    seen[static_cast<size_t>(r)] = epoch;
                    treesOf[static_cast<size_t>(r)].push_back(t);
                }
            };
            touch(src);
            for (const Consumer &c : consumers)
                touch(c.node);
        }
    }
    treeStart.assign(n + 1, 0);
    for (size_t i = 0; i < n; i++) {
        treeStart[i + 1] =
            treeStart[i] + static_cast<int>(treesOf[i].size());
    }
    treeIds.resize(static_cast<size_t>(treeStart[n]));
    for (size_t i = 0; i < n; i++) {
        std::copy(treesOf[i].begin(), treesOf[i].end(),
                  treeIds.begin() + treeStart[i]);
    }
}

bool
MapperRun::checkFeasible(Mapping &m) const
{
    for (int c = 0; c < 5; c++) {
        auto cls = static_cast<PeClass>(c);
        const auto &demand = byClass[static_cast<size_t>(c)];
        const auto &supply = fab.pesOfClass(cls);
        if (demand.size() > supply.size()) {
            m.error = csprintf(
                "kernel needs %zu %s PEs but the fabric has %zu",
                demand.size(), dfg::peClassName(cls),
                supply.size());
            m.failedNodes = demand;
            return false;
        }
    }
    const auto &noc = byClass[kNocClass];
    size_t nocSlots =
        static_cast<size_t>(fab.numPes()) *
        static_cast<size_t>(cfCap);
    if (noc.size() > nocSlots) {
        m.error = csprintf(
            "kernel hosts %zu control-flow ops in the NoC but the "
            "routers have %zu slots",
            noc.size(), nocSlots);
        m.failedNodes = noc;
        return false;
    }
    return true;
}

void
MapperRun::initCandidate(Candidate &c) const
{
    const size_t n = static_cast<size_t>(graph.size());
    c.pos.assign(n, -1);
    c.coord.assign(n, Coord{0, 0});
    c.nodeWl.assign(n, 0);
    c.occupant.assign(static_cast<size_t>(fab.numPes()),
                      dfg::NoNode);
    c.routerLoad.assign(static_cast<size_t>(fab.numPes()), 0);
    c.scratch.ensure(numLinks);
    c.treeStamp.assign(trees.size(), 0);
    c.treeEpoch = 0;
    c.temp = opts.startTemperature;
    c.cooling =
        (perSeedIters > 0 && c.temp > 0.01)
            ? std::pow(0.01 / c.temp, 1.0 / perSeedIters)
            : 1.0;
}

void
MapperRun::greedyInit(Candidate &c) const
{
    for (int cls = 0; cls < 5; cls++) {
        const auto &nodes = byClass[static_cast<size_t>(cls)];
        const auto &supply =
            fab.pesOfClass(static_cast<PeClass>(cls));
        for (size_t i = 0; i < nodes.size(); i++) {
            int pe = supply[i];
            c.pos[static_cast<size_t>(nodes[i])] = pe;
            c.occupant[static_cast<size_t>(pe)] = nodes[i];
        }
    }
    placeNocByCentroid(c);
}

void
MapperRun::randomInit(Candidate &c) const
{
    for (int cls = 0; cls < 5; cls++) {
        const auto &nodes = byClass[static_cast<size_t>(cls)];
        std::vector<int> supply =
            fab.pesOfClass(static_cast<PeClass>(cls));
        // Partial Fisher-Yates: a distinct random PE per node.
        for (size_t i = 0; i < nodes.size(); i++) {
            size_t j =
                i + static_cast<size_t>(
                        c.rng.nextBounded(supply.size() - i));
            std::swap(supply[i], supply[j]);
            c.pos[static_cast<size_t>(nodes[i])] = supply[i];
            c.occupant[static_cast<size_t>(supply[i])] = nodes[i];
        }
    }
    for (NodeId id : byClass[kNocClass]) {
        // Random router, linear-probing for a free CF slot.
        int r = static_cast<int>(
            c.rng.nextBounded(static_cast<uint64_t>(fab.numPes())));
        while (c.routerLoad[static_cast<size_t>(r)] >= cfCap)
            r = (r + 1) % fab.numPes();
        c.pos[static_cast<size_t>(id)] = r;
        c.routerLoad[static_cast<size_t>(r)]++;
    }
}

void
MapperRun::placeNocByCentroid(Candidate &c) const
{
    for (NodeId id : byClass[kNocClass]) {
        // Centroid of already-placed neighbors.
        int sx = 0, sy = 0, count = 0;
        for (int i = adjStart[static_cast<size_t>(id)];
             i < adjStart[static_cast<size_t>(id) + 1]; i++) {
            NodeId nb = adjNode[static_cast<size_t>(i)];
            if (c.pos[static_cast<size_t>(nb)] < 0)
                continue;
            Coord at = gridCoord[static_cast<size_t>(
                c.pos[static_cast<size_t>(nb)])];
            sx += at.x;
            sy += at.y;
            count++;
        }
        Coord want{count ? sx / count : 0, count ? sy / count : 0};
        int best = -1;
        int bestDist = 1 << 30;
        for (int pe = 0; pe < fab.numPes(); pe++) {
            if (c.routerLoad[static_cast<size_t>(pe)] >= cfCap)
                continue;
            int d = fabric::manhattan(
                gridCoord[static_cast<size_t>(pe)], want);
            if (d < bestDist) {
                bestDist = d;
                best = pe;
            }
        }
        ps_assert(best >= 0, "router CF capacity exhausted");
        c.pos[static_cast<size_t>(id)] = best;
        c.routerLoad[static_cast<size_t>(best)]++;
    }
}

void
MapperRun::finishInit(Candidate &c) const
{
    for (NodeId id = 0; id < graph.size(); id++) {
        int p = c.pos[static_cast<size_t>(id)];
        c.coord[static_cast<size_t>(id)] =
            p >= 0 ? gridCoord[static_cast<size_t>(p)]
                   : Coord{0, 0};
    }
    c.wl = 0;
    for (NodeId r = 0; r < graph.size(); r++) {
        int64_t sum = 0;
        for (int i = adjStart[static_cast<size_t>(r)];
             i < adjStart[static_cast<size_t>(r) + 1]; i++) {
            sum += fabric::manhattan(
                c.coord[static_cast<size_t>(r)],
                c.coord[static_cast<size_t>(
                    adjNode[static_cast<size_t>(i)])]);
        }
        c.nodeWl[static_cast<size_t>(r)] = sum;
        c.wl += sum;
    }
    c.wl /= 2; // every edge was summed from both endpoints
}

void
MapperRun::moveOne(Candidate &c, NodeId rep, Coord to) const
{
    Coord from = c.coord[static_cast<size_t>(rep)];
    int64_t delta = 0;
    for (int i = adjStart[static_cast<size_t>(rep)];
         i < adjStart[static_cast<size_t>(rep) + 1]; i++) {
        NodeId nb = adjNode[static_cast<size_t>(i)];
        Coord at = c.coord[static_cast<size_t>(nb)];
        int64_t d = fabric::manhattan(to, at) -
                    fabric::manhattan(from, at);
        c.nodeWl[static_cast<size_t>(nb)] += d;
        delta += d;
    }
    c.nodeWl[static_cast<size_t>(rep)] += delta;
    c.wl += delta;
    c.coord[static_cast<size_t>(rep)] = to;
}

void
MapperRun::collectAffectedTrees(Candidate &c, NodeId a,
                                NodeId b) const
{
    c.affected.clear();
    if (++c.treeEpoch == 0) {
        std::fill(c.treeStamp.begin(), c.treeStamp.end(), 0u);
        c.treeEpoch = 1;
    }
    auto add = [&](NodeId rep) {
        for (int i = treeStart[static_cast<size_t>(rep)];
             i < treeStart[static_cast<size_t>(rep) + 1]; i++) {
            int t = treeIds[static_cast<size_t>(i)];
            if (c.treeStamp[static_cast<size_t>(t)] != c.treeEpoch) {
                c.treeStamp[static_cast<size_t>(t)] = c.treeEpoch;
                c.affected.push_back(t);
            }
        }
    };
    add(a);
    if (b != dfg::NoNode)
        add(b);
}

void
MapperRun::applyAffectedTrees(Candidate &c, int sign) const
{
    for (int t : c.affected) {
        routecost::traceTree(
            graph, trees[static_cast<size_t>(t)].src,
            trees[static_cast<size_t>(t)].port, width,
            [&](NodeId id) { return coordFor(c, id); }, c.scratch,
            [&](size_t l, const Consumer &) {
                int before = c.load[l];
                c.load[l] += sign;
                c.overflow +=
                    routecost::overflowDelta(before, linkCap, sign);
            },
            [](const Consumer &, int) {});
    }
}

void
MapperRun::traceAffectedDelta(Candidate &c, int sign, NodeId a,
                              Coord aC, NodeId b, Coord bC) const
{
    // `a`/`b` (when not NoNode) are traced at the overridden
    // coordinates, so a proposed move can be priced without
    // mutating the candidate.
    auto posOf = [&](NodeId id) {
        NodeId r = repOf[static_cast<size_t>(id)];
        if (r == a)
            return aC;
        if (r == b)
            return bC;
        return c.coord[static_cast<size_t>(r)];
    };
    for (int t : c.affected) {
        routecost::traceTree(
            graph, trees[static_cast<size_t>(t)].src,
            trees[static_cast<size_t>(t)].port, width, posOf,
            c.scratch,
            [&](size_t l, const Consumer &) {
                if (c.linkStamp[l] != c.linkEpoch) {
                    c.linkStamp[l] = c.linkEpoch;
                    c.touchedLinks.push_back(l);
                }
                c.deltaLoad[l] += sign;
            },
            [](const Consumer &, int) {});
    }
}

void
MapperRun::enableCongestion(Candidate &c, bool force) const
{
    c.overflow = recomputeOverflow(c, c.load, c.snapScratch);
    int maxLoad = 0;
    for (int l : c.load)
        maxLoad = std::max(maxLoad, l);
    // Placements comfortably below capacity skip the per-move
    // congestion bookkeeping: the chunk-end snapshots (whose cost
    // always includes the overload term) still catch any drift, and
    // the repair stage re-checks the winner from scratch.
    if (!force && maxLoad < linkCap - 1) {
        c.load.clear();
        c.overflow = 0;
        return;
    }
    c.deltaLoad.assign(numLinks, 0);
    c.touchedLinks.clear();
    c.linkStamp.assign(numLinks, 0);
    c.linkEpoch = 0;
    c.congestionOn = true;
}

int64_t
MapperRun::recomputeWirelength(const Candidate &c) const
{
    int64_t total = 0;
    for (NodeId r = 0; r < graph.size(); r++) {
        for (int i = adjStart[static_cast<size_t>(r)];
             i < adjStart[static_cast<size_t>(r) + 1]; i++) {
            total += fabric::manhattan(
                c.coord[static_cast<size_t>(r)],
                c.coord[static_cast<size_t>(
                    adjNode[static_cast<size_t>(i)])]);
        }
    }
    return total / 2;
}

int64_t
MapperRun::recomputeOverflow(const Candidate &c,
                             std::vector<int> &load,
                             routecost::ClaimScratch &scratch) const
{
    load.assign(numLinks, 0);
    scratch.ensure(numLinks);
    for (const Tree &t : trees) {
        routecost::traceTree(
            graph, t.src, t.port, width,
            [&](NodeId id) { return coordFor(c, id); }, scratch,
            [&](size_t l, const Consumer &) { load[l]++; },
            [](const Consumer &, int) {});
    }
    int64_t overflow = 0;
    for (int l : load)
        overflow += std::max(0, l - linkCap);
    return overflow;
}

double
MapperRun::fullCost(const Candidate &c) const
{
    int64_t overflow =
        c.congestionOn
            ? c.overflow
            : recomputeOverflow(c, c.snapLoad, c.snapScratch);
    return static_cast<double>(c.wl) +
           opts.congestionWeight * static_cast<double>(overflow);
}

void
MapperRun::verifyIncremental(const Candidate &c) const
{
    int64_t wl = recomputeWirelength(c);
    ps_assert(wl == c.wl,
              "incremental wirelength %lld != recomputed %lld",
              static_cast<long long>(c.wl),
              static_cast<long long>(wl));
    for (NodeId r = 0; r < graph.size(); r++) {
        int64_t sum = 0;
        for (int i = adjStart[static_cast<size_t>(r)];
             i < adjStart[static_cast<size_t>(r) + 1]; i++) {
            sum += fabric::manhattan(
                c.coord[static_cast<size_t>(r)],
                c.coord[static_cast<size_t>(
                    adjNode[static_cast<size_t>(i)])]);
        }
        ps_assert(sum == c.nodeWl[static_cast<size_t>(r)],
                  "cached partial cost of node %d is stale", r);
    }
    if (c.congestionOn) {
        std::vector<int> load;
        routecost::ClaimScratch scratch;
        int64_t overflow = recomputeOverflow(c, load, scratch);
        ps_assert(overflow == c.overflow,
                  "incremental overflow %lld != recomputed %lld",
                  static_cast<long long>(c.overflow),
                  static_cast<long long>(overflow));
        ps_assert(load == c.load, "incremental link loads diverged");
    }
}

/**
 * Price moving `a` from `fromPos` to `toPos` (swapping with `b` if
 * occupied) WITHOUT mutating the candidate: an O(degree) scan over
 * the cached adjacency plus, when the congestion term is live, a
 * re-trace of the affected multicast trees into the move-local
 * delta buffers. An a–b edge prices to zero from both sides, so
 * swaps need no special casing. When congestion is on the caller
 * must either commitMove() or clearMoveDelta() before pricing the
 * next move.
 */
double
MapperRun::priceMove(Candidate &c, NodeId a, NodeId b, int fromPos,
                     int toPos, int64_t &wlDelta,
                     int64_t &dOf) const
{
    Coord fromC = gridCoord[static_cast<size_t>(fromPos)];
    Coord toC = gridCoord[static_cast<size_t>(toPos)];
    wlDelta = 0;
    for (int i = adjStart[static_cast<size_t>(a)];
         i < adjStart[static_cast<size_t>(a) + 1]; i++) {
        NodeId nb = adjNode[static_cast<size_t>(i)];
        Coord oldP = nb == b ? toC
                             : c.coord[static_cast<size_t>(nb)];
        Coord newP = nb == b ? fromC
                             : c.coord[static_cast<size_t>(nb)];
        wlDelta += fabric::manhattan(toC, newP) -
                   fabric::manhattan(fromC, oldP);
    }
    if (b != dfg::NoNode) {
        for (int i = adjStart[static_cast<size_t>(b)];
             i < adjStart[static_cast<size_t>(b) + 1]; i++) {
            NodeId nb = adjNode[static_cast<size_t>(i)];
            Coord oldP = nb == a
                             ? fromC
                             : c.coord[static_cast<size_t>(nb)];
            Coord newP = nb == a
                             ? toC
                             : c.coord[static_cast<size_t>(nb)];
            wlDelta += fabric::manhattan(fromC, newP) -
                       fabric::manhattan(toC, oldP);
        }
    }

    // Evaluate-then-commit: routes of the affected trees are traced
    // into a move-local delta (old coordinates negative, proposed
    // ones positive); `load` itself only changes on commit.
    dOf = 0;
    if (c.congestionOn) {
        collectAffectedTrees(c, a, b);
        c.linkEpoch++;
        if (c.linkEpoch == 0) {
            std::fill(c.linkStamp.begin(), c.linkStamp.end(), 0u);
            c.linkEpoch = 1;
        }
        c.touchedLinks.clear();
        traceAffectedDelta(c, -1);
        traceAffectedDelta(c, +1, a, toC, b, fromC);
        for (size_t l : c.touchedLinks) {
            dOf += routecost::overflowDelta(c.load[l], linkCap,
                                            c.deltaLoad[l]);
        }
    }
    return static_cast<double>(wlDelta) +
           opts.congestionWeight * static_cast<double>(dOf);
}

void
MapperRun::clearMoveDelta(Candidate &c) const
{
    for (size_t l : c.touchedLinks)
        c.deltaLoad[l] = 0;
}

/** Apply a move previously priced with priceMove() (whose delta
 *  buffers must still describe exactly this move). */
void
MapperRun::commitMove(Candidate &c, int cls, NodeId a, NodeId b,
                      int fromPos, int toPos, int64_t dOf) const
{
    if (c.congestionOn) {
        for (size_t l : c.touchedLinks)
            c.load[l] += c.deltaLoad[l];
        c.overflow += dOf;
    }
    moveOne(c, a, gridCoord[static_cast<size_t>(toPos)]);
    if (b != dfg::NoNode)
        moveOne(c, b, gridCoord[static_cast<size_t>(fromPos)]);
    c.pos[static_cast<size_t>(a)] = toPos;
    if (cls == kNocClass) {
        c.routerLoad[static_cast<size_t>(fromPos)]--;
        c.routerLoad[static_cast<size_t>(toPos)]++;
    } else {
        c.occupant[static_cast<size_t>(toPos)] = a;
        c.occupant[static_cast<size_t>(fromPos)] = b;
        if (b != dfg::NoNode)
            c.pos[static_cast<size_t>(b)] = fromPos;
    }
}

void
MapperRun::annealStep(Candidate &c) const
{
    int cls = classesInUse[static_cast<size_t>(
        pick(c.rng, classesInUse.size()))];
    const auto &nodes = byClass[static_cast<size_t>(cls)];
    NodeId a =
        nodes[static_cast<size_t>(pick(c.rng, nodes.size()))];
    int fromPos = c.pos[static_cast<size_t>(a)];
    std::span<const int> near = nearestFor(cls, fromPos);
    if (near.empty())
        return;
    int toPos =
        near[static_cast<size_t>(pick(c.rng, near.size()))];
    NodeId b = dfg::NoNode;
    if (cls == kNocClass) {
        if (c.routerLoad[static_cast<size_t>(toPos)] >= cfCap)
            return; // target router has no spare CF slot
    } else {
        b = c.occupant[static_cast<size_t>(toPos)];
    }

    int64_t wlDelta = 0, dOf = 0;
    double delta = priceMove(c, a, b, fromPos, toPos, wlDelta, dOf);
    // Acceptance probability below exp(-30) ~ 1e-13: reject without
    // paying for exp() — the cold tail is almost all such moves.
    bool accept =
        delta <= 0 ||
        (delta < 30.0 * c.temp &&
         c.rng.nextDouble() < std::exp(-delta / c.temp));
    if (accept) {
        commitMove(c, cls, a, b, fromPos, toPos, dOf);
        // Sideways (delta == 0) shuffles keep being accepted at any
        // temperature; only strict improvements or uphill escapes
        // count as progress for the freeze heuristic.
        if (delta != 0)
            c.chunkAccepts++;
    }
    if (c.congestionOn)
        clearMoveDelta(c);
}

void
MapperRun::runChunk(Candidate &c, int iters) const
{
    // Degenerate but feasible graphs can leave no representative
    // movable (every used class exactly fills its slots with one
    // node); annealStep would then index an empty classesInUse.
    if (classesInUse.empty())
        return;
    for (int i = 0; i < iters; i++) {
        annealStep(c);
        c.temp *= c.cooling;
        c.itersDone++;
        if (opts.verifyIncremental)
            verifyIncremental(c);
    }
}

bool
MapperRun::shouldAbandon(const Candidate &c, double bound) const
{
    if (c.bestCost <= bound || perSeedIters <= 0)
        return false;
    double remaining =
        1.0 - static_cast<double>(c.itersDone) /
                  static_cast<double>(perSeedIters);
    // A candidate this far above the incumbent cannot close the gap
    // in its remaining (cooling) budget; the slack shrinks as the
    // schedule cools so early diversity is preserved.
    double slack = bound * 0.10 * remaining + 2.0 * c.temp;
    return c.bestCost > bound + slack;
}

void
MapperRun::portfolio(std::vector<int> &winnerPos, int &winnerSeed,
                     int &earlyExited, int &halved) const
{
    std::vector<Candidate> cands(static_cast<size_t>(seeds));
    for (int k = 0; k < seeds; k++) {
        Candidate &c = cands[static_cast<size_t>(k)];
        initCandidate(c);
        c.rng = Rng(opts.rngSeed +
                    0x9e3779b97f4a7c15ull *
                        static_cast<uint64_t>(k + 1));
        if (k == 0)
            greedyInit(c);
        else
            randomInit(c);
        finishInit(c);
        c.bestCost = fullCost(c);
        c.bestPos = c.pos;
    }

    // The greedy-init incumbent (pre-anneal, pre-probe) seeds the
    // shared bound as portfolio member -1; ties keep the earlier
    // holder so the winner is deterministic.
    const double incumbentCost = cands[0].bestCost;
    std::vector<int> incumbentPos = cands[0].pos;

    const int rounds =
        perSeedIters > 0 && !classesInUse.empty()
            ? (perSeedIters + kChunkIters - 1) / kChunkIters
            : 0;
    double phase =
        std::clamp(opts.congestionPhase, 0.0, 1.0);
    const int phase2Round = static_cast<int>(
        std::floor(rounds * (1.0 - phase)));

    // Workers beyond the host's cores (or the portfolio size) only
    // add pool and barrier latency; the winner is jobs-invariant by
    // construction, so clamping is unobservable in the result. A
    // negative jobs value bypasses the host-core clamp so the
    // threaded path can be exercised (e.g. under TSan) on any host.
    int hwCores = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    int effJobs = opts.jobs < 0
                      ? std::min(-opts.jobs, seeds)
                      : std::min({opts.jobs, seeds, hwCores});
    runner::ThreadPool *pool = nullptr;
    std::unique_ptr<runner::ThreadPool> poolOwner;
    if (effJobs > 1 && rounds > 0) {
        poolOwner = std::make_unique<runner::ThreadPool>(effJobs);
        pool = poolOwner.get();
    }

    auto probeT0 = std::chrono::steady_clock::now();
    // Basin probe: descend a copy of the greedy member's starting
    // placement to its local optimum and record that as its first
    // best snapshot. Raw anneal costs at hot temperatures are
    // systematically biased toward random starts — they fall fast
    // from a high initial cost while the greedy basin's advantage
    // only shows once the schedule cools — so the incumbent enters
    // the race at its true basin cost instead of a mid-burn-in
    // value. Scouts need no probe: a random start descends quickly
    // on its own, and each one gets a short burn-in (below) before
    // the bound may judge it.
    if (rounds > 0 && seeds > 1) {
        Candidate p;
        candidateFromPos(p, cands[0].pos);
        // A structured greedy start converges in a few passes; on
        // large graphs the probe settles for a near-fixpoint since
        // each extra pass costs a full scan.
        descend(p, /*maxPasses=*/graph.size() > 40 ? 3 : 8);
        double basin = fullCost(p);
        if (basin < cands[0].bestCost) {
            cands[0].bestCost = basin;
            cands[0].bestPos = std::move(p.pos);
        }
    }

    auto probeT1 = std::chrono::steady_clock::now();
    double bound = incumbentCost;
    int holder = -1;
    for (int k = 0; k < seeds; k++) {
        if (cands[static_cast<size_t>(k)].bestCost < bound) {
            bound = cands[static_cast<size_t>(k)].bestCost;
            holder = k;
        }
    }
    std::atomic<double> sharedBound{bound};

    // Every scout is guaranteed this many annealed rounds before
    // the shared bound may abandon it: its pre-burn-in snapshots
    // are just its random start's cost, which says nothing about
    // the basin it is descending into. Large graphs get one round
    // (a random start covers most of its fast descent in the first
    // chunk, and their chunks are what the wall budget buys);
    // small graphs afford a second look.
    const int scoutBurnInRounds = graph.size() > 40 ? 1 : 2;

    for (int r = 0; r < rounds; r++) {
        auto chunkTask = [&, r](int k) {
            Candidate &c = cands[static_cast<size_t>(k)];
            if (c.abandoned || c.frozen)
                return;
            // The bound was last written at the barrier, so every
            // portfolio member sees the same value here no matter
            // how chunks are scheduled onto threads.
            double bnd =
                sharedBound.load(std::memory_order_relaxed);
            if (r >= scoutBurnInRounds && holder != k &&
                shouldAbandon(c, bnd)) {
                c.abandoned = true;
                c.boundExited = true;
                return;
            }
            if (r == phase2Round && !c.congestionOn &&
                opts.congestionWeight > 0) {
                enableCongestion(c, /*force=*/false);
            }
            int iters =
                std::min(kChunkIters, perSeedIters - c.itersDone);
            c.chunkAccepts = 0;
            runChunk(c, iters);
            if (iters == kChunkIters && c.chunkAccepts == 0 &&
                c.temp < 0.05) {
                c.frozen = true;
            }
            // Snapshot every live member at every barrier, so the
            // abandon and halving decisions below always compare
            // freshly annealed costs — never a member's stale
            // initial-placement cost. Unarmed, the full objective
            // is wl plus a non-negative overload term, so wl
            // lower-bounds it: the route trace is paid only when
            // wl alone beats this member's best, with identical
            // outcomes either way.
            double cost = static_cast<double>(c.wl);
            if (c.congestionOn ||
                (cost < c.bestCost && opts.congestionWeight > 0))
                cost = fullCost(c);
            if (cost < c.bestCost) {
                c.bestCost = cost;
                c.bestPos = c.pos;
            }
        };
        if (pool) {
            std::vector<std::future<void>> futs;
            futs.reserve(static_cast<size_t>(seeds));
            for (int k = 0; k < seeds; k++)
                futs.push_back(
                    pool->submit([&chunkTask, k] { chunkTask(k); }));
            for (auto &f : futs)
                f.get();
        } else {
            for (int k = 0; k < seeds; k++)
                chunkTask(k);
        }
        // Barrier: fold this round's snapshots into the bound in
        // seed order (deterministic for any thread count).
        for (int k = 0; k < seeds; k++) {
            const Candidate &c = cands[static_cast<size_t>(k)];
            if (!c.abandoned && c.bestCost < bound) {
                bound = c.bestCost;
                holder = k;
            }
        }
        sharedBound.store(bound, std::memory_order_relaxed);
        // Past 20% of the schedule only the best member continues:
        // every survivor has had its burn-in honestly scored at the
        // barriers by then, and freeing the trailing tails is what
        // keeps a 4-seed portfolio under one anneal's budget.
        // Decided at the barrier in seed order (stable sort →
        // index tie-break), so the survivor set is identical for
        // any thread count. The final barrier cuts nothing: every
        // survivor has already spent its whole budget.
        if (r + 1 >= rounds)
            continue;
        int done = r + 1; // rounds every live member has completed
        if (5 * done <= rounds)
            continue;
        std::vector<int> liveOrder;
        for (int k = 0; k < seeds; k++) {
            if (!cands[static_cast<size_t>(k)].abandoned)
                liveOrder.push_back(k);
        }
        if (liveOrder.size() > 1) {
            std::stable_sort(
                liveOrder.begin(), liveOrder.end(),
                [&](int x, int y) {
                    return cands[static_cast<size_t>(x)].bestCost <
                           cands[static_cast<size_t>(y)].bestCost;
                });
            for (size_t i = 1; i < liveOrder.size(); i++) {
                cands[static_cast<size_t>(liveOrder[i])].abandoned =
                    true;
            }
        }
    }

    earlyExited = 0;
    halved = 0;
    for (const Candidate &c : cands) {
        if (c.boundExited)
            earlyExited++;
        else if (c.abandoned)
            halved++;
    }
    if (std::getenv("PS_MAPPER_DEBUG")) {
        for (int k = 0; k < seeds; k++) {
            const Candidate &c = cands[static_cast<size_t>(k)];
            std::fprintf(stderr,
                         "seed %d: best %.1f iters %d abandoned %d "
                         "bound %d frozen %d\n",
                         k, c.bestCost, c.itersDone,
                         c.abandoned ? 1 : 0, c.boundExited ? 1 : 0,
                         c.frozen ? 1 : 0);
        }
        auto ms = [](auto a, auto b) {
            return std::chrono::duration<double, std::milli>(b - a)
                .count();
        };
        std::fprintf(stderr,
                     "holder %d bound %.1f rounds %d probe %.3f ms "
                     "anneal %.3f ms\n",
                     holder, bound, rounds, ms(probeT0, probeT1),
                     ms(probeT1, std::chrono::steady_clock::now()));
    }
    winnerSeed = holder;
    winnerPos = holder < 0
                    ? std::move(incumbentPos)
                    : cands[static_cast<size_t>(holder)].bestPos;
}

void
MapperRun::candidateFromPos(Candidate &c,
                            const std::vector<int> &pos) const
{
    initCandidate(c);
    c.pos = pos;
    for (NodeId id = 0; id < graph.size(); id++) {
        int p = c.pos[static_cast<size_t>(id)];
        if (p < 0)
            continue;
        if (moveClass[static_cast<size_t>(id)] == kNocClass)
            c.routerLoad[static_cast<size_t>(p)]++;
        else
            c.occupant[static_cast<size_t>(p)] = id;
    }
    finishInit(c);
}

/**
 * Steepest-descent polish on the portfolio winner: for every
 * movable representative, price a move to every other slot of its
 * class and commit the best strictly-improving one; repeat to a
 * fixpoint. Deterministic (no randomness), monotone (cost only
 * falls), and cheap — a pass is nodes × class-slots O(degree)
 * pricings — so it recovers the refinement a longer cooling tail
 * would buy at a fraction of the iterations.
 */
void
MapperRun::descend(Candidate &c, int maxPasses) const
{
    // Scanning the whole class per node is only worth it for small
    // classes; for large ones the improving move is almost always
    // near the node's current slot, so cap the nearest-first scan.
    const size_t kMaxTargets = 24;
    // Don't-look bits: after a node's scan finds nothing, skip it
    // until one of its wirelength dependencies (an adjacency
    // neighbor, or a swap endpoint) moves. Occupancy and link-load
    // shifts can re-open a skipped node without waking it, so a
    // clean partial pass is confirmed by one full rescan before the
    // fixpoint is trusted.
    std::vector<uint8_t> look(
        static_cast<size_t>(graph.size()), 1u);
    auto wake = [&](NodeId moved) {
        NodeId r = repOf[static_cast<size_t>(moved)];
        look[static_cast<size_t>(r)] = 1;
        for (int i = adjStart[static_cast<size_t>(r)];
             i < adjStart[static_cast<size_t>(r) + 1]; i++) {
            look[static_cast<size_t>(
                adjNode[static_cast<size_t>(i)])] = 1;
        }
    };
    bool fullPass = true;
    for (int pass = 0; pass < maxPasses; pass++) {
        bool improved = false;
        for (int cls : classesInUse) {
            for (NodeId a : byClass[static_cast<size_t>(cls)]) {
                if (!fullPass && !look[static_cast<size_t>(a)])
                    continue;
                int fromPos = c.pos[static_cast<size_t>(a)];
                std::span<const int> nearAll =
                    nearestFor(cls, fromPos);
                std::span<const int> near = nearAll.subspan(
                    0, std::min(nearAll.size(), kMaxTargets));
                double bestDelta = -1e-9; // strict improvement only
                int bestTo = -1;
                NodeId bestB = dfg::NoNode;
                int64_t bestDOf = 0;
                for (int toPos : near) {
                    NodeId b = dfg::NoNode;
                    if (cls == kNocClass) {
                        if (c.routerLoad[static_cast<size_t>(
                                toPos)] >= cfCap)
                            continue;
                    } else {
                        b = c.occupant[static_cast<size_t>(toPos)];
                    }
                    int64_t wlDelta = 0, dOf = 0;
                    double delta = priceMove(c, a, b, fromPos,
                                             toPos, wlDelta, dOf);
                    if (c.congestionOn)
                        clearMoveDelta(c);
                    if (delta < bestDelta) {
                        bestDelta = delta;
                        bestTo = toPos;
                        bestB = b;
                        bestDOf = dOf;
                    }
                }
                if (bestTo < 0) {
                    look[static_cast<size_t>(a)] = 0;
                    continue;
                }
                if (c.congestionOn) {
                    // Re-price to rebuild the delta buffers for
                    // exactly the winning move.
                    int64_t wlDelta = 0;
                    priceMove(c, a, bestB, fromPos, bestTo, wlDelta,
                              bestDOf);
                }
                commitMove(c, cls, a, bestB, fromPos, bestTo,
                           bestDOf);
                if (c.congestionOn)
                    clearMoveDelta(c);
                wake(a);
                if (bestB != dfg::NoNode)
                    wake(bestB);
                improved = true;
            }
        }
        if (improved) {
            fullPass = false;
        } else if (fullPass) {
            break; // a clean FULL pass is a certified fixpoint
        } else {
            fullPass = true; // confirm the partial fixpoint
        }
    }
}

void
MapperRun::polish(std::vector<int> &pos) const
{
    if (perSeedIters <= 0 || classesInUse.empty())
        return;
    Candidate c;
    candidateFromPos(c, pos);
    // The polish descends unarmed: armed pricing re-traces trees
    // for every scanned candidate move, which costs more than the
    // whole wirelength descent. Overload still gates acceptance —
    // `best` is always the full objective (the lower-bound trick
    // below), so a kick that wins on wirelength by adding overflow
    // is rejected, and anything that slips through is the
    // congestion-repair loop's job.
    descend(c);
    double best = fullCost(c);
    // Snapshot/restore whole candidates: a vector copy is far
    // cheaper than rebuilding caches (and re-tracing routes) from a
    // bare position array on every unproductive kick.
    Candidate bestC = c;

    // Iterated local search: kick a few nodes off the fixpoint,
    // descend again, and keep the best basin found. Each cycle is a
    // near-independent sample of a nearby local optimum at a
    // fraction of an anneal's cost, which flattens the
    // draw-to-draw variance of the winning schedule.
    Rng rng(opts.rngSeed ^ 0x9017a11ca11c0de5ull);
    // Each kick cycle costs roughly a descent pass, which scales
    // with graph size — so small graphs afford many cheap samples
    // while large ones stop after a few fruitless tries.
    // A kick cycle costs a descent pass, which scales with nodes x
    // scanned targets, while the marginal basin found shrinks as
    // the portfolio has already sampled four independent schedules.
    // Past ~40 nodes the cycles stop paying for themselves, so the
    // sample count drops to a token few.
    const int kMaxKicks =
        graph.size() > 40
            ? 2
            : std::clamp(350 / std::max(1, graph.size()), 6, 20);
    const int kKickMoves = 3;
    const int kGiveUpAfter = std::max(2, kMaxKicks / 3);
    int sinceImprove = 0;
    for (int kick = 0;
         kick < kMaxKicks && sinceImprove < kGiveUpAfter; kick++) {
        for (int j = 0; j < kKickMoves; j++) {
            int cls = classesInUse[static_cast<size_t>(
                pick(rng, classesInUse.size()))];
            const auto &nodes = byClass[static_cast<size_t>(cls)];
            NodeId a = nodes[static_cast<size_t>(
                pick(rng, nodes.size()))];
            int fromPos = c.pos[static_cast<size_t>(a)];
            std::span<const int> near = nearestFor(cls, fromPos);
            if (near.empty())
                continue;
            int toPos = near[static_cast<size_t>(
                pick(rng, near.size()))];
            NodeId b = dfg::NoNode;
            if (cls == kNocClass) {
                if (c.routerLoad[static_cast<size_t>(toPos)] >=
                    cfCap)
                    continue;
            } else {
                b = c.occupant[static_cast<size_t>(toPos)];
            }
            int64_t wlDelta = 0, dOf = 0;
            priceMove(c, a, b, fromPos, toPos, wlDelta, dOf);
            commitMove(c, cls, a, b, fromPos, toPos, dOf);
            if (c.congestionOn)
                clearMoveDelta(c);
        }
        descend(c);
        // Same lower-bound trick as the portfolio barrier: only a
        // kick whose wirelength beats the incumbent pays a route
        // trace to price its overload exactly.
        double kickCost = c.congestionOn
                              ? fullCost(c)
                              : static_cast<double>(c.wl);
        if (!c.congestionOn && kickCost < best &&
            opts.congestionWeight > 0)
            kickCost = fullCost(c);
        if (kickCost < best) {
            best = kickCost;
            bestC = c;
            sinceImprove = 0;
        } else {
            sinceImprove++;
            c = bestC;
        }
    }
    pos = std::move(bestC.pos);
}

std::vector<NodeId>
MapperRun::collectCulprits(Candidate &c) const
{
    // Re-trace every tree against the final loads; any tree that
    // crosses an over-capacity link implicates its endpoints.
    std::vector<NodeId> culprits;
    std::vector<uint32_t> seen(static_cast<size_t>(graph.size()),
                               0u);
    for (const Tree &t : trees) {
        bool overloaded = false;
        routecost::traceTree(
            graph, t.src, t.port, width,
            [&](NodeId id) { return coordFor(c, id); }, c.scratch,
            [&](size_t l, const Consumer &) {
                if (c.load[l] > linkCap)
                    overloaded = true;
            },
            [](const Consumer &, int) {});
        if (!overloaded)
            continue;
        auto add = [&](NodeId id) {
            NodeId r = repOf[static_cast<size_t>(id)];
            if (!seen[static_cast<size_t>(r)]) {
                seen[static_cast<size_t>(r)] = 1;
                culprits.push_back(r);
            }
        };
        add(t.src);
        for (const Consumer &u : graph.consumersOf({t.src, t.port}))
            add(u.node);
    }
    std::sort(culprits.begin(), culprits.end());
    return culprits;
}

void
MapperRun::perturbCulprits(
    Candidate &c, const std::vector<NodeId> &culprits) const
{
    for (NodeId rep : culprits) {
        int cls = moveClass[static_cast<size_t>(rep)];
        if (cls < 0)
            continue; // trigger / fixed
        int fromPos = c.pos[static_cast<size_t>(rep)];
        NodeId b = dfg::NoNode;
        int toPos;
        if (cls == kNocClass) {
            toPos = static_cast<int>(c.rng.nextBounded(
                static_cast<uint64_t>(fab.numPes())));
            while (toPos != fromPos &&
                   c.routerLoad[static_cast<size_t>(toPos)] >=
                       cfCap) {
                toPos = (toPos + 1) % fab.numPes();
            }
            if (toPos == fromPos)
                continue;
        } else {
            const auto &supply =
                fab.pesOfClass(static_cast<PeClass>(cls));
            toPos = supply[static_cast<size_t>(
                c.rng.nextBounded(supply.size()))];
            if (toPos == fromPos)
                continue;
            b = c.occupant[static_cast<size_t>(toPos)];
        }
        collectAffectedTrees(c, rep, b);
        applyAffectedTrees(c, -1);
        moveOne(c, rep, gridCoord[static_cast<size_t>(toPos)]);
        if (b != dfg::NoNode)
            moveOne(c, b, gridCoord[static_cast<size_t>(fromPos)]);
        applyAffectedTrees(c, +1);
        c.pos[static_cast<size_t>(rep)] = toPos;
        if (cls == kNocClass) {
            c.routerLoad[static_cast<size_t>(fromPos)]--;
            c.routerLoad[static_cast<size_t>(toPos)]++;
        } else {
            c.occupant[static_cast<size_t>(toPos)] = rep;
            c.occupant[static_cast<size_t>(fromPos)] = b;
            if (b != dfg::NoNode)
                c.pos[static_cast<size_t>(b)] = fromPos;
        }
    }
}

bool
MapperRun::repairCongestion(std::vector<int> &pos,
                            std::vector<NodeId> &implicated) const
{
    Candidate c;
    candidateFromPos(c, pos);
    enableCongestion(c, /*force=*/true);
    if (c.overflow == 0) {
        pos = std::move(c.pos);
        implicated.clear();
        return true;
    }

    // Best state seen, preferring feasibility over wirelength.
    int64_t bestOverflow = c.overflow;
    double bestCost = fullCost(c);
    std::vector<int> bestPos = c.pos;
    const int repairIters = std::max(1024, perSeedIters / 2);

    for (int attempt = 0;
         attempt < std::max(0, opts.maxTargetedRestarts);
         attempt++) {
        implicated = collectCulprits(c);
        c.rng = Rng(opts.rngSeed ^
                    (0xc0dec0dec0de0000ull +
                     static_cast<uint64_t>(attempt)));
        perturbCulprits(c, implicated);
        c.temp = opts.startTemperature / 2;
        c.cooling = std::pow(0.01 / c.temp, 1.0 / repairIters);
        c.itersDone = 0;
        for (int done = 0; done < repairIters;
             done += kChunkIters) {
            runChunk(c,
                     std::min(kChunkIters, repairIters - done));
            if (c.overflow < bestOverflow ||
                (c.overflow == bestOverflow &&
                 fullCost(c) < bestCost)) {
                bestOverflow = c.overflow;
                bestCost = fullCost(c);
                bestPos = c.pos;
            }
            if (c.overflow == 0 && bestOverflow == 0)
                break;
        }
        if (bestOverflow == 0)
            break;
    }
    if (bestOverflow == 0) {
        pos = std::move(bestPos);
        implicated.clear();
        return true;
    }
    // Report the culprits of the best (least-overloaded) state.
    c.pos = bestPos;
    for (NodeId id = 0; id < graph.size(); id++) {
        int p = c.pos[static_cast<size_t>(id)];
        c.coord[static_cast<size_t>(id)] =
            p >= 0 ? gridCoord[static_cast<size_t>(p)]
                   : Coord{0, 0};
    }
    c.overflow = recomputeOverflow(c, c.load, c.snapScratch);
    implicated = collectCulprits(c);
    pos = std::move(c.pos);
    return false;
}

void
MapperRun::finishMapping(Mapping &m,
                         const std::vector<int> &pos) const
{
    const size_t n = static_cast<size_t>(graph.size());
    m.peOf.assign(n, -1);
    m.routerOf.assign(n, -1);
    for (NodeId id = 0; id < graph.size(); id++) {
        int cls = moveClass[static_cast<size_t>(id)];
        if (cls < 0)
            continue;
        if (cls == kNocClass)
            m.routerOf[static_cast<size_t>(id)] =
                pos[static_cast<size_t>(id)];
        else
            m.peOf[static_cast<size_t>(id)] =
                pos[static_cast<size_t>(id)];
    }
    // Time-multiplexed members alias their group representative.
    for (const auto &group : opts.shareGroups) {
        for (size_t i = 1; i < group.size(); i++) {
            m.peOf[static_cast<size_t>(group[i])] =
                m.peOf[static_cast<size_t>(group[0])];
        }
    }

    auto posOf = [&](NodeId id) {
        int p = pos[static_cast<size_t>(
            repOf[static_cast<size_t>(id)])];
        return p >= 0 ? gridCoord[static_cast<size_t>(p)]
                      : Coord{0, 0};
    };

    m.hopsOf.assign(n, {});
    for (NodeId id = 0; id < graph.size(); id++) {
        m.hopsOf[static_cast<size_t>(id)].assign(
            static_cast<size_t>(graph.at(id).numInputs()), 0);
    }
    std::vector<int> load(numLinks, 0);
    routecost::ClaimScratch scratch;
    scratch.ensure(numLinks);
    int64_t totalHops = 0;
    int64_t edgeCount = 0;
    for (const Tree &t : trees) {
        routecost::traceTree(
            graph, t.src, t.port, width, posOf, scratch,
            [&](size_t l, const Consumer &) { load[l]++; },
            [&](const Consumer &c, int hops) {
                m.hopsOf[static_cast<size_t>(c.node)]
                        [static_cast<size_t>(c.inputIndex)] = hops;
                totalHops += hops;
                edgeCount++;
            });
    }
    m.totalWireLength = totalHops;
    m.avgHops = edgeCount
                    ? static_cast<double>(totalHops) /
                          static_cast<double>(edgeCount)
                    : 0.0;
    m.maxLinkLoad = 0;
    m.congestionOverflow = 0;
    for (int l : load) {
        m.maxLinkLoad = std::max(m.maxLinkLoad, l);
        m.congestionOverflow += std::max(0, l - linkCap);
    }
    m.cost = static_cast<double>(totalHops) +
             opts.congestionWeight *
                 static_cast<double>(m.congestionOverflow);
}

Mapping
MapperRun::run()
{
    buildStructure();

    Mapping m;
    if (!checkFeasible(m))
        return m;

    std::vector<int> winnerPos;
    int winnerSeed = -1;
    int earlyExited = 0;
    int halved = 0;
    auto t0 = std::chrono::steady_clock::now();
    portfolio(winnerPos, winnerSeed, earlyExited, halved);
    m.winningSeed = winnerSeed;
    m.seedsEarlyExited = earlyExited;
    m.seedsHalved = halved;
    auto t1 = std::chrono::steady_clock::now();
    polish(winnerPos);
    auto t2 = std::chrono::steady_clock::now();

    std::vector<NodeId> implicated;
    bool routable = repairCongestion(winnerPos, implicated);
    if (std::getenv("PS_MAPPER_DEBUG")) {
        auto ms = [](auto a, auto b) {
            return std::chrono::duration<double, std::milli>(b - a)
                .count();
        };
        std::fprintf(stderr,
                     "portfolio %.3f ms polish %.3f ms repair "
                     "%.3f ms\n",
                     ms(t0, t1), ms(t1, t2),
                     ms(t2, std::chrono::steady_clock::now()));
    }
    finishMapping(m, winnerPos);
    if (!routable) {
        m.failedNodes = std::move(implicated);
        m.error = csprintf(
            "unmappable: %lld route(s) above link capacity %d "
            "after %d targeted restarts (%zu nodes implicated)",
            static_cast<long long>(m.congestionOverflow), linkCap,
            std::max(0, opts.maxTargetedRestarts),
            m.failedNodes.size());
        return m;
    }
    ps_assert(m.maxLinkLoad <= linkCap,
              "repairCongestion returned an overloaded placement");
    m.success = true;
    return m;
}

} // namespace

int
Mapping::positionOf(dfg::NodeId id) const
{
    int pe = peOf[static_cast<size_t>(id)];
    return pe >= 0 ? pe : routerOf[static_cast<size_t>(id)];
}

Mapping
mapGraph(const Graph &graph, const Fabric &fabric,
         const MapperOptions &options)
{
    MapperRun run(graph, fabric, options);
    return run.run();
}

} // namespace pipestitch::mapper
