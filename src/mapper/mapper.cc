#include "mapper/mapper.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/random.hh"

namespace pipestitch::mapper {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::NodeKind;
using dfg::PeClass;
using fabric::Coord;
using fabric::Fabric;

namespace {

/** Edges as (producer node, consumer node, consumer input). */
struct FlatEdge
{
    NodeId from;
    NodeId to;
    int input;
};

class MapperRun
{
  public:
    MapperRun(const Graph &graph, const Fabric &fab,
              const MapperOptions &opts)
        : graph(graph), fab(fab), opts(opts), rng(opts.seed)
    {}

    Mapping run();

  private:
    bool place(Mapping &m);
    void applyAliases(Mapping &m);
    void anneal(Mapping &m);
    void placeNocNodes(Mapping &m);
    bool route(Mapping &m);
    Coord posOf(const Mapping &m, NodeId id) const;

    const Graph &graph;
    const Fabric &fab;
    const MapperOptions &opts;
    Rng rng;
    std::vector<FlatEdge> edges;
    std::vector<std::vector<NodeId>> adjacent; // node → neighbors
};

Coord
MapperRun::posOf(const Mapping &m, NodeId id) const
{
    int pe = m.peOf[static_cast<size_t>(id)];
    if (pe < 0)
        pe = m.routerOf[static_cast<size_t>(id)];
    if (pe < 0)
        return {0, 0}; // trigger: injected from the scalar core corner
    return fab.coordOf(pe);
}

bool
MapperRun::place(Mapping &m)
{
    m.peOf.assign(static_cast<size_t>(graph.size()), -1);
    m.routerOf.assign(static_cast<size_t>(graph.size()), -1);

    // Time-multiplexed members alias their group representative.
    std::vector<NodeId> aliasOf(
        static_cast<size_t>(graph.size()), dfg::NoNode);
    for (const auto &group : opts.shareGroups) {
        for (size_t i = 1; i < group.size(); i++)
            aliasOf[static_cast<size_t>(group[i])] = group[0];
    }

    // Group nodes needing PEs by class.
    std::vector<std::vector<NodeId>> demand(5);
    for (NodeId id = 0; id < graph.size(); id++) {
        const Node &node = graph.at(id);
        if (node.kind == NodeKind::Trigger || node.cfInNoc)
            continue;
        if (aliasOf[static_cast<size_t>(id)] != dfg::NoNode)
            continue; // placed with its representative
        demand[static_cast<size_t>(node.peClass())].push_back(id);
    }
    for (int c = 0; c < 5; c++) {
        auto cls = static_cast<PeClass>(c);
        const auto &supply = fab.pesOfClass(cls);
        if (demand[static_cast<size_t>(c)].size() > supply.size()) {
            m.error = csprintf(
                "kernel needs %zu %s PEs but the fabric has %zu",
                demand[static_cast<size_t>(c)].size(),
                dfg::peClassName(cls), supply.size());
            return false;
        }
        // Initial assignment: in order.
        for (size_t i = 0; i < demand[static_cast<size_t>(c)].size();
             i++) {
            m.peOf[static_cast<size_t>(
                demand[static_cast<size_t>(c)][i])] = supply[i];
        }
    }
    return true;
}

void
MapperRun::applyAliases(Mapping &m)
{
    for (const auto &group : opts.shareGroups) {
        for (size_t i = 1; i < group.size(); i++) {
            m.peOf[static_cast<size_t>(group[i])] =
                m.peOf[static_cast<size_t>(group[0])];
        }
    }
}

void
MapperRun::anneal(Mapping &m)
{
    // Collect swappable nodes per class.
    std::vector<std::vector<NodeId>> byClass(5);
    for (NodeId id = 0; id < graph.size(); id++) {
        if (m.peOf[static_cast<size_t>(id)] >= 0) {
            byClass[static_cast<size_t>(graph.at(id).peClass())]
                .push_back(id);
        }
    }
    std::vector<int> classesInUse;
    for (int c = 0; c < 5; c++) {
        // A class participates if it has at least one placed node
        // and either a free PE or a second node to swap with.
        size_t nodes = byClass[static_cast<size_t>(c)].size();
        size_t pes =
            fab.pesOfClass(static_cast<PeClass>(c)).size();
        if (nodes >= 1 && (pes > nodes || nodes >= 2))
            classesInUse.push_back(c);
    }
    if (classesInUse.empty())
        return;

    // Occupancy per PE for fast free-slot moves.
    std::vector<NodeId> occupant(static_cast<size_t>(fab.numPes()),
                                 dfg::NoNode);
    for (NodeId id = 0; id < graph.size(); id++) {
        if (m.peOf[static_cast<size_t>(id)] >= 0)
            occupant[static_cast<size_t>(
                m.peOf[static_cast<size_t>(id)])] = id;
    }

    auto nodeCost = [&](NodeId id) {
        int64_t cost = 0;
        for (NodeId other : adjacent[static_cast<size_t>(id)]) {
            cost += fabric::manhattan(posOf(m, id), posOf(m, other));
        }
        return cost;
    };

    double temp = opts.startTemperature;
    const double cooling =
        std::pow(0.01 / temp, 1.0 / opts.annealIterations);
    for (int iter = 0; iter < opts.annealIterations; iter++) {
        int c = classesInUse[static_cast<size_t>(
            rng.nextBounded(classesInUse.size()))];
        auto &nodes = byClass[static_cast<size_t>(c)];
        NodeId a = nodes[static_cast<size_t>(
            rng.nextBounded(nodes.size()))];
        const auto &supply =
            fab.pesOfClass(static_cast<PeClass>(c));
        int targetPe = supply[static_cast<size_t>(
            rng.nextBounded(supply.size()))];
        int fromPe = m.peOf[static_cast<size_t>(a)];
        if (targetPe == fromPe)
            continue;
        NodeId b = occupant[static_cast<size_t>(targetPe)];

        int64_t before = nodeCost(a) + (b != dfg::NoNode
                                            ? nodeCost(b)
                                            : 0);
        m.peOf[static_cast<size_t>(a)] = targetPe;
        if (b != dfg::NoNode)
            m.peOf[static_cast<size_t>(b)] = fromPe;
        int64_t after = nodeCost(a) + (b != dfg::NoNode
                                           ? nodeCost(b)
                                           : 0);
        int64_t delta = after - before;
        bool accept =
            delta <= 0 ||
            rng.nextDouble() <
                std::exp(-static_cast<double>(delta) / temp);
        if (accept) {
            occupant[static_cast<size_t>(targetPe)] = a;
            occupant[static_cast<size_t>(fromPe)] = b;
        } else {
            m.peOf[static_cast<size_t>(a)] = fromPe;
            if (b != dfg::NoNode)
                m.peOf[static_cast<size_t>(b)] = targetPe;
        }
        temp *= cooling;
    }
}

void
MapperRun::placeNocNodes(Mapping &m)
{
    std::vector<int> routerLoad(static_cast<size_t>(fab.numPes()),
                                0);
    int capacity = fab.config().routerCfCapacity;
    for (NodeId id = 0; id < graph.size(); id++) {
        if (!graph.at(id).cfInNoc)
            continue;
        // Centroid of already-placed neighbors.
        int sx = 0, sy = 0, count = 0;
        for (NodeId other : adjacent[static_cast<size_t>(id)]) {
            if (m.peOf[static_cast<size_t>(other)] >= 0 ||
                m.routerOf[static_cast<size_t>(other)] >= 0) {
                Coord c = posOf(m, other);
                sx += c.x;
                sy += c.y;
                count++;
            }
        }
        Coord want{count ? sx / count : 0, count ? sy / count : 0};
        // Nearest router with spare CF capacity.
        int best = -1;
        int bestDist = 1 << 30;
        for (int pe = 0; pe < fab.numPes(); pe++) {
            if (routerLoad[static_cast<size_t>(pe)] >= capacity)
                continue;
            int d = fabric::manhattan(fab.coordOf(pe), want);
            if (d < bestDist) {
                bestDist = d;
                best = pe;
            }
        }
        ps_assert(best >= 0, "router CF capacity exhausted");
        m.routerOf[static_cast<size_t>(id)] = best;
        routerLoad[static_cast<size_t>(best)]++;
    }
}

bool
MapperRun::route(Mapping &m)
{
    // Dimension-ordered X-Y routing on the mesh; the NoC is
    // circuit-switched, so every edge permanently occupies one wire
    // on each link it crosses.
    const int w = fab.config().width;
    const int h = fab.config().height;
    // Link load: [x][y][dir], dir: 0=+x 1=-x 2=+y 3=-y
    std::vector<int> load(static_cast<size_t>(w * h * 4), 0);
    auto linkIdx = [&](int x, int y, int dir) {
        return static_cast<size_t>(((y * w) + x) * 4 + dir);
    };

    m.hopsOf.assign(static_cast<size_t>(graph.size()), {});
    for (NodeId id = 0; id < graph.size(); id++) {
        m.hopsOf[static_cast<size_t>(id)].assign(
            static_cast<size_t>(graph.at(id).numInputs()), 0);
    }

    // The NoC is circuit-switched: one multicast output claims each
    // link of its distribution tree once, no matter how many
    // consumers share it. Dimension-ordered paths from a common
    // source share prefixes, which forms that tree naturally.
    int64_t totalHops = 0;
    int64_t edgeCount = 0;
    std::vector<bool> claimed(load.size(), false);
    for (NodeId src = 0; src < graph.size(); src++) {
        const Node &node = graph.at(src);
        for (int port = 0; port < node.numOutputs(); port++) {
            const auto &consumers = graph.consumersOf({src, port});
            if (consumers.empty())
                continue;
            std::vector<size_t> touched;
            Coord s = posOf(m, src);
            for (const auto &c : consumers) {
                Coord dst = posOf(m, c.node);
                int hops = 0;
                int x = s.x, y = s.y;
                auto claim = [&](int dir) {
                    size_t l = linkIdx(x, y, dir);
                    if (!claimed[l]) {
                        claimed[l] = true;
                        touched.push_back(l);
                        load[l]++;
                    }
                };
                while (x != dst.x) {
                    claim(dst.x > x ? 0 : 1);
                    x += dst.x > x ? 1 : -1;
                    hops++;
                }
                while (y != dst.y) {
                    claim(dst.y > y ? 2 : 3);
                    y += dst.y > y ? 1 : -1;
                    hops++;
                }
                m.hopsOf[static_cast<size_t>(c.node)]
                        [static_cast<size_t>(c.inputIndex)] = hops;
                totalHops += hops;
                edgeCount++;
            }
            for (size_t l : touched)
                claimed[l] = false;
        }
    }
    m.totalWireLength = totalHops;
    m.avgHops = edgeCount
                    ? static_cast<double>(totalHops) /
                          static_cast<double>(edgeCount)
                    : 0.0;
    m.maxLinkLoad = 0;
    for (int l : load)
        m.maxLinkLoad = std::max(m.maxLinkLoad, l);
    if (m.maxLinkLoad > fab.config().linkCapacity) {
        m.error = csprintf("link overload: %d > capacity %d",
                           m.maxLinkLoad, fab.config().linkCapacity);
        return false;
    }
    return true;
}

Mapping
MapperRun::run()
{
    // Flatten edges and adjacency once.
    for (NodeId id = 0; id < graph.size(); id++) {
        const Node &node = graph.at(id);
        for (int i = 0; i < node.numInputs(); i++) {
            const auto &in = node.inputs[static_cast<size_t>(i)];
            if (in.isWire())
                edges.push_back({in.port.node, id, i});
        }
    }
    adjacent.assign(static_cast<size_t>(graph.size()), {});
    for (const auto &e : edges) {
        adjacent[static_cast<size_t>(e.from)].push_back(e.to);
        adjacent[static_cast<size_t>(e.to)].push_back(e.from);
    }

    Mapping m;
    if (!place(m))
        return m;
    // Anneal, then check link capacities; residual congestion is
    // usually resolved by continuing the anneal from a new
    // temperature schedule.
    for (int attempt = 0; attempt < 5; attempt++) {
        anneal(m);
        applyAliases(m);
        placeNocNodes(m);
        if (route(m)) {
            m.success = true;
            return m;
        }
    }
    return m;
}

} // namespace

int
Mapping::positionOf(dfg::NodeId id) const
{
    int pe = peOf[static_cast<size_t>(id)];
    return pe >= 0 ? pe : routerOf[static_cast<size_t>(id)];
}

Mapping
mapGraph(const Graph &graph, const Fabric &fabric,
         const MapperOptions &options)
{
    MapperRun run(graph, fabric, options);
    return run.run();
}

} // namespace pipestitch::mapper
