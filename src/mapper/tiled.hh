/**
 * @file
 * Partition-then-place mapping for tiled fabrics.
 *
 * A fabric::Topology with more than one tile is mapped in two
 * stages: (1) partition the DFG across tiles — a deterministic
 * greedy growth over "units" (share groups and SyncPlane dispatch
 * groups are atomic) followed by cut-reducing refinement passes,
 * under per-tile PE-class and router-CF capacity; (2) place each
 * tile's induced subgraph with the existing portfolio anneal
 * (mapper::mapGraph), tiles running in parallel on
 * runner::ThreadPool. The merged global mapping is then re-routed
 * on the flattened grid, pricing tile-boundary links against
 * Topology::interTileCapacity (the same classifier PS-P06 lints
 * with) and interior links against the tile's linkCapacity.
 *
 * A 1×1 topology delegates straight to mapGraph, so the tiled entry
 * point is bit-identical to the legacy path when there is nothing
 * to partition.
 */

#ifndef PIPESTITCH_MAPPER_TILED_HH
#define PIPESTITCH_MAPPER_TILED_HH

#include <string>
#include <vector>

#include "mapper/mapper.hh"

namespace pipestitch::mapper {

struct TiledMapping
{
    bool success = false;
    std::string error;

    fabric::Topology topo;

    /** The merged whole-fabric placement (global grid indices),
     *  routed on the flattened grid. */
    Mapping merged;

    /** Node → tile index; -1 for the trigger (injected, unplaced). */
    std::vector<int> tileOf;

    /** Consumer edges whose producer and consumer sit on different
     *  tiles — each becomes a latency-N inter-tile channel in the
     *  simulator. */
    int64_t cutEdges = 0;

    /** Max circuit-switched routes over any tile-boundary link. */
    int interTileLoadMax = 0;

    /** Partition attempts consumed (retries reshuffle the greedy
     *  growth when a tile fails to place or boundary links
     *  overflow). */
    int attempts = 0;
};

/**
 * Map @p graph onto the tiled fabric described by @p topo.
 * @p options drives the per-tile anneals (rngSeed is re-derived per
 * tile; jobs parallelizes across tiles).
 */
TiledMapping mapGraphTiled(const dfg::Graph &graph,
                           const fabric::Topology &topo,
                           const MapperOptions &options =
                               MapperOptions{});

} // namespace pipestitch::mapper

#endif // PIPESTITCH_MAPPER_TILED_HH
