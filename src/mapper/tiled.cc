#include "mapper/tiled.hh"

#include <algorithm>
#include <future>
#include <map>
#include <numeric>

#include "base/logging.hh"
#include "mapper/routecost.hh"
#include "runner/pool.hh"

namespace pipestitch::mapper {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::NodeKind;
using fabric::Coord;
using fabric::Fabric;
using fabric::FabricConfig;
using fabric::Topology;

namespace {

/** Tiny union-find over node ids. */
struct UnionFind
{
    std::vector<int> parent;

    explicit UnionFind(int n) : parent(static_cast<size_t>(n))
    {
        std::iota(parent.begin(), parent.end(), 0);
    }

    int
    find(int a)
    {
        while (parent[static_cast<size_t>(a)] != a) {
            parent[static_cast<size_t>(a)] =
                parent[static_cast<size_t>(
                    parent[static_cast<size_t>(a)])];
            a = parent[static_cast<size_t>(a)];
        }
        return a;
    }

    void
    unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a != b)
            parent[static_cast<size_t>(std::max(a, b))] =
                std::min(a, b);
    }
};

/** A partition unit: nodes that must land on the same tile. */
struct Unit
{
    std::vector<NodeId> members;
    /** PE occupancy per class (share groups count once). */
    std::vector<int> classNeed = std::vector<int>(5, 0);
    int nocNeed = 0;     ///< CF-in-NoC router slots
    int placeable = 0;   ///< PE + router occupancy (balance metric)
};

struct TileUse
{
    std::vector<int> classUsed = std::vector<int>(5, 0);
    int nocUsed = 0;
    int nodes = 0; ///< placeable occupancy (balance metric)
};

bool
fits(const Unit &u, const TileUse &use, const std::vector<int> &cap,
     int nocCap)
{
    for (size_t c = 0; c < 5; c++) {
        if (use.classUsed[c] + u.classNeed[c] > cap[c])
            return false;
    }
    return use.nocUsed + u.nocNeed <= nocCap;
}

void
charge(const Unit &u, TileUse &use, int sign)
{
    for (size_t c = 0; c < 5; c++)
        use.classUsed[c] += sign * u.classNeed[c];
    use.nocUsed += sign * u.nocNeed;
    use.nodes += sign * u.placeable;
}

/** Global grid index of tile-local PE @p local on tile @p t. */
int
globalPe(const Topology &topo, int t, int local)
{
    Coord origin = {(t % topo.tilesX) * topo.tile.width,
                    (t / topo.tilesX) * topo.tile.height};
    int lx = local % topo.tile.width;
    int ly = local / topo.tile.width;
    return (origin.y + ly) * topo.totalWidth() + (origin.x + lx);
}

} // namespace

TiledMapping
mapGraphTiled(const Graph &graph, const Topology &topo,
              const MapperOptions &options)
{
    TiledMapping out;
    out.topo = topo;
    const int n = graph.size();
    out.tileOf.assign(static_cast<size_t>(n), 0);
    for (NodeId id = 0; id < n; id++) {
        if (graph.at(id).kind == NodeKind::Trigger)
            out.tileOf[static_cast<size_t>(id)] = -1;
    }

    if (topo.singleTile()) {
        // Nothing to partition: the tiled entry point is exactly the
        // legacy single-grid mapper.
        out.merged = mapGraph(graph, Fabric(topo.tile), options);
        out.success = out.merged.success;
        out.error = out.merged.error;
        return out;
    }

    std::string err;
    if (!topo.validate(&err)) {
        out.error = err;
        return out;
    }

    const int T = topo.numTiles();
    const Fabric tileFab(topo.tile);

    // Share-group representative (the mapper places only the rep).
    std::vector<NodeId> repOf(static_cast<size_t>(n));
    std::iota(repOf.begin(), repOf.end(), 0);
    for (const auto &group : options.shareGroups) {
        for (NodeId id : group)
            repOf[static_cast<size_t>(id)] = group.front();
    }

    // Units: share groups and SyncPlane dispatch groups are atomic
    // (the SyncPlane spans one tile's PE grid; a gate on a remote
    // tile could never join its group's agreement).
    UnionFind uf(n);
    for (const auto &group : options.shareGroups) {
        for (size_t i = 1; i < group.size(); i++)
            uf.unite(group[0], group[i]);
    }
    {
        std::map<int, NodeId> firstGate;
        for (NodeId id = 0; id < n; id++) {
            const Node &node = graph.at(id);
            if (node.kind != NodeKind::Dispatch)
                continue;
            auto [it, inserted] = firstGate.emplace(node.loopId, id);
            if (!inserted)
                uf.unite(it->second, id);
        }
    }

    std::vector<int> unitOf(static_cast<size_t>(n), -1);
    std::vector<Unit> units;
    {
        std::map<int, int> rootUnit;
        for (NodeId id = 0; id < n; id++) {
            if (graph.at(id).kind == NodeKind::Trigger)
                continue;
            int root = uf.find(id);
            auto [it, inserted] =
                rootUnit.emplace(root, static_cast<int>(units.size()));
            if (inserted)
                units.emplace_back();
            Unit &u = units[static_cast<size_t>(it->second)];
            u.members.push_back(id);
            unitOf[static_cast<size_t>(id)] = it->second;
            const Node &node = graph.at(id);
            if (node.cfInNoc) {
                u.nocNeed++;
                u.placeable++;
            } else if (repOf[static_cast<size_t>(id)] == id) {
                u.classNeed[static_cast<size_t>(node.peClass())]++;
                u.placeable++;
            }
        }
    }

    // Unit adjacency: wire edges between distinct units (weighted).
    std::vector<std::map<int, int>> adj(units.size());
    for (NodeId id = 0; id < n; id++) {
        const Node &node = graph.at(id);
        int uv = unitOf[static_cast<size_t>(id)];
        if (uv < 0)
            continue;
        for (const auto &op : node.inputs) {
            if (!op.isWire())
                continue;
            int up = unitOf[static_cast<size_t>(op.port.node)];
            if (up < 0 || up == uv)
                continue;
            adj[static_cast<size_t>(uv)][up]++;
            adj[static_cast<size_t>(up)][uv]++;
        }
    }

    // Greedy growth order: biggest units first (they constrain the
    // packing), ties by lowest member id for determinism.
    std::vector<int> order(units.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        const Unit &ua = units[static_cast<size_t>(a)];
        const Unit &ub = units[static_cast<size_t>(b)];
        if (ua.placeable != ub.placeable)
            return ua.placeable > ub.placeable;
        return ua.members.front() < ub.members.front();
    });

    std::vector<int> cap(5, 0);
    for (int c = 0; c < 5; c++) {
        cap[static_cast<size_t>(c)] = static_cast<int>(
            tileFab.pesOfClass(static_cast<dfg::PeClass>(c)).size());
    }
    const int nocCap =
        topo.tile.numPes() * topo.tile.routerCfCapacity;

    const int maxAttempts = 3;
    const double balanceWeights[maxAttempts] = {1.0, 2.5, 0.25};
    std::string lastError;

    for (int attempt = 0; attempt < maxAttempts; attempt++) {
        out.attempts = attempt + 1;
        const double bw = balanceWeights[attempt];

        // ---- Stage 1: partition ------------------------------------
        std::vector<int> tileOfUnit(units.size(), -1);
        std::vector<TileUse> use(static_cast<size_t>(T));
        bool partitioned = true;
        for (int u : order) {
            const Unit &unit = units[static_cast<size_t>(u)];
            int bestTile = -1;
            double bestScore = 0;
            for (int i = 0; i < T; i++) {
                // Rotating the probe order across attempts breaks
                // ties differently each retry.
                int t = (i + attempt) % T;
                if (!fits(unit, use[static_cast<size_t>(t)], cap,
                          nocCap))
                    continue;
                double conn = 0;
                for (const auto &[other, w] :
                     adj[static_cast<size_t>(u)]) {
                    if (tileOfUnit[static_cast<size_t>(other)] == t)
                        conn += w;
                }
                double score =
                    2.0 * conn -
                    bw * use[static_cast<size_t>(t)].nodes;
                if (bestTile < 0 || score > bestScore) {
                    bestTile = t;
                    bestScore = score;
                }
            }
            if (bestTile < 0) {
                lastError = csprintf(
                    "tiled partition: unit of %zu node(s) (first "
                    "node %d) fits no tile (%dx%d tiles of %dx%d)",
                    unit.members.size(), unit.members.front(),
                    topo.tilesX, topo.tilesY, topo.tile.width,
                    topo.tile.height);
                partitioned = false;
                break;
            }
            tileOfUnit[static_cast<size_t>(u)] = bestTile;
            charge(unit, use[static_cast<size_t>(bestTile)], +1);
        }
        if (!partitioned)
            continue;

        // Refinement: move units toward their neighbors while the
        // cut strictly shrinks and capacity allows.
        for (int pass = 0; pass < 4; pass++) {
            bool moved = false;
            for (int u : order) {
                const Unit &unit = units[static_cast<size_t>(u)];
                int cur = tileOfUnit[static_cast<size_t>(u)];
                std::vector<int> conn(static_cast<size_t>(T), 0);
                for (const auto &[other, w] :
                     adj[static_cast<size_t>(u)]) {
                    int t = tileOfUnit[static_cast<size_t>(other)];
                    if (t >= 0)
                        conn[static_cast<size_t>(t)] += w;
                }
                int bestTile = cur;
                int bestGain = 0;
                for (int t = 0; t < T; t++) {
                    if (t == cur)
                        continue;
                    int gain = conn[static_cast<size_t>(t)] -
                               conn[static_cast<size_t>(cur)];
                    if (gain <= bestGain)
                        continue;
                    if (!fits(unit, use[static_cast<size_t>(t)],
                              cap, nocCap))
                        continue;
                    bestTile = t;
                    bestGain = gain;
                }
                if (bestTile != cur) {
                    charge(unit, use[static_cast<size_t>(cur)], -1);
                    charge(unit, use[static_cast<size_t>(bestTile)],
                           +1);
                    tileOfUnit[static_cast<size_t>(u)] = bestTile;
                    moved = true;
                }
            }
            if (!moved)
                break;
        }

        std::vector<int> tileOf(static_cast<size_t>(n), -1);
        for (NodeId id = 0; id < n; id++) {
            int u = unitOf[static_cast<size_t>(id)];
            if (u >= 0)
                tileOf[static_cast<size_t>(id)] =
                    tileOfUnit[static_cast<size_t>(u)];
        }

        // ---- Stage 2: place every tile's induced subgraph ----------
        std::vector<std::vector<NodeId>> tileNodes(
            static_cast<size_t>(T));
        std::vector<int> localId(static_cast<size_t>(n), -1);
        for (NodeId id = 0; id < n; id++) {
            int t = tileOf[static_cast<size_t>(id)];
            if (t < 0)
                continue;
            localId[static_cast<size_t>(id)] = static_cast<int>(
                tileNodes[static_cast<size_t>(t)].size());
            tileNodes[static_cast<size_t>(t)].push_back(id);
        }

        auto mapTile = [&](int t) -> Mapping {
            const auto &nodes = tileNodes[static_cast<size_t>(t)];
            Graph sub(graph.name + csprintf("@tile%d", t));
            sub.numLoops = graph.numLoops;
            sub.loopParent = graph.loopParent;
            sub.loopThreaded = graph.loopThreaded;
            for (NodeId id : nodes) {
                Node node = graph.at(id);
                for (auto &op : node.inputs) {
                    if (!op.isWire())
                        continue;
                    NodeId prod = op.port.node;
                    if (tileOf[static_cast<size_t>(prod)] == t) {
                        op.port.node =
                            localId[static_cast<size_t>(prod)];
                    } else {
                        // Cross-tile (or trigger) edge: arrives via
                        // the inter-tile NoC, priced at merge time.
                        op = dfg::Operand::none();
                    }
                }
                sub.add(std::move(node));
            }
            sub.finalize();

            MapperOptions tileOpts = options;
            tileOpts.jobs = 1;
            tileOpts.rngSeed = options.rngSeed +
                               1000003ULL *
                                   static_cast<uint64_t>(t + 1) +
                               7919ULL *
                                   static_cast<uint64_t>(attempt);
            tileOpts.shareGroups.clear();
            for (const auto &group : options.shareGroups) {
                if (tileOf[static_cast<size_t>(group.front())] != t)
                    continue;
                std::vector<NodeId> local;
                for (NodeId id : group)
                    local.push_back(localId[static_cast<size_t>(id)]);
                tileOpts.shareGroups.push_back(std::move(local));
            }
            return mapGraph(sub, tileFab, tileOpts);
        };

        std::vector<Mapping> tileMaps(static_cast<size_t>(T));
        if (options.jobs != 1 && T > 1) {
            runner::ThreadPool pool(options.jobs);
            std::vector<std::future<Mapping>> futs;
            futs.reserve(static_cast<size_t>(T));
            for (int t = 0; t < T; t++)
                futs.push_back(
                    pool.submit([&, t] { return mapTile(t); }));
            for (int t = 0; t < T; t++)
                tileMaps[static_cast<size_t>(t)] =
                    futs[static_cast<size_t>(t)].get();
        } else {
            for (int t = 0; t < T; t++)
                tileMaps[static_cast<size_t>(t)] = mapTile(t);
        }

        bool placed = true;
        for (int t = 0; t < T; t++) {
            const Mapping &tm = tileMaps[static_cast<size_t>(t)];
            if (tileNodes[static_cast<size_t>(t)].empty() ||
                tm.success)
                continue;
            lastError = csprintf("tile %d: %s", t, tm.error.c_str());
            placed = false;
        }
        if (!placed)
            continue;

        // ---- Stage 3: merge and re-route globally ------------------
        Mapping m;
        m.peOf.assign(static_cast<size_t>(n), -1);
        m.routerOf.assign(static_cast<size_t>(n), -1);
        for (int t = 0; t < T; t++) {
            const Mapping &tm = tileMaps[static_cast<size_t>(t)];
            const auto &nodes = tileNodes[static_cast<size_t>(t)];
            for (size_t i = 0; i < nodes.size(); i++) {
                NodeId id = nodes[i];
                int pe = tm.peOf[i];
                int router = tm.routerOf[i];
                if (pe >= 0)
                    m.peOf[static_cast<size_t>(id)] =
                        globalPe(topo, t, pe);
                if (router >= 0)
                    m.routerOf[static_cast<size_t>(id)] =
                        globalPe(topo, t, router);
            }
        }

        const FabricConfig global = topo.globalConfig();
        const int W = global.width;
        auto posOf = [&](NodeId id) -> Coord {
            int p = m.peOf[static_cast<size_t>(id)];
            if (p < 0)
                p = m.routerOf[static_cast<size_t>(id)];
            if (p < 0)
                return {0, 0};
            return {p % W, p / W};
        };

        std::vector<int> load(routecost::linkCount(global), 0);
        routecost::ClaimScratch scratch;
        scratch.ensure(load.size());
        m.hopsOf.assign(static_cast<size_t>(n), {});
        int64_t totalHops = 0;
        int64_t edgeCount = 0;
        for (NodeId id = 0; id < n; id++) {
            m.hopsOf[static_cast<size_t>(id)].assign(
                static_cast<size_t>(graph.at(id).numInputs()), 0);
        }
        for (NodeId src = 0; src < n; src++) {
            const Node &node = graph.at(src);
            for (int port = 0; port < node.numOutputs(); port++) {
                routecost::traceTree(
                    graph, src, port, W, posOf, scratch,
                    [&](size_t l, const dfg::Consumer &) {
                        load[l]++;
                    },
                    [&](const dfg::Consumer &c, int hops) {
                        m.hopsOf[static_cast<size_t>(c.node)]
                                [static_cast<size_t>(c.inputIndex)] =
                            hops;
                        totalHops += hops;
                        edgeCount++;
                    });
            }
        }
        m.totalWireLength = totalHops;
        m.avgHops = edgeCount ? static_cast<double>(totalHops) /
                                    static_cast<double>(edgeCount)
                              : 0.0;
        m.maxLinkLoad = 0;
        m.congestionOverflow = 0;
        int boundaryMax = 0;
        for (size_t l = 0; l < load.size(); l++) {
            bool boundary = routecost::linkCrossesTile(topo, W, l);
            int capHere = boundary ? topo.interTileCapacity
                                   : topo.tile.linkCapacity;
            m.maxLinkLoad = std::max(m.maxLinkLoad, load[l]);
            m.congestionOverflow +=
                std::max(0, load[l] - capHere);
            if (boundary)
                boundaryMax = std::max(boundaryMax, load[l]);
        }
        m.cost = static_cast<double>(totalHops) +
                 options.congestionWeight *
                     static_cast<double>(m.congestionOverflow);
        if (m.congestionOverflow > 0) {
            lastError = csprintf(
                "tiled merge: %lld route(s) above capacity "
                "(inter-tile cap %d, link cap %d) after attempt %d",
                static_cast<long long>(m.congestionOverflow),
                topo.interTileCapacity, topo.tile.linkCapacity,
                attempt + 1);
            continue;
        }

        int64_t cut = 0;
        for (NodeId id = 0; id < n; id++) {
            const Node &node = graph.at(id);
            for (const auto &op : node.inputs) {
                if (!op.isWire())
                    continue;
                NodeId prod = op.port.node;
                int pt = tileOf[static_cast<size_t>(prod)];
                if (pt >= 0 &&
                    pt != tileOf[static_cast<size_t>(id)])
                    cut++;
            }
        }

        m.success = true;
        out.merged = std::move(m);
        out.tileOf = std::move(tileOf);
        out.cutEdges = cut;
        out.interTileLoadMax = boundaryMax;
        out.success = true;
        return out;
    }

    out.error = lastError.empty()
                    ? "tiled mapping failed"
                    : lastError;
    out.merged.error = out.error;
    return out;
}

} // namespace pipestitch::mapper
