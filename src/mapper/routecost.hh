/**
 * @file
 * Shared X-Y route/link-occupancy model for the circuit-switched
 * mesh NoC.
 *
 * Both the mapper's anneal objective (congestion term, final route)
 * and the analyzer's PS-P05 congestion lint trace distribution trees
 * through this one implementation, so the two can never disagree
 * about what a route costs. The model: dimension-ordered X-then-Y
 * paths; one multicast output claims each link of its tree exactly
 * once no matter how many consumers share the prefix.
 */

#ifndef PIPESTITCH_MAPPER_ROUTECOST_HH
#define PIPESTITCH_MAPPER_ROUTECOST_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dfg/graph.hh"
#include "fabric/fabric.hh"

namespace pipestitch::mapper::routecost {

/** Mesh link directions per router. */
constexpr int kLinkDirs = 4; // 0=+x 1=-x 2=+y 3=-y

inline size_t
linkIndex(int width, int x, int y, int dir)
{
    return static_cast<size_t>(((y * width) + x) * kLinkDirs + dir);
}

inline size_t
linkCount(const fabric::FabricConfig &cfg)
{
    return static_cast<size_t>(cfg.width * cfg.height * kLinkDirs);
}

inline fabric::Coord
linkCoord(int width, size_t link)
{
    int router = static_cast<int>(link) / kLinkDirs;
    return {router % width, router / width};
}

inline int
linkDir(size_t link)
{
    return static_cast<int>(link) % kLinkDirs;
}

inline const char *
linkDirName(int dir)
{
    static const char *names[kLinkDirs] = {"+x", "-x", "+y", "-y"};
    return names[dir];
}

/**
 * Per-tree link claiming without per-tree clears: a link is claimed
 * for the current tree iff its stamp equals the current epoch.
 * Reused across millions of anneal moves, so the O(links) reset
 * happens only on (rare) epoch wrap.
 */
struct ClaimScratch
{
    std::vector<uint32_t> stamp;
    uint32_t epoch = 0;

    void
    ensure(size_t links)
    {
        if (stamp.size() != links) {
            stamp.assign(links, 0);
            epoch = 0;
        }
    }

    void
    nextTree()
    {
        if (++epoch == 0) {
            std::fill(stamp.begin(), stamp.end(), 0u);
            epoch = 1;
        }
    }

    /** True the first time @p link is seen in the current tree. */
    bool
    claim(size_t link)
    {
        if (stamp[link] == epoch)
            return false;
        stamp[link] = epoch;
        return true;
    }
};

/**
 * Trace the multicast distribution tree of output (src, port).
 *
 * @p posOf maps a NodeId to its fabric::Coord. @p onLink(link,
 * consumer) fires once per distinct link in the tree, attributed to
 * the first consumer whose path crosses it; @p onEdge(consumer,
 * hops) fires once per consumer with its path length. Either
 * callback may be a no-op lambda.
 */
template <typename PosFn, typename LinkFn, typename EdgeFn>
inline void
traceTree(const dfg::Graph &graph, dfg::NodeId src, int port,
          int width, PosFn &&posOf, ClaimScratch &scratch,
          LinkFn &&onLink, EdgeFn &&onEdge)
{
    const auto &consumers = graph.consumersOf({src, port});
    if (consumers.empty())
        return;
    scratch.nextTree();
    fabric::Coord s = posOf(src);
    for (const dfg::Consumer &c : consumers) {
        fabric::Coord dst = posOf(c.node);
        int hops = 0;
        int x = s.x, y = s.y;
        auto step = [&](int dir) {
            size_t l = linkIndex(width, x, y, dir);
            if (scratch.claim(l))
                onLink(l, c);
        };
        while (x != dst.x) {
            step(dst.x > x ? 0 : 1);
            x += dst.x > x ? 1 : -1;
            hops++;
        }
        while (y != dst.y) {
            step(dst.y > y ? 2 : 3);
            y += dst.y > y ? 1 : -1;
            hops++;
        }
        onEdge(c, hops);
    }
}

/**
 * True iff @p link crosses a tile boundary of @p topo (laid out on
 * the flattened global grid of width @p width). Boundary links model
 * the inter-tile NoC: they have their own capacity
 * (Topology::interTileCapacity, checked by the tiled mapper's merge
 * pass and the PS-P06 lint) and latency (simulated as channels).
 */
inline bool
linkCrossesTile(const fabric::Topology &topo, int width, size_t link)
{
    if (topo.singleTile())
        return false;
    fabric::Coord c = linkCoord(width, link);
    int dir = linkDir(link);
    int nx = c.x + (dir == 0 ? 1 : dir == 1 ? -1 : 0);
    int ny = c.y + (dir == 2 ? 1 : dir == 3 ? -1 : 0);
    return nx / topo.tile.width != c.x / topo.tile.width ||
           ny / topo.tile.height != c.y / topo.tile.height;
}

/** Change in total overload when one link's load moves by ±1. */
inline int64_t
overflowDelta(int loadBefore, int capacity, int delta)
{
    int before = std::max(0, loadBefore - capacity);
    int after = std::max(0, loadBefore + delta - capacity);
    return after - before;
}

} // namespace pipestitch::mapper::routecost

#endif // PIPESTITCH_MAPPER_ROUTECOST_HH
