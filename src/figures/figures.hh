/**
 * @file
 * The paper's figures and tables as a library.
 *
 * Every evaluation figure (Figs. 1–21 and Table 1) is a pure render
 * function: it enqueues its simulations on a shared runner::Runner,
 * collects them in submission order, and returns the finished text.
 * The standalone bench binaries (bench/figNN_*.cc) and the
 * `pstool figures` suite both call the same functions, so their
 * outputs are identical byte for byte — and because collection
 * order is submission order, the text is independent of worker
 * count and cache state.
 *
 * A FigureSet is the shared context for one suite invocation: the
 * Table 1 kernel set, the DNN model, and memoized DNN inference
 * futures. Figures sharing a data point (e.g. Pipestitch at depth 4
 * appears in Figs. 13, 14, 15, 17, 18, 19) get one simulation via
 * the runner's run-level dedup. Render functions must be called
 * from the thread that owns the runner (they enqueue; see
 * runner/sweep.hh).
 */

#ifndef PIPESTITCH_FIGURES_FIGURES_HH
#define PIPESTITCH_FIGURES_FIGURES_HH

#include <cmath>
#include <future>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/system.hh"
#include "runner/sweep.hh"
#include "workloads/dnn.hh"

namespace pipestitch::figures {

/** Deterministic seed shared by every figure. */
constexpr uint64_t kSeed = 1;

inline double
geomean(const std::vector<double> &values)
{
    ps_assert(!values.empty(), "geomean of nothing");
    double logSum = 0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

struct FigureOptions
{
    /** Shrink kernels and the DNN for fast CI runs. */
    bool smoke = false;
};

class FigureSet
{
  public:
    explicit FigureSet(runner::Runner &runner,
                       const FigureOptions &options = {});

    runner::Runner &runner() { return owner; }
    const FigureOptions &options() const { return opts; }

    /** The six Table 1 kernels (smaller instances when smoke). */
    const std::vector<runner::KernelPtr> &kernels();

    /** Dither, SpSlice, SpMSpVd, SpMSpMd. */
    static bool isThreadedKernel(size_t index) { return index >= 2; }

    /** Enqueue one fabric run (the bench::run configuration). */
    std::shared_future<FabricRun>
    run(const runner::KernelPtr &kernel,
        compiler::ArchVariant variant, int bufferDepth = 4);

    /** Compile-only, on the pool, through the memo cache. */
    std::shared_future<compiler::CompileResult>
    compile(const runner::KernelPtr &kernel,
            compiler::ArchVariant variant);

    const workloads::DnnModel &dnn();

    /** One DNN inference on a CGRA variant; memoized per
     *  (variant, depth) so every figure shares one execution. */
    std::shared_future<workloads::DnnInference>
    dnnFabric(compiler::ArchVariant variant, int bufferDepth = 4);

    /** One DNN inference on a scalar profile; memoized by name. */
    const workloads::DnnInference &
    dnnScalar(const scalar::ScalarProfile &profile);

    /**
     * Enqueue the whole standard grid up front (every kernel on
     * every variant, the depth sweep, both DNN variants) so the
     * full suite runs at maximum concurrency instead of
     * figure-by-figure.
     */
    void prefetch();

  private:
    RunConfig runConfig(compiler::ArchVariant variant,
                        int bufferDepth) const;

    runner::Runner &owner;
    FigureOptions opts;
    std::vector<runner::KernelPtr> ks;
    std::optional<workloads::DnnModel> model;
    std::map<std::pair<int, int>,
             std::shared_future<workloads::DnnInference>>
        dnnRuns;
    std::map<std::string, workloads::DnnInference> dnnScalarRuns;
};

/** One renderable figure. */
struct Figure
{
    const char *id;    ///< e.g. "fig13"
    const char *title; ///< one line for listings
    std::string (*render)(FigureSet &);
};

/** All figures in paper order. */
const std::vector<Figure> &allFigures();

/** Lookup by id; null if unknown. */
const Figure *findFigure(const std::string &id);

} // namespace pipestitch::figures

#endif // PIPESTITCH_FIGURES_FIGURES_HH
