#include "figures/figures.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/table.hh"
#include "dfg/analysis.hh"
#include "energy/dvfs.hh"
#include "fabric/area.hh"
#include "harvest/harvest.hh"
#include "sim/stats.hh"
#include "workloads/kernels.hh"

namespace pipestitch::figures {

using compiler::ArchVariant;

FigureSet::FigureSet(runner::Runner &runner,
                     const FigureOptions &options)
    : owner(runner), opts(options)
{
}

const std::vector<runner::KernelPtr> &
FigureSet::kernels()
{
    if (ks.empty()) {
        auto built = opts.smoke ? workloads::smallKernels(kSeed)
                                : workloads::paperKernels(kSeed);
        for (auto &k : built)
            ks.push_back(runner::share(std::move(k)));
    }
    return ks;
}

RunConfig
FigureSet::runConfig(ArchVariant variant, int bufferDepth) const
{
    RunConfig cfg;
    cfg.variant = variant;
    cfg.sim.bufferDepth = bufferDepth;
    if (owner.options().memoize)
        cfg.cache = &const_cast<runner::Runner &>(owner).cache();
    if (owner.options().quietRuns)
        cfg.quiet = true;
    return cfg;
}

std::shared_future<FabricRun>
FigureSet::run(const runner::KernelPtr &kernel, ArchVariant variant,
               int bufferDepth)
{
    RunConfig cfg;
    cfg.variant = variant;
    cfg.sim.bufferDepth = bufferDepth;
    return owner.enqueue(kernel, cfg);
}

std::shared_future<compiler::CompileResult>
FigureSet::compile(const runner::KernelPtr &kernel,
                   ArchVariant variant)
{
    compiler::CompileOptions copts;
    copts.variant = variant;
    PipelineCache *cache =
        owner.options().memoize ? &owner.cache() : nullptr;
    return owner
        .submit([kernel, copts, cache] {
            compiler::CompileResult res;
            if (cache && cache->lookupCompile(*kernel, copts, res))
                return res;
            res = compiler::compileProgram(kernel->prog,
                                           kernel->liveIns, copts);
            if (cache)
                cache->storeCompile(*kernel, copts, res);
            return res;
        })
        .share();
}

const workloads::DnnModel &
FigureSet::dnn()
{
    if (!model) {
        workloads::DnnConfig cfg;
        if (opts.smoke) {
            cfg.dims = {128, 64, 32, 16, 10};
        }
        cfg.seed = kSeed;
        model = workloads::buildDnn(cfg);
    }
    return *model;
}

std::shared_future<workloads::DnnInference>
FigureSet::dnnFabric(ArchVariant variant, int bufferDepth)
{
    auto key = std::make_pair(static_cast<int>(variant),
                              bufferDepth);
    auto it = dnnRuns.find(key);
    if (it != dnnRuns.end())
        return it->second;
    // One pool job for the whole inference: its layer runs execute
    // serially inside the job (a nested enqueue could deadlock a
    // busy pool) but still share the stage cache.
    const workloads::DnnModel *m = &dnn();
    RunConfig cfg = runConfig(variant, bufferDepth);
    auto fut = owner
                   .submit([m, cfg] {
                       return workloads::runDnnOnFabric(*m, cfg);
                   })
                   .share();
    dnnRuns.emplace(key, fut);
    return fut;
}

const workloads::DnnInference &
FigureSet::dnnScalar(const scalar::ScalarProfile &profile)
{
    auto it = dnnScalarRuns.find(profile.name);
    if (it == dnnScalarRuns.end()) {
        it = dnnScalarRuns
                 .emplace(profile.name,
                          workloads::runDnnOnScalar(dnn(), profile))
                 .first;
    }
    return it->second;
}

void
FigureSet::prefetch()
{
    const auto &all = kernels();
    for (const auto &k : all) {
        for (auto v :
             {ArchVariant::RipTide, ArchVariant::Pipestitch,
              ArchVariant::PipeSB, ArchVariant::PipeCFiN,
              ArchVariant::PipeCFoP}) {
            run(k, v);
        }
    }
    for (size_t i = 0; i < all.size(); i++) {
        if (!isThreadedKernel(i))
            continue;
        run(all[i], ArchVariant::Pipestitch, 8);
        run(all[i], ArchVariant::Pipestitch, 16);
    }
    dnnFabric(ArchVariant::RipTide);
    dnnFabric(ArchVariant::Pipestitch);
}

namespace {

std::string
fig01(FigureSet &f)
{
    auto rip = f.dnnFabric(ArchVariant::RipTide);
    auto pipe = f.dnnFabric(ArchVariant::Pipestitch);
    const auto &m33 = f.dnnScalar(scalar::cortexM33Profile());
    auto ripRun = rip.get();
    auto pipeRun = pipe.get();

    harvest::Platform platforms[] = {
        {"Cortex-M33", m33.seconds, m33.energy.totalPj() * 1e-12},
        {"RipTide", ripRun.seconds,
         ripRun.energy.totalPj() * 1e-12},
        {"Pipestitch", pipeRun.seconds,
         pipeRun.energy.totalPj() * 1e-12},
    };

    std::string out =
        "Fig. 1: End-to-end inference rate vs harvested "
        "power\n\nPer-inference cost:\n";
    for (const auto &p : platforms) {
        out += csprintf("  %-11s T=%7.2f ms  E=%7.2f uJ  "
                        "peak=%6.1f Hz\n",
                        p.name, p.inferenceSeconds * 1e3,
                        p.inferenceJoules * 1e6,
                        1.0 / p.inferenceSeconds);
    }

    Table t({"Power (mW)", "Cortex-M33 (Hz)", "RipTide (Hz)",
             "Pipestitch (Hz)"});
    for (int step = 0; step <= 14; step++) {
        double mw = 0.1 * step;
        std::vector<std::string> row{Table::fmt(mw, 1)};
        for (const auto &p : platforms) {
            row.push_back(Table::fmt(
                harvest::endToEndRate(p, mw * 1e-3), 1));
        }
        t.addRow(row);
    }
    out += csprintf("\n%s\n", t.render().c_str());

    double ratio =
        (1.0 / pipeRun.seconds) / (1.0 / ripRun.seconds);
    out += csprintf(
        "Peak-rate gain Pipestitch/RipTide: %.2fx (paper: "
        "up to ~3x); Pipestitch converts energy to frames "
        "up to %.2f mW input power (paper: ~2 mW)\n",
        ratio,
        platforms[2].inferenceJoules /
            platforms[2].inferenceSeconds / 0.8 * 1e3);
    return out;
}

std::string
fig03(FigureSet &f)
{
    auto rip = f.dnnFabric(ArchVariant::RipTide);
    auto pipe = f.dnnFabric(ArchVariant::Pipestitch);
    const auto &m33 = f.dnnScalar(scalar::cortexM33Profile());
    auto ripRun = rip.get();
    auto pipeRun = pipe.get();

    harvest::Platform platforms[] = {
        {"Cortex-M33", m33.seconds, m33.energy.totalPj() * 1e-12},
        {"RipTide", ripRun.seconds,
         ripRun.energy.totalPj() * 1e-12},
        {"Pipestitch", pipeRun.seconds,
         pipeRun.energy.totalPj() * 1e-12},
    };

    Table t({"Rate (Hz)", "Cortex-M33 (y)", "RipTide (y)",
             "Pipestitch (y)"});
    const double rates[] = {0.5, 1,  2,  5,  10, 20,
                            30,  40, 60, 80, 100, 130};
    for (double rate : rates) {
        std::vector<std::string> row{Table::fmt(rate, 1)};
        for (const auto &p : platforms) {
            auto life = harvest::lifetimeYears(p, rate);
            row.push_back(life ? Table::fmt(*life, 2)
                               : std::string("wall"));
        }
        t.addRow(row);
    }

    std::string out =
        csprintf("Fig. 3: Lifetime on a D-cell vs inference rate\n"
                 "('wall' = rate beyond the platform's peak "
                 "performance)\n\n%s\n",
                 t.render().c_str());
    for (const auto &p : platforms) {
        out += csprintf("  %-11s performance wall at %6.1f Hz\n",
                        p.name, 1.0 / p.inferenceSeconds);
    }
    return out;
}

std::string
fig04(FigureSet &f)
{
    const auto &ks = f.kernels();
    std::vector<std::shared_future<FabricRun>> rips, pipes;
    for (size_t i = 2; i < ks.size(); i++) { // threaded kernels
        rips.push_back(f.run(ks[i], ArchVariant::RipTide));
        pipes.push_back(f.run(ks[i], ArchVariant::Pipestitch));
    }

    Table t({"Benchmark", "Target rate", "Rip f (MHz)",
             "Rip E (nJ)", "Pipe f (MHz)", "Pipe E (nJ)",
             "E saving"});
    const double nominal = 50.0;
    for (size_t i = 2; i < ks.size(); i++) {
        const auto &rip = rips[i - 2].get();
        const auto &pipe = pipes[i - 2].get();
        // Leakage power at nominal voltage in pJ/s.
        double ripLeak = (rip.area.totalUm2() * 1.2e-6) *
                         nominal * 1e6;
        double pipeLeak = (pipe.area.totalUm2() * 1.2e-6) *
                          nominal * 1e6;
        // Iso-throughput target: RipTide at its nominal rate.
        double target =
            1.0 / energy::secondsFor(rip.cycles(), nominal);
        auto ripPt = energy::scaleToRate(
            rip.cycles(), rip.energy.totalPj(), ripLeak, nominal,
            target);
        auto pipePt = energy::scaleToRate(
            pipe.cycles(), pipe.energy.totalPj(), pipeLeak,
            nominal, target);
        t.addRow({ks[i]->name, Table::fmt(target, 0) + " Hz",
                  Table::fmt(ripPt.freqMHz, 1),
                  Table::fmt(ripPt.energyPj / 1e3, 1),
                  Table::fmt(pipePt.freqMHz, 1),
                  Table::fmt(pipePt.energyPj / 1e3, 1),
                  Table::fmt((1.0 - pipePt.energyPj /
                                        ripPt.energyPj) *
                                 100.0,
                             0) +
                      "%"});
    }

    return csprintf(
        "Fig. 4: DVFS at iso-throughput (V scales with f; "
        "E_dyn scales with f^2)\n\n%s\n"
        "Pipestitch clocks down to match RipTide's rate, "
        "trading its cycle-count advantage for voltage "
        "(and energy) reduction.\n",
        t.render().c_str());
}

std::string
fig13(FigureSet &f)
{
    const auto &ks = f.kernels();
    std::vector<std::shared_future<FabricRun>> rips, pipes;
    for (const auto &k : ks) {
        rips.push_back(f.run(k, ArchVariant::RipTide));
        pipes.push_back(f.run(k, ArchVariant::Pipestitch));
    }
    auto dnnRipFut = f.dnnFabric(ArchVariant::RipTide);
    auto dnnPipeFut = f.dnnFabric(ArchVariant::Pipestitch);

    Table t({"Benchmark", "Scalar cyc", "RipTide cyc",
             "Pipestitch cyc", "RipTide x", "Pipestitch x",
             "Pipe/Rip"});
    std::vector<double> ratioAll, ratioThreaded;
    for (size_t i = 0; i < ks.size(); i++) {
        auto scalarRun = runOnScalar(*ks[i]);
        const auto &rip = rips[i].get();
        const auto &pipe = pipes[i].get();
        double su_r =
            scalarRun.cycles / static_cast<double>(rip.cycles());
        double su_p =
            scalarRun.cycles / static_cast<double>(pipe.cycles());
        double ratio = static_cast<double>(rip.cycles()) /
                       static_cast<double>(pipe.cycles());
        ratioAll.push_back(ratio);
        if (FigureSet::isThreadedKernel(i))
            ratioThreaded.push_back(ratio);
        t.addRow({ks[i]->name, Table::fmt(scalarRun.cycles, 0),
                  csprintf("%lld", (long long)rip.cycles()),
                  csprintf("%lld", (long long)pipe.cycles()),
                  Table::fmt(su_r, 2), Table::fmt(su_p, 2),
                  Table::fmt(ratio, 2)});
    }

    // Full application: the sparse DNN.
    const auto &dnnScalar =
        f.dnnScalar(scalar::riptideScalarProfile());
    auto dnnRip = dnnRipFut.get();
    auto dnnPipe = dnnPipeFut.get();
    double ratio = dnnRip.cycles / dnnPipe.cycles;
    ratioAll.push_back(ratio);
    ratioThreaded.push_back(ratio);
    t.addRow({"DNN", Table::fmt(dnnScalar.cycles, 0),
              Table::fmt(dnnRip.cycles, 0),
              Table::fmt(dnnPipe.cycles, 0),
              Table::fmt(dnnScalar.cycles / dnnRip.cycles, 2),
              Table::fmt(dnnScalar.cycles / dnnPipe.cycles, 2),
              Table::fmt(ratio, 2)});

    std::string out = csprintf(
        "Fig. 13: Speedup over scalar\n\n%s\n",
        t.render().c_str());
    out += csprintf(
        "Pipestitch over RipTide geomean: %.2fx all apps "
        "(paper: 2.55x), %.2fx threaded apps (paper: "
        "3.49x)\n",
        geomean(ratioAll), geomean(ratioThreaded));
    return out;
}

std::vector<std::string>
fig14Row(const std::string &bench, const std::string &system,
         const energy::EnergyBreakdown &e, double scalarTotal)
{
    return {bench,
            system,
            Table::fmt(e.totalPj() / scalarTotal, 3),
            Table::fmt(e.cgraPj / scalarTotal, 3),
            Table::fmt(e.memPj / scalarTotal, 3),
            Table::fmt(e.scalarPj / scalarTotal, 3),
            Table::fmt(e.otherPj / scalarTotal, 3)};
}

std::string
fig14(FigureSet &f)
{
    const auto &ks = f.kernels();
    std::vector<std::shared_future<FabricRun>> rips, pipes;
    for (const auto &k : ks) {
        rips.push_back(f.run(k, ArchVariant::RipTide));
        pipes.push_back(f.run(k, ArchVariant::Pipestitch));
    }
    auto dnnRipFut = f.dnnFabric(ArchVariant::RipTide);
    auto dnnPipeFut = f.dnnFabric(ArchVariant::Pipestitch);

    Table t({"Benchmark", "System", "Total", "CGRA", "Memory",
             "Scalar", "Other"});
    std::vector<double> ratioAll, ratioThreaded;
    for (size_t i = 0; i < ks.size(); i++) {
        auto scalarRun = runOnScalar(*ks[i]);
        double base = scalarRun.energy.totalPj();
        const auto &rip = rips[i].get();
        const auto &pipe = pipes[i].get();
        t.addRow(
            fig14Row(ks[i]->name, "Scalar", scalarRun.energy, base));
        t.addRow(fig14Row("", "RipTide", rip.energy, base));
        t.addRow(fig14Row("", "Pipestitch", pipe.energy, base));
        double ratio =
            pipe.energy.totalPj() / rip.energy.totalPj();
        ratioAll.push_back(ratio);
        if (FigureSet::isThreadedKernel(i))
            ratioThreaded.push_back(ratio);
    }

    const auto &dnnScalar =
        f.dnnScalar(scalar::riptideScalarProfile());
    double base = dnnScalar.energy.totalPj();
    auto dnnRip = dnnRipFut.get();
    auto dnnPipe = dnnPipeFut.get();
    t.addRow(fig14Row("DNN", "Scalar", dnnScalar.energy, base));
    t.addRow(fig14Row("", "RipTide", dnnRip.energy, base));
    t.addRow(fig14Row("", "Pipestitch", dnnPipe.energy, base));
    double dnnRatio =
        dnnPipe.energy.totalPj() / dnnRip.energy.totalPj();
    ratioAll.push_back(dnnRatio);
    ratioThreaded.push_back(dnnRatio);

    std::string out = csprintf(
        "Fig. 14: Energy normalized to scalar\n\n%s\n",
        t.render().c_str());
    out += csprintf(
        "Pipestitch over RipTide energy geomean: %.3fx all "
        "apps (paper: 1.11x), %.3fx threaded apps (paper: "
        "1.05x)\n",
        geomean(ratioAll), geomean(ratioThreaded));
    return out;
}

std::string
fig15(FigureSet &f)
{
    const auto &ks = f.kernels();
    std::vector<std::shared_future<FabricRun>> rips, pipes;
    for (const auto &k : ks) {
        rips.push_back(f.run(k, ArchVariant::RipTide));
        pipes.push_back(f.run(k, ArchVariant::Pipestitch));
    }
    auto dnnRipFut = f.dnnFabric(ArchVariant::RipTide);
    auto dnnPipeFut = f.dnnFabric(ArchVariant::Pipestitch);

    Table t({"Benchmark", "RipTide EDP", "Pipestitch EDP",
             "Pipe/Rip", "EDP gain"});
    std::vector<double> gains;
    for (size_t i = 0; i < ks.size(); i++) {
        const auto &rip = rips[i].get();
        const auto &pipe = pipes[i].get();
        double ratio = pipe.edp / rip.edp;
        if (FigureSet::isThreadedKernel(i))
            gains.push_back(1.0 / ratio);
        t.addRow({ks[i]->name, csprintf("%.3g pJ*s", rip.edp),
                  csprintf("%.3g pJ*s", pipe.edp),
                  Table::fmt(ratio, 3),
                  Table::fmt(1.0 / ratio, 2) + "x"});
    }

    auto dnnRip = dnnRipFut.get();
    auto dnnPipe = dnnPipeFut.get();
    double ripEdp = dnnRip.energy.totalPj() * dnnRip.seconds;
    double pipeEdp = dnnPipe.energy.totalPj() * dnnPipe.seconds;
    gains.push_back(ripEdp / pipeEdp);
    t.addRow({"DNN", csprintf("%.3g pJ*s", ripEdp),
              csprintf("%.3g pJ*s", pipeEdp),
              Table::fmt(pipeEdp / ripEdp, 3),
              Table::fmt(ripEdp / pipeEdp, 2) + "x"});

    return csprintf(
        "Fig. 15: EDP normalized to RipTide\n\n%s\n"
        "Threaded-app EDP improvement geomean: %.2fx (paper: "
        "2.29x)\n",
        t.render().c_str(), geomean(gains));
}

std::string
fig16(FigureSet &)
{
    fabric::Fabric fab;
    auto pipe =
        fabric::computeArea(fab, fabric::AreaVariant::Pipestitch);
    auto rip =
        fabric::computeArea(fab, fabric::AreaVariant::RipTide);

    std::string out =
        csprintf("Fig. 16: Pipestitch area breakdown\n\n%s\n",
                 pipe.table().c_str());
    out += csprintf("RipTide baseline breakdown\n\n%s\n",
                    rip.table().c_str());

    double pipeFabric = pipe.peUm2 + pipe.nocUm2;
    double ripFabric = rip.peUm2 + rip.nocUm2;
    out += csprintf(
        "Fabric area: Pipestitch %.3f mm^2 vs RipTide %.3f "
        "mm^2 -> %.2fx (paper: 1.10x)\n",
        pipeFabric / 1e6, ripFabric / 1e6,
        pipeFabric / ripFabric);
    out += csprintf(
        "Total Pipestitch system: %.2f mm^2 (paper: ~1.0 "
        "mm^2)\n",
        pipe.totalMm2());

    // Buffer-depth area sensitivity (the Fig. 20 tradeoff's cost).
    Table t({"Buffer depth", "Fabric mm^2", "vs depth 4"});
    double base = 0;
    for (int depth : {4, 8, 16}) {
        auto a = fabric::computeArea(
            fab, fabric::AreaVariant::Pipestitch, depth);
        double fa = (a.peUm2 + a.nocUm2) / 1e6;
        if (depth == 4)
            base = fa;
        t.addRow({csprintf("%d", depth), Table::fmt(fa, 3),
                  Table::fmt(fa / base, 2) + "x"});
    }
    out += csprintf("\nBuffering area sensitivity\n\n%s",
                    t.render().c_str());
    return out;
}

std::string
fig17(FigureSet &f)
{
    const auto &ks = f.kernels();
    std::vector<std::shared_future<FabricRun>> rips, pipes;
    for (const auto &k : ks) {
        rips.push_back(f.run(k, ArchVariant::RipTide));
        pipes.push_back(f.run(k, ArchVariant::Pipestitch));
    }

    Table t({"Benchmark", "RipTide IPC", "Pipestitch IPC", "Gain"});
    std::vector<double> gainsAll, gainsThreaded;
    for (size_t i = 0; i < ks.size(); i++) {
        const auto &rip = rips[i].get();
        const auto &pipe = pipes[i].get();
        double gain = pipe.sim.stats.ipc() / rip.sim.stats.ipc();
        gainsAll.push_back(gain);
        if (FigureSet::isThreadedKernel(i))
            gainsThreaded.push_back(gain);
        t.addRow({ks[i]->name, Table::fmt(rip.sim.stats.ipc(), 2),
                  Table::fmt(pipe.sim.stats.ipc(), 2),
                  Table::fmt(gain, 2) + "x"});
    }

    std::string out = csprintf(
        "Fig. 17: IPC across kernels\n\n%s\n", t.render().c_str());
    out += csprintf(
        "IPC gain geomean: %.2fx all kernels (paper: "
        "2.80x incl. DNN), %.2fx threaded (paper: 4.30x)\n",
        geomean(gainsAll), geomean(gainsThreaded));
    return out;
}

std::string
fig18(FigureSet &f)
{
    const auto &ks = f.kernels();
    std::vector<std::shared_future<FabricRun>> rips, pipes;
    for (const auto &k : ks) {
        rips.push_back(f.run(k, ArchVariant::RipTide));
        pipes.push_back(f.run(k, ArchVariant::Pipestitch));
    }

    Table t({"Benchmark", "System", "Inner/unit", "Outer/unit",
             "Inner PEs", "Outer PEs"});
    std::vector<double> innerGain, outerGain;
    for (size_t i = 0; i < ks.size(); i++) {
        const auto &rip = rips[i].get();
        const auto &pipe = pipes[i].get();
        auto ripIpc =
            sim::computeLoopIpc(rip.compiled.graph, rip.sim.stats);
        auto pipeIpc = sim::computeLoopIpc(pipe.compiled.graph,
                                           pipe.sim.stats);
        t.addRow({ks[i]->name, "RipTide",
                  Table::fmt(ripIpc.innerPerUnit, 3),
                  Table::fmt(ripIpc.outerPerUnit, 3),
                  csprintf("%d", ripIpc.innerPes),
                  csprintf("%d", ripIpc.outerPes)});
        t.addRow({"", "Pipestitch",
                  Table::fmt(pipeIpc.innerPerUnit, 3),
                  Table::fmt(pipeIpc.outerPerUnit, 3),
                  csprintf("%d", pipeIpc.innerPes),
                  csprintf("%d", pipeIpc.outerPes)});
        if (FigureSet::isThreadedKernel(i)) {
            if (ripIpc.innerPerUnit > 0)
                innerGain.push_back(pipeIpc.innerPerUnit /
                                    ripIpc.innerPerUnit);
            if (ripIpc.outerPerUnit > 0)
                outerGain.push_back(pipeIpc.outerPerUnit /
                                    ripIpc.outerPerUnit);
        }
    }

    std::string out = csprintf(
        "Fig. 18: Per-unit IPC, inner vs outer loops\n\n%s\n",
        t.render().c_str());
    out += csprintf(
        "Threaded-kernel per-unit IPC gain geomean: inner "
        "%.2fx (paper: 3.62x), outer %.2fx (paper: 3.51x)\n",
        geomean(innerGain), geomean(outerGain));
    return out;
}

std::string
fig19(FigureSet &f)
{
    const auto &ks = f.kernels();
    std::vector<std::shared_future<FabricRun>> rips, sbs, cfins,
        cfops;
    for (const auto &k : ks) {
        rips.push_back(f.run(k, ArchVariant::RipTide));
        sbs.push_back(f.run(k, ArchVariant::PipeSB));
        cfins.push_back(f.run(k, ArchVariant::PipeCFiN));
        cfops.push_back(f.run(k, ArchVariant::PipeCFoP));
    }

    Table t({"Benchmark", "RipTide", "PipeSB", "PipeCFiN",
             "PipeCFoP"});
    std::vector<double> sbVsDest, sbVsRip;
    for (size_t i = 0; i < ks.size(); i++) {
        double rip = static_cast<double>(rips[i].get().cycles());
        double sb = static_cast<double>(sbs[i].get().cycles());
        double cfin = static_cast<double>(cfins[i].get().cycles());
        double cfop = static_cast<double>(cfops[i].get().cycles());
        sbVsDest.push_back(sb / std::min(cfin, cfop));
        sbVsRip.push_back(sb / rip);
        t.addRow({ks[i]->name, "1.00", Table::fmt(sb / rip, 2),
                  Table::fmt(cfin / rip, 2),
                  Table::fmt(cfop / rip, 2)});
    }

    std::string out = csprintf(
        "Fig. 19: Normalized time (RipTide = 1.00, lower "
        "is better)\n\n%s\n",
        t.render().c_str());
    out += csprintf(
        "Source buffering costs %.2fx geomean vs the best "
        "destination-buffered config (the Fig. 12 multicast "
        "hold).\n"
        "PipeSB vs RipTide geomean: %.2fx (paper: 1.13x slowdown; "
        "our PipeSB keeps more of the threading win on the "
        "sparse-sparse kernels, but shows the same Dither-style "
        "inversions where source buffering erases threading "
        "entirely).\n",
        geomean(sbVsDest), geomean(sbVsRip));
    return out;
}

std::string
fig20(FigureSet &f)
{
    const auto &ks = f.kernels();
    std::vector<std::shared_future<FabricRun>> d4, d8, d16;
    for (size_t i = 2; i < ks.size(); i++) { // threaded kernels
        d4.push_back(f.run(ks[i], ArchVariant::Pipestitch, 4));
        d8.push_back(f.run(ks[i], ArchVariant::Pipestitch, 8));
        d16.push_back(f.run(ks[i], ArchVariant::Pipestitch, 16));
    }

    Table t({"Benchmark", "Depth 4", "Depth 8", "Depth 16"});
    for (size_t i = 2; i < ks.size(); i++) {
        double base =
            static_cast<double>(d4[i - 2].get().cycles());
        double c8 = static_cast<double>(d8[i - 2].get().cycles());
        double c16 =
            static_cast<double>(d16[i - 2].get().cycles());
        t.addRow({ks[i]->name, "1.00", Table::fmt(base / c8, 2),
                  Table::fmt(base / c16, 2)});
    }

    return csprintf("Fig. 20: Speedup vs buffer depth (threaded "
                    "kernels, depth 4 = 1.00)\n\n%s",
                    t.render().c_str());
}

struct PeCounts
{
    int mem = 0, stream = 0, arith = 0, cf = 0, dispatch = 0;

    int
    total() const
    {
        return mem + stream + arith + cf + dispatch;
    }
};

PeCounts
countPes(const dfg::Graph &g)
{
    PeCounts c;
    for (const auto &n : g.nodes) {
        if (n.cfInNoc || n.kind == dfg::NodeKind::Trigger)
            continue; // in-NoC ops and the start signal use no PE
        switch (n.peClass()) {
          case dfg::PeClass::Memory: c.mem++; break;
          case dfg::PeClass::Stream: c.stream++; break;
          case dfg::PeClass::Arith:
          case dfg::PeClass::Multiplier: c.arith++; break;
          case dfg::PeClass::ControlFlow:
            if (n.kind == dfg::NodeKind::Dispatch)
                c.dispatch++;
            else
                c.cf++;
            break;
        }
    }
    return c;
}

std::string
fig21(FigureSet &f)
{
    const auto &ks = f.kernels();
    std::vector<std::shared_future<compiler::CompileResult>> rips,
        cfins, cfops;
    for (const auto &k : ks) {
        rips.push_back(f.compile(k, ArchVariant::RipTide));
        cfins.push_back(f.compile(k, ArchVariant::PipeCFiN));
        cfops.push_back(f.compile(k, ArchVariant::PipeCFoP));
    }

    Table t({"Benchmark", "Config", "Mem", "Stream", "Arith",
             "CF (no disp)", "Dispatch", "Total PEs"});
    std::vector<double> cfinInc, cfopInc;
    for (size_t i = 0; i < ks.size(); i++) {
        PeCounts rip = countPes(rips[i].get().graph);
        PeCounts cfin = countPes(cfins[i].get().graph);
        PeCounts cfop = countPes(cfops[i].get().graph);
        auto add = [&](const char *name, const char *cfg,
                       const PeCounts &c) {
            t.addRow({name, cfg, csprintf("%d", c.mem),
                      csprintf("%d", c.stream),
                      csprintf("%d", c.arith), csprintf("%d", c.cf),
                      csprintf("%d", c.dispatch),
                      csprintf("%d", c.total())});
        };
        add(ks[i]->name.c_str(), "RipTide", rip);
        add("", "PipeCFiN", cfin);
        add("", "PipeCFoP", cfop);
        if (FigureSet::isThreadedKernel(i)) {
            cfinInc.push_back(static_cast<double>(cfin.total()) /
                              rip.total());
            cfopInc.push_back(static_cast<double>(cfop.total()) /
                              rip.total());
        }
    }

    std::string out = csprintf(
        "Fig. 21: Generated-PE counts\n\n%s\n", t.render().c_str());
    out += csprintf(
        "Threaded kernels, PE-count increase over RipTide "
        "(geomean): PipeCFiN %.0f%% (paper: +28%%), "
        "PipeCFoP %.0f%% (paper: +70%%)\n",
        (geomean(cfinInc) - 1.0) * 100.0,
        (geomean(cfopInc) - 1.0) * 100.0);
    return out;
}

std::string
table1(FigureSet &f)
{
    const auto &ks = f.kernels();
    std::vector<std::shared_future<compiler::CompileResult>>
        compiles;
    for (const auto &k : ks)
        compiles.push_back(f.compile(k, ArchVariant::Pipestitch));

    struct RowInfo
    {
        const char *input;
        const char *sparsity;
    };
    static const RowInfo paperInfo[] = {
        {"64 x 64", "-"},
        {"64 x 64", "0.90"},
        {"128 x 128", "-"},
        {"64 x 64", "0.89"},
        {"128 x 128", "0.90 (matrix & vector)"},
        {"64 x 64", "0.89 (both matrices)"},
    };
    static const RowInfo smokeInfo[] = {
        {"8 x 8", "-"},
        {"16 x 16", "0.80"},
        {"16 x 8", "-"},
        {"16 x 16", "0.80"},
        {"16 x 16", "0.80 (matrix & vector)"},
        {"8 x 8", "0.80 (both matrices)"},
    };
    const RowInfo *info =
        f.options().smoke ? smokeInfo : paperInfo;

    Table t({"Benchmark", "Input size", "Sparsity", "Threaded?",
             "Inner II"});
    for (size_t i = 0; i < ks.size(); i++) {
        auto res = compiles[i].get();
        // The heuristic's quantity: II of the innermost loop(s).
        int maxII = 0;
        auto inner = dfg::innermostLoops(res.graph);
        for (int loop : inner) {
            maxII = std::max(
                maxII, std::max(1, res.loopII[
                                       static_cast<size_t>(loop)]));
        }
        t.addRow({ks[i]->name, info[i].input, info[i].sparsity,
                  res.threaded ? "yes" : "no",
                  csprintf("%d", maxII)});
    }

    const auto &model = f.dnn();
    double minSp = model.config.weightSparsity[0];
    double maxSp = minSp;
    for (double s : model.config.weightSparsity) {
        minSp = std::min(minSp, s);
        maxSp = std::max(maxSp, s);
    }
    t.addRow({"DNN", csprintf("%d input", model.config.dims[0]),
              csprintf("%.2f - %.2f (%zu layers)", minSp, maxSp,
                       model.config.weightSparsity.size()),
              "yes",
              csprintf("(footprint %lld kB)",
                       static_cast<long long>(
                           model.footprintBytes() / 1024))});

    return csprintf("Table 1: Benchmark parameters\n\n%s\n",
                    t.render().c_str());
}

} // namespace

const std::vector<Figure> &
allFigures()
{
    static const std::vector<Figure> figures = {
        {"fig01", "End-to-end inference rate vs harvested power",
         fig01},
        {"fig03", "Lifetime on a D-cell battery vs inference rate",
         fig03},
        {"fig04", "DVFS at iso-throughput", fig04},
        {"fig13", "Speedup over the scalar core", fig13},
        {"fig14", "Energy normalized to scalar", fig14},
        {"fig15", "EDP normalized to RipTide", fig15},
        {"fig16", "Area breakdown", fig16},
        {"fig17", "IPC across kernels", fig17},
        {"fig18", "Per-unit IPC, inner vs outer loops", fig18},
        {"fig19", "Buffering/CF-placement ablations", fig19},
        {"fig20", "Speedup vs buffer depth", fig20},
        {"fig21", "Generated-PE counts", fig21},
        {"table1", "Benchmark parameters", table1},
    };
    return figures;
}

const Figure *
findFigure(const std::string &id)
{
    for (const Figure &f : allFigures()) {
        if (id == f.id)
            return &f;
    }
    return nullptr;
}

} // namespace pipestitch::figures
