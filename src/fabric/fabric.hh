/**
 * @file
 * CGRA fabric description: the 8×8 grid of heterogeneous PEs with
 * the paper's PE mix (16 arith, 2 multiply, 28 control-flow,
 * 14 memory, 4 stream — Sec. 5.1), plus the NoC topology used by
 * the mapper.
 */

#ifndef PIPESTITCH_FABRIC_FABRIC_HH
#define PIPESTITCH_FABRIC_FABRIC_HH

#include <string>
#include <vector>

#include "dfg/node.hh"

namespace pipestitch::fabric {

using dfg::PeClass;

/** Grid coordinates. */
struct Coord
{
    int x = 0;
    int y = 0;

    bool operator==(const Coord &other) const = default;
};

/** Manhattan distance (the NoC is a 2-D mesh). */
int manhattan(Coord a, Coord b);

struct FabricConfig
{
    int width = 8;
    int height = 8;

    /** PE count per dfg::PeClass (Arith, Mult, CF, Mem, Stream). */
    std::vector<int> peMix = {16, 2, 28, 14, 4};

    /** Control-flow ops one router can absorb (CF-in-NoC). */
    int routerCfCapacity = 2;

    /** Wires per mesh link direction (routing capacity). The
     *  statically-routed NoC must fit all circuit-switched routes;
     *  8 channels absorb the CF-in-NoC hotspots of the largest
     *  kernels (SpMSpMd). */
    int linkCapacity = 8;

    /** Scratchpad size (bytes) and banking. */
    int64_t memBytes = 256 * 1024;
    int memBanks = 16;

    double clockMHz = 50.0;

    int numPes() const { return width * height; }
};

/**
 * A concrete fabric: PE classes assigned to grid positions.
 *
 * Memory PEs sit on the left columns (near the SRAM macros), stream
 * and multiply PEs are distributed, and the rest of the grid
 * alternates arith and control-flow PEs — mirroring the floorplan
 * style of RipTide-class fabrics.
 */
class Fabric
{
  public:
    explicit Fabric(const FabricConfig &config = FabricConfig{});

    const FabricConfig &config() const { return cfg; }

    int numPes() const { return cfg.numPes(); }

    PeClass classAt(int pe) const;
    Coord coordOf(int pe) const;
    int peAt(Coord c) const;

    /** All PE indices of one class. */
    const std::vector<int> &pesOfClass(PeClass c) const;

    std::string describe() const;

  private:
    FabricConfig cfg;
    std::vector<PeClass> classes;               // per PE
    std::vector<std::vector<int>> byClass;      // per PeClass
};

} // namespace pipestitch::fabric

#endif // PIPESTITCH_FABRIC_FABRIC_HH
