/**
 * @file
 * CGRA fabric description: the 8×8 grid of heterogeneous PEs with
 * the paper's PE mix (16 arith, 2 multiply, 28 control-flow,
 * 14 memory, 4 stream — Sec. 5.1), plus the NoC topology used by
 * the mapper.
 *
 * The fabric generalizes from one monolithic grid to a *grid of
 * tiles* (fabric::Topology): TX×TY identical tiles, each a
 * FabricConfig, stitched by inter-tile links with their own
 * capacity and latency. A 1×1 topology is exactly the legacy
 * single-grid fabric — same layout, same PE indices, same stats.
 */

#ifndef PIPESTITCH_FABRIC_FABRIC_HH
#define PIPESTITCH_FABRIC_FABRIC_HH

#include <string>
#include <vector>

#include "dfg/node.hh"

namespace pipestitch::fabric {

using dfg::PeClass;

/** Grid coordinates. */
struct Coord
{
    int x = 0;
    int y = 0;

    bool operator==(const Coord &other) const = default;
};

/** Manhattan distance (the NoC is a 2-D mesh). */
int manhattan(Coord a, Coord b);

struct FabricConfig
{
    int width = 8;
    int height = 8;

    /** PE count per dfg::PeClass (Arith, Mult, CF, Mem, Stream). */
    std::vector<int> peMix = {16, 2, 28, 14, 4};

    /** Control-flow ops one router can absorb (CF-in-NoC). */
    int routerCfCapacity = 2;

    /** Wires per mesh link direction (routing capacity). The
     *  statically-routed NoC must fit all circuit-switched routes;
     *  8 channels absorb the CF-in-NoC hotspots of the largest
     *  kernels (SpMSpMd). */
    int linkCapacity = 8;

    /** Scratchpad size (bytes) and banking. */
    int64_t memBytes = 256 * 1024;
    int memBanks = 16;

    double clockMHz = 50.0;

    int numPes() const { return width * height; }

    /** Structural validation: positive dimensions/capacities and a
     *  peMix of exactly 5 entries summing to width*height. Returns
     *  false and fills @p error with a structured message on the
     *  first violation. */
    bool validate(std::string *error = nullptr) const;

    bool operator==(const FabricConfig &other) const = default;
};

/** Scale the default 8×8 PE mix to a w×h grid by largest-remainder
 *  apportionment (ties go to the lower class index). Exact for 8×8:
 *  returns the paper's {16, 2, 28, 14, 4}. */
std::vector<int> scaleMixFor(int width, int height);

/**
 * A grid of tiles: tilesX × tilesY replicas of one per-tile
 * FabricConfig, joined by inter-tile links. Inter-tile links are
 * wider-reach but slower — crossing a tile boundary costs
 * interTileLatency cycles and each boundary link carries at most
 * interTileCapacity circuit-switched routes.
 */
struct Topology
{
    FabricConfig tile;
    int tilesX = 1;
    int tilesY = 1;

    /** Cycles a token spends crossing a tile boundary. */
    int interTileLatency = 4;

    /** Circuit-switched routes one boundary link can carry. */
    int interTileCapacity = 4;

    int numTiles() const { return tilesX * tilesY; }
    bool singleTile() const { return numTiles() == 1; }

    int totalWidth() const { return tile.width * tilesX; }
    int totalHeight() const { return tile.height * tilesY; }

    /** The flattened whole-fabric config: one grid covering every
     *  tile (peMix/memBytes/memBanks scaled by numTiles). For a 1×1
     *  topology this is exactly the tile config. */
    FabricConfig globalConfig() const;

    /** Tile and global validation in one pass. */
    bool validate(std::string *error = nullptr) const;

    bool operator==(const Topology &other) const = default;
};

/**
 * Parse a fabric spec string shared by every pstool subcommand:
 *
 *   WxH[,tiles=TXxTY][,cap=N][,lat=N][,mix=a:m:c:me:s]
 *
 * e.g. "8x8", "4x4,tiles=2x2", "8x8,tiles=1x2,cap=2,lat=8",
 * "4x4,mix=4:1:7:3:1". Omitted peMix is scaled from the paper's 8×8
 * mix via scaleMixFor. Returns false with a structured @p error on
 * malformed input or failed validation.
 */
bool parseFabricSpec(const std::string &spec, Topology &out,
                     std::string *error);

/**
 * A concrete fabric: PE classes assigned to grid positions.
 *
 * Memory PEs sit on the left columns (near the SRAM macros), stream
 * and multiply PEs are distributed, and the rest of the grid
 * alternates arith and control-flow PEs — mirroring the floorplan
 * style of RipTide-class fabrics. A tiled fabric replicates the
 * single-tile layout into every tile, so each tile is floorplanned
 * identically.
 */
class Fabric
{
  public:
    explicit Fabric(const FabricConfig &config = FabricConfig{});
    explicit Fabric(const Topology &topology);

    /** The flattened whole-fabric config (tiles merged). */
    const FabricConfig &config() const { return cfg; }

    const Topology &topology() const { return topo; }

    int numPes() const { return cfg.numPes(); }

    PeClass classAt(int pe) const;
    Coord coordOf(int pe) const;
    int peAt(Coord c) const;

    /** Tile index (row-major over the tile grid) owning @p pe. */
    int tileOfPe(int pe) const;

    /** Grid coordinate of tile @p t's origin (lower-left PE). */
    Coord tileOrigin(int t) const;

    /** All PE indices of one class. */
    const std::vector<int> &pesOfClass(PeClass c) const;

    std::string describe() const;

  private:
    static std::vector<PeClass>
    layoutClasses(const FabricConfig &config);

    Topology topo;                              // tile structure
    FabricConfig cfg;                           // flattened grid
    std::vector<PeClass> classes;               // per PE
    std::vector<std::vector<int>> byClass;      // per PeClass
};

} // namespace pipestitch::fabric

#endif // PIPESTITCH_FABRIC_FABRIC_HH
