#include "fabric/fabric.hh"

#include <cstdlib>
#include <sstream>

#include "base/logging.hh"

namespace pipestitch::fabric {

int
manhattan(Coord a, Coord b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

Fabric::Fabric(const FabricConfig &config) : cfg(config)
{
    int total = 0;
    for (int c : cfg.peMix)
        total += c;
    ps_assert(total == cfg.numPes(),
              "PE mix sums to %d but the grid has %d positions",
              total, cfg.numPes());

    // Lay out the fabric: memory PEs fill the left columns (adjacent
    // to the SRAM banks), stream PEs take the top-right corner, the
    // two multipliers sit centrally, and arith/CF interleave over
    // the remainder.
    classes.assign(static_cast<size_t>(cfg.numPes()),
                   PeClass::Arith);
    std::vector<bool> used(static_cast<size_t>(cfg.numPes()), false);

    auto place = [&](PeClass c, int pe) {
        classes[static_cast<size_t>(pe)] = c;
        used[static_cast<size_t>(pe)] = true;
    };

    int remainingMem = cfg.peMix[static_cast<size_t>(PeClass::Memory)];
    for (int x = 0; x < cfg.width && remainingMem > 0; x++) {
        for (int y = 0; y < cfg.height && remainingMem > 0; y++) {
            place(PeClass::Memory, peAt({x, y}));
            remainingMem--;
        }
    }
    int remainingStream =
        cfg.peMix[static_cast<size_t>(PeClass::Stream)];
    for (int y = 0; y < cfg.height && remainingStream > 0; y++) {
        int pe = peAt({cfg.width - 1, y});
        if (!used[static_cast<size_t>(pe)]) {
            place(PeClass::Stream, pe);
            remainingStream--;
        }
    }
    int remainingMul =
        cfg.peMix[static_cast<size_t>(PeClass::Multiplier)];
    for (int y = cfg.height / 2;
         y < cfg.height && remainingMul > 0; y++) {
        int pe = peAt({cfg.width / 2, y});
        if (!used[static_cast<size_t>(pe)]) {
            place(PeClass::Multiplier, pe);
            remainingMul--;
        }
    }
    // Interleave CF and arith over what is left, CF first (they are
    // the most numerous and benefit from even spread).
    int remainingCf =
        cfg.peMix[static_cast<size_t>(PeClass::ControlFlow)];
    int remainingArith =
        cfg.peMix[static_cast<size_t>(PeClass::Arith)];
    bool takeCf = true;
    for (int pe = 0; pe < cfg.numPes(); pe++) {
        if (used[static_cast<size_t>(pe)])
            continue;
        if ((takeCf && remainingCf > 0) || remainingArith == 0) {
            place(PeClass::ControlFlow, pe);
            remainingCf--;
        } else {
            place(PeClass::Arith, pe);
            remainingArith--;
        }
        takeCf = !takeCf;
    }
    ps_assert(remainingCf == 0 && remainingArith == 0 &&
                  remainingMem == 0 && remainingStream == 0 &&
                  remainingMul == 0,
              "fabric layout failed to place all PEs");

    byClass.assign(5, {});
    for (int pe = 0; pe < cfg.numPes(); pe++) {
        byClass[static_cast<size_t>(classes[static_cast<size_t>(pe)])]
            .push_back(pe);
    }
}

PeClass
Fabric::classAt(int pe) const
{
    return classes[static_cast<size_t>(pe)];
}

Coord
Fabric::coordOf(int pe) const
{
    return {pe % cfg.width, pe / cfg.width};
}

int
Fabric::peAt(Coord c) const
{
    return c.y * cfg.width + c.x;
}

const std::vector<int> &
Fabric::pesOfClass(PeClass c) const
{
    return byClass[static_cast<size_t>(c)];
}

std::string
Fabric::describe() const
{
    std::ostringstream out;
    for (int y = cfg.height - 1; y >= 0; y--) {
        for (int x = 0; x < cfg.width; x++) {
            switch (classAt(peAt({x, y}))) {
              case PeClass::Arith: out << 'A'; break;
              case PeClass::Multiplier: out << 'X'; break;
              case PeClass::ControlFlow: out << 'C'; break;
              case PeClass::Memory: out << 'M'; break;
              case PeClass::Stream: out << 'S'; break;
            }
            out << ' ';
        }
        out << '\n';
    }
    return out.str();
}

} // namespace pipestitch::fabric
