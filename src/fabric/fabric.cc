#include "fabric/fabric.hh"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "base/logging.hh"

namespace pipestitch::fabric {

int
manhattan(Coord a, Coord b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

namespace {

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

} // namespace

bool
FabricConfig::validate(std::string *error) const
{
    if (width < 1 || height < 1)
        return fail(error,
                    csprintf("fabric: grid %dx%d must be at least "
                             "1x1", width, height));
    if (peMix.size() != 5)
        return fail(error,
                    csprintf("fabric: peMix has %zu entries, "
                             "expected 5 (arith:mult:cf:mem:stream)",
                             peMix.size()));
    int total = 0;
    for (int c : peMix) {
        if (c < 0)
            return fail(error, "fabric: peMix entries must be "
                               "non-negative");
        total += c;
    }
    if (total != numPes())
        return fail(error,
                    csprintf("fabric: peMix sums to %d but the "
                             "%dx%d grid has %d positions",
                             total, width, height, numPes()));
    if (routerCfCapacity < 0)
        return fail(error, "fabric: routerCfCapacity must be >= 0");
    if (linkCapacity < 1)
        return fail(error, "fabric: linkCapacity must be >= 1");
    if (memBytes < 1)
        return fail(error, "fabric: memBytes must be >= 1");
    if (memBanks < 1)
        return fail(error, "fabric: memBanks must be >= 1");
    if (clockMHz <= 0.0)
        return fail(error, "fabric: clockMHz must be positive");
    return true;
}

std::vector<int>
scaleMixFor(int width, int height)
{
    const FabricConfig def;
    const int defPes = def.numPes();
    const int n = width * height;
    std::vector<int> mix(5, 0);
    std::vector<int> rem(5, 0);
    int placed = 0;
    for (size_t i = 0; i < 5; i++) {
        int num = def.peMix[i] * n;
        mix[i] = num / defPes;
        rem[i] = num % defPes;
        placed += mix[i];
    }
    // Largest-remainder apportionment; ties favor the lower class
    // index so the result is deterministic.
    for (int extra = n - placed; extra > 0; extra--) {
        size_t best = 0;
        for (size_t i = 1; i < 5; i++) {
            if (rem[i] > rem[best])
                best = i;
        }
        mix[best]++;
        rem[best] = -1;
    }
    return mix;
}

FabricConfig
Topology::globalConfig() const
{
    FabricConfig g = tile;
    g.width = totalWidth();
    g.height = totalHeight();
    for (int &c : g.peMix)
        c *= numTiles();
    g.memBytes = tile.memBytes * numTiles();
    g.memBanks = tile.memBanks * numTiles();
    return g;
}

bool
Topology::validate(std::string *error) const
{
    if (tilesX < 1 || tilesY < 1)
        return fail(error,
                    csprintf("fabric: tile grid %dx%d must be at "
                             "least 1x1", tilesX, tilesY));
    if (interTileLatency < 1)
        return fail(error, "fabric: interTileLatency must be >= 1");
    if (interTileCapacity < 1)
        return fail(error, "fabric: interTileCapacity must be >= 1");
    return tile.validate(error);
}

namespace {

bool
parseIntField(const std::string &s, const char *what, int &out,
              std::string *error)
{
    if (s.empty() ||
        s.find_first_not_of("0123456789") != std::string::npos) {
        fail(error, csprintf("fabric spec: bad %s '%s' (expected a "
                             "positive integer)", what, s.c_str()));
        return false;
    }
    out = std::atoi(s.c_str());
    return true;
}

bool
parseDims(const std::string &s, const char *what, int &w, int &h,
          std::string *error)
{
    size_t x = s.find('x');
    if (x == std::string::npos || x == 0 || x + 1 == s.size()) {
        fail(error, csprintf("fabric spec: bad %s '%s' (expected "
                             "WxH)", what, s.c_str()));
        return false;
    }
    return parseIntField(s.substr(0, x), what, w, error) &&
           parseIntField(s.substr(x + 1), what, h, error);
}

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> parts;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(sep, start);
        parts.push_back(s.substr(start, pos - start));
        if (pos == std::string::npos)
            break;
        start = pos + 1;
    }
    return parts;
}

} // namespace

bool
parseFabricSpec(const std::string &spec, Topology &out,
                std::string *error)
{
    std::vector<std::string> parts = splitOn(spec, ',');
    Topology topo;
    if (!parseDims(parts[0], "grid", topo.tile.width,
                   topo.tile.height, error))
        return false;
    bool mixGiven = false;
    for (size_t i = 1; i < parts.size(); i++) {
        const std::string &p = parts[i];
        size_t eq = p.find('=');
        if (eq == std::string::npos)
            return fail(error,
                        csprintf("fabric spec: expected key=value, "
                                 "got '%s'", p.c_str()));
        std::string key = p.substr(0, eq);
        std::string val = p.substr(eq + 1);
        if (key == "tiles") {
            if (!parseDims(val, "tiles", topo.tilesX, topo.tilesY,
                           error))
                return false;
        } else if (key == "cap") {
            if (!parseIntField(val, "cap", topo.interTileCapacity,
                               error))
                return false;
        } else if (key == "lat") {
            if (!parseIntField(val, "lat", topo.interTileLatency,
                               error))
                return false;
        } else if (key == "mix") {
            std::vector<std::string> fields = splitOn(val, ':');
            if (fields.size() != 5)
                return fail(error,
                            csprintf("fabric spec: mix '%s' has %zu "
                                     "fields, expected 5 "
                                     "(arith:mult:cf:mem:stream)",
                                     val.c_str(), fields.size()));
            topo.tile.peMix.assign(5, 0);
            for (size_t f = 0; f < 5; f++) {
                if (!parseIntField(fields[f], "mix",
                                   topo.tile.peMix[f], error))
                    return false;
            }
            mixGiven = true;
        } else {
            return fail(error,
                        csprintf("fabric spec: unknown key '%s' "
                                 "(expected tiles/cap/lat/mix)",
                                 key.c_str()));
        }
    }
    if (!mixGiven)
        topo.tile.peMix = scaleMixFor(topo.tile.width,
                                      topo.tile.height);
    if (!topo.validate(error))
        return false;
    out = topo;
    return true;
}

std::vector<PeClass>
Fabric::layoutClasses(const FabricConfig &config)
{
    int total = 0;
    for (int c : config.peMix)
        total += c;
    ps_assert(total == config.numPes(),
              "PE mix sums to %d but the grid has %d positions",
              total, config.numPes());

    // Lay out the fabric: memory PEs fill the left columns (adjacent
    // to the SRAM banks), stream PEs take the top-right corner, the
    // two multipliers sit centrally, and arith/CF interleave over
    // the remainder.
    std::vector<PeClass> classes(
        static_cast<size_t>(config.numPes()), PeClass::Arith);
    std::vector<bool> used(static_cast<size_t>(config.numPes()),
                           false);

    auto peAt = [&](Coord c) { return c.y * config.width + c.x; };
    auto place = [&](PeClass c, int pe) {
        classes[static_cast<size_t>(pe)] = c;
        used[static_cast<size_t>(pe)] = true;
    };

    int remainingMem =
        config.peMix[static_cast<size_t>(PeClass::Memory)];
    for (int x = 0; x < config.width && remainingMem > 0; x++) {
        for (int y = 0; y < config.height && remainingMem > 0; y++) {
            place(PeClass::Memory, peAt({x, y}));
            remainingMem--;
        }
    }
    int remainingStream =
        config.peMix[static_cast<size_t>(PeClass::Stream)];
    for (int y = 0; y < config.height && remainingStream > 0; y++) {
        int pe = peAt({config.width - 1, y});
        if (!used[static_cast<size_t>(pe)]) {
            place(PeClass::Stream, pe);
            remainingStream--;
        }
    }
    int remainingMul =
        config.peMix[static_cast<size_t>(PeClass::Multiplier)];
    for (int y = config.height / 2;
         y < config.height && remainingMul > 0; y++) {
        int pe = peAt({config.width / 2, y});
        if (!used[static_cast<size_t>(pe)]) {
            place(PeClass::Multiplier, pe);
            remainingMul--;
        }
    }
    // Interleave CF and arith over what is left, CF first (they are
    // the most numerous and benefit from even spread).
    int remainingCf =
        config.peMix[static_cast<size_t>(PeClass::ControlFlow)];
    int remainingArith =
        config.peMix[static_cast<size_t>(PeClass::Arith)];
    bool takeCf = true;
    for (int pe = 0; pe < config.numPes(); pe++) {
        if (used[static_cast<size_t>(pe)])
            continue;
        if ((takeCf && remainingCf > 0) || remainingArith == 0) {
            place(PeClass::ControlFlow, pe);
            remainingCf--;
        } else {
            place(PeClass::Arith, pe);
            remainingArith--;
        }
        takeCf = !takeCf;
    }
    // Dense corner fills can leave a class short on small or skewed
    // grids (e.g. more stream PEs than rows); fall back to any free
    // slot so every requested PE lands somewhere.
    for (int pe = 0;
         pe < config.numPes() &&
         (remainingMem > 0 || remainingStream > 0 ||
          remainingMul > 0);
         pe++) {
        if (used[static_cast<size_t>(pe)])
            continue;
        if (remainingMem > 0) {
            place(PeClass::Memory, pe);
            remainingMem--;
        } else if (remainingStream > 0) {
            place(PeClass::Stream, pe);
            remainingStream--;
        } else {
            place(PeClass::Multiplier, pe);
            remainingMul--;
        }
    }
    ps_assert(remainingCf == 0 && remainingArith == 0 &&
                  remainingMem == 0 && remainingStream == 0 &&
                  remainingMul == 0,
              "fabric layout failed to place all PEs");
    return classes;
}

Fabric::Fabric(const FabricConfig &config)
    : topo{config, 1, 1}, cfg(config),
      classes(layoutClasses(config))
{
    byClass.assign(5, {});
    for (int pe = 0; pe < cfg.numPes(); pe++) {
        byClass[static_cast<size_t>(classes[static_cast<size_t>(pe)])]
            .push_back(pe);
    }
}

Fabric::Fabric(const Topology &topology)
    : topo(topology), cfg(topo.globalConfig())
{
    std::vector<PeClass> tileClasses = layoutClasses(topo.tile);
    classes.resize(static_cast<size_t>(cfg.numPes()));
    for (int pe = 0; pe < cfg.numPes(); pe++) {
        Coord c = coordOf(pe);
        int local = (c.y % topo.tile.height) * topo.tile.width +
                    (c.x % topo.tile.width);
        classes[static_cast<size_t>(pe)] =
            tileClasses[static_cast<size_t>(local)];
    }
    byClass.assign(5, {});
    for (int pe = 0; pe < cfg.numPes(); pe++) {
        byClass[static_cast<size_t>(classes[static_cast<size_t>(pe)])]
            .push_back(pe);
    }
}

PeClass
Fabric::classAt(int pe) const
{
    return classes[static_cast<size_t>(pe)];
}

Coord
Fabric::coordOf(int pe) const
{
    return {pe % cfg.width, pe / cfg.width};
}

int
Fabric::peAt(Coord c) const
{
    return c.y * cfg.width + c.x;
}

int
Fabric::tileOfPe(int pe) const
{
    Coord c = coordOf(pe);
    return (c.y / topo.tile.height) * topo.tilesX +
           (c.x / topo.tile.width);
}

Coord
Fabric::tileOrigin(int t) const
{
    return {(t % topo.tilesX) * topo.tile.width,
            (t / topo.tilesX) * topo.tile.height};
}

const std::vector<int> &
Fabric::pesOfClass(PeClass c) const
{
    return byClass[static_cast<size_t>(c)];
}

std::string
Fabric::describe() const
{
    std::ostringstream out;
    for (int y = cfg.height - 1; y >= 0; y--) {
        for (int x = 0; x < cfg.width; x++) {
            switch (classAt(peAt({x, y}))) {
              case PeClass::Arith: out << 'A'; break;
              case PeClass::Multiplier: out << 'X'; break;
              case PeClass::ControlFlow: out << 'C'; break;
              case PeClass::Memory: out << 'M'; break;
              case PeClass::Stream: out << 'S'; break;
            }
            out << ' ';
        }
        out << '\n';
    }
    return out.str();
}

} // namespace pipestitch::fabric
