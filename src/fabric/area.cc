#include "fabric/area.hh"

#include "base/logging.hh"
#include "base/table.hh"

namespace pipestitch::fabric {

namespace {

// Per-class FU + local control area (µm², sub-28nm-class, from
// synthesis-magnitude estimates calibrated to Fig. 16's breakdown).
constexpr double kPeBase[] = {
    2600.0, // Arith
    7000.0, // Multiplier
    1800.0, // ControlFlow
    3200.0, // Memory
    3600.0, // Stream
};

// Input ports per PE class (token buffer count in destination mode).
constexpr int kInPorts[] = {2, 2, 3, 3, 3};

/** One 32-bit token buffer slot (latch + valid/credit control). */
constexpr double kSlotUm2 = 60.0;

/** One NoC router (crossbar, static route table, CF-in-NoC logic). */
constexpr double kRouterUm2 = 6230.0;

/** SyncPlane: per-CF-PE taps plus the central reduction tree. */
constexpr double kSyncPlanePerCfPe = 150.0;
constexpr double kSyncPlaneTree = 2200.0;

/** Scratchpad SRAM (compiled macros). */
constexpr double kMemUm2PerByte = 1.27;

/** RISC-V control core + boot/config logic. */
constexpr double kScalarUm2 = 16000.0;

/** Clocking, config network, top-level glue ("Other"). */
constexpr double kOtherUm2 = 23000.0;

} // namespace

AreaBreakdown
computeArea(const Fabric &fabric, AreaVariant variant,
            int bufferDepth)
{
    const auto &cfg = fabric.config();
    AreaBreakdown out;

    for (int pe = 0; pe < fabric.numPes(); pe++) {
        auto cls = fabric.classAt(pe);
        size_t ci = static_cast<size_t>(cls);
        double area = kPeBase[ci];
        if (variant == AreaVariant::RipTide) {
            // Source buffering: one output FIFO per PE.
            area += bufferDepth * kSlotUm2;
        } else {
            // Destination buffering: a FIFO per input port...
            area += kInPorts[ci] * bufferDepth * kSlotUm2;
            // ...plus output buffers on CF and memory PEs (4.7).
            if (cls == PeClass::ControlFlow ||
                cls == PeClass::Memory) {
                area += bufferDepth * kSlotUm2;
            }
            if (cls == PeClass::ControlFlow)
                area += kSyncPlanePerCfPe;
        }
        out.peUm2 += area;
    }

    out.nocUm2 = fabric.numPes() * kRouterUm2;
    if (variant == AreaVariant::Pipestitch)
        out.nocUm2 += kSyncPlaneTree;

    out.memUm2 = static_cast<double>(cfg.memBytes) * kMemUm2PerByte;
    out.scalarUm2 = kScalarUm2;
    out.otherUm2 = kOtherUm2;
    return out;
}

std::string
AreaBreakdown::table() const
{
    Table t({"Component", "Area (mm^2)", "Share"});
    double total = totalUm2();
    auto row = [&](const char *name, double um2) {
        t.addRow({name, Table::fmt(um2 / 1e6, 3),
                  Table::fmt(100.0 * um2 / total, 1) + "%"});
    };
    row("PE", peUm2);
    row("NoC", nocUm2);
    row("Mem", memUm2);
    row("Scalar", scalarUm2);
    row("Other", otherUm2);
    t.addRow({"Total", Table::fmt(total / 1e6, 3), "100.0%"});
    return t.render();
}

} // namespace pipestitch::fabric
