/**
 * @file
 * Area model (Fig. 16): per-component areas in a sub-28nm-class
 * process, calibrated so the full Pipestitch system lands near the
 * paper's ~1.0 mm² with its reported breakdown (PE 23.0 %,
 * NoC 39.9 %, memory 33.2 %, other 2.3 %), and so Pipestitch's
 * fabric is ~1.10× RipTide's (extra buffering + SyncPlane,
 * Sec. 5.6).
 */

#ifndef PIPESTITCH_FABRIC_AREA_HH
#define PIPESTITCH_FABRIC_AREA_HH

#include <string>

#include "fabric/fabric.hh"

namespace pipestitch::fabric {

/** Which design's buffers/SyncPlane to account for. */
enum class AreaVariant { RipTide, Pipestitch };

struct AreaBreakdown
{
    double peUm2 = 0;
    double nocUm2 = 0;
    double memUm2 = 0;
    double scalarUm2 = 0;
    double otherUm2 = 0;

    double totalUm2() const
    {
        return peUm2 + nocUm2 + memUm2 + scalarUm2 + otherUm2;
    }

    double totalMm2() const { return totalUm2() / 1e6; }

    std::string table() const;
};

/**
 * Compute the system area for @p fabric.
 *
 * @param variant     RipTide (source buffers, no SyncPlane) or
 *                    Pipestitch (input + CF/mem output buffers,
 *                    SyncPlane reduction tree).
 * @param bufferDepth token-buffer depth (Fig. 20's sweep trades
 *                    buffer area for performance).
 */
AreaBreakdown computeArea(const Fabric &fabric, AreaVariant variant,
                          int bufferDepth = 4);

} // namespace pipestitch::fabric

#endif // PIPESTITCH_FABRIC_AREA_HH
