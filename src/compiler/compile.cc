#include "compiler/compile.hh"

#include "base/logging.hh"
#include "compiler/threading.hh"
#include "compiler/unroll.hh"
#include "dfg/verifier.hh"
#include "sir/verifier.hh"

namespace pipestitch::compiler {

const char *
archVariantName(ArchVariant variant)
{
    switch (variant) {
      case ArchVariant::RipTide: return "RipTide";
      case ArchVariant::Pipestitch: return "Pipestitch";
      case ArchVariant::PipeSB: return "PipeSB";
      case ArchVariant::PipeCFiN: return "PipeCFiN";
      case ArchVariant::PipeCFoP: return "PipeCFoP";
    }
    return "?";
}

std::set<int>
threadingCandidates(const sir::Program &prog)
{
    return findThreadingCandidates(prog);
}

CompileResult
compileProgram(const sir::Program &prog,
               const std::vector<sir::Word> &liveIns,
               const CompileOptions &options)
{
    sir::verifyOrDie(prog);

    // Spatial unrolling is a source-level transform; everything
    // downstream (threading, lowering, placement) sees the unrolled
    // program.
    sir::Program unrolled;
    const sir::Program *source = &prog;
    if (options.unrollFactor > 1) {
        unrolled = unrollForeachLoops(prog, options.unrollFactor);
        sir::verifyOrDie(unrolled);
        source = &unrolled;
    }

    CompileResult result;

    // Threading decision. RipTide has no dispatch support.
    bool threadsSupported =
        options.variant != ArchVariant::RipTide &&
        options.threading != CompileOptions::Threading::ForceOff;
    std::set<int> threadLoops;
    if (threadsSupported) {
        std::set<int> byHeuristic = decideThreading(
            *source, liveIns, options.useStreams, result.loopII);
        if (options.threading ==
            CompileOptions::Threading::ForceOn) {
            threadLoops = findThreadingCandidates(*source);
        } else {
            threadLoops = byHeuristic;
        }
    } else {
        decideThreading(*source, liveIns, options.useStreams,
                        result.loopII);
    }

    LowerOptions lopts;
    lopts.liveInValues = liveIns;
    lopts.threadLoops = threadLoops;
    lopts.useStreams = options.useStreams;
    result.graph = lower(*source, lopts);
    eliminateCommonSubexpressions(result.graph);
    result.threadedLoops = threadLoops;
    result.threaded = !threadLoops.empty();

    // Control-flow placement and the matching microarchitecture.
    sim::SimConfig sim;
    sim.bufferDepth = options.bufferDepth;
    bool placeInNoc = true;
    switch (options.variant) {
      case ArchVariant::RipTide:
        sim.buffering = sim::SimConfig::Buffering::Source;
        sim.memBypass = false;
        placeInNoc = true;
        break;
      case ArchVariant::Pipestitch:
        sim.buffering = sim::SimConfig::Buffering::Destination;
        sim.memBypass = true;
        // Threaded kernels need deep in-PE buffering for CF;
        // unthreaded kernels keep CF free in the NoC (Sec. 5.8).
        placeInNoc = !result.threaded;
        break;
      case ArchVariant::PipeSB:
        sim.buffering = sim::SimConfig::Buffering::Source;
        sim.memBypass = false;
        placeInNoc = !result.threaded;
        break;
      case ArchVariant::PipeCFiN:
        sim.buffering = sim::SimConfig::Buffering::Destination;
        sim.memBypass = true;
        placeInNoc = true;
        break;
      case ArchVariant::PipeCFoP:
        sim.buffering = sim::SimConfig::Buffering::Destination;
        sim.memBypass = true;
        placeInNoc = false;
        break;
    }
    placeControlFlow(result.graph, placeInNoc, sim.memBypass);
    result.graph.finalize();
    result.simConfig = sim;

    dfg::verifyOrDie(result.graph);
    return result;
}

} // namespace pipestitch::compiler
