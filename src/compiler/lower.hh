/**
 * @file
 * SIR → DFG lowering: RipTide-style dataflow control-flow conversion
 * plus Pipestitch's dispatch insertion (Sec. 4.8).
 *
 * The lowering walks the structured program maintaining a mapping
 * from registers to the DFG ports currently producing their values:
 *
 *  - `if` becomes steers (conditional discard) on entry to each
 *    branch plus merges (φ) for registers either branch assigns;
 *  - loops become carry gates for loop-carried values, invariant
 *    gates for loop-invariant values, steers gating the body, and
 *    false-steers extracting live-out values on exit;
 *  - unthreaded counted loops fuse their induction into affine
 *    stream generators;
 *  - loops selected for threading get `dispatch` gates instead of
 *    carries, with invariants converted to carried values
 *    (dispatch + steer backedge, Fig. 7);
 *  - memory ordering: arrays that are both loaded and stored are
 *    serialized through order tokens that thread through the same
 *    carry/merge machinery as registers; write-only and read-only
 *    arrays need no ordering (the foreach contract makes
 *    cross-thread conflicts the programmer's responsibility).
 */

#ifndef PIPESTITCH_COMPILER_LOWER_HH
#define PIPESTITCH_COMPILER_LOWER_HH

#include <set>
#include <vector>

#include "dfg/graph.hh"
#include "sir/program.hh"

namespace pipestitch::compiler {

/** Options controlling one lowering run. */
struct LowerOptions
{
    /** One value per program live-in, in declaration order. The
     *  scalar control core configures these into the fabric as
     *  immediates when it launches the kernel. */
    std::vector<sir::Word> liveInValues;

    /** Loop ids (pre-order walk numbering) to compile as threaded
     *  dispatch loops. */
    std::set<int> threadLoops;

    /** Fuse unthreaded counted loops into stream generators. */
    bool useStreams = true;
};

/**
 * Lower @p prog to a finalized, dead-code-eliminated DFG.
 * Loop ids in the result are assigned in pre-order walk order and
 * are stable across runs with different options.
 */
dfg::Graph lower(const sir::Program &prog, const LowerOptions &opts);

} // namespace pipestitch::compiler

#endif // PIPESTITCH_COMPILER_LOWER_HH
