/**
 * @file
 * Control-flow placement (Sec. 4.8, Figs. 19/21).
 *
 * RipTide reuses NoC routers to execute control-flow operators
 * "for free" (no PE, no pipeline stage). Pipestitch keeps that
 * option but adds rules: dispatch needs an output buffer and must
 * map to a PE; CF directly downstream of a bypassing memory op must
 * map to a PE to avoid a combinational loop between the bypass mux
 * and CF-in-NoC; and no cycle may consist purely of in-NoC
 * operators.
 */

#include "compiler/compile.hh"

#include <map>

#include "base/logging.hh"

namespace pipestitch::compiler {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::NodeKind;

namespace {

/** Demote one node per all-NoC cycle until none remain. */
void
breakNocCycles(Graph &graph)
{
    for (;;) {
        // DFS over cfInNoc subgraph looking for a cycle.
        const int n = graph.size();
        std::vector<int> state(static_cast<size_t>(n), 0);
        NodeId offender = dfg::NoNode;

        std::vector<std::pair<NodeId, int>> dfs;
        for (NodeId start = 0; start < n && offender == dfg::NoNode;
             start++) {
            if (!graph.at(start).cfInNoc ||
                state[static_cast<size_t>(start)] != 0) {
                continue;
            }
            dfs.clear();
            dfs.emplace_back(start, 0);
            state[static_cast<size_t>(start)] = 1;
            while (!dfs.empty() && offender == dfg::NoNode) {
                NodeId id = dfs.back().first;
                int edge = dfs.back().second;
                const Node &node = graph.at(id);
                bool descended = false;
                while (edge < node.numInputs()) {
                    const auto &in =
                        node.inputs[static_cast<size_t>(edge)];
                    edge++;
                    if (!in.isWire() ||
                        !graph.at(in.port.node).cfInNoc) {
                        continue;
                    }
                    int s = state[static_cast<size_t>(in.port.node)];
                    if (s == 1) {
                        offender = id;
                        break;
                    }
                    if (s == 0) {
                        dfs.back().second = edge;
                        state[static_cast<size_t>(in.port.node)] = 1;
                        dfs.emplace_back(in.port.node, 0);
                        descended = true;
                        break;
                    }
                }
                if (offender != dfg::NoNode)
                    break;
                if (!descended) {
                    state[static_cast<size_t>(id)] = 2;
                    dfs.pop_back();
                }
            }
        }
        if (offender == dfg::NoNode)
            return;
        graph.at(offender).cfInNoc = false;
    }
}

} // namespace

int
eliminateCommonSubexpressions(Graph &graph)
{
    int removedTotal = 0;
    for (;;) {
        graph.finalize();
        // Key: kind/op/polarity/imm plus the exact operand list.
        std::map<std::string, NodeId> seen;
        std::vector<NodeId> replacement(
            static_cast<size_t>(graph.size()), dfg::NoNode);
        bool changed = false;
        for (NodeId id = 0; id < graph.size(); id++) {
            const Node &node = graph.at(id);
            switch (node.kind) {
              case NodeKind::Const:
              case NodeKind::Arith:
              case NodeKind::Steer:
              case NodeKind::Merge:
                break;
              default:
                continue; // stateful or side-effecting
            }
            std::string key;
            key += static_cast<char>('A' + static_cast<int>(
                node.kind));
            key += csprintf("|%d|%d|%d", static_cast<int>(node.op),
                            node.steerIfTrue ? 1 : 0, node.imm);
            for (const auto &in : node.inputs) {
                if (in.isWire()) {
                    key += csprintf("|w%d.%d", in.port.node,
                                    in.port.index);
                } else if (in.isImm()) {
                    key += csprintf("|i%d", in.imm);
                } else {
                    key += "|n";
                }
            }
            auto [it, inserted] = seen.emplace(key, id);
            if (!inserted) {
                replacement[static_cast<size_t>(id)] = it->second;
                changed = true;
            }
        }
        if (!changed)
            break;
        for (auto &node : graph.nodes) {
            for (auto &in : node.inputs) {
                if (!in.isWire())
                    continue;
                NodeId r =
                    replacement[static_cast<size_t>(in.port.node)];
                if (r != dfg::NoNode)
                    in.port.node = r;
            }
        }
        removedTotal += graph.eliminateDeadNodes();
    }
    graph.finalize();
    return removedTotal;
}

void
placeControlFlow(Graph &graph, bool placeInNoc, bool memBypass)
{
    for (NodeId id = 0; id < graph.size(); id++) {
        Node &node = graph.at(id);
        if (!node.isControlFlow()) {
            node.cfInNoc = false;
            continue;
        }
        bool noc = placeInNoc;
        // Dispatch reasons about its own output buffer (Sec. 4.7);
        // it must live on a PE.
        if (node.kind == NodeKind::Dispatch)
            noc = false;
        // CF fed by a bypassing memory unit would close a
        // combinational loop through the bypass mux (Sec. 4.8).
        if (noc && memBypass) {
            for (const auto &in : node.inputs) {
                if (in.isWire() &&
                    graph.at(in.port.node).isMemory()) {
                    noc = false;
                }
            }
        }
        node.cfInNoc = noc;
    }
    if (placeInNoc)
        breakNocCycles(graph);
}

} // namespace pipestitch::compiler
