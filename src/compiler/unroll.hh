/**
 * @file
 * Spatial unrolling — the paper's first future-work direction
 * (Sec. 6): "unroll multiple copies of the inner-loop and distribute
 * outer loop iterations spatially in addition to temporal
 * pipelining."
 *
 * Implemented as a SIR→SIR transform: a foreach loop over
 * [begin, end) becomes a foreach over chunk indices, whose body
 * contains `factor` statically-unrolled copies of the original body
 * guarded by a bounds check:
 *
 *   foreach c = 0 .. ceil((end-begin)/U):
 *     for u in 0..U (unrolled):
 *       i = begin + c*U + u
 *       if (i < end): <body copy u>(i)
 *
 * Each copy's inner loop is a distinct loop statement, so the
 * threading pass gives it its own dispatch group — U thread
 * pipelines running side by side on the fabric. The PE cost is
 * roughly U× the loop body, so unrolling only fits small kernels
 * (exactly the paper's framing).
 */

#ifndef PIPESTITCH_COMPILER_UNROLL_HH
#define PIPESTITCH_COMPILER_UNROLL_HH

#include "sir/program.hh"

namespace pipestitch::compiler {

/**
 * Return a copy of @p prog with every step-1 foreach loop spatially
 * unrolled by @p factor (a power of two ≥ 2). Non-foreach loops and
 * foreach loops with step ≠ 1 are left untouched.
 */
sir::Program unrollForeachLoops(const sir::Program &prog, int factor);

} // namespace pipestitch::compiler

#endif // PIPESTITCH_COMPILER_UNROLL_HH
