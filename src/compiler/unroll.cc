#include "compiler/unroll.hh"

#include "base/logging.hh"

namespace pipestitch::compiler {

using namespace sir;

namespace {

class Unroller
{
  public:
    Unroller(Program &prog, int factor) : prog(prog), factor(factor)
    {
        ps_assert(factor >= 2 && (factor & (factor - 1)) == 0,
                  "unroll factor must be a power of two >= 2");
        while ((1 << lg) < factor)
            lg++;
    }

    void
    run()
    {
        walk(prog.body);
    }

  private:
    Reg
    newReg(const std::string &name)
    {
        Reg r = prog.numRegs++;
        prog.regNames.push_back(name);
        return r;
    }

    static StmtPtr
    compute(Opcode op, Reg dst, Reg a, Reg b)
    {
        return std::make_unique<ComputeStmt>(op, dst, a, b);
    }

    void
    walk(StmtList &list)
    {
        for (size_t s = 0; s < list.size(); s++) {
            Stmt &stmt = *list[s];
            switch (stmt.kind()) {
              case Stmt::Kind::If: {
                auto &i = static_cast<IfStmt &>(stmt);
                walk(i.thenBody);
                walk(i.elseBody);
                break;
              }
              case Stmt::Kind::While: {
                auto &w = static_cast<WhileStmt &>(stmt);
                walk(w.header);
                walk(w.body);
                break;
              }
              case Stmt::Kind::For: {
                auto &f = static_cast<ForStmt &>(stmt);
                if (f.isForeach && f.step == 1) {
                    // Replace list[s] with preamble + chunked loop.
                    StmtList replacement = rewrite(f);
                    list.erase(list.begin() +
                               static_cast<ptrdiff_t>(s));
                    for (size_t r = 0; r < replacement.size(); r++) {
                        list.insert(
                            list.begin() + static_cast<ptrdiff_t>(
                                               s + r),
                            std::move(replacement[r]));
                    }
                    s += replacement.size() - 1;
                } else {
                    walk(f.body);
                }
                break;
              }
              default:
                break;
            }
        }
    }

    /**
     * foreach i = begin..end  ⇒
     *   total  = end - begin
     *   chunks = (total + U-1) >> lg
     *   foreach c = 0..chunks:
     *     lane u in [0, U):            (statically unrolled)
     *       i_u = begin + (c << lg) + u
     *       if (i_u < end): { i = i_u; <body copy u> }
     *
     * Each body copy's loops are distinct statements, so the
     * threading pass assigns each lane its own dispatch group —
     * the "dispatch gates synchronize across multiple instances"
     * design of Sec. 6.
     */
    StmtList
    rewrite(ForStmt &loop)
    {
        StmtList out;
        Reg total = newReg("unroll_total");
        Reg bias = newReg("unroll_bias");
        Reg rounded = newReg("unroll_rounded");
        Reg shift = newReg("unroll_shift");
        Reg chunks = newReg("unroll_chunks");
        Reg zero = newReg("unroll_zero");
        out.push_back(
            compute(Opcode::Sub, total, loop.end, loop.begin));
        out.push_back(std::make_unique<ConstStmt>(bias, factor - 1));
        out.push_back(compute(Opcode::Add, rounded, total, bias));
        out.push_back(std::make_unique<ConstStmt>(shift, lg));
        out.push_back(
            compute(Opcode::Shr, chunks, rounded, shift));
        out.push_back(std::make_unique<ConstStmt>(zero, 0));

        Reg chunkVar = newReg("unroll_chunk");
        auto outer = std::make_unique<ForStmt>(
            chunkVar, zero, chunks, 1, /*isForeach=*/true);

        for (int u = 0; u < factor; u++) {
            Reg scaled = newReg(csprintf("unroll_scaled%d", u));
            Reg offset = newReg(csprintf("unroll_off%d", u));
            Reg uReg = newReg(csprintf("unroll_u%d", u));
            Reg idx = newReg(csprintf("unroll_i%d", u));
            Reg ok = newReg(csprintf("unroll_ok%d", u));
            outer->body.push_back(
                compute(Opcode::Shl, scaled, chunkVar, shift));
            outer->body.push_back(
                std::make_unique<ConstStmt>(uReg, u));
            outer->body.push_back(
                compute(Opcode::Add, offset, scaled, uReg));
            outer->body.push_back(
                compute(Opcode::Add, idx, loop.begin, offset));
            outer->body.push_back(
                compute(Opcode::Lt, ok, idx, loop.end));

            auto guard = std::make_unique<IfStmt>(ok);
            // The cloned body reads the original induction
            // register; bind it to this lane's index first.
            guard->thenBody.push_back(
                compute(Opcode::Add, loop.var, idx, zero));
            StmtList copy = cloneStmts(loop.body);
            for (auto &stmtPtr : copy)
                guard->thenBody.push_back(std::move(stmtPtr));
            outer->body.push_back(std::move(guard));
        }

        out.push_back(std::move(outer));
        return out;
    }

    Program &prog;
    int factor;
    int lg = 0;
};

} // namespace

Program
unrollForeachLoops(const Program &prog, int factor)
{
    Program copy(prog.name + csprintf("_u%d", factor));
    copy.numRegs = prog.numRegs;
    copy.arrays = prog.arrays;
    copy.regNames = prog.regNames;
    copy.liveIns = prog.liveIns;
    copy.memWords = prog.memWords;
    copy.body = cloneStmts(prog.body);

    if (factor <= 1)
        return copy;

    Unroller unroller(copy, factor);
    unroller.run();
    return copy;
}

} // namespace pipestitch::compiler
