#include "compiler/timemux.hh"

#include <algorithm>

#include "base/logging.hh"

namespace pipestitch::compiler {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::NodeKind;
using dfg::PeClass;

std::optional<ShareGroups>
tryPlanTimeMultiplexing(const Graph &graph,
                        const fabric::FabricConfig &config)
{
    // Demand per class, PE-mapped nodes only.
    auto counts = graph.peClassCounts();

    ShareGroups groups;
    for (size_t c = 0; c < counts.size(); c++) {
        int supply = config.peMix[c];
        int demand = counts[c];
        if (demand <= supply)
            continue;

        // Cold candidates, coldest first: shallower loops fire less
        // often; dispatch gates must keep their own PE (they reason
        // about their private output buffer).
        std::vector<NodeId> cold;
        for (NodeId id = 0; id < graph.size(); id++) {
            const Node &node = graph.at(id);
            if (node.cfInNoc || node.kind == NodeKind::Trigger)
                continue;
            if (static_cast<size_t>(node.peClass()) != c)
                continue;
            if (node.innerLoop ||
                node.kind == NodeKind::Dispatch)
                continue;
            cold.push_back(id);
        }
        std::sort(cold.begin(), cold.end(),
                  [&](NodeId a, NodeId b) {
                      return graph.at(a).loopDepth <
                             graph.at(b).loopDepth;
                  });

        // Fold the coldest nodes until the class fits: a group of k
        // nodes frees k-1 PEs. Groups are capped at 8 residents to
        // bound the worst-case serialization of one PE.
        constexpr int kMaxResidents = 8;
        int toFree = demand - supply;
        size_t next = 0;
        while (toFree > 0) {
            if (cold.size() - next < 2)
                return std::nullopt;
            std::vector<NodeId> group = {cold[next],
                                         cold[next + 1]};
            next += 2;
            toFree--;
            while (toFree > 0 &&
                   static_cast<int>(group.size()) < kMaxResidents &&
                   next < cold.size()) {
                group.push_back(cold[next++]);
                toFree--;
            }
            groups.push_back(std::move(group));
        }
    }
    return groups;
}

ShareGroups
planTimeMultiplexing(const Graph &graph,
                     const fabric::FabricConfig &config)
{
    auto groups = tryPlanTimeMultiplexing(graph, config);
    if (!groups) {
        auto counts = graph.peClassCounts();
        fatal("time-multiplexing cannot fit the kernel "
              "(%d/%d/%d/%d/%d PEs demanded) onto the fabric; too "
              "few cold operators to fold",
              counts[0], counts[1], counts[2], counts[3],
              counts[4]);
    }
    return *groups;
}

} // namespace pipestitch::compiler
