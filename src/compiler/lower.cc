#include "compiler/lower.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>

#include "base/logging.hh"
#include "compiler/threading.hh"
#include "dfg/analysis.hh"
#include "sir/analysis.hh"

namespace pipestitch::compiler {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::NodeKind;
using dfg::Operand;
using dfg::Port;
using sir::ArrayId;
using sir::Reg;
using sir::Word;
namespace pidx = dfg::port_idx;

namespace {

/** Environment key: registers >= 0; memory-order pseudo-keys < -1. */
using Key = int;

Key
ordKey(ArrayId array)
{
    return -2 - array;
}

/** A register's current producer: a DFG port or a folded constant. */
struct Def
{
    enum class Kind { None, Wire, Imm };
    Kind kind = Kind::None;
    Port port;
    Word imm = 0;

    static Def
    wire(Port p)
    {
        Def d;
        d.kind = Kind::Wire;
        d.port = p;
        return d;
    }

    static Def
    imm_(Word v)
    {
        Def d;
        d.kind = Kind::Imm;
        d.imm = v;
        return d;
    }

    bool isWire() const { return kind == Kind::Wire; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isNone() const { return kind == Kind::None; }

    Operand
    operand() const
    {
        ps_assert(!isNone(), "operand from undefined value");
        return isImm() ? Operand::imm_(imm) : Operand::wire(port);
    }
};

class Lowering;

/**
 * A lexical region during the walk: tracks register → Def bindings,
 * lazily steering values that flow in from an enclosing conditioned
 * region (tokens may only be consumed on the executed path).
 */
class Scope
{
  public:
    /** Root scope (unconditioned). */
    explicit Scope(Lowering &low)
        : low(low), parent(nullptr), gated(false)
    {}

    /** Gated child: values read from @p parent are steered through
     *  (decider, polarity) on first use. */
    Scope(Scope &parent, Port decider, bool polarity)
        : low(parent.low), parent(&parent), gated(true),
          decider(decider), polarity(polarity)
    {}

    /** Ungated child used for loop head regions: bindings are
     *  installed explicitly and lookups must not fall through. */
    explicit Scope(Lowering &low, bool)
        : low(low), parent(nullptr), gated(false), sealed(true)
    {}

    Def lookup(Key key) { return lookupImpl(key, true); }
    /** Like lookup but yields None for unknown keys (φ-merge sides
     *  probing values that only exist on the other branch). */
    Def tryLookup(Key key) { return lookupImpl(key, false); }
    void set(Key key, Def def);
    /** Install a binding without marking it modified (gate seeding). */
    void bind(Key key, Def def) { defs[key] = def; }
    void kill(Key key);
    bool hasLocal(Key key) const { return defs.count(key) != 0; }

    /** A port producing exactly one token per execution of this
     *  region (used to materialize constants as token streams). */
    Port regionToken();
    void setRegionToken(Port p) { regionPort = p; }

    /** Materialized-constant cache (one Const node per value). */
    std::map<Word, Port> constCache;

    const std::map<Key, Def> &localDefs() const { return defs; }
    const std::set<Key> &modifiedKeys() const { return modified; }

  private:
    Def lookupImpl(Key key, bool strict);

    Lowering &low;
    Scope *parent;
    bool gated;
    bool sealed = false;
    Port decider;
    bool polarity = true;
    std::map<Key, Def> defs;
    std::set<Key> modified;
    Port regionPort{dfg::NoNode, 0};
};

class Lowering
{
  public:
    Lowering(const sir::Program &prog, const LowerOptions &opts)
        : prog(prog), opts(opts), graph(prog.name),
          liveness(prog)
    {
        classifyArrays();
    }

    Graph run();

    // --- node factories ----------------------------------------------
    NodeId
    addNode(Node node)
    {
        node.loopId = currentLoop;
        NodeId id = graph.add(std::move(node));
        return id;
    }

    Port
    mkSteer(Port decider, bool polarity, Def value,
            const std::string &name)
    {
        Node n;
        n.kind = NodeKind::Steer;
        n.steerIfTrue = polarity;
        n.inputs.resize(2);
        n.inputs[pidx::SteerDecider] = Operand::wire(decider);
        n.inputs[pidx::SteerValue] = value.operand();
        n.name = name;
        return {addNode(std::move(n)), 0};
    }

    Port
    mkConst(Port region, Word value)
    {
        Node n;
        n.kind = NodeKind::Const;
        n.imm = value;
        n.inputs = {Operand::wire(region)};
        n.name = csprintf("c%d", value);
        return {addNode(std::move(n)), 0};
    }

    Port
    trigger()
    {
        if (triggerId == dfg::NoNode) {
            Node n;
            n.kind = NodeKind::Trigger;
            n.name = "start";
            int saved = currentLoop;
            currentLoop = -1;
            triggerId = addNode(std::move(n));
            currentLoop = saved;
        }
        return {triggerId, 0};
    }

    /** Turn a Def into a token-producing wire (constants become
     *  Const nodes firing once per region execution). */
    Port
    materialize(Scope &scope, const Def &def)
    {
        if (def.isWire())
            return def.port;
        ps_assert(def.isImm(), "materializing undefined value");
        auto it = scope.constCache.find(def.imm);
        if (it != scope.constCache.end())
            return it->second;
        Port p = mkConst(scope.regionToken(), def.imm);
        scope.constCache[def.imm] = p;
        return p;
    }

    const sir::Program &prog;
    const LowerOptions &opts;
    Graph graph;
    sir::Liveness liveness;

    int currentLoop = -1;

  private:
    void classifyArrays();
    void walkList(const sir::StmtList &list, Scope &scope);
    void walkStmt(const sir::Stmt &stmt, Scope &scope);
    void lowerIf(const sir::IfStmt &stmt, Scope &scope);
    void lowerLoop(const sir::Stmt &stmt, Scope &scope);
    void lowerMemOp(const sir::Stmt &stmt, Scope &scope);
    void markLoopDepths();

    NodeId triggerId = dfg::NoNode;
    std::vector<bool> arrayReadWrite; // needs order tokens

    // loop bookkeeping (pre-assigned ids shared with the threading
    // heuristic so they agree under constant folding)
    std::unordered_map<const sir::Stmt *, int> loopIds;
    std::vector<int> loopParents;
    std::vector<bool> loopThreadedFlags;
};

// -----------------------------------------------------------------------
// Scope
// -----------------------------------------------------------------------

Def
Scope::lookupImpl(Key key, bool strict)
{
    auto it = defs.find(key);
    if (it != defs.end())
        return it->second;

    Def fromParent;
    if (parent != nullptr) {
        fromParent = parent->lookupImpl(key, strict);
    } else if (sealed) {
        if (!strict)
            return Def{};
        panic("internal: key %d escaped its loop head scope", key);
    } else if (key < -1) {
        // First memory access to an ordered array at top level:
        // seed the order chain with a region token.
        fromParent = Def::wire(low.mkConst(regionToken(), 1));
        defs[key] = fromParent;
        return fromParent;
    } else {
        if (!strict)
            return Def{};
        fatal("program %s: register r%d read before assignment",
              low.prog.name.c_str(), key);
    }
    if (fromParent.isNone())
        return fromParent;

    if (gated && fromParent.isWire()) {
        Def steered = Def::wire(low.mkSteer(
            decider, polarity, fromParent,
            csprintf("gate%s_k%d", polarity ? "T" : "F", key)));
        defs[key] = steered;
        return steered;
    }
    // Constants and None flow through ungated; cache to keep lookups
    // cheap but do not mark as modified.
    defs[key] = fromParent;
    return fromParent;
}

void
Scope::set(Key key, Def def)
{
    defs[key] = def;
    modified.insert(key);
}

void
Scope::kill(Key key)
{
    defs[key] = Def{};
    modified.insert(key);
}

Port
Scope::regionToken()
{
    if (regionPort.valid())
        return regionPort;
    if (parent == nullptr) {
        ps_assert(!sealed, "loop head scope needs explicit region");
        regionPort = low.trigger();
        return regionPort;
    }
    Port parentToken = parent->regionToken();
    if (gated) {
        regionPort = low.mkSteer(decider, polarity,
                                 Def::wire(parentToken), "region");
    } else {
        regionPort = parentToken;
    }
    return regionPort;
}

// -----------------------------------------------------------------------
// Lowering
// -----------------------------------------------------------------------

namespace {

/**
 * Record arrays stored to outside any foreach region. Stores inside
 * a foreach body are covered by the programmer's independence
 * contract (iterations write disjoint locations, Sec. 4.1);
 * anything else must join the array's memory-order chain.
 */
void
collectSequentialStores(const sir::StmtList &list, bool inForeach,
                        std::set<ArrayId> &out)
{
    for (const auto &stmt : list) {
        switch (stmt->kind()) {
          case sir::Stmt::Kind::Store:
            if (!inForeach) {
                out.insert(
                    static_cast<const sir::StoreStmt &>(*stmt)
                        .array);
            }
            break;
          case sir::Stmt::Kind::If: {
            const auto &s = static_cast<const sir::IfStmt &>(*stmt);
            collectSequentialStores(s.thenBody, inForeach, out);
            collectSequentialStores(s.elseBody, inForeach, out);
            break;
          }
          case sir::Stmt::Kind::For: {
            const auto &s = static_cast<const sir::ForStmt &>(*stmt);
            collectSequentialStores(s.body,
                                    inForeach || s.isForeach, out);
            break;
          }
          case sir::Stmt::Kind::While: {
            const auto &s =
                static_cast<const sir::WhileStmt &>(*stmt);
            collectSequentialStores(s.header, inForeach, out);
            collectSequentialStores(s.body, inForeach, out);
            break;
          }
          default:
            break;
        }
    }
}

} // namespace

void
Lowering::classifyArrays()
{
    // An array needs order tokens when program-order memory
    // semantics are observable on it: it is both loaded and stored,
    // or it is stored from sequential (non-foreach) code more than
    // trivially. Arrays only stored inside foreach bodies rely on
    // the foreach independence contract and stay unordered.
    auto loaded = sir::loadedArrays(prog.body);
    auto stored = sir::storedArrays(prog.body);
    std::set<ArrayId> sequentialStores;
    collectSequentialStores(prog.body, false, sequentialStores);

    arrayReadWrite.assign(prog.arrays.size(), false);
    for (ArrayId a : stored) {
        if (a == sir::AnyArray)
            continue;
        if (loaded.count(a) || sequentialStores.count(a))
            arrayReadWrite[static_cast<size_t>(a)] = true;
    }
}

Graph
Lowering::run()
{
    ps_assert(opts.liveInValues.size() == prog.liveIns.size(),
              "program %s expects %zu live-ins, got %zu",
              prog.name.c_str(), prog.liveIns.size(),
              opts.liveInValues.size());

    loopIds = numberLoops(prog);
    loopParents.assign(loopIds.size(), -1);
    loopThreadedFlags.assign(loopIds.size(), false);

    Scope root(*this);
    for (size_t i = 0; i < prog.liveIns.size(); i++)
        root.set(prog.liveIns[i], Def::imm_(opts.liveInValues[i]));

    walkList(prog.body, root);

    graph.numLoops = static_cast<int>(loopIds.size());
    graph.loopParent = loopParents;
    graph.loopThreaded = loopThreadedFlags;

    graph.eliminateDeadNodes();
    markLoopDepths();
    graph.finalize();
    return std::move(graph);
}

void
Lowering::markLoopDepths()
{
    auto inner = dfg::innermostLoops(graph);
    std::vector<bool> isInner(static_cast<size_t>(graph.numLoops),
                              false);
    for (int l : inner)
        isInner[static_cast<size_t>(l)] = true;
    for (auto &node : graph.nodes) {
        int depth = 0;
        for (int l = node.loopId; l >= 0;
             l = graph.loopParent[static_cast<size_t>(l)]) {
            depth++;
        }
        node.loopDepth = depth;
        node.innerLoop =
            node.loopId >= 0 &&
            isInner[static_cast<size_t>(node.loopId)];
    }
}

void
Lowering::walkList(const sir::StmtList &list, Scope &scope)
{
    for (const auto &stmt : list)
        walkStmt(*stmt, scope);
}

void
Lowering::walkStmt(const sir::Stmt &stmt, Scope &scope)
{
    switch (stmt.kind()) {
      case sir::Stmt::Kind::Const: {
        const auto &s = static_cast<const sir::ConstStmt &>(stmt);
        scope.set(s.dst, Def::imm_(s.value));
        break;
      }
      case sir::Stmt::Kind::Compute: {
        const auto &s = static_cast<const sir::ComputeStmt &>(stmt);
        Def a = scope.lookup(s.a);
        Def b = scope.lookup(s.b);
        Def c = s.op == sir::Opcode::Select ? scope.lookup(s.c)
                                            : Def::imm_(0);
        ps_assert(!a.isNone() && !b.isNone() && !c.isNone(),
                  "operand of r%d is undefined", s.dst);
        if (a.isImm() && b.isImm() && c.isImm()) {
            scope.set(s.dst, Def::imm_(sir::evalOpcode(
                                 s.op, a.imm, b.imm, c.imm)));
            break;
        }
        // Copy propagation: x + 0 / 0 + x / x | 0 / x ^ 0 alias x.
        if (s.op == sir::Opcode::Add || s.op == sir::Opcode::Or ||
            s.op == sir::Opcode::Xor) {
            if (b.isImm() && b.imm == 0) {
                scope.set(s.dst, a);
                break;
            }
            if (a.isImm() && a.imm == 0 &&
                s.op == sir::Opcode::Add) {
                scope.set(s.dst, b);
                break;
            }
        }
        Node n;
        n.kind = NodeKind::Arith;
        n.op = s.op;
        n.inputs = {a.operand(), b.operand()};
        if (s.op == sir::Opcode::Select)
            n.inputs.push_back(c.operand());
        n.name = csprintf("%s_r%d", sir::opcodeName(s.op), s.dst);
        scope.set(s.dst, Def::wire({addNode(std::move(n)), 0}));
        break;
      }
      case sir::Stmt::Kind::Load:
      case sir::Stmt::Kind::Store:
        lowerMemOp(stmt, scope);
        break;
      case sir::Stmt::Kind::If:
        lowerIf(static_cast<const sir::IfStmt &>(stmt), scope);
        break;
      case sir::Stmt::Kind::For:
      case sir::Stmt::Kind::While:
        lowerLoop(stmt, scope);
        break;
    }
}

void
Lowering::lowerMemOp(const sir::Stmt &stmt, Scope &scope)
{
    bool isLoad = stmt.kind() == sir::Stmt::Kind::Load;
    ArrayId array = isLoad
                        ? static_cast<const sir::LoadStmt &>(stmt).array
                        : static_cast<const sir::StoreStmt &>(stmt)
                              .array;
    bool ordered = array != sir::AnyArray &&
                   arrayReadWrite[static_cast<size_t>(array)];

    if (isLoad) {
        const auto &s = static_cast<const sir::LoadStmt &>(stmt);
        Def addr = scope.lookup(s.addr);
        if (addr.isImm())
            addr = Def::imm_(addr.imm + s.offset);
        Node n;
        n.kind = NodeKind::Load;
        n.array = array;
        n.imm = addr.isImm() ? 0 : s.offset;
        n.inputs.resize(2);
        n.inputs[pidx::LoadAddr] = addr.operand();
        if (ordered) {
            Def ord = scope.lookup(ordKey(array));
            n.inputs[pidx::LoadOrder] =
                Operand::wire(materialize(scope, ord));
        } else if (!addr.isWire()) {
            // Constant address: fire once per region execution.
            n.inputs[pidx::LoadOrder] =
                Operand::wire(scope.regionToken());
        }
        n.name = csprintf("ld_%s",
                          array == sir::AnyArray
                              ? "mem"
                              : prog.array(array).name.c_str());
        NodeId id = addNode(std::move(n));
        scope.set(s.dst, Def::wire({id, pidx::LoadDataOut}));
        if (ordered) {
            scope.set(ordKey(array),
                      Def::wire({id, pidx::LoadDoneOut}));
        }
    } else {
        const auto &s = static_cast<const sir::StoreStmt &>(stmt);
        Def addr = scope.lookup(s.addr);
        if (addr.isImm())
            addr = Def::imm_(addr.imm + s.offset);
        Def data = scope.lookup(s.value);
        Node n;
        n.kind = NodeKind::Store;
        n.array = array;
        n.imm = addr.isImm() ? 0 : s.offset;
        n.inputs.resize(3);
        n.inputs[pidx::StoreAddr] = addr.operand();
        n.inputs[pidx::StoreData] = data.operand();
        if (ordered) {
            Def ord = scope.lookup(ordKey(array));
            n.inputs[pidx::StoreOrder] =
                Operand::wire(materialize(scope, ord));
        } else if (!addr.isWire() && !data.isWire()) {
            n.inputs[pidx::StoreOrder] =
                Operand::wire(scope.regionToken());
        }
        n.name = csprintf("st_%s",
                          array == sir::AnyArray
                              ? "mem"
                              : prog.array(array).name.c_str());
        NodeId id = addNode(std::move(n));
        if (ordered) {
            scope.set(ordKey(array),
                      Def::wire({id, pidx::StoreDoneOut}));
        }
    }
}

void
Lowering::lowerIf(const sir::IfStmt &stmt, Scope &scope)
{
    Def cond = scope.lookup(stmt.cond);
    ps_assert(!cond.isNone(), "if condition undefined");

    // Statically resolved branch (constant folding).
    if (cond.isImm()) {
        walkList(cond.imm != 0 ? stmt.thenBody : stmt.elseBody, scope);
        return;
    }

    Scope thenScope(scope, cond.port, true);
    walkList(stmt.thenBody, thenScope);
    Scope elseScope(scope, cond.port, false);
    walkList(stmt.elseBody, elseScope);

    // φ-merge every key either branch assigned.
    std::set<Key> merged = thenScope.modifiedKeys();
    merged.insert(elseScope.modifiedKeys().begin(),
                  elseScope.modifiedKeys().end());
    for (Key key : merged) {
        Def t = thenScope.tryLookup(key);
        Def e = elseScope.tryLookup(key);
        if (t.isNone() || e.isNone()) {
            // Defined on one path only and dead on the other;
            // record as undefined after the join.
            scope.kill(key);
            continue;
        }
        if (t.isImm() && e.isImm() && t.imm == e.imm) {
            scope.set(key, t);
            continue;
        }
        Node n;
        n.kind = NodeKind::Merge;
        n.inputs.resize(3);
        n.inputs[pidx::MergeDecider] = Operand::wire(cond.port);
        n.inputs[pidx::MergeTrue] = t.operand();
        n.inputs[pidx::MergeFalse] = e.operand();
        n.name = csprintf("phi_k%d", key);
        scope.set(key, Def::wire({addNode(std::move(n)), 0}));
    }
}

namespace {

/** Normalized view of a For/While loop for the shared lowering. */
struct LoopShape
{
    bool isFor = false;
    const sir::ForStmt *forStmt = nullptr;
    const sir::WhileStmt *whileStmt = nullptr;
    const sir::StmtList *header = nullptr; // While only
    const sir::StmtList *body = nullptr;
    Reg var = sir::NoReg;
    bool isForeach = false;
};

} // namespace

void
Lowering::lowerLoop(const sir::Stmt &stmt, Scope &scope)
{
    LoopShape shape;
    if (stmt.kind() == sir::Stmt::Kind::For) {
        shape.isFor = true;
        shape.forStmt = static_cast<const sir::ForStmt *>(&stmt);
        shape.body = &shape.forStmt->body;
        shape.var = shape.forStmt->var;
        shape.isForeach = shape.forStmt->isForeach;
    } else {
        shape.whileStmt = static_cast<const sir::WhileStmt *>(&stmt);
        shape.header = &shape.whileStmt->header;
        shape.body = &shape.whileStmt->body;
        for (const auto &h : *shape.header) {
            ps_assert(h->kind() != sir::Stmt::Kind::For &&
                          h->kind() != sir::Stmt::Kind::While,
                      "loops inside while headers are unsupported");
        }
    }

    const int loopId = loopIds.at(&stmt);
    const int parentLoop = currentLoop;
    loopParents[static_cast<size_t>(loopId)] = parentLoop;
    const bool threaded = opts.threadLoops.count(loopId) != 0;
    loopThreadedFlags[static_cast<size_t>(loopId)] = threaded;

    // ---- analysis sets -------------------------------------------------
    std::vector<const sir::StmtList *> lists;
    if (shape.header)
        lists.push_back(shape.header);
    lists.push_back(shape.body);

    sir::RegSet defs;
    for (const auto *l : lists) {
        auto d = sir::collectDefs(*l);
        defs.insert(d.begin(), d.end());
    }
    sir::RegSet exposed = sir::upwardExposedUsesSeq(lists);
    exposed.erase(shape.var);
    sir::RegSet uses;
    for (const auto *l : lists) {
        auto u = sir::collectUses(*l);
        uses.insert(u.begin(), u.end());
    }
    const sir::RegSet &liveAfter = liveness.liveAfter(stmt);

    // Carried values: flow across the iteration boundary (or must
    // survive to the loop exit).
    std::vector<Key> carried;
    if (shape.isFor)
        carried.push_back(shape.var);
    for (Reg r : defs) {
        if (r == shape.var)
            continue;
        if (exposed.count(r) || liveAfter.count(r))
            carried.push_back(r);
    }
    // Memory-order chains for read-write arrays touched in the loop.
    std::set<ArrayId> touched;
    for (const auto *l : lists) {
        auto la = sir::loadedArrays(*l);
        auto sa = sir::storedArrays(*l);
        touched.insert(la.begin(), la.end());
        touched.insert(sa.begin(), sa.end());
    }
    std::vector<Key> orderedArrays;
    for (ArrayId a : touched) {
        if (a != sir::AnyArray &&
            arrayReadWrite[static_cast<size_t>(a)]) {
            carried.push_back(ordKey(a));
            orderedArrays.push_back(ordKey(a));
        }
    }

    // Loop-invariant values: read in the loop, never written.
    std::vector<Key> invariants;
    for (Reg r : uses) {
        if (defs.count(r) || r == shape.var)
            continue;
        if (scope.lookup(r).isWire())
            invariants.push_back(r);
        // Constants flow into the loop as immediates.
    }
    // Threads may terminate out of order (Sec. 3). Any live token
    // the code after the loop consumes must therefore travel
    // *through* the thread — as a dispatch-carried invariant with
    // its own exit steer (the `i` dispatch of Fig. 7) — so that it
    // stays paired with the thread's results.
    if (threaded) {
        for (Reg r : liveAfter) {
            if (defs.count(r) || r == shape.var)
                continue;
            if (std::find(invariants.begin(), invariants.end(), r) !=
                invariants.end())
                continue;
            // Constants (and values not visible here) carry no
            // tokens, so they need no thread routing.
            if (scope.tryLookup(r).isWire())
                invariants.push_back(r);
        }
    }
    // A For loop evaluates `end` every iteration.
    bool endIsInvariant = false;
    if (shape.isFor && scope.lookup(shape.forStmt->end).isWire() &&
        !defs.count(shape.forStmt->end)) {
        endIsInvariant = true;
    }

    // Stream fusion: unthreaded For loops fuse induction + compare
    // into a stream generator (and then need no `end` invariant).
    const bool fused = shape.isFor && !threaded && opts.useStreams;

    // ---- gates ---------------------------------------------------------
    // Materialize initial values in the enclosing region first.
    std::map<Key, Port> initPorts;
    for (Key k : carried) {
        if (k == shape.var) {
            if (!fused) {
                initPorts[k] = materialize(
                    scope, scope.lookup(shape.forStmt->begin));
            }
            continue;
        }
        Def init = scope.lookup(k);
        ps_assert(!init.isNone(),
                  "carried value k%d has no initial value before "
                  "loop %d",
                  k, loopId);
        initPorts[k] = materialize(scope, init);
    }
    std::map<Key, Port> invariantInit;
    for (Key k : invariants)
        invariantInit[k] = scope.lookup(k).port;
    if (endIsInvariant && !fused)
        invariantInit[shape.forStmt->end] =
            scope.lookup(shape.forStmt->end).port;

    currentLoop = loopId;

    // Head scope: bindings valid at the top of each iteration.
    Scope head(*this, true);

    // Create gate nodes (dispatch when threaded, carry otherwise).
    std::map<Key, NodeId> gates;
    for (Key k : carried) {
        if (fused && k == shape.var)
            continue;
        Node n;
        n.kind = threaded ? NodeKind::Dispatch : NodeKind::Carry;
        n.inputs.resize(threaded ? 2 : 3);
        n.inputs[threaded ? pidx::DispatchSpawn : pidx::CarryInit] =
            Operand::wire(initPorts[k]);
        n.name = csprintf("%s_k%d", threaded ? "disp" : "carry", k);
        NodeId id = addNode(std::move(n));
        gates[k] = id;
        head.bind(k, Def::wire({id, 0}));
    }
    // Invariant gates. In threaded loops every invariant becomes a
    // dispatch-carried value (each thread owns a copy, Fig. 7); in
    // unthreaded loops an invariant gate replays the value.
    std::map<Key, NodeId> invGates;
    for (auto &[k, port] : invariantInit) {
        Node n;
        n.kind = threaded ? NodeKind::Dispatch : NodeKind::Invariant;
        n.inputs.resize(threaded ? 2 : 2);
        if (threaded) {
            n.inputs[pidx::DispatchSpawn] = Operand::wire(port);
        } else {
            n.inputs[pidx::InvValue] = Operand::wire(port);
        }
        n.name = csprintf("%s_k%d", threaded ? "dispI" : "inv", k);
        NodeId id = addNode(std::move(n));
        invGates[k] = id;
        head.bind(k, Def::wire({id, 0}));
    }

    // ---- loop condition --------------------------------------------------
    // The head region executes once per iteration (including the
    // final failing check); any gate output fires at that rate and
    // can serve as its region token.
    if (!gates.empty())
        head.setRegionToken({gates.begin()->second, 0});
    Port cond;
    NodeId streamId = dfg::NoNode;
    if (fused) {
        Node n;
        n.kind = NodeKind::Stream;
        n.streamStep = shape.forStmt->step;
        n.inputs.resize(3);
        Def begin = scope.lookup(shape.forStmt->begin);
        Def end = scope.lookup(shape.forStmt->end);
        // Dynamic bounds latch per execution; constant bounds need a
        // trigger token from the enclosing region.
        n.inputs[pidx::StreamBegin] = begin.operand();
        n.inputs[pidx::StreamEnd] = end.operand();
        if (!begin.isWire() && !end.isWire()) {
            n.inputs[pidx::StreamTrigger] =
                Operand::wire(scope.regionToken());
        }
        n.name = csprintf("stream_r%d", shape.var);
        streamId = addNode(std::move(n));
        cond = {streamId, pidx::StreamCondOut};
    } else {
        // Head binding for the induction variable, then the compare.
        if (shape.isFor) {
            Def endDef;
            if (invGates.count(shape.forStmt->end)) {
                endDef = Def::wire(
                    {invGates[shape.forStmt->end], 0});
            } else {
                endDef = scope.lookup(shape.forStmt->end);
                ps_assert(endDef.isImm(),
                          "For bound must be loop-invariant");
            }
            Node n;
            n.kind = NodeKind::Arith;
            n.op = sir::Opcode::Lt;
            n.inputs = {Operand::wire({gates[shape.var], 0}),
                        endDef.operand()};
            n.name = "forcond";
            cond = {addNode(std::move(n)), 0};
        }
    }

    // Seed constants invariants into the head scope so header/body
    // lookups never fall through.
    for (Reg r : uses) {
        if (head.hasLocal(r) || defs.count(r) || r == shape.var)
            continue;
        Def d = scope.lookup(r);
        if (d.isImm())
            head.bind(r, d);
    }
    if (shape.isFor && fused)
        head.bind(shape.var, Def::wire({streamId,
                                        pidx::StreamIdxOut}));

    if (shape.header != nullptr) {
        // While: walk the header (executes every iteration including
        // the final check), then read the condition.
        walkList(*shape.header, head);
        Def c = head.lookup(shape.whileStmt->cond);
        ps_assert(c.isWire(),
                  "while condition must be data-dependent");
        cond = c.port;
    }
    ps_assert(cond.valid(), "loop %d has no condition", loopId);
    if (gates.empty())
        head.setRegionToken(cond);

    // Wire deciders of unthreaded gates (dispatch has none: the
    // SyncPlane group logic replaces the decider, Fig. 10).
    if (!threaded) {
        for (auto &[k, id] : gates)
            graph.connect(cond, id, pidx::CarryDecider);
        for (auto &[k, id] : invGates)
            graph.connect(cond, id, pidx::InvDecider);
    }

    // ---- body ------------------------------------------------------------
    Scope body(head, cond, true);
    if (fused && shape.isFor) {
        // The stream's index output already fires once per executed
        // iteration: rebind ungated.
        body.set(shape.var, Def::wire({streamId, pidx::StreamIdxOut}));
    }
    walkList(*shape.body, body);

    // Backedges.
    for (Key k : carried) {
        if (fused && k == shape.var)
            continue;
        Def next;
        if (k == shape.var) {
            // var' = var + step
            Def gatedVar = body.lookup(shape.var);
            Node n;
            n.kind = NodeKind::Arith;
            n.op = sir::Opcode::Add;
            n.inputs = {gatedVar.operand(),
                        Operand::imm_(shape.forStmt->step)};
            n.name = "forstep";
            next = Def::wire({addNode(std::move(n)), 0});
        } else {
            next = body.lookup(k);
            ps_assert(!next.isNone(), "carried k%d undefined at "
                      "backedge", k);
            if (next.isImm()) {
                next = Def::wire(
                    mkConst(body.regionToken(), next.imm));
            }
        }
        graph.connect(next.port, gates[k],
                      threaded ? pidx::DispatchCont
                               : pidx::CarryCont);
    }
    if (threaded) {
        // Invariant dispatches recirculate through a steer.
        for (auto &[k, id] : invGates) {
            Port steered = mkSteer(cond, true, Def::wire({id, 0}),
                                   csprintf("invloop_k%d", k));
            graph.connect(steered, id, pidx::DispatchCont);
        }
    }

    // ---- exits -------------------------------------------------------------
    currentLoop = parentLoop;
    for (Reg r : liveAfter) {
        Def pre;
        if (head.modifiedKeys().count(r)) {
            // (Re)defined in the header: the final-check value is
            // the freshest (fires once per check, N+1 times).
            pre = head.lookup(r);
        } else if (gates.count(r)) {
            pre = Def::wire({gates[r], 0});
        } else if (threaded && invGates.count(r)) {
            // Thread-routed invariant: downstream code must consume
            // the copy that exits with this thread.
            pre = Def::wire({invGates[r], 0});
        } else {
            continue; // unchanged by the loop
        }
        if (!pre.isWire())
            continue;
        int saved = currentLoop;
        currentLoop = loopId;
        Port exit = mkSteer(cond, false, pre,
                            csprintf("exit_k%d", r));
        currentLoop = saved;
        scope.set(r, Def::wire(exit));
    }
    // Memory-order chains always exit (later code may access the
    // array again).
    for (Key k : orderedArrays) {
        int saved = currentLoop;
        currentLoop = loopId;
        Port exit = mkSteer(cond, false, Def::wire({gates[k], 0}),
                            csprintf("exit_ord%d", k));
        currentLoop = saved;
        scope.set(k, Def::wire(exit));
    }

    // Defs that do not survive the loop are dead afterwards.
    for (Reg r : defs) {
        if (!liveAfter.count(r))
            scope.kill(r);
    }
    if (shape.var != sir::NoReg)
        scope.kill(shape.var);
}

} // namespace

Graph
lower(const sir::Program &prog, const LowerOptions &opts)
{
    Lowering lowering(prog, opts);
    return lowering.run();
}

} // namespace pipestitch::compiler
