#include "compiler/threading.hh"

#include "base/logging.hh"
#include "compiler/lower.hh"
#include "dfg/analysis.hh"

namespace pipestitch::compiler {

namespace {

/**
 * Walk loops in the same pre-order as the lowering, recording for
 * each loop whether its nearest enclosing loop is a foreach For.
 */
void
walkLoops(const sir::StmtList &list, bool parentIsForeach,
          int &counter, std::set<int> &candidates,
          std::unordered_map<const sir::Stmt *, int> &ids)
{
    for (const auto &stmt : list) {
        switch (stmt->kind()) {
          case sir::Stmt::Kind::If: {
            const auto &s = static_cast<const sir::IfStmt &>(*stmt);
            walkLoops(s.thenBody, parentIsForeach, counter,
                      candidates, ids);
            walkLoops(s.elseBody, parentIsForeach, counter,
                      candidates, ids);
            break;
          }
          case sir::Stmt::Kind::For: {
            const auto &s = static_cast<const sir::ForStmt &>(*stmt);
            int id = counter++;
            ids[stmt.get()] = id;
            if (parentIsForeach)
                candidates.insert(id);
            walkLoops(s.body, s.isForeach, counter, candidates, ids);
            break;
          }
          case sir::Stmt::Kind::While: {
            const auto &s = static_cast<const sir::WhileStmt &>(*stmt);
            int id = counter++;
            ids[stmt.get()] = id;
            if (parentIsForeach)
                candidates.insert(id);
            walkLoops(s.header, false, counter, candidates, ids);
            walkLoops(s.body, false, counter, candidates, ids);
            break;
          }
          default:
            break;
        }
    }
}

} // namespace

std::unordered_map<const sir::Stmt *, int>
numberLoops(const sir::Program &prog)
{
    std::unordered_map<const sir::Stmt *, int> ids;
    std::set<int> candidates;
    int counter = 0;
    walkLoops(prog.body, false, counter, candidates, ids);
    return ids;
}

int
countLoops(const sir::Program &prog)
{
    return static_cast<int>(numberLoops(prog).size());
}

std::set<int>
findThreadingCandidates(const sir::Program &prog)
{
    std::set<int> candidates;
    std::unordered_map<const sir::Stmt *, int> ids;
    int counter = 0;
    walkLoops(prog.body, false, counter, candidates, ids);
    return candidates;
}

std::set<int>
decideThreading(const sir::Program &prog,
                const std::vector<sir::Word> &liveIns, bool useStreams,
                std::vector<int> &outII)
{
    LowerOptions opts;
    opts.liveInValues = liveIns;
    opts.useStreams = useStreams;
    dfg::Graph baseline = lower(prog, opts);

    outII.assign(static_cast<size_t>(baseline.numLoops), 0);
    for (int l = 0; l < baseline.numLoops; l++)
        outII[static_cast<size_t>(l)] =
            dfg::computeLoopII(baseline, l);

    std::set<int> threaded;
    for (int l : findThreadingCandidates(prog)) {
        if (l < baseline.numLoops &&
            outII[static_cast<size_t>(l)] > 1) {
            threaded.insert(l);
        }
    }
    return threaded;
}

} // namespace pipestitch::compiler
