/**
 * @file
 * Time-multiplexing — the paper's second future-work direction
 * (Sec. 6): "selectively time-multiplex low-utilization operations
 * on PEs, freeing PEs for other work. Time-multiplexing trades
 * performance for energy by increasing switching activity."
 *
 * The planner groups the *coldest* operators of an over-subscribed
 * PE class (outer-loop operators fire once per inner-loop execution
 * and mostly idle) so that each group shares one PE. The simulator
 * enforces one fire per group per cycle, and the energy model
 * charges a configuration-switch cost whenever the PE alternates
 * between residents.
 */

#ifndef PIPESTITCH_COMPILER_TIMEMUX_HH
#define PIPESTITCH_COMPILER_TIMEMUX_HH

#include <optional>
#include <vector>

#include "dfg/graph.hh"
#include "fabric/fabric.hh"

namespace pipestitch::compiler {

/** Groups of node ids sharing one PE (each group same PE class). */
using ShareGroups = std::vector<std::vector<dfg::NodeId>>;

/**
 * Plan sharing groups so @p graph 's PE demand fits @p config.
 * Only operators *not* in an innermost loop are eligible (hot
 * inner-loop operators would serialize the pipeline). Returns empty
 * groups if the kernel already fits; fatal()s if it cannot fit even
 * with all eligible operators folded.
 */
ShareGroups planTimeMultiplexing(const dfg::Graph &graph,
                                 const fabric::FabricConfig &config);

/** As above, but returns nullopt instead of fatal()ing when the
 *  kernel cannot fit even with all eligible operators folded. */
std::optional<ShareGroups>
tryPlanTimeMultiplexing(const dfg::Graph &graph,
                        const fabric::FabricConfig &config);

} // namespace pipestitch::compiler

#endif // PIPESTITCH_COMPILER_TIMEMUX_HH
