/**
 * @file
 * The threading decision (Sec. 4.8): candidate loops are those
 * directly nested in a `foreach` loop; a candidate is threaded iff
 * its inner-loop initiation interval exceeds 1 on the unthreaded
 * lowering (control flow in routers contributes no II).
 */

#ifndef PIPESTITCH_COMPILER_THREADING_HH
#define PIPESTITCH_COMPILER_THREADING_HH

#include <set>
#include <unordered_map>
#include <vector>

#include "sir/program.hh"

namespace pipestitch::compiler {

/**
 * Stable pre-order numbering of every loop statement. Both the
 * lowering and the threading heuristic use this map so loop ids
 * agree even when constant folding elides branches.
 */
std::unordered_map<const sir::Stmt *, int>
numberLoops(const sir::Program &prog);

/** Total number of loops in @p prog. */
int countLoops(const sir::Program &prog);

/** See compile.hh; ids follow the lowering's pre-order numbering. */
std::set<int> findThreadingCandidates(const sir::Program &prog);

/**
 * Apply the II > 1 heuristic: lower @p prog unthreaded, measure each
 * candidate's II, and return the loops to thread. @p outII receives
 * the per-loop baseline II.
 */
std::set<int> decideThreading(const sir::Program &prog,
                              const std::vector<sir::Word> &liveIns,
                              bool useStreams,
                              std::vector<int> &outII);

} // namespace pipestitch::compiler

#endif // PIPESTITCH_COMPILER_THREADING_HH
