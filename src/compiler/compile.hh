/**
 * @file
 * Compilation driver: SIR kernel → mapped-ready DFG for one
 * architecture variant, applying the paper's threading heuristic and
 * control-flow placement policy.
 */

#ifndef PIPESTITCH_COMPILER_COMPILE_HH
#define PIPESTITCH_COMPILER_COMPILE_HH

#include <set>
#include <string>
#include <vector>

#include "compiler/lower.hh"
#include "dfg/graph.hh"
#include "sim/simulator.hh"
#include "sir/program.hh"

namespace pipestitch::compiler {

/**
 * The architecture variants evaluated in the paper.
 *
 * | variant   | threads   | CF placement | buffering    |
 * |-----------|-----------|--------------|--------------|
 * | RipTide   | none      | NoC          | source       |
 * | Pipestitch| heuristic | auto¹        | destination  |
 * | PipeSB    | heuristic | auto¹        | source       |
 * | PipeCFiN  | heuristic | NoC²         | destination  |
 * | PipeCFoP  | heuristic | PEs          | destination  |
 *
 * ¹ threaded kernels map all CF onto PEs, unthreaded into the NoC
 *   (Secs. 5.8, 5.10).
 * ² dispatch always needs a PE; CF downstream of bypassing memory
 *   ops is also forced onto PEs (Sec. 4.8).
 */
enum class ArchVariant { RipTide, Pipestitch, PipeSB, PipeCFiN,
                         PipeCFoP };

const char *archVariantName(ArchVariant variant);

struct CompileOptions
{
    ArchVariant variant = ArchVariant::Pipestitch;

    enum class Threading {
        Heuristic, ///< thread candidate loops iff inner II > 1
        ForceOff,
        ForceOn, ///< thread all candidates regardless of II
    };
    Threading threading = Threading::Heuristic;

    bool useStreams = true;

    /** Buffer depth handed to the recommended SimConfig. */
    int bufferDepth = 4;

    /**
     * Spatial unrolling factor (Sec. 6 future work): replicate each
     * foreach body this many times, one dispatch-group pipeline per
     * lane. Power of two; 1 disables. Costs ~factor× the PEs.
     */
    int unrollFactor = 1;
};

struct CompileResult
{
    dfg::Graph graph;

    /** Baseline (unthreaded) II per loop id. */
    std::vector<int> loopII;

    /** Loops compiled as threaded dispatch loops. */
    std::set<int> threadedLoops;

    /** True if any loop is threaded. */
    bool threaded = false;

    /** Simulator configuration matching the variant. */
    sim::SimConfig simConfig;
};

/**
 * Compile @p prog with parameters @p liveIns bound (the control core
 * configures kernel parameters into the fabric as immediates).
 */
CompileResult compileProgram(const sir::Program &prog,
                             const std::vector<sir::Word> &liveIns,
                             const CompileOptions &options);

/**
 * Threading candidates: loops directly nested in a foreach loop
 * (their iterations are whole-thread bodies). Exposed for tests.
 * Returned ids use the lowering's pre-order numbering.
 */
std::set<int> threadingCandidates(const sir::Program &prog);

/**
 * CF placement (Sec. 4.8): mark control-flow nodes `cfInNoc`
 * according to @p placeInNoc, keeping dispatch and CF fed by
 * bypassing memory ops on PEs and breaking residual combinational
 * cycles. Exposed for tests.
 */
void placeControlFlow(dfg::Graph &graph, bool placeInNoc,
                      bool memBypass);

/**
 * Merge structurally identical stateless operators (consts, ALU
 * ops, steers, merges with the same operands fire identically, so
 * consumers can share one PE). Returns removed-node count.
 */
int eliminateCommonSubexpressions(dfg::Graph &graph);

} // namespace pipestitch::compiler

#endif // PIPESTITCH_COMPILER_COMPILE_HH
