/**
 * @file
 * DFG analyses: initiation-interval computation (the threading
 * heuristic of Sec. 4.8) and evaluation order for combinational
 * CF-in-NoC operators.
 */

#ifndef PIPESTITCH_DFG_ANALYSIS_HH
#define PIPESTITCH_DFG_ANALYSIS_HH

#include <cstdint>
#include <vector>

#include "dfg/graph.hh"

namespace pipestitch::dfg {

/**
 * Initiation interval of loop @p loopId: the number of
 * non-control-flow operators in the heaviest dependence cycle
 * through the loop's backedges (control flow is assumed
 * combinational in routers and contributes 0; Sec. 4.8).
 *
 * Returns 0 for a loop with no backedge cycle (e.g. fully
 * stream-fused loops, which pipeline with II = 1 or better).
 */
int computeLoopII(const Graph &graph, int loopId);

/**
 * Topological order of the CF-in-NoC nodes by their wire
 * dependencies on each other. Requires the graph to be free of
 * combinational CF-in-NoC cycles (see dfg::verify).
 */
std::vector<NodeId> nocCfTopoOrder(const Graph &graph);

/** Ids of innermost loops (loops that are no other loop's parent). */
std::vector<int> innermostLoops(const Graph &graph);

/**
 * Content fingerprint of a graph: covers every semantic node field
 * (kind, opcode, immediates, wiring, loop structure, CF placement,
 * array binding) plus the loop tables. Two graphs with equal
 * fingerprints behave identically under the mapper and simulator;
 * the runner's memo cache keys mapper results on it.
 */
uint64_t graphFingerprint(const Graph &graph);

} // namespace pipestitch::dfg

#endif // PIPESTITCH_DFG_ANALYSIS_HH
