#include "dfg/dot.hh"

#include <sstream>

namespace pipestitch::dfg {

namespace {

const char *
kindColor(const Node &node)
{
    switch (node.kind) {
      case NodeKind::Dispatch: return "gold";
      case NodeKind::Carry:
      case NodeKind::Invariant:
      case NodeKind::Merge:
      case NodeKind::Steer: return "lightblue";
      case NodeKind::Load:
      case NodeKind::Store: return "palegreen";
      case NodeKind::Stream: return "plum";
      default: return "white";
    }
}

} // namespace

std::string
toDot(const Graph &graph)
{
    std::ostringstream out;
    out << "digraph \"" << graph.name << "\" {\n"
        << "  node [shape=box, style=filled];\n";
    for (NodeId id = 0; id < graph.size(); id++) {
        const Node &n = graph.at(id);
        out << "  n" << id << " [label=\"" << id << ": "
            << nodeKindName(n.kind);
        if (n.kind == NodeKind::Arith)
            out << "." << sir::opcodeName(n.op);
        if (n.kind == NodeKind::Steer)
            out << (n.steerIfTrue ? ".T" : ".F");
        if (!n.name.empty())
            out << "\\n" << n.name;
        if (n.loopId >= 0)
            out << "\\nL" << n.loopId;
        if (n.cfInNoc)
            out << " (noc)";
        out << "\", fillcolor=" << kindColor(n) << "];\n";
    }
    for (NodeId id = 0; id < graph.size(); id++) {
        const Node &n = graph.at(id);
        for (int i = 0; i < n.numInputs(); i++) {
            const Operand &in = n.inputs[static_cast<size_t>(i)];
            if (!in.isWire())
                continue;
            out << "  n" << in.port.node << " -> n" << id
                << " [label=\"" << in.port.index << "->" << i << "\"";
            if (Graph::isBackedgeInput(n, i))
                out << ", style=dashed, color=red";
            out << "];\n";
        }
    }
    out << "}\n";
    return out.str();
}

} // namespace pipestitch::dfg
