/**
 * @file
 * Structural validity checks for dataflow graphs.
 */

#ifndef PIPESTITCH_DFG_VERIFIER_HH
#define PIPESTITCH_DFG_VERIFIER_HH

#include <string>
#include <vector>

#include "dfg/graph.hh"

namespace pipestitch::dfg {

/**
 * Check @p graph: input arity per node kind, required wire inputs
 * (token-producing nodes must be driven by at least one wire; carry
 * init and dispatch spawn must be wires), dispatch groups share a
 * threaded loop, and no combinational cycle exists through CF-in-NoC
 * nodes (which the mapper must forbid, Sec. 4.8).
 *
 * @return list of problems; empty when valid.
 */
std::vector<std::string> verify(const Graph &graph);

/** Verify and fatal() on the first problem. */
void verifyOrDie(const Graph &graph);

} // namespace pipestitch::dfg

#endif // PIPESTITCH_DFG_VERIFIER_HH
