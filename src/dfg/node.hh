/**
 * @file
 * Dataflow-graph node definitions.
 *
 * The DFG is the compiler's output and the simulator's input. It
 * implements the Pipestitch ISA of Fig. 6: RipTide's ordered-dataflow
 * operators (arith, steer, carry, invariant, merge, load/store,
 * stream) plus the new `dispatch` operator.
 */

#ifndef PIPESTITCH_DFG_NODE_HH
#define PIPESTITCH_DFG_NODE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sir/program.hh"

namespace pipestitch::dfg {

using Word = sir::Word;

/** Node index within a Graph. */
using NodeId = int32_t;
constexpr NodeId NoNode = -1;

/** Operator kinds (the ISA of Fig. 6, plus plumbing). */
enum class NodeKind {
    /** Emits a single token at cycle 0 (kernel start signal). */
    Trigger,
    /** Emits its immediate once per region token on its input. */
    Const,
    /** Two/three-input ALU op (sir::Opcode). */
    Arith,
    /** Forward input when decider matches polarity, else drop both. */
    Steer,
    /** Loop-carried value: init from A, then B while D (Fig. 6). */
    Carry,
    /** Loop invariant: latch A, replay while D. */
    Invariant,
    /** φ: select the true-side or false-side token by decider. */
    Merge,
    /** Pipestitch thread gate: select spawn vs. continuation set. */
    Dispatch,
    /** Memory read: addr (+optional order token) → data (+done). */
    Load,
    /** Memory write: addr, data (+optional order token) → (done). */
    Store,
    /** Affine sequence generator: begin/end → index + continue flag. */
    Stream,
};

const char *nodeKindName(NodeKind kind);

/** Hardware resource class a node occupies (paper's PE mix). */
enum class PeClass { Arith, Multiplier, ControlFlow, Memory, Stream };

const char *peClassName(PeClass c);

/** Resource class for @p kind (Arith splits by opcode). */
PeClass peClassFor(NodeKind kind, sir::Opcode op);

/** Reference to a node's output port. */
struct Port
{
    NodeId node = NoNode;
    int index = 0;

    bool valid() const { return node != NoNode; }
    bool operator==(const Port &other) const = default;
};

/** An input operand: either a port connection or an immediate. */
struct Operand
{
    enum class Kind { None, Wire, Imm };

    Kind kind = Kind::None;
    Port port;   // when Wire
    Word imm = 0; // when Imm

    static Operand none() { return {}; }

    static Operand
    wire(Port p)
    {
        Operand o;
        o.kind = Kind::Wire;
        o.port = p;
        return o;
    }

    static Operand
    imm_(Word v)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = v;
        return o;
    }

    bool isWire() const { return kind == Kind::Wire; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isNone() const { return kind == Kind::None; }
};

/** Canonical input-port indices per node kind. */
namespace port_idx {
// Arith: 0=a, 1=b, 2=c (Select only)
// Steer: 0=decider, 1=value
constexpr int SteerDecider = 0;
constexpr int SteerValue = 1;
// Carry: 0=init(A), 1=cont(B), 2=decider(D)
constexpr int CarryInit = 0;
constexpr int CarryCont = 1;
constexpr int CarryDecider = 2;
// Invariant: 0=value(A), 1=decider(D)
constexpr int InvValue = 0;
constexpr int InvDecider = 1;
// Merge: 0=decider, 1=true-side, 2=false-side
constexpr int MergeDecider = 0;
constexpr int MergeTrue = 1;
constexpr int MergeFalse = 2;
// Dispatch: 0=spawn(S), 1=cont(C)
constexpr int DispatchSpawn = 0;
constexpr int DispatchCont = 1;
// Load: 0=addr, 1=order (optional)
constexpr int LoadAddr = 0;
constexpr int LoadOrder = 1;
// Store: 0=addr, 1=data, 2=order (optional)
constexpr int StoreAddr = 0;
constexpr int StoreData = 1;
constexpr int StoreOrder = 2;
// Stream: 0=begin, 1=end, 2=trigger (optional)
constexpr int StreamBegin = 0;
constexpr int StreamEnd = 1;
constexpr int StreamTrigger = 2;
// Stream outputs: 0=index, 1=continue flag
constexpr int StreamIdxOut = 0;
constexpr int StreamCondOut = 1;
// Load outputs: 0=data, 1=done;  Store outputs: 0=done
constexpr int LoadDataOut = 0;
constexpr int LoadDoneOut = 1;
constexpr int StoreDoneOut = 0;
} // namespace port_idx

/** One dataflow operator. */
struct Node
{
    NodeKind kind = NodeKind::Arith;
    sir::Opcode op = sir::Opcode::Add; // Arith only
    bool steerIfTrue = true;           // Steer polarity
    Word imm = 0;                      // Const value
    Word streamStep = 1;               // Stream step

    std::vector<Operand> inputs;

    /**
     * Innermost enclosing loop id (-1 = top level). Dispatch nodes
     * with the same loopId form one SyncPlane group.
     */
    int loopId = -1;
    /** Loop nesting depth (0 = top level). */
    int loopDepth = 0;
    /** True for nodes belonging to an innermost loop (Fig. 18). */
    bool innerLoop = false;

    /** Mapped into a NoC router instead of a PE (CF-in-NoC). */
    bool cfInNoc = false;

    /** sir::ArrayId accessed (Load/Store; AnyArray if unknown). */
    sir::ArrayId array = sir::AnyArray;

    std::string name;

    int numOutputs() const;
    int numInputs() const { return static_cast<int>(inputs.size()); }
    bool isControlFlow() const;
    bool isMemory() const;
    PeClass peClass() const { return peClassFor(kind, op); }

    /** True if the node has at least one wire input. */
    bool hasWireInput() const;
};

} // namespace pipestitch::dfg

#endif // PIPESTITCH_DFG_NODE_HH
