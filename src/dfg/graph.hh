/**
 * @file
 * The dataflow graph container and its construction helpers.
 */

#ifndef PIPESTITCH_DFG_GRAPH_HH
#define PIPESTITCH_DFG_GRAPH_HH

#include <string>
#include <vector>

#include "base/logging.hh"
#include "dfg/node.hh"

namespace pipestitch::dfg {

/** A consumer endpoint of an output port: (node, input index). */
struct Consumer
{
    NodeId node;
    int inputIndex;
};

/**
 * A complete dataflow program: node list plus derived connectivity.
 *
 * Backedges (loop-carried wires into Carry::cont, Carry::decider,
 * Invariant::decider, Dispatch::cont and the deciders of steers that
 * feed them) make the graph cyclic; `isBackedgeInput()` identifies
 * the canonical cycle-breaking ports so analyses can treat the rest
 * as a DAG.
 */
class Graph
{
  public:
    Graph() = default;
    explicit Graph(std::string name) : name(std::move(name)) {}

    std::string name;
    std::vector<Node> nodes;

    /** Number of loops (loop ids are 0..numLoops-1). */
    int numLoops = 0;

    /** Parent loop id per loop (-1 = top level). */
    std::vector<int> loopParent;

    /** True per loop if it was compiled as a threaded (dispatch) loop. */
    std::vector<bool> loopThreaded;

    /** Add a node; returns its id. */
    NodeId add(Node node);

    Node &at(NodeId id)
    {
        ps_assert(id >= 0 && id < size(),
                  "node id %d out of range", id);
        return nodes[static_cast<size_t>(id)];
    }
    const Node &at(NodeId id) const
    {
        ps_assert(id >= 0 && id < size(),
                  "node id %d out of range", id);
        return nodes[static_cast<size_t>(id)];
    }

    int size() const { return static_cast<int>(nodes.size()); }

    /** Connect @p from output port to input @p inputIndex of @p to. */
    void connect(Port from, NodeId to, int inputIndex);

    /**
     * Ports whose incoming wire is a loop backedge (cycle breaker):
     * Carry cont/decider, Invariant decider, Dispatch cont.
     */
    static bool isBackedgeInput(const Node &node, int inputIndex);

    /** Recompute consumer lists; call after construction/mutation. */
    void finalize();

    /** Consumers of output @p port (valid after finalize()). */
    const std::vector<Consumer> &consumersOf(Port port) const
    {
        ps_assert(finalized, "graph not finalized");
        return consumers[static_cast<size_t>(port.node)]
                        [static_cast<size_t>(port.index)];
    }

    bool isFinalized() const { return finalized; }

    /** Total consumer endpoints of node @p id across all outputs. */
    int fanout(NodeId id) const;

    /**
     * Remove nodes that do not transitively feed any Store (the only
     * externally observable effect). Dropping a consumer is always
     * safe in ordered dataflow: producers simply multicast to fewer
     * endpoints. Re-finalizes. @return number of removed nodes.
     */
    int eliminateDeadNodes();

    /** Count nodes per PE class, excluding CF-in-NoC nodes. */
    std::vector<int> peClassCounts() const;

    /** Nodes (ids) belonging to loop @p loopId (innermost match). */
    std::vector<NodeId> nodesInLoop(int loopId) const;

  private:
    // consumers[node][outPort] = list of (consumer, input index)
    std::vector<std::vector<std::vector<Consumer>>> consumers;
    bool finalized = false;
};

} // namespace pipestitch::dfg

#endif // PIPESTITCH_DFG_GRAPH_HH
