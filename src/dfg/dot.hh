/**
 * @file
 * GraphViz export of dataflow graphs (debugging / documentation).
 */

#ifndef PIPESTITCH_DFG_DOT_HH
#define PIPESTITCH_DFG_DOT_HH

#include <string>

#include "dfg/graph.hh"

namespace pipestitch::dfg {

/** Render @p graph in GraphViz dot syntax. */
std::string toDot(const Graph &graph);

} // namespace pipestitch::dfg

#endif // PIPESTITCH_DFG_DOT_HH
